//! Cross-crate integration: the full pipeline from trace generation
//! through cache models, CPU timing and the power models, plus the
//! harness render paths used by the `bcache-repro` binary.

use bcache_core::{BCacheParams, BalancedCache};
use cache_sim::{AccessKind, Addr, CacheGeometry, DirectMappedCache, MemoryHierarchy};
use cpu_model::{Cpu, CpuConfig};
use harness::run::RunLength;
use harness::{balance, design_space, fig3, missrate, tables};
use power_model::{bcache_access_pj, conventional_access_pj, table1_rows, table2};
use trace_gen::{profiles, Trace};

fn quick() -> RunLength {
    RunLength::with_records(60_000)
}

#[test]
fn all_26_profiles_run_through_the_full_cpu_pipeline() {
    for profile in profiles::all() {
        let geom = CacheGeometry::new(16 * 1024, 32, 1).unwrap();
        let hierarchy = MemoryHierarchy::new(
            Box::new(BalancedCache::new(
                BCacheParams::paper_default(geom).unwrap(),
            )),
            Box::new(BalancedCache::new(
                BCacheParams::paper_default(geom).unwrap(),
            )),
        );
        let mut cpu = Cpu::new(CpuConfig::default(), hierarchy);
        let report = cpu.run(Trace::new(&profile, 3).take(20_000));
        assert_eq!(report.instructions, 20_000, "{}", profile.name);
        assert!(
            report.ipc() > 0.05 && report.ipc() <= 4.0,
            "{}: IPC {}",
            profile.name,
            report.ipc()
        );
        assert!(
            cpu.hierarchy().l1i().stats().total().accesses() > 0,
            "{}",
            profile.name
        );
        assert!(
            cpu.hierarchy().l1d().stats().total().accesses() > 0,
            "{}",
            profile.name
        );
    }
}

#[test]
fn bcache_as_l1_propagates_writebacks_into_l2() {
    let geom = CacheGeometry::new(1024, 32, 1).unwrap();
    let params = BCacheParams::new(geom, 2, 2, cache_sim::PolicyKind::Lru).unwrap();
    let mut h = MemoryHierarchy::new(
        Box::new(DirectMappedCache::new(1024, 32).unwrap()),
        Box::new(BalancedCache::new(params)),
    );
    // Dirty a block, then evict it via a PD-hit conflict (same PI/NPI).
    h.data_access(Addr::new(0x40), AccessKind::Write);
    // 1 kB cache, MF=2, BAS=2: offset 5, NPI 4 bits, PI 2 bits -> PI+NPI
    // cover bits [5,11); +2^11 shares both fields but differs in tag.
    h.data_access(Addr::new(0x40 + (1 << 11)), AccessKind::Read);
    assert_eq!(h.l1d().stats().writebacks(), 1);
    // The written-back block is now an L2 hit.
    assert_eq!(h.data_access(Addr::new(0x40), AccessKind::Read), 1 + 6);
}

#[test]
fn every_table_renders_nonempty() {
    for text in [
        tables::render_table1(),
        tables::render_table2(),
        tables::render_table3(),
        tables::render_table4(),
    ] {
        assert!(text.lines().count() > 4, "{text}");
    }
    let grid = design_space::design_space_grid(RunLength::with_records(20_000));
    assert!(design_space::render_tables_5_and_6(&grid).contains("Table 6"));
    let rows = balance::table7(RunLength::with_records(20_000)).unwrap();
    assert_eq!(rows.len(), 26);
    assert!(balance::render_table7(&rows).contains("wupwise"));
}

#[test]
fn every_figure_renders_nonempty() {
    let (fp, int) = missrate::figure4(quick());
    assert!(fp.render().contains("equake"));
    assert!(int.render().contains("gcc"));
    assert!(missrate::figure5(quick()).render().contains("crafty"));
    let (points, text) = fig3::figure3(quick());
    assert_eq!(points.len(), 9);
    assert!(text.contains("wupwise"));
    let figs = missrate::figure12(RunLength::with_records(20_000));
    assert_eq!(figs.len(), 4, "8k/32k x I$/D$");
}

#[test]
fn power_models_agree_on_the_papers_design_point() {
    let geom = CacheGeometry::new(16 * 1024, 32, 1).unwrap();
    let params = BCacheParams::paper_default(geom).unwrap();
    // Timing: slack everywhere (Table 1).
    assert!(table1_rows().iter().all(|r| r.slack_ns > 0.0));
    // Area: +4.3% (Table 2).
    let (_, _, overhead) = table2(&params);
    assert!((overhead - 0.043).abs() < 0.005);
    // Energy: ~+10% per access, far below 8-way (Table 3).
    let dm = conventional_access_pj(&geom).total_pj();
    let bc = bcache_access_pj(&params).total_pj();
    let w8 = conventional_access_pj(&geom.with_assoc(8).unwrap()).total_pj();
    assert!(bc > dm && bc < dm * 1.15);
    assert!(bc < w8 * 0.5);
}

#[test]
fn deterministic_experiments_across_invocations() {
    let a = missrate::figure5(quick());
    let b = missrate::figure5(quick());
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.baseline_miss_rate, rb.baseline_miss_rate);
        for (oa, ob) in ra.outcomes.iter().zip(&rb.outcomes) {
            assert_eq!(oa.miss_rate, ob.miss_rate, "{}/{}", ra.benchmark, oa.label);
        }
    }
}

#[test]
fn umbrella_crate_reexports_work() {
    // The root crate exposes all member crates for examples and tests.
    let _ = bcache_repro::cache_sim::CacheGeometry::new(1024, 32, 1).unwrap();
    let _ = bcache_repro::trace_gen::profiles::all();
    let _ = bcache_repro::power_model::table1_rows();
}
