//! End-to-end checks of the paper's headline claims, exercised through
//! the same harness code that regenerates the tables and figures.
//!
//! Absolute numbers are not expected to match the paper (the substrate
//! is synthetic); these tests pin down the *shape*: who wins, in which
//! order, and where the crossovers sit.

use harness::config::CacheConfig;
use harness::run::{run_miss_rates, RunLength, Side};
use harness::{fig3, missrate, perf};
use trace_gen::profiles;

fn len() -> RunLength {
    RunLength::with_records(150_000)
}

/// Abstract of the paper: large average miss-rate reductions for both
/// caches, with the instruction side gaining more than the data side.
#[test]
fn average_reductions_are_large_and_icache_gains_more() {
    let (fp, int) = missrate::figure4(len());
    let fig5 = missrate::figure5(len());
    let d_ave = (fp.average_reduction(fp.column("MF8-BAS8").unwrap())
        + int.average_reduction(int.column("MF8-BAS8").unwrap()))
        / 2.0;
    let i_ave = fig5.average_reduction(fig5.column("MF8-BAS8").unwrap());
    assert!(
        d_ave > 0.25,
        "D$ average reduction {d_ave:.3} (paper: 37.8%)"
    );
    assert!(
        i_ave > 0.45,
        "I$ average reduction {i_ave:.3} (paper: 64.5%)"
    );
    assert!(i_ave > d_ave, "the I$ gains more than the D$ in the paper");
}

/// Section 4.3.3: the B-Cache's upper bound is the same-BAS-way cache,
/// and at MF = 8 it performs at least as well as a 4-way cache.
#[test]
fn bcache_sits_between_4way_and_8way() {
    let (fp, int) = missrate::figure4(len());
    for fig in [&fp, &int] {
        let red = |l: &str| fig.average_reduction(fig.column(l).unwrap());
        assert!(
            red("MF8-BAS8") >= red("4way") - 0.03,
            "{}: B-Cache {:.3} should be at least 4-way {:.3}",
            fig.title,
            red("MF8-BAS8"),
            red("4way")
        );
        assert!(
            red("MF8-BAS8") <= red("8way") + 0.03,
            "{}: B-Cache {:.3} bounded by 8-way {:.3}",
            fig.title,
            red("MF8-BAS8"),
            red("8way")
        );
    }
}

/// Section 4.3.2: pushing MF from 8 to 16 buys almost nothing (the paper
/// measures +1.7% / +1.0% / +0.4%).
#[test]
fn mf16_adds_little_over_mf8() {
    let (fp, int) = missrate::figure4(len());
    for fig in [&fp, &int] {
        let red = |l: &str| fig.average_reduction(fig.column(l).unwrap());
        let delta = red("MF16-BAS8") - red("MF8-BAS8");
        assert!(
            (-0.01..0.06).contains(&delta),
            "{}: MF8->MF16 delta {delta:.3}",
            fig.title
        );
    }
}

/// Section 6.6: only `wupwise` loses to the 16-entry victim buffer on
/// the data side.
#[test]
fn victim_buffer_beats_bcache_only_on_wupwise() {
    let (fp, int) = missrate::figure4(len());
    for fig in [&fp, &int] {
        let vi = fig.column("victim16").unwrap();
        let bi = fig.column("MF8-BAS8").unwrap();
        for row in &fig.rows {
            let victim = 1.0 - row.outcomes[vi].miss_rate / row.baseline_miss_rate.max(1e-12);
            let bcache = 1.0 - row.outcomes[bi].miss_rate / row.baseline_miss_rate.max(1e-12);
            if row.benchmark == "wupwise" {
                assert!(
                    victim > bcache,
                    "wupwise: victim {victim:.3} vs B-Cache {bcache:.3}"
                );
            } else {
                assert!(
                    bcache > victim - 0.05,
                    "{}: victim {victim:.3} should not beat B-Cache {bcache:.3}",
                    row.benchmark
                );
            }
        }
    }
}

/// Figure 3: wupwise's PD hit rate during misses stays high until MF=32
/// and collapses at MF=64, taking the miss rate down with it.
#[test]
fn fig3_pd_collapse_at_mf64() {
    let points = fig3::figure3_for("wupwise", len());
    let at = |mf: usize| points.iter().find(|p| p.mf == mf).unwrap();
    assert!(at(32).pd_hit_rate > 0.5);
    assert!(at(64).pd_hit_rate < 0.2);
    assert!(at(64).miss_rate < at(32).miss_rate * 0.6);
}

/// Table 7: capacity-bound benchmarks have no frequent-miss sets, so
/// balancing cannot help them (their reductions are small in Figure 4).
#[test]
fn capacity_benchmarks_gain_little() {
    let (fp, int) = missrate::figure4(len());
    let col = fp.column("MF8-BAS8").unwrap();
    for fig in [&fp, &int] {
        for row in &fig.rows {
            if ["art", "lucas", "swim", "mcf"].contains(&row.benchmark.as_str()) {
                let red = 1.0 - row.outcomes[col].miss_rate / row.baseline_miss_rate.max(1e-12);
                assert!(
                    red < 0.2,
                    "{}: reduction {red:.3} should be small",
                    row.benchmark
                );
            }
        }
    }
}

/// Figure 8's headline: the B-Cache improves IPC on the conflict-heavy
/// benchmark the paper highlights (equake, +27.1% there) and never
/// regresses the capacity-bound ones meaningfully.
#[test]
fn ipc_improves_on_equake_and_not_worse_on_mcf() {
    let l = RunLength::with_records(120_000);
    let equake = profiles::by_name("equake").unwrap();
    let base = perf::run_config(&equake, &CacheConfig::DirectMapped, l);
    let bc = perf::run_config(&equake, &CacheConfig::BCache { mf: 8, bas: 8 }, l);
    assert!(
        bc.ipc > base.ipc * 1.05,
        "equake: {} vs {}",
        bc.ipc,
        base.ipc
    );

    let mcf = profiles::by_name("mcf").unwrap();
    let base = perf::run_config(&mcf, &CacheConfig::DirectMapped, l);
    let bc = perf::run_config(&mcf, &CacheConfig::BCache { mf: 8, bas: 8 }, l);
    assert!(
        bc.ipc > base.ipc * 0.97,
        "mcf must not regress: {} vs {}",
        bc.ipc,
        base.ipc
    );
}

/// Figure 9's headline: per-benchmark normalized energy of the B-Cache
/// beats the 8-way cache (which pays ~3x per access) on a hit-dominated
/// benchmark.
#[test]
fn bcache_energy_beats_8way() {
    let l = RunLength::with_records(120_000);
    let profile = profiles::by_name("gzip").unwrap();
    let row = perf::PerfRow {
        benchmark: "gzip".into(),
        outcomes: vec![
            perf::run_config(&profile, &CacheConfig::DirectMapped, l),
            perf::run_config(&profile, &CacheConfig::SetAssoc(8), l),
            perf::run_config(&profile, &CacheConfig::BCache { mf: 8, bas: 8 }, l),
        ],
    };
    let norm = row.normalized_energy();
    assert!(
        norm[2] < norm[1],
        "B-Cache {:.3} vs 8-way {:.3}",
        norm[2],
        norm[1]
    );
}

/// Figure 12: the B-Cache's MF=8/BAS=8 design point holds up at 8 kB and
/// 32 kB as well (the paper: "similar miss rate reductions").
#[test]
fn design_point_works_at_8k_and_32k() {
    let profile = profiles::by_name("equake").unwrap();
    for size in [8 * 1024usize, 32 * 1024] {
        let r = run_miss_rates(
            &profile,
            &[
                CacheConfig::BCache { mf: 8, bas: 8 },
                CacheConfig::SetAssoc(8),
            ],
            size,
            Side::Data,
            len(),
        );
        let bc = r.reduction(0);
        let w8 = r.reduction(1);
        assert!(bc > 0.5, "equake at {size}: B-Cache reduction {bc:.3}");
        assert!(bc <= w8 + 0.05, "bounded by 8-way at {size}");
    }
}

/// Section 7.1: the B-Cache beats the column-associative cache (a 2-way
/// equivalent) and matches or beats the skewed-associative cache
/// (a 4-way equivalent) on average.
#[test]
fn related_work_ordering() {
    let fig = missrate::related_work(len());
    let red = |l: &str| fig.average_reduction(fig.column(l).unwrap());
    assert!(red("MF8-BAS8") > red("column"), "vs column-associative");
    assert!(
        red("MF8-BAS8") > red("skew2") - 0.05,
        "vs skewed-associative"
    );
    assert!(
        red("column") > 0.0 && red("skew2") > 0.0,
        "related work beats the baseline too"
    );
    // The HAC (fully programmable decoder) bounds everything from above.
    assert!(
        red("hac32") >= red("MF8-BAS8") - 0.03,
        "HAC is the B-Cache's limit case"
    );
}
