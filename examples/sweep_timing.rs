//! Wall-clock comparison of the serial (streaming) miss-rate sweep
//! against the sharded parallel engine, on the Figure 4 + Figure 5
//! workload.
//!
//! Run with: `cargo run --release --example sweep_timing [records] [jobs]`
//!
//! The serial pass is the pre-engine code path: one streaming
//! `run_miss_rates` call per benchmark, regenerating the trace each
//! time. The engine pass shards (benchmark × config) jobs over cached
//! per-side access streams. Both produce identical figures (asserted
//! below).

use std::time::Instant;

use harness::missrate;
use harness::parallel::Engine;
use harness::run::{run_miss_rates, RunLength, Side};
use harness::CacheConfig;
use trace_gen::profiles;

fn main() {
    let mut args = std::env::args().skip(1);
    let records: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(500_000);
    let jobs: usize = args
        .next()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(harness::default_parallelism);
    let len = RunLength::with_records(records);
    let configs = CacheConfig::figure4_set();

    let t0 = Instant::now();
    let mut serial_rows = Vec::new();
    for (set, side) in [
        (profiles::cfp(), Side::Data),
        (profiles::cint(), Side::Data),
        (profiles::icache_reported(), Side::Instruction),
    ] {
        for p in &set {
            serial_rows.push(run_miss_rates(p, &configs, 16 * 1024, side, len));
        }
    }
    let serial = t0.elapsed();

    let engine = Engine::new(jobs);
    let t1 = Instant::now();
    let (fp, int) = missrate::figure4_with(&engine, len);
    let fig5 = missrate::figure5_with(&engine, len);
    let parallel = t1.elapsed();

    let engine_rows: Vec<_> = fp
        .rows
        .iter()
        .chain(&int.rows)
        .chain(&fig5.rows)
        .cloned()
        .collect();
    assert_eq!(serial_rows, engine_rows, "paths must agree bit-for-bit");

    println!("fig4+fig5 sweep, {records} records, 16 kB, 10 models x 41 rows");
    println!("  serial (streaming, per-benchmark): {serial:.2?}");
    println!("  engine (--jobs {jobs}, trace cache):  {parallel:.2?}");
    println!(
        "  speedup: {:.2}x",
        serial.as_secs_f64() / parallel.as_secs_f64()
    );
}
