//! Explore the B-Cache design space (Section 6.3) on one benchmark:
//! sweep the mapping factor MF and the associativity BAS, and watch the
//! interplay between PD hit rate and miss-rate reduction.
//!
//! Run with: `cargo run --release --example design_space [benchmark]`

use std::env;

use harness::run::{run_bcache_pd_stats, run_miss_rates, RunLength, Side};
use trace_gen::profiles;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = env::args().nth(1).unwrap_or_else(|| "twolf".to_string());
    let profile = profiles::by_name(&benchmark).ok_or_else(|| {
        format!("unknown benchmark {benchmark:?}; try one of: equake, twolf, gcc")
    })?;
    let len = RunLength::with_records(1_000_000);

    let baseline = run_miss_rates(&profile, &[], 16 * 1024, Side::Data, len).baseline_miss_rate;
    println!(
        "{benchmark}: 16 kB direct-mapped D$ baseline miss rate {:.2}%\n",
        baseline * 100.0
    );
    println!(
        "{:>6} {:>6} {:>8} {:>10} {:>12} {:>12}",
        "MF", "BAS", "PD bits", "miss rate", "reduction", "PD-hit@miss"
    );
    for bas in [2usize, 4, 8, 16] {
        for mf in [1usize, 2, 4, 8, 16, 32] {
            let o = run_bcache_pd_stats(&profile, mf, bas, 16 * 1024, Side::Data, len);
            let pd_bits = (mf as f64).log2() as u32 + (bas as f64).log2() as u32;
            println!(
                "{:>6} {:>6} {:>8} {:>9.2}% {:>11.1}% {:>11.1}%",
                mf,
                bas,
                pd_bits,
                o.miss_rate * 100.0,
                (1.0 - o.miss_rate / baseline) * 100.0,
                o.pd_hit_rate_on_miss * 100.0
            );
        }
        println!();
    }
    println!(
        "The paper picks MF = 8, BAS = 8 (a 6-bit PD): the largest design whose CAM\n\
         still fits in the decoder's timing slack (Table 1)."
    );
    Ok(())
}
