//! Full-system comparison on one benchmark: baseline, 8-way, victim
//! buffer and B-Cache L1s driving the Table 4 out-of-order processor,
//! reporting miss rates, IPC and normalized memory energy (the Figure
//! 8/9 pipeline on a single benchmark).
//!
//! Run with: `cargo run --release --example full_system [benchmark]`

use std::env;

use harness::config::CacheConfig;
use harness::perf::{run_config, PerfRow};
use harness::run::RunLength;
use trace_gen::profiles;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let benchmark = env::args().nth(1).unwrap_or_else(|| "equake".to_string());
    let profile =
        profiles::by_name(&benchmark).ok_or_else(|| format!("unknown benchmark {benchmark:?}"))?;
    let len = RunLength::with_records(1_000_000);

    let configs = [
        CacheConfig::DirectMapped,
        CacheConfig::SetAssoc(8),
        CacheConfig::Victim(16),
        CacheConfig::BCache { mf: 8, bas: 8 },
    ];
    println!(
        "simulating {benchmark} for {} instructions per configuration…\n",
        len.records
    );
    let row = PerfRow {
        benchmark: benchmark.clone(),
        outcomes: configs
            .iter()
            .map(|c| run_config(&profile, c, len))
            .collect(),
    };
    let energy = row.normalized_energy();

    println!(
        "{:>12} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "config", "IPC", "IPC gain", "L1 misses", "mem accesses", "energy"
    );
    for (i, o) in row.outcomes.iter().enumerate() {
        println!(
            "{:>12} {:>8.3} {:>9.1}% {:>12} {:>12} {:>10.3}",
            o.label,
            o.ipc,
            row.ipc_improvement(i) * 100.0,
            o.counts.l1_misses,
            o.counts.l2_misses,
            energy[i]
        );
    }
    println!(
        "\nThe B-Cache keeps the baseline's one-cycle hits (unlike the victim buffer's\n\
         swap hits) while approaching the 8-way cache's miss rate at a fraction of its\n\
         per-access energy."
    );
    Ok(())
}
