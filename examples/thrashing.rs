//! The paper's Section 2.2 worked example (Figure 1).
//!
//! An 8-set cache sees the block-address sequence 0, 1, 8, 9 repeated.
//! Blocks 0/8 and 1/9 collide in a direct-mapped cache, which therefore
//! never hits; a 2-way cache hits after four warm-up misses; and the
//! B-Cache — still activating a single way per access — matches the
//! 2-way cache by reprogramming its decoders once.
//!
//! Run with: `cargo run --example thrashing`

use bcache_core::{BCacheParams, BalancedCache};
use cache_sim::{
    AccessKind, Addr, CacheGeometry, CacheModel, DirectMappedCache, PolicyKind, SetAssociativeCache,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const LINE: u64 = 32;
    let sequence = [0u64, 1, 8, 9];

    let mut dm = DirectMappedCache::new(256, 32)?;
    let mut two_way = SetAssociativeCache::new(256, 32, 2, PolicyKind::Lru, 0)?;
    // Figure 1(c): MF = 2, BAS = 2 on the same 8-set geometry (13-bit
    // addresses keep the example's tag space small).
    let geom = CacheGeometry::with_addr_bits(256, 32, 1, 13)?;
    let mut bcache = BalancedCache::new(BCacheParams::new(geom, 2, 2, PolicyKind::Lru)?);

    println!("address sequence (block numbers): {sequence:?}, repeated 4x\n");
    println!(
        "{:>8} {:>6} | {:^12} {:^12} {:^12}",
        "round", "block", "direct", "2-way", "B-Cache"
    );
    for round in 0..4 {
        for block in sequence {
            let addr = Addr::new(block * LINE);
            let d = dm.access(addr, AccessKind::Read).hit;
            let w = two_way.access(addr, AccessKind::Read).hit;
            let b = bcache.access(addr, AccessKind::Read).hit;
            let show = |hit: bool| if hit { "hit" } else { "MISS" };
            println!(
                "{:>8} {:>6} | {:^12} {:^12} {:^12}",
                round,
                block,
                show(d),
                show(w),
                show(b)
            );
        }
    }

    println!("\ntotals over 16 accesses:");
    for (name, stats) in [
        ("direct-mapped", dm.stats()),
        ("2-way LRU", two_way.stats()),
        ("B-Cache MF=2 BAS=2", bcache.stats()),
    ] {
        println!("  {name:>20}: {stats}");
    }
    println!(
        "\nB-Cache decoder state: {} PD-miss refills programmed the CAMs; \
         every later access is a one-cycle hit.",
        bcache.pd_stats().misses_with_pd_miss
    );
    assert_eq!(dm.stats().total().hits(), 0);
    assert_eq!(two_way.stats().total().misses(), 4);
    assert_eq!(bcache.stats().total().misses(), 4);
    Ok(())
}
