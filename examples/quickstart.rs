//! Quickstart: build the paper's B-Cache, run a synthetic SPEC2K
//! workload against it and the direct-mapped baseline, and read the
//! statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use bcache_core::{BCacheParams, BalancedCache};
use cache_sim::{AccessKind, Addr, CacheGeometry, CacheModel, DirectMappedCache};
use trace_gen::{profiles, Op, Trace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's L1 data cache: 16 kB, 32-byte lines, direct-mapped.
    let geometry = CacheGeometry::new(16 * 1024, 32, 1)?;
    let mut baseline = DirectMappedCache::from_geometry(geometry)?;

    // The B-Cache design point chosen in the paper: MF = 8, BAS = 8, LRU.
    let params = BCacheParams::paper_default(geometry)?;
    let mut bcache = BalancedCache::new(params);
    println!("configured: {}", bcache.params());
    println!(
        "index layout: {} NPI bits + {} PI bits (CAM), residual tag {} bits\n",
        bcache.layout().npi_bits(),
        bcache.layout().pi_bits(),
        bcache.layout().residual_tag_bits()
    );

    // Replay one million data references of the synthetic `equake`.
    let profile = profiles::by_name("equake").expect("equake is a known benchmark");
    for record in Trace::new(&profile, 42).take(1_000_000) {
        if let Some(addr) = record.op.data_addr() {
            let kind = match record.op {
                Op::Store(_) => AccessKind::Write,
                _ => AccessKind::Read,
            };
            baseline.access(Addr::new(addr), kind);
            bcache.access(Addr::new(addr), kind);
        }
    }

    println!("direct-mapped baseline: {}", baseline.stats());
    println!("B-Cache (MF=8, BAS=8):  {}", bcache.stats());
    let reduction = 1.0 - bcache.stats().miss_rate() / baseline.stats().miss_rate();
    println!("miss-rate reduction:    {:.1}%", reduction * 100.0);
    println!(
        "PD hit rate on misses:  {:.1}%  (low = replacement policy in control)",
        bcache.pd_stats().pd_hit_rate_on_miss() * 100.0
    );
    println!("\nset balance (Table 7 classification):");
    println!("  baseline: {}", baseline.set_usage().unwrap().balance());
    println!("  B-Cache:  {}", bcache.set_usage().unwrap().balance());

    assert!(
        reduction > 0.5,
        "equake should show a large conflict-miss reduction"
    );
    Ok(())
}
