//! Regenerates the pinned tables of `crates/harness/tests/golden_stats.rs`.
//!
//! Run with `cargo run --example golden_dump` after a *deliberate* model
//! change, and paste the printed rows into `GOLDEN` / `GOLDEN_PD` in the
//! same commit (saying why in the commit message). The run length and
//! configurations here must mirror the test file exactly.

use bcache_core::{BCacheParams, BalancedCache};
use cache_sim::{CacheGeometry, PolicyKind};
use harness::config::CacheConfig;
use harness::parallel::TraceCache;
use harness::run::{replay, replay_config_counts, RunLength, Side};
use trace_gen::profiles;

const BENCHMARKS: &[&str] = &[
    "mcf", "gzip", "equake", "ammp", "art", "gcc", "parser", "vpr",
];

fn len() -> RunLength {
    RunLength {
        records: 50_000,
        warmup: 5_000,
        seed: 1,
    }
}

fn main() {
    let traces = TraceCache::new();
    let core = [
        ("DM", CacheConfig::DirectMapped),
        ("W8", CacheConfig::SetAssoc(8)),
        ("BC", CacheConfig::BCache { mf: 8, bas: 8 }),
    ];
    // The remaining batched-kernel models, pinned on the data side only:
    // their instruction-side rows are near-duplicates of the core
    // configs' and add bulk without discriminating power.
    let models = [
        ("V16", CacheConfig::Victim(16)),
        ("CA", CacheConfig::ColumnAssoc),
        ("SK2", CacheConfig::SkewedAssoc),
        ("HAC", CacheConfig::Hac),
        ("WH4", CacheConfig::WayHalting),
        ("AGC", CacheConfig::Agac),
        ("PAM", CacheConfig::Pam),
        ("DFB", CacheConfig::DiffBit),
    ];
    println!("// (benchmark, config, side, accesses, misses)");
    for &benchmark in BENCHMARKS {
        let p = profiles::by_name(benchmark).expect("known benchmark");
        let records = traces.get(&p, len());
        for side in [Side::Data, Side::Instruction] {
            let extra = if side == Side::Data { &models[..] } else { &[] };
            for (name, config) in core.iter().chain(extra) {
                let c = replay_config_counts(benchmark, &records, config, 16 * 1024, side, len());
                println!(
                    "    (\"{benchmark}\", {name}, Side::{side:?}, {}, {}),",
                    c.accesses, c.misses
                );
            }
        }
    }
    println!("// (benchmark, misses_with_pd_hit, misses_with_pd_miss)");
    for &benchmark in BENCHMARKS {
        let p = profiles::by_name(benchmark).expect("known benchmark");
        let records = traces.get(&p, len());
        let geom = CacheGeometry::new(16 * 1024, 32, 1).unwrap();
        let params = BCacheParams::new(geom, 8, 8, PolicyKind::Lru).unwrap();
        let mut bc = BalancedCache::new(params);
        replay(records.iter(), &mut bc, Side::Data, len().warmup);
        let pd = bc.pd_stats();
        println!(
            "    (\"{benchmark}\", {}, {}),",
            pd.misses_with_pd_hit, pd.misses_with_pd_miss
        );
    }
}
