//! The statistically justified tolerance band for convergence tests.
//!
//! A simulated miss rate over `n` accesses is a mean of `n` Bernoulli
//! indicators — but *dependent* ones: consecutive accesses share cache
//! state, so the sequence is a function of an ergodic Markov chain
//! rather than an i.i.d. sample. The band therefore has three parts:
//!
//! 1. the CLT width `z · sqrt(p(1−p)/n)`;
//! 2. a variance-inflation factor covering the integrated
//!    autocorrelation time of the chain (how many accesses it takes for
//!    the cache to "forget" its state — bounded in practice by a small
//!    multiple of the resident-block count's reference time);
//! 3. an `O(states/n)` bias term for the initialization transient that
//!    the warmup split does not perfectly remove.
//!
//! With `z = 4` (a one-in-tens-of-thousands two-sided tail even before
//! inflation) the band is wide enough that a correctly converging
//! simulator passes deterministically at the pinned seeds, yet tight
//! enough that a distribution drift of a percent at the largest `N`
//! fails loudly.

/// Tail multiplier: ±4 sigma.
const Z: f64 = 4.0;

/// Variance inflation for the Markov-chain dependence of consecutive
/// accesses (integrated autocorrelation time allowance).
const INFLATION: f64 = 8.0;

/// Half-width of the acceptance band around an analytic rate `p` when
/// comparing against a simulated rate over `n` accesses, for a cache
/// whose distribution occupies `resident_states` blocks.
///
/// The variance term is floored at `1/n` so the band never collapses to
/// the pure bias term when `p` is 0 or 1.
pub fn convergence_tolerance(p: f64, n: u64, resident_states: u64) -> f64 {
    let n = n.max(1) as f64;
    let var = (p * (1.0 - p)).max(1.0 / n);
    Z * (INFLATION * var / n).sqrt() + resident_states as f64 / n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_with_n() {
        let t1 = convergence_tolerance(0.3, 10_000, 512);
        let t2 = convergence_tolerance(0.3, 40_000, 512);
        let t3 = convergence_tolerance(0.3, 160_000, 512);
        assert!(t1 > t2 && t2 > t3);
        // With no bias term the sqrt law is exact: quadrupling n halves it.
        let s1 = convergence_tolerance(0.3, 10_000, 0);
        let s2 = convergence_tolerance(0.3, 40_000, 0);
        assert!((s1 / s2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn never_collapses_at_the_extremes() {
        for p in [0.0, 1.0] {
            let t = convergence_tolerance(p, 1_000_000, 0);
            assert!(t > 0.0);
            assert!(t >= Z * (INFLATION / 1_000_000.0 / 1_000_000.0).sqrt());
        }
    }

    #[test]
    fn bias_term_matters_for_small_n() {
        let with_states = convergence_tolerance(0.5, 1000, 512);
        let without = convergence_tolerance(0.5, 1000, 0);
        assert!((with_states - without - 0.512).abs() < 1e-12);
    }
}
