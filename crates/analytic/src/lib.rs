//! # analytic — closed-form miss-rate models (the analytical oracle)
//!
//! The simulator and the symbolic differential oracle (PR 2) are two
//! *implementations* that could share a bug. This crate is a third,
//! independent check built from mathematics instead of simulation:
//! closed-form **expected miss rates** under the independent reference
//! model (IRM), following the analytical cache-utilization treatment of
//! Majumdar & Radhakrishnan (cond-mat/0001090) and the birthday-paradox
//! collision analysis of Eijkhout et al. (1909.12195).
//!
//! The pieces:
//!
//! * [`dist::BlockDist`] — a normalized IRM distribution over block
//!   addresses, produced by `trace-gen`'s distribution introspection;
//! * [`model`] — a unified *groups / classes / capacity* framework whose
//!   exact steady-state hit rate is computed with King's LRU stack
//!   formula; builders cover direct-mapped, set-associative and B-Cache
//!   geometries;
//! * [`birthday`] — expected set-collision counts for random and
//!   adversarial block placements;
//! * [`tolerance`] — the statistically justified tolerance band used by
//!   the convergence property tests and the `bcache oracle` subcommand.
//!
//! ## Quick start
//!
//! ```
//! use analytic::{conventional_model, BlockDist};
//! use cache_sim::CacheGeometry;
//!
//! // Two blocks competing for one direct-mapped set: the classic
//! // ping-pong. Expected hit rate = sum of squared probabilities = 1/2.
//! let geom = CacheGeometry::new(16 * 1024, 32, 1)?;
//! let dist = BlockDist::uniform([0x1000_0000, 0x1000_0000 + (1 << 19)])?;
//! let model = conventional_model(&geom, &dist);
//! let miss = model.expected_miss_rate()?;
//! assert!((miss - 0.5).abs() < 1e-12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod birthday;
pub mod dist;
pub mod model;
pub mod tolerance;

pub use dist::BlockDist;
pub use model::{bcache_model, conventional_model, AnalyticError, ModelSpec};
pub use tolerance::convergence_tolerance;
