//! The unified IRM expected-miss-rate model.
//!
//! Under the independent reference model every cache in this workspace
//! reduces to the same three-level structure:
//!
//! * **groups** — address partitions that never share storage: the set of
//!   a conventional cache, the NPI group of a B-Cache. An access falls in
//!   group `g` with probability `w_g`.
//! * **classes** — within a group, the addresses that compete for *one*
//!   resident block: a single block in a conventional cache, a PI
//!   equivalence class in a B-Cache (the programmable decoder keeps one
//!   set per programmed PI value, and a PD-hit/tag-miss forces the
//!   victim inside the matching class).
//! * **capacity** — how many classes a group keeps resident at once: the
//!   associativity of a conventional cache, `BAS` for a B-Cache. The
//!   resident classes are managed by LRU — in the B-Cache every
//!   reference promotes its PI class (`on_access` on hits, `on_fill` on
//!   both miss paths), so group dynamics are exactly LRU over classes.
//!
//! The steady-state hit rate is then exact, not approximate. Two
//! independent factors multiply:
//!
//! 1. *Is the class resident?* The LRU stack over classes under IRM has
//!    the stationary distribution derived by King (1971): the
//!    probability that the top `A` stack positions hold exactly the
//!    class set `T` is computed by the recursion
//!    `f(∅) = 1`, `f(T) = Σ_{i∈T} f(T∖{i}) · w_i / (1 − W(T∖{i}))`
//!    where `W(S)` is the total weight of `S`.
//! 2. *Does the access hit the class's resident block?* The resident
//!    block of a class is the block of its most recent reference — an
//!    i.i.d. within-class draw independent of the class sequence — so
//!    `P(hit | class j resident) = W_j · h_j` with
//!    `h_j = Σ_{b∈j} (q_b / W_j)²`.
//!
//! Hence `P(hit) = Σ_g w_g Σ_{|T|=A} f(T) Σ_{j∈T} W_j h_j`, with the
//! trivial fast path `Σ_j W_j h_j` when every class fits (`m ≤ A`).
//! Direct-mapped caches are the capacity-1 special case, which collapses
//! to the familiar `Σ_b q_b²` sum of squares. A second fast path covers
//! *symmetric* groups: when all `m` class weights are equal, `f` is
//! exchangeable, every class is resident with probability `A/m`, and the
//! group hit rate is `(A/m) · Σ_j W_j h_j` — no subset recursion needed.
//! This keeps uniform working sets (thousands of equally hot blocks per
//! group) exact and cheap where the general recursion would blow the
//! work cap.
//!
//! The subset recursion is exponential in the class count; builders
//! return [`AnalyticError::Intractable`] instead of hanging when a group
//! would exceed the work cap.

use std::collections::BTreeMap;
use std::fmt;

use bcache_core::{BCacheParams, PdHitPolicy};
use cache_sim::{Addr, CacheGeometry, PolicyKind};

use crate::dist::BlockDist;

/// Errors produced while building or evaluating an analytic model.
#[derive(Clone, Debug, PartialEq)]
pub enum AnalyticError {
    /// The distribution has no entry with positive probability.
    EmptyDistribution,
    /// A probability was negative, NaN or infinite.
    BadProbability {
        /// Position of the offending entry in construction order.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The closed form only covers LRU replacement.
    UnsupportedPolicy {
        /// The policy that was requested.
        policy: PolicyKind,
    },
    /// A configuration knob outside the closed form (ablations).
    UnsupportedConfig {
        /// Which knob.
        what: &'static str,
    },
    /// The subset recursion for a group would exceed the work cap.
    Intractable {
        /// Distinct classes in the offending group.
        classes: usize,
        /// Resident capacity of the group.
        capacity: usize,
        /// Estimated elementary operations.
        ops: u128,
    },
}

impl fmt::Display for AnalyticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyticError::EmptyDistribution => {
                write!(f, "distribution has no positive-probability entry")
            }
            AnalyticError::BadProbability { index, value } => {
                write!(f, "entry {index} has invalid probability {value}")
            }
            AnalyticError::UnsupportedPolicy { policy } => {
                write!(f, "analytic model requires LRU replacement, got {policy}")
            }
            AnalyticError::UnsupportedConfig { what } => {
                write!(f, "analytic model does not cover {what}")
            }
            AnalyticError::Intractable {
                classes,
                capacity,
                ops,
            } => write!(
                f,
                "group with {classes} classes at capacity {capacity} needs ~{ops} ops (over the cap)"
            ),
        }
    }
}

impl std::error::Error for AnalyticError {}

/// One resident-block competition class within a group.
#[derive(Clone, Debug)]
struct ClassSpec {
    /// `W_j`: probability of the class, conditional on its group.
    weight: f64,
    /// `h_j = Σ_b (q_b/W_j)²`: hit probability given the class is
    /// resident.
    self_hit: f64,
}

/// One storage-independent group of classes.
#[derive(Clone, Debug)]
struct GroupSpec {
    /// `w_g`: absolute probability of the group.
    weight: f64,
    /// Classes kept resident at once (LRU over classes).
    capacity: usize,
    classes: Vec<ClassSpec>,
}

/// A cache reduced to its analytic structure (see the module docs).
#[derive(Clone, Debug)]
pub struct ModelSpec {
    groups: Vec<GroupSpec>,
}

/// Work cap for the King-formula subset recursion, in elementary
/// operations summed over all groups of one evaluation.
const MAX_DP_OPS: u128 = 50_000_000;

impl ModelSpec {
    /// The exact steady-state expected hit rate under IRM.
    ///
    /// # Errors
    ///
    /// [`AnalyticError::Intractable`] when a group's subset recursion
    /// would exceed the work cap.
    pub fn expected_hit_rate(&self) -> Result<f64, AnalyticError> {
        let mut budget = MAX_DP_OPS;
        let mut hit = 0.0;
        for g in &self.groups {
            hit += g.weight * group_hit(g, &mut budget)?;
        }
        // The exact value is a probability; summation rounding can push
        // the float a few ulps outside [0, 1].
        Ok(hit.clamp(0.0, 1.0))
    }

    /// The exact steady-state expected miss rate (`1 − hit`).
    ///
    /// # Errors
    ///
    /// See [`ModelSpec::expected_hit_rate`].
    pub fn expected_miss_rate(&self) -> Result<f64, AnalyticError> {
        Ok(1.0 - self.expected_hit_rate()?)
    }

    /// Total number of resident blocks the distribution can occupy:
    /// `Σ_g min(capacity, classes)`. The convergence tolerance uses this
    /// as its mixing-scale term.
    pub fn resident_states(&self) -> u64 {
        self.groups
            .iter()
            .map(|g| g.capacity.min(g.classes.len()) as u64)
            .sum()
    }

    /// Number of groups the distribution touches.
    pub fn groups(&self) -> usize {
        self.groups.len()
    }

    /// Total number of competition classes across all groups.
    pub fn classes(&self) -> usize {
        self.groups.iter().map(|g| g.classes.len()).sum()
    }
}

/// `P(hit | access in this group)` via King's stationary LRU stack
/// distribution. `budget` is decremented by the work performed.
fn group_hit(g: &GroupSpec, budget: &mut u128) -> Result<f64, AnalyticError> {
    let m = g.classes.len();
    let wh: Vec<f64> = g.classes.iter().map(|c| c.weight * c.self_hit).collect();
    if g.capacity >= m {
        // Every class stays resident: no stack analysis needed.
        return Ok(wh.iter().sum());
    }
    let a = g.capacity;
    // Symmetric groups: equal class weights make King's distribution
    // exchangeable, so each class is resident with probability a/m.
    let w_max = g.classes.iter().map(|c| c.weight).fold(0.0, f64::max);
    let w_min = g.classes.iter().map(|c| c.weight).fold(f64::MAX, f64::min);
    if w_max - w_min <= 1e-12 * w_max {
        return Ok(a as f64 / m as f64 * wh.iter().sum::<f64>());
    }
    let intractable = |ops| AnalyticError::Intractable {
        classes: m,
        capacity: a,
        ops,
    };
    if m > 64 {
        return Err(intractable(u128::MAX));
    }
    // Work estimate: every subset of size < a expands into up to m
    // successors.
    let mut subsets: u128 = 0;
    let mut choose: u128 = 1;
    for k in 0..a {
        subsets += choose;
        choose = choose * (m - k) as u128 / (k as u128 + 1);
    }
    let ops = subsets.saturating_mul(m as u128);
    if ops > *budget {
        return Err(intractable(ops));
    }
    *budget -= ops;

    let w: Vec<f64> = g.classes.iter().map(|c| c.weight).collect();
    // Layered DP over class subsets: layer k holds f(T) and W(T) for all
    // |T| = k. BTreeMap keeps iteration (and FP summation) order
    // deterministic.
    let mut layer: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
    layer.insert(0, (1.0, 0.0));
    for _ in 0..a {
        let mut next: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
        for (&mask, &(f, wsum)) in &layer {
            let denom = (1.0 - wsum).max(f64::MIN_POSITIVE);
            for (i, &wi) in w.iter().enumerate() {
                let bit = 1u64 << i;
                if mask & bit != 0 {
                    continue;
                }
                let entry = next.entry(mask | bit).or_insert((0.0, wsum + wi));
                entry.0 += f * wi / denom;
            }
        }
        layer = next;
    }
    let mut hit = 0.0;
    for (&mask, &(f, _)) in &layer {
        let mut resident_hit = 0.0;
        let mut bits = mask;
        while bits != 0 {
            resident_hit += wh[bits.trailing_zeros() as usize];
            bits &= bits - 1;
        }
        hit += f * resident_hit;
    }
    Ok(hit)
}

/// Builds the analytic model of a conventional cache (direct-mapped when
/// `geom.assoc() == 1`, set-associative otherwise) with LRU replacement.
///
/// Groups are sets, every block is its own class (`h_j = 1`), capacity
/// is the associativity.
pub fn conventional_model(geom: &CacheGeometry, dist: &BlockDist) -> ModelSpec {
    let mut groups: BTreeMap<usize, BTreeMap<u64, f64>> = BTreeMap::new();
    for &(addr, p) in dist.entries() {
        let a = Addr::new(addr);
        *groups
            .entry(geom.set_index(a))
            .or_default()
            .entry(geom.block_base(a).raw())
            .or_insert(0.0) += p;
    }
    ModelSpec {
        groups: groups
            .into_values()
            .map(|blocks| {
                let weight: f64 = blocks.values().sum();
                GroupSpec {
                    weight,
                    capacity: geom.assoc(),
                    classes: blocks
                        .into_values()
                        .map(|q| ClassSpec {
                            weight: q / weight,
                            self_hit: 1.0,
                        })
                        .collect(),
                }
            })
            .collect(),
    }
}

/// Builds the analytic model of a B-Cache.
///
/// Groups are NPI groups, classes are PI values (each owning one set
/// while programmed), capacity is `BAS`. Exact for the paper's design:
/// LRU replacement with the forced-victim PD-hit policy.
///
/// # Errors
///
/// [`AnalyticError::UnsupportedPolicy`] for non-LRU replacement and
/// [`AnalyticError::UnsupportedConfig`] for the `EvictBoth` ablation,
/// both of which fall outside the closed form.
pub fn bcache_model(params: &BCacheParams, dist: &BlockDist) -> Result<ModelSpec, AnalyticError> {
    if params.policy() != PolicyKind::Lru {
        return Err(AnalyticError::UnsupportedPolicy {
            policy: params.policy(),
        });
    }
    if params.pd_hit_policy() != PdHitPolicy::ForcedVictim {
        return Err(AnalyticError::UnsupportedConfig {
            what: "PdHitPolicy::EvictBoth",
        });
    }
    let layout = params.layout();
    let geom = params.geometry();
    let mut groups: BTreeMap<usize, BTreeMap<u64, BTreeMap<u64, f64>>> = BTreeMap::new();
    for &(addr, p) in dist.entries() {
        let a = Addr::new(addr);
        *groups
            .entry(layout.npi(a))
            .or_default()
            .entry(layout.pi(a))
            .or_default()
            .entry(geom.block_base(a).raw())
            .or_insert(0.0) += p;
    }
    Ok(ModelSpec {
        groups: groups
            .into_values()
            .map(|classes| {
                let weight: f64 = classes.values().flat_map(|b| b.values()).sum();
                GroupSpec {
                    weight,
                    capacity: params.bas(),
                    classes: classes
                        .into_values()
                        .map(|blocks| {
                            let class_weight: f64 = blocks.values().sum();
                            let self_hit: f64 = blocks
                                .values()
                                .map(|q| (q / class_weight) * (q / class_weight))
                                .sum();
                            ClassSpec {
                                weight: class_weight / weight,
                                self_hit,
                            }
                        })
                        .collect(),
                }
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> CacheGeometry {
        CacheGeometry::new(16 * 1024, 32, 1).unwrap()
    }

    /// Blocks spaced far enough apart to share every index/PI field of
    /// the 16 kB geometries (2^19 ≥ all index+PI spans).
    fn aligned(k: u64) -> Vec<u64> {
        (0..k).map(|i| 0x1000_0000 + i * (1 << 19)).collect()
    }

    #[test]
    fn direct_mapped_is_sum_of_squares() {
        // Three blocks in one set with weights 1/2, 1/3, 1/6.
        let dist = BlockDist::new(
            aligned(3)
                .into_iter()
                .zip([3.0, 2.0, 1.0])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let model = conventional_model(&baseline(), &dist);
        let expect: f64 = [0.5f64, 1.0 / 3.0, 1.0 / 6.0].iter().map(|p| p * p).sum();
        assert!((model.expected_hit_rate().unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn uniform_group_hits_capacity_over_blocks() {
        // m uniform blocks in one set of an A-way cache: hit = min(A,m)/m.
        for (assoc, m) in [(2usize, 8u64), (4, 8), (4, 3), (8, 8), (8, 20)] {
            let geom = baseline().with_assoc(assoc).unwrap();
            let dist = BlockDist::uniform(aligned(m)).unwrap();
            let model = conventional_model(&geom, &dist);
            let expect = (assoc as f64).min(m as f64) / m as f64;
            let got = model.expected_hit_rate().unwrap();
            assert!(
                (got - expect).abs() < 1e-9,
                "assoc {assoc} m {m}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn king_recursion_matches_hand_computation() {
        // Three classes (.5, .3, .2) at capacity 2, h = 1:
        //   f({1,2}) = .3 + .3·.5/.7, f({1,3}) = .2 + .2·.5/.8,
        //   f({2,3}) = .06/.7 + .06/.8; hit = Σ f(T)·W(T).
        let f12: f64 = 0.3 + 0.3 * 0.5 / 0.7;
        let f13 = 0.2 + 0.2 * 0.5 / 0.8;
        let f23 = 0.06 / 0.7 + 0.06 / 0.8;
        let expect = f12 * 0.8 + f13 * 0.7 + f23 * 0.5;
        assert!((f12 + f13 + f23 - 1.0).abs() < 1e-12, "f must be a pmf");

        let geom = baseline().with_assoc(2).unwrap();
        let dist = BlockDist::new(
            aligned(3)
                .into_iter()
                .zip([5.0, 3.0, 2.0])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let model = conventional_model(&geom, &dist);
        assert!((model.expected_hit_rate().unwrap() - expect).abs() < 1e-12);
    }

    #[test]
    fn everything_resident_hits_always() {
        let geom = baseline().with_assoc(8).unwrap();
        let dist = BlockDist::uniform(aligned(5)).unwrap();
        let model = conventional_model(&geom, &dist);
        assert!((model.expected_hit_rate().unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(model.resident_states(), 5);
    }

    #[test]
    fn bcache_single_pi_class_behaves_direct_mapped() {
        // The aligned birthday adversary: K blocks sharing NPI and PI.
        // The PD keeps one set for the whole class, so hit = 1/K even
        // though BAS = 8.
        let params = BCacheParams::paper_default(baseline()).unwrap();
        for k in [2u64, 8, 32] {
            let dist = BlockDist::uniform(aligned(k)).unwrap();
            let model = bcache_model(&params, &dist).unwrap();
            assert_eq!(model.classes(), 1, "k={k}");
            let got = model.expected_hit_rate().unwrap();
            assert!((got - 1.0 / k as f64).abs() < 1e-12, "k={k}: {got}");
        }
    }

    #[test]
    fn bcache_mf1_bas1_equals_direct_mapped_model() {
        let params = BCacheParams::new(baseline(), 1, 1, PolicyKind::Lru).unwrap();
        // A mixed-weight distribution across several sets and tags.
        let addrs: Vec<(u64, f64)> = (0..40u64)
            .map(|i| (0x1000_0000 + i * 0x1843 * 32, (i % 7 + 1) as f64))
            .collect();
        let dist = BlockDist::new(addrs).unwrap();
        let bc = bcache_model(&params, &dist).unwrap();
        let dm = conventional_model(&baseline(), &dist);
        let a = bc.expected_hit_rate().unwrap();
        let b = dm.expected_hit_rate().unwrap();
        assert!((a - b).abs() < 1e-12, "bcache {a} vs dm {b}");
    }

    #[test]
    fn bcache_distinct_pis_within_bas_all_hit() {
        // ≤ BAS singleton classes per group: the PD absorbs them all.
        let params = BCacheParams::paper_default(baseline()).unwrap();
        // Distinct PI values: step by 2^11 (the PI field starts at bit 11
        // for the 16 kB MF=8/BAS=8 design), staying within one NPI group.
        let addrs: Vec<u64> = (0..8u64).map(|i| 0x1000_0000 + (i << 11)).collect();
        let dist = BlockDist::uniform(addrs).unwrap();
        let model = bcache_model(&params, &dist).unwrap();
        assert!((model.expected_hit_rate().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_non_lru_and_ablations() {
        let dist = BlockDist::uniform(aligned(4)).unwrap();
        let random = BCacheParams::new(baseline(), 8, 8, PolicyKind::Random).unwrap();
        assert!(matches!(
            bcache_model(&random, &dist),
            Err(AnalyticError::UnsupportedPolicy { .. })
        ));
        let ablated = BCacheParams::paper_default(baseline())
            .unwrap()
            .with_pd_hit_policy(PdHitPolicy::EvictBoth);
        assert!(matches!(
            bcache_model(&ablated, &dist),
            Err(AnalyticError::UnsupportedConfig { .. })
        ));
    }

    #[test]
    fn intractable_groups_error_instead_of_hanging() {
        // 60 *unequally weighted* classes at capacity 8 in one set:
        // C(60,8)·60 ops ≫ cap (equal weights would take the symmetric
        // fast path instead).
        let geom = baseline().with_assoc(8).unwrap();
        let dist = BlockDist::new(
            aligned(60)
                .into_iter()
                .enumerate()
                .map(|(i, a)| (a, (i + 1) as f64))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let model = conventional_model(&geom, &dist);
        assert!(matches!(
            model.expected_miss_rate(),
            Err(AnalyticError::Intractable {
                classes: 60,
                capacity: 8,
                ..
            })
        ));
    }

    #[test]
    fn symmetric_fast_path_agrees_with_the_recursion() {
        // Equal weights take the a/m fast path; nudging one weight by
        // 1e-9 forces the subset DP. The two must agree to ~1e-6.
        let geom = baseline().with_assoc(4).unwrap();
        let addrs = aligned(8);
        let equal = BlockDist::uniform(addrs.clone()).unwrap();
        let symmetric = conventional_model(&geom, &equal)
            .expected_hit_rate()
            .unwrap();
        assert!((symmetric - 0.5).abs() < 1e-12, "a/m = 4/8");
        let mut weights = vec![1.0; 8];
        weights[3] += 1e-9;
        let nudged = BlockDist::new(addrs.into_iter().zip(weights).collect::<Vec<_>>()).unwrap();
        let via_dp = conventional_model(&geom, &nudged)
            .expected_hit_rate()
            .unwrap();
        assert!(
            (via_dp - symmetric).abs() < 1e-6,
            "dp {via_dp} vs symmetric {symmetric}"
        );
    }

    #[test]
    fn errors_display() {
        for e in [
            AnalyticError::EmptyDistribution,
            AnalyticError::BadProbability {
                index: 3,
                value: -0.5,
            },
            AnalyticError::UnsupportedPolicy {
                policy: PolicyKind::Random,
            },
            AnalyticError::UnsupportedConfig { what: "x" },
            AnalyticError::Intractable {
                classes: 40,
                capacity: 8,
                ops: 1 << 40,
            },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
