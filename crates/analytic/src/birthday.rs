//! Birthday-paradox collision analysis for set mappings.
//!
//! Placing `K` blocks into `S` sets is the birthday problem: collisions
//! (two blocks sharing a set) appear long before `K` reaches `S`. These
//! closed forms quantify both the *random* placement a hash-like index
//! achieves and the *adversarial* placement the `birthday` trace family
//! constructs, where every block is engineered into the same set — and,
//! for the B-Cache, into the same PI class, defeating the programmable
//! decoder's remapping entirely.

/// Expected number of distinct sets occupied when `blocks` blocks are
/// placed independently and uniformly at random into `sets` sets:
/// `S · (1 − (1 − 1/S)^K)`.
///
/// # Panics
///
/// Panics if `sets` is zero.
pub fn expected_occupied_sets(sets: u64, blocks: u64) -> f64 {
    assert!(sets > 0, "need at least one set");
    let s = sets as f64;
    s * (1.0 - (1.0 - 1.0 / s).powi(blocks.min(i32::MAX as u64) as i32))
}

/// Expected number of blocks that land in an already-occupied set under
/// uniform random placement: `K − E[occupied sets]`. Each such block is
/// a conflict the mapping failed to spread.
///
/// # Panics
///
/// Panics if `sets` is zero.
pub fn expected_colliding_blocks(sets: u64, blocks: u64) -> f64 {
    blocks as f64 - expected_occupied_sets(sets, blocks)
}

/// Probability that `blocks` uniformly random placements into `sets`
/// sets are all distinct: `Π_{i<K} (1 − i/S)` (zero when `K > S`).
///
/// # Panics
///
/// Panics if `sets` is zero.
pub fn collision_free_probability(sets: u64, blocks: u64) -> f64 {
    assert!(sets > 0, "need at least one set");
    if blocks > sets {
        return 0.0;
    }
    let s = sets as f64;
    (0..blocks).map(|i| 1.0 - i as f64 / s).product()
}

/// Steady-state miss rate of the *aligned* birthday adversary — `k`
/// equally hot blocks engineered into one competition class chain — on a
/// cache that keeps `capacity` of them resident: `1 − min(capacity,k)/k`.
///
/// For a direct-mapped cache and for the B-Cache (where all `k` blocks
/// share one PI class and the PD therefore keeps a single set for them)
/// the effective capacity is 1; an `A`-way set-associative cache keeps
/// `A`.
///
/// # Panics
///
/// Panics if `k` is zero.
pub fn aligned_adversary_miss_rate(capacity: u64, k: u64) -> f64 {
    assert!(k > 0, "need at least one block");
    1.0 - capacity.min(k) as f64 / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_block_occupies_one_set() {
        assert!((expected_occupied_sets(512, 1) - 1.0).abs() < 1e-12);
        assert_eq!(expected_occupied_sets(512, 0), 0.0);
    }

    #[test]
    fn occupancy_is_monotone_and_bounded() {
        let mut prev = 0.0;
        for k in 1..2000 {
            let e = expected_occupied_sets(512, k);
            assert!(e > prev, "k={k}");
            assert!(e < 512.0);
            prev = e;
        }
        // Asymptotically all sets fill.
        assert!(expected_occupied_sets(512, 100_000) > 511.9);
    }

    #[test]
    fn colliding_blocks_complement_occupancy() {
        for k in [0u64, 1, 10, 512, 5000] {
            let c = expected_colliding_blocks(512, k);
            assert!((c - (k as f64 - expected_occupied_sets(512, k))).abs() < 1e-9);
            assert!(c >= -1e-12);
        }
    }

    #[test]
    fn classic_birthday_crossover() {
        // 23 people, 365 days: P(all distinct) ≈ 0.4927 < 1/2.
        let p = collision_free_probability(365, 23);
        assert!(p < 0.5 && p > 0.49, "{p}");
        assert!(collision_free_probability(365, 22) > 0.5);
        assert_eq!(collision_free_probability(10, 11), 0.0);
        assert_eq!(collision_free_probability(10, 0), 1.0);
    }

    #[test]
    fn adversary_rates() {
        assert_eq!(aligned_adversary_miss_rate(1, 64), 1.0 - 1.0 / 64.0);
        assert_eq!(aligned_adversary_miss_rate(4, 64), 1.0 - 4.0 / 64.0);
        assert_eq!(aligned_adversary_miss_rate(8, 4), 0.0);
    }
}
