//! Block-probability distributions: the IRM input to the analytic models.
//!
//! A [`BlockDist`] says "each data access independently lands on block
//! `b` with probability `q_b`" — the *independent reference model*. The
//! trace generator's `Hot`-stream mixtures satisfy it exactly (every
//! data access draws a stream by weight, then a uniform word within the
//! stream), which is what makes the closed-form predictions of
//! [`crate::model`] exact rather than approximate.

use std::collections::BTreeMap;

use crate::model::AnalyticError;

/// A normalized probability distribution over block addresses.
///
/// Construction validates and normalizes: probabilities must be finite
/// and non-negative, exact zeros are dropped (they cannot affect any
/// expectation), duplicate addresses are merged, and the result is
/// scaled to sum to one. Entries are kept sorted by address so every
/// downstream computation is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub struct BlockDist {
    blocks: Vec<(u64, f64)>,
}

impl BlockDist {
    /// Builds a distribution from `(address, weight)` pairs.
    ///
    /// Weights need not sum to one; they are normalized. Addresses are
    /// taken as-is — the model builders round them down to block bases
    /// under the geometry they model.
    ///
    /// # Errors
    ///
    /// [`AnalyticError::BadProbability`] if a weight is negative, NaN or
    /// infinite; [`AnalyticError::EmptyDistribution`] if no entry has
    /// positive weight.
    pub fn new(entries: impl IntoIterator<Item = (u64, f64)>) -> Result<Self, AnalyticError> {
        let mut agg: BTreeMap<u64, f64> = BTreeMap::new();
        for (index, (addr, weight)) in entries.into_iter().enumerate() {
            if !weight.is_finite() || weight < 0.0 {
                return Err(AnalyticError::BadProbability {
                    index,
                    value: weight,
                });
            }
            if weight > 0.0 {
                *agg.entry(addr).or_insert(0.0) += weight;
            }
        }
        let total: f64 = agg.values().sum();
        if agg.is_empty() || total <= 0.0 {
            return Err(AnalyticError::EmptyDistribution);
        }
        Ok(BlockDist {
            blocks: agg.into_iter().map(|(a, w)| (a, w / total)).collect(),
        })
    }

    /// A uniform distribution over the given addresses.
    ///
    /// # Errors
    ///
    /// [`AnalyticError::EmptyDistribution`] if `addrs` is empty.
    pub fn uniform(addrs: impl IntoIterator<Item = u64>) -> Result<Self, AnalyticError> {
        Self::new(addrs.into_iter().map(|a| (a, 1.0)))
    }

    /// The normalized `(address, probability)` entries, sorted by
    /// address.
    pub fn entries(&self) -> &[(u64, f64)] {
        &self.blocks
    }

    /// Number of distinct addresses.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Always false: construction rejects empty distributions.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_and_merges_duplicates() {
        let d = BlockDist::new([(0x40, 1.0), (0x80, 2.0), (0x40, 1.0)]).unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.entries()[0], (0x40, 0.5));
        assert_eq!(d.entries()[1], (0x80, 0.5));
        let total: f64 = d.entries().iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn drops_exact_zeros() {
        let d = BlockDist::new([(0x40, 0.0), (0x80, 3.0)]).unwrap();
        assert_eq!(d.entries(), &[(0x80, 1.0)]);
    }

    #[test]
    fn rejects_bad_probabilities() {
        assert!(matches!(
            BlockDist::new([(0x40, -1.0)]),
            Err(AnalyticError::BadProbability { index: 0, .. })
        ));
        assert!(matches!(
            BlockDist::new([(0x40, 1.0), (0x80, f64::NAN)]),
            Err(AnalyticError::BadProbability { index: 1, .. })
        ));
        assert!(matches!(
            BlockDist::new([(0x40, f64::INFINITY)]),
            Err(AnalyticError::BadProbability { .. })
        ));
    }

    #[test]
    fn rejects_empty_or_all_zero() {
        assert!(matches!(
            BlockDist::new([]),
            Err(AnalyticError::EmptyDistribution)
        ));
        assert!(matches!(
            BlockDist::new([(0x40, 0.0)]),
            Err(AnalyticError::EmptyDistribution)
        ));
    }

    #[test]
    fn uniform_splits_evenly() {
        let d = BlockDist::uniform([1, 2, 3, 4]).unwrap();
        for &(_, p) in d.entries() {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }
}
