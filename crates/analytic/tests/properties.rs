//! Property-based tests for the analytic model invariants.

use analytic::{bcache_model, conventional_model, convergence_tolerance, BlockDist};
use bcache_core::BCacheParams;
use cache_sim::{CacheGeometry, PolicyKind};
use proptest::prelude::*;

/// Weighted block addresses spread over sets and tags of the 16 kB
/// baseline, compact enough that every group stays tractable.
fn dist_strategy() -> impl Strategy<Value = Vec<(u64, f64)>> {
    prop::collection::vec((0u64..4096, 1u32..100), 1..48).prop_map(|entries| {
        entries
            .into_iter()
            .map(|(block, w)| (0x1000_0000 + block * 7919 * 32, w as f64))
            .collect()
    })
}

proptest! {
    /// Every analytic rate is a probability, and the degenerate
    /// MF=1/BAS=1 B-Cache agrees exactly with the direct-mapped model.
    #[test]
    fn rates_are_probabilities_and_degenerate_bcache_matches_dm(entries in dist_strategy()) {
        let geom = CacheGeometry::new(16 * 1024, 32, 1).unwrap();
        let dist = BlockDist::new(entries).unwrap();
        let dm = conventional_model(&geom, &dist).expected_miss_rate().unwrap();
        prop_assert!((0.0..=1.0).contains(&dm));

        let degenerate = BCacheParams::new(geom, 1, 1, PolicyKind::Lru).unwrap();
        let bc = bcache_model(&degenerate, &dist).unwrap().expected_miss_rate().unwrap();
        prop_assert!((bc - dm).abs() < 1e-9, "bcache {bc} vs dm {dm}");
    }

    /// With the set mapping held fixed (same set count, growing ways),
    /// more capacity never analytically hurts — the LRU inclusion
    /// property — and a capacity holding the whole distribution hits
    /// always.
    #[test]
    fn capacity_is_monotone_at_fixed_set_count(entries in dist_strategy()) {
        let dist = BlockDist::new(entries).unwrap();
        let mut prev = 1.0f64;
        // 512 sets throughout: 16 kB 1-way, 32 kB 2-way, 64 kB 4-way.
        for assoc in [1usize, 2, 4] {
            let geom = CacheGeometry::new(assoc * 16 * 1024, 32, assoc).unwrap();
            let miss = conventional_model(&geom, &dist).expected_miss_rate().unwrap();
            prop_assert!(miss <= prev + 1e-9, "assoc {assoc}: {miss} > {prev}");
            prev = miss;
        }
        // Fully associative with ≥ 48 ways: every distinct block fits.
        let fa = CacheGeometry::new(16 * 1024, 32, 512).unwrap();
        let miss = conventional_model(&fa, &dist).expected_miss_rate().unwrap();
        prop_assert!(miss.abs() < 1e-12);
    }

    /// The paper-default B-Cache never predicts a higher miss rate than
    /// the direct-mapped cache on the same distribution — the paper's
    /// central claim, here as an analytic theorem over random inputs.
    #[test]
    fn bcache_never_worse_than_direct_mapped(entries in dist_strategy()) {
        let geom = CacheGeometry::new(16 * 1024, 32, 1).unwrap();
        let dist = BlockDist::new(entries).unwrap();
        let dm = conventional_model(&geom, &dist).expected_miss_rate().unwrap();
        let params = BCacheParams::paper_default(geom).unwrap();
        let bc = bcache_model(&params, &dist).unwrap().expected_miss_rate().unwrap();
        prop_assert!(bc <= dm + 1e-9, "bcache {bc} vs dm {dm}");
    }

    /// The tolerance band is positive and decreasing in n.
    #[test]
    fn tolerance_is_positive_and_decreasing(p in 0.0f64..1.0, states in 0u64..4096) {
        let mut prev = f64::INFINITY;
        for n in [1_000u64, 10_000, 100_000, 1_000_000] {
            let t = convergence_tolerance(p, n, states);
            prop_assert!(t > 0.0);
            prop_assert!(t < prev);
            prev = t;
        }
    }
}
