//! Packed per-line metadata: `tag << 2 | dirty << 1 | valid` in one
//! `u64`.
//!
//! The hot replay paths keep each line's tag, valid and dirty state in a
//! single `Vec<u64>` word instead of three parallel arrays, so a lookup
//! is one load and one compare. An empty (invalid) line is the all-zero
//! word, which makes `vec![0; lines]` a cold cache. The same layout is
//! shared by the direct-mapped and set-associative arrays here and by
//! the B-Cache in `bcache-core` (which stores a block id in the tag
//! field).

/// An empty (invalid, clean) line.
pub const EMPTY: u64 = 0;

/// Widest tag (or block id) the packed word can hold alongside the two
/// flag bits.
pub const MAX_TAG_BITS: u32 = 62;

/// Packs a just-filled valid line.
#[inline(always)]
pub const fn fill(tag: u64, dirty: bool) -> u64 {
    (tag << 2) | ((dirty as u64) << 1) | 1
}

/// Whether the line is valid.
#[inline(always)]
pub const fn is_valid(word: u64) -> bool {
    word & 1 != 0
}

/// Whether the line is dirty.
#[inline(always)]
pub const fn is_dirty(word: u64) -> bool {
    word & 2 != 0
}

/// The stored tag.
#[inline(always)]
pub const fn tag(word: u64) -> u64 {
    word >> 2
}

/// Whether the line is valid *and* holds `tag` — the one-compare hit
/// test (the dirty bit is masked out).
#[inline(always)]
pub const fn matches(word: u64, tag: u64) -> bool {
    word & MATCH_MASK == search_key(tag)
}

/// The AND-mask of the [`matches`] compare: everything but the dirty
/// bit. Paired with [`search_key`] it turns the hit test into the
/// generic `(word & mask) == key` form the SIMD lane compares consume.
pub const MATCH_MASK: u64 = !2;

/// The valid bit alone; `(word & VALID_MASK) == 0` is "invalid" in the
/// same generic compare form.
pub const VALID_MASK: u64 = 1;

/// The search key [`matches`] compares against: `tag` shifted into
/// place with the valid bit set.
#[inline(always)]
pub const fn search_key(tag: u64) -> u64 {
    (tag << 2) | 1
}

/// The line with its dirty bit set.
#[inline(always)]
pub const fn set_dirty(word: u64) -> u64 {
    word | 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_and_flag_tests() {
        let w = fill(0x3FF, false);
        assert!(is_valid(w) && !is_dirty(w));
        assert_eq!(tag(w), 0x3FF);
        assert!(matches(w, 0x3FF));
        assert!(!matches(w, 0x3FE));
        let d = set_dirty(w);
        assert!(is_dirty(d) && matches(d, 0x3FF), "dirty cannot unmatch");
        assert_eq!(tag(d), 0x3FF);
    }

    #[test]
    fn empty_never_matches() {
        assert!(!is_valid(EMPTY) && !is_dirty(EMPTY));
        assert!(!matches(EMPTY, 0), "even tag 0 needs the valid bit");
        let max = fill((1 << MAX_TAG_BITS) - 1, true);
        assert_eq!(tag(max), (1 << MAX_TAG_BITS) - 1);
    }
}
