//! The difference-bit cache (Juan, Lang & Navarro), a related-work
//! baseline from Section 7.2 of the paper.
//!
//! A 2-way set-associative cache with an access time close to a
//! direct-mapped cache: since the two tags of a set must differ in at
//! least one bit position, a special decoder remembers one such
//! *difference bit* per set and uses the address's value at that
//! position to select the way directly — no full-tag comparison on the
//! way-select path, hence one cycle. The paper's counterpoints: its
//! access path is still slower than the B-Cache's and a 2-way miss rate
//! is the ceiling.

use telemetry::{NullObserver, Observer};

use crate::addr::Addr;
use crate::geometry::{CacheGeometry, GeometryError};
use crate::model::{AccessKind, AccessResult, CacheModel};
use crate::replacement::{Lru, PolicyKind};
use crate::set_assoc::{step_one, SetAssociativeCache};
use crate::stats::{BatchTally, CacheStats, SetUsage};

/// A 2-way difference-bit cache.
///
/// Functionally (hits/misses) identical to a 2-way LRU cache; this model
/// additionally maintains the per-set difference-bit metadata and counts
/// how often a fill forces it to be recomputed — the bookkeeping the
/// special decoder performs in hardware.
///
/// [`CacheModel::access_batch`] fuses the decoder bookkeeping around the
/// shared set-associative step kernel and is bit-identical to the
/// per-access path, [`Observer`] events included.
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, CacheModel, DifferenceBitCache};
///
/// let mut c = DifferenceBitCache::new(16 * 1024, 32)?;
/// c.access(0x0u64.into(), AccessKind::Read);
/// assert!(c.access(0x4u64.into(), AccessKind::Read).hit);
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct DifferenceBitCache<O: Observer = NullObserver> {
    inner: SetAssociativeCache<O>,
    // Shadow of the stored tags per (set, way).
    tags: Vec<Option<u64>>,
    // The difference-bit position per set (valid when both ways full).
    diff_bit: Vec<Option<u32>>,
    diff_bit_updates: u64,
}

impl DifferenceBitCache {
    /// Creates a 2-way difference-bit cache.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn new(size_bytes: usize, line_bytes: usize) -> Result<Self, GeometryError> {
        Self::with_observer(size_bytes, line_bytes, NullObserver)
    }
}

impl<O: Observer> DifferenceBitCache<O> {
    /// Like [`DifferenceBitCache::new`], with an observer wired into
    /// both access paths.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn with_observer(
        size_bytes: usize,
        line_bytes: usize,
        observer: O,
    ) -> Result<Self, GeometryError> {
        let inner = SetAssociativeCache::with_observer(
            size_bytes,
            line_bytes,
            2,
            PolicyKind::Lru,
            0,
            observer,
        )?;
        let sets = inner.geometry().sets();
        Ok(DifferenceBitCache {
            inner,
            tags: vec![None; sets * 2],
            diff_bit: vec![None; sets],
            diff_bit_updates: 0,
        })
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        self.inner.observer()
    }

    /// Mutable access to the attached observer.
    pub fn observer_mut(&mut self) -> &mut O {
        self.inner.observer_mut()
    }

    /// How many fills recomputed a set's difference bit.
    pub fn diff_bit_updates(&self) -> u64 {
        self.diff_bit_updates
    }

    /// The way the difference-bit decoder would select for `addr`, when
    /// the set is full (`None` during warm-up).
    pub fn selected_way(&self, addr: Addr) -> Option<usize> {
        let geom = self.inner.geometry();
        let set = geom.set_index(addr);
        let bit = self.diff_bit[set]?;
        let tag0 = self.tags[set * 2]?;
        let addr_bit = (geom.tag(addr) >> bit) & 1;
        // Way 0 is the way whose tag bit equals... select the way whose
        // stored tag matches the address at the difference position.
        Some(if (tag0 >> bit) & 1 == addr_bit { 0 } else { 1 })
    }

    fn recompute_diff_bit(&mut self, set: usize) {
        let (a, b) = (self.tags[set * 2], self.tags[set * 2 + 1]);
        self.diff_bit[set] = match (a, b) {
            (Some(x), Some(y)) => {
                debug_assert_ne!(x, y, "two ways of a set can never hold equal tags");
                Some((x ^ y).trailing_zeros())
            }
            _ => None,
        };
        self.diff_bit_updates += 1;
    }
}

impl<O: Observer> CacheModel for DifferenceBitCache<O> {
    fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        let geom = self.inner.geometry();
        let set = geom.set_index(addr);
        let tag = geom.tag(addr);

        // Check the decoder's invariant before mutating: if the block is
        // resident and the set is full, the difference bit must select
        // the way that holds it.
        if let Some(way) = self.selected_way(addr) {
            let selected_tag = self.tags[set * 2 + way];
            let other_tag = self.tags[set * 2 + (1 - way)];
            debug_assert!(
                other_tag != Some(tag) || selected_tag == Some(tag),
                "difference bit must never route a hit to the wrong way"
            );
        }

        let result = self.inner.access(addr, kind);
        if !result.hit {
            if let Some(ev) = result.evicted {
                let ev_tag = geom.tag(ev.block);
                for slot in self.tags[set * 2..set * 2 + 2].iter_mut() {
                    if *slot == Some(ev_tag) {
                        *slot = None;
                    }
                }
            }
            let empty = (0..2)
                .find(|w| self.tags[set * 2 + w].is_none())
                .expect("eviction freed a way");
            self.tags[set * 2 + empty] = Some(tag);
            self.recompute_diff_bit(set);
        }
        result
    }

    fn access_batch(&mut self, accesses: &[(Addr, AccessKind)]) {
        // Fused kernel: decoder invariant + shared step + tag-shadow and
        // difference-bit maintenance. Bit-identical to the `access` loop
        // (the batch-equivalence suite enforces it, events included).
        let tags = &mut self.tags;
        let diff_bit = &mut self.diff_bit;
        let mut updates = 0u64;
        let (split, _assoc, lines, usage, policy, stats, observer) = self.inner.batch_parts();
        let mut tally = BatchTally::new();
        macro_rules! kernel {
            ($policy:expr) => {{
                let p = $policy;
                for &(addr, kind) in accesses {
                    let set = split.set_index(addr);
                    let tag = split.tag(addr);
                    if let (Some(bit), Some(tag0)) = (diff_bit[set], tags[set * 2]) {
                        let way = usize::from((tag0 >> bit) & 1 != (tag >> bit) & 1);
                        let selected_tag = tags[set * 2 + way];
                        let other_tag = tags[set * 2 + (1 - way)];
                        debug_assert!(
                            other_tag != Some(tag) || selected_tag == Some(tag),
                            "difference bit must never route a hit to the wrong way"
                        );
                        let _ = (selected_tag, other_tag);
                    }
                    let out = step_one::<_, _, 2>(
                        &split, 2, lines, usage, p, &mut tally, observer, addr, kind,
                    );
                    if !out.hit {
                        if let Some((ev_tag, _)) = out.evicted {
                            for slot in tags[set * 2..set * 2 + 2].iter_mut() {
                                if *slot == Some(ev_tag) {
                                    *slot = None;
                                }
                            }
                        }
                        let empty = (0..2)
                            .find(|w| tags[set * 2 + w].is_none())
                            .expect("eviction freed a way");
                        tags[set * 2 + empty] = Some(tag);
                        let (a, b) = (tags[set * 2], tags[set * 2 + 1]);
                        diff_bit[set] = match (a, b) {
                            (Some(x), Some(y)) => {
                                debug_assert_ne!(
                                    x, y,
                                    "two ways of a set can never hold equal tags"
                                );
                                Some((x ^ y).trailing_zeros())
                            }
                            _ => None,
                        };
                        updates += 1;
                    }
                }
            }};
        }
        if let Some(lru) = policy.as_any_mut().downcast_mut::<Lru>() {
            kernel!(lru)
        } else {
            kernel!(policy.as_mut())
        }
        tally.flush(stats);
        self.diff_bit_updates += updates;
    }

    fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
        self.diff_bit_updates = 0;
    }

    fn geometry(&self) -> CacheGeometry {
        self.inner.geometry()
    }

    fn set_usage(&self) -> Option<&SetUsage> {
        self.inner.set_usage()
    }

    fn label(&self) -> String {
        format!("{}k-diffbit", self.geometry().size_bytes() / 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DifferenceBitCache {
        DifferenceBitCache::new(256, 32).unwrap()
    }

    #[test]
    fn behaves_like_two_way() {
        let mut db = tiny();
        let mut sa = SetAssociativeCache::new(256, 32, 2, PolicyKind::Lru, 0).unwrap();
        let mut x = 3u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = Addr::new((x >> 15) % 4096);
            assert_eq!(
                db.access(addr, AccessKind::Read).hit,
                sa.access(addr, AccessKind::Read).hit
            );
        }
        assert_eq!(db.stats().total(), sa.stats().total());
    }

    #[test]
    fn difference_bit_selects_the_right_way() {
        let mut c = tiny();
        // 4 sets: tag = addr >> 7. Two blocks in set 0 with tags 1 and 2
        // (differ at bit 0).
        let a = Addr::new(1 << 7);
        let b = Addr::new(2 << 7);
        c.access(a, AccessKind::Read);
        c.access(b, AccessKind::Read);
        let wa = c.selected_way(a).unwrap();
        let wb = c.selected_way(b).unwrap();
        assert_ne!(
            wa, wb,
            "the two resident blocks must route to different ways"
        );
        // The routed accesses hit.
        assert!(c.access(a, AccessKind::Read).hit);
        assert!(c.access(b, AccessKind::Read).hit);
    }

    #[test]
    fn diff_bit_is_a_real_differing_position() {
        let mut c = tiny();
        c.access(Addr::new(5 << 7), AccessKind::Read); // tag 5 = 0b101
        c.access(Addr::new(4 << 7), AccessKind::Read); // tag 4 = 0b100
        assert_eq!(c.diff_bit[0], Some(0), "5 ^ 4 = 1: bit 0 differs");
        // Replace tag 5 (LRU) with tag 6: 6 ^ 4 = 2 -> bit 1.
        c.access(Addr::new(4 << 7), AccessKind::Read);
        c.access(Addr::new(6 << 7), AccessKind::Read);
        assert_eq!(c.diff_bit[0], Some(1));
    }

    #[test]
    fn updates_counted_per_fill() {
        let mut c = tiny();
        c.access(Addr::new(0), AccessKind::Read);
        c.access(Addr::new(1 << 7), AccessKind::Read);
        assert_eq!(c.diff_bit_updates(), 2);
        c.access(Addr::new(0), AccessKind::Read); // hit: no update
        assert_eq!(c.diff_bit_updates(), 2);
        c.reset_stats();
        assert_eq!(c.diff_bit_updates(), 0);
    }

    #[test]
    fn warm_up_has_no_diff_bit() {
        let mut c = tiny();
        assert_eq!(c.selected_way(Addr::new(0)), None);
        c.access(Addr::new(0), AccessKind::Read);
        assert_eq!(c.selected_way(Addr::new(0)), None, "one way still empty");
    }

    #[test]
    fn label_is_descriptive() {
        assert_eq!(
            DifferenceBitCache::new(16 * 1024, 32).unwrap().label(),
            "16k-diffbit"
        );
    }

    fn fuzz_accesses(records: usize, seed: u64) -> Vec<(Addr, AccessKind)> {
        let mut x = seed ^ 0x2468_ACE0u64;
        (0..records)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let kind = if x & 4 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                (Addr::new(((x >> 16) % 256) * 32), kind)
            })
            .collect()
    }

    #[test]
    fn access_batch_is_bit_identical_to_the_loop() {
        let mut looped = DifferenceBitCache::new(1024, 32).unwrap();
        let mut batched = DifferenceBitCache::new(1024, 32).unwrap();
        let accesses = fuzz_accesses(6_000, 3);
        for &(addr, kind) in &accesses {
            looped.access(addr, kind);
        }
        batched.access_batch(&accesses);
        assert_eq!(looped.stats(), batched.stats());
        assert_eq!(looped.tags, batched.tags, "tag shadows");
        assert_eq!(looped.diff_bit, batched.diff_bit, "difference bits");
        assert_eq!(
            looped.diff_bit_updates, batched.diff_bit_updates,
            "update counters"
        );
    }

    #[test]
    fn observer_sees_identical_events_from_loop_and_batch() {
        use telemetry::EventRing;
        let accesses = fuzz_accesses(5_000, 17);
        let mut looped =
            DifferenceBitCache::with_observer(1024, 32, EventRing::new(64 * 1024)).unwrap();
        let mut batched =
            DifferenceBitCache::with_observer(1024, 32, EventRing::new(64 * 1024)).unwrap();
        for &(addr, kind) in &accesses {
            looped.access(addr, kind);
        }
        batched.access_batch(&accesses);
        let a: Vec<_> = looped.observer().iter().map(|(_, e)| e.clone()).collect();
        let b: Vec<_> = batched.observer().iter().map(|(_, e)| e.clone()).collect();
        assert!(!a.is_empty(), "the fuzz stream must generate events");
        assert_eq!(a, b, "per-access and batched event sequences diverge");
    }

    /// Differential hook: this cache is contractually an n-way LRU array
    /// (the lookup machinery changes latency/energy, never hits, misses
    /// or evictions), so the reference oracle must track it exactly.
    #[test]
    fn matches_reference_oracle() {
        use crate::oracle::OracleCache;
        let mut model = DifferenceBitCache::new(1024, 32).unwrap();
        let mut oracle = OracleCache::new(1024, 32, 2, crate::PolicyKind::Lru, 0, 32);
        let mut x = 0x2468_ACE0u64;
        for i in 0..4000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = ((x >> 16) % 256) * 32;
            let kind = if x & 4 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let got = model.access(Addr::new(addr), kind);
            let want = oracle.access(Addr::new(addr), kind);
            assert_eq!(want.diff(&got), None, "access {i} at {addr:#x}");
        }
    }
}
