//! The difference-bit cache (Juan, Lang & Navarro), a related-work
//! baseline from Section 7.2 of the paper.
//!
//! A 2-way set-associative cache with an access time close to a
//! direct-mapped cache: since the two tags of a set must differ in at
//! least one bit position, a special decoder remembers one such
//! *difference bit* per set and uses the address's value at that
//! position to select the way directly — no full-tag comparison on the
//! way-select path, hence one cycle. The paper's counterpoints: its
//! access path is still slower than the B-Cache's and a 2-way miss rate
//! is the ceiling.

use crate::addr::Addr;
use crate::geometry::{CacheGeometry, GeometryError};
use crate::model::{AccessKind, AccessResult, CacheModel};
use crate::replacement::PolicyKind;
use crate::set_assoc::SetAssociativeCache;
use crate::stats::{CacheStats, SetUsage};

/// A 2-way difference-bit cache.
///
/// Functionally (hits/misses) identical to a 2-way LRU cache; this model
/// additionally maintains the per-set difference-bit metadata and counts
/// how often a fill forces it to be recomputed — the bookkeeping the
/// special decoder performs in hardware.
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, CacheModel, DifferenceBitCache};
///
/// let mut c = DifferenceBitCache::new(16 * 1024, 32)?;
/// c.access(0x0u64.into(), AccessKind::Read);
/// assert!(c.access(0x4u64.into(), AccessKind::Read).hit);
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct DifferenceBitCache {
    inner: SetAssociativeCache,
    // Shadow of the stored tags per (set, way).
    tags: Vec<Option<u64>>,
    // The difference-bit position per set (valid when both ways full).
    diff_bit: Vec<Option<u32>>,
    diff_bit_updates: u64,
}

impl DifferenceBitCache {
    /// Creates a 2-way difference-bit cache.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn new(size_bytes: usize, line_bytes: usize) -> Result<Self, GeometryError> {
        let inner = SetAssociativeCache::new(size_bytes, line_bytes, 2, PolicyKind::Lru, 0)?;
        let sets = inner.geometry().sets();
        Ok(DifferenceBitCache {
            inner,
            tags: vec![None; sets * 2],
            diff_bit: vec![None; sets],
            diff_bit_updates: 0,
        })
    }

    /// How many fills recomputed a set's difference bit.
    pub fn diff_bit_updates(&self) -> u64 {
        self.diff_bit_updates
    }

    /// The way the difference-bit decoder would select for `addr`, when
    /// the set is full (`None` during warm-up).
    pub fn selected_way(&self, addr: Addr) -> Option<usize> {
        let geom = self.inner.geometry();
        let set = geom.set_index(addr);
        let bit = self.diff_bit[set]?;
        let tag0 = self.tags[set * 2]?;
        let addr_bit = (geom.tag(addr) >> bit) & 1;
        // Way 0 is the way whose tag bit equals... select the way whose
        // stored tag matches the address at the difference position.
        Some(if (tag0 >> bit) & 1 == addr_bit { 0 } else { 1 })
    }

    fn recompute_diff_bit(&mut self, set: usize) {
        let (a, b) = (self.tags[set * 2], self.tags[set * 2 + 1]);
        self.diff_bit[set] = match (a, b) {
            (Some(x), Some(y)) => {
                debug_assert_ne!(x, y, "two ways of a set can never hold equal tags");
                Some((x ^ y).trailing_zeros())
            }
            _ => None,
        };
        self.diff_bit_updates += 1;
    }
}

impl CacheModel for DifferenceBitCache {
    fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        let geom = self.inner.geometry();
        let set = geom.set_index(addr);
        let tag = geom.tag(addr);

        // Check the decoder's invariant before mutating: if the block is
        // resident and the set is full, the difference bit must select
        // the way that holds it.
        if let Some(way) = self.selected_way(addr) {
            let selected_tag = self.tags[set * 2 + way];
            let other_tag = self.tags[set * 2 + (1 - way)];
            debug_assert!(
                other_tag != Some(tag) || selected_tag == Some(tag),
                "difference bit must never route a hit to the wrong way"
            );
        }

        let result = self.inner.access(addr, kind);
        if !result.hit {
            if let Some(ev) = result.evicted {
                let ev_tag = geom.tag(ev.block);
                for slot in self.tags[set * 2..set * 2 + 2].iter_mut() {
                    if *slot == Some(ev_tag) {
                        *slot = None;
                    }
                }
            }
            let empty = (0..2)
                .find(|w| self.tags[set * 2 + w].is_none())
                .expect("eviction freed a way");
            self.tags[set * 2 + empty] = Some(tag);
            self.recompute_diff_bit(set);
        }
        result
    }

    fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
        self.diff_bit_updates = 0;
    }

    fn geometry(&self) -> CacheGeometry {
        self.inner.geometry()
    }

    fn set_usage(&self) -> Option<&SetUsage> {
        self.inner.set_usage()
    }

    fn label(&self) -> String {
        format!("{}k-diffbit", self.geometry().size_bytes() / 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DifferenceBitCache {
        DifferenceBitCache::new(256, 32).unwrap()
    }

    #[test]
    fn behaves_like_two_way() {
        let mut db = tiny();
        let mut sa = SetAssociativeCache::new(256, 32, 2, PolicyKind::Lru, 0).unwrap();
        let mut x = 3u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = Addr::new((x >> 15) % 4096);
            assert_eq!(
                db.access(addr, AccessKind::Read).hit,
                sa.access(addr, AccessKind::Read).hit
            );
        }
        assert_eq!(db.stats().total(), sa.stats().total());
    }

    #[test]
    fn difference_bit_selects_the_right_way() {
        let mut c = tiny();
        // 4 sets: tag = addr >> 7. Two blocks in set 0 with tags 1 and 2
        // (differ at bit 0).
        let a = Addr::new(1 << 7);
        let b = Addr::new(2 << 7);
        c.access(a, AccessKind::Read);
        c.access(b, AccessKind::Read);
        let wa = c.selected_way(a).unwrap();
        let wb = c.selected_way(b).unwrap();
        assert_ne!(
            wa, wb,
            "the two resident blocks must route to different ways"
        );
        // The routed accesses hit.
        assert!(c.access(a, AccessKind::Read).hit);
        assert!(c.access(b, AccessKind::Read).hit);
    }

    #[test]
    fn diff_bit_is_a_real_differing_position() {
        let mut c = tiny();
        c.access(Addr::new(5 << 7), AccessKind::Read); // tag 5 = 0b101
        c.access(Addr::new(4 << 7), AccessKind::Read); // tag 4 = 0b100
        assert_eq!(c.diff_bit[0], Some(0), "5 ^ 4 = 1: bit 0 differs");
        // Replace tag 5 (LRU) with tag 6: 6 ^ 4 = 2 -> bit 1.
        c.access(Addr::new(4 << 7), AccessKind::Read);
        c.access(Addr::new(6 << 7), AccessKind::Read);
        assert_eq!(c.diff_bit[0], Some(1));
    }

    #[test]
    fn updates_counted_per_fill() {
        let mut c = tiny();
        c.access(Addr::new(0), AccessKind::Read);
        c.access(Addr::new(1 << 7), AccessKind::Read);
        assert_eq!(c.diff_bit_updates(), 2);
        c.access(Addr::new(0), AccessKind::Read); // hit: no update
        assert_eq!(c.diff_bit_updates(), 2);
        c.reset_stats();
        assert_eq!(c.diff_bit_updates(), 0);
    }

    #[test]
    fn warm_up_has_no_diff_bit() {
        let mut c = tiny();
        assert_eq!(c.selected_way(Addr::new(0)), None);
        c.access(Addr::new(0), AccessKind::Read);
        assert_eq!(c.selected_way(Addr::new(0)), None, "one way still empty");
    }

    #[test]
    fn label_is_descriptive() {
        assert_eq!(
            DifferenceBitCache::new(16 * 1024, 32).unwrap().label(),
            "16k-diffbit"
        );
    }

    /// Differential hook: this cache is contractually an n-way LRU array
    /// (the lookup machinery changes latency/energy, never hits, misses
    /// or evictions), so the reference oracle must track it exactly.
    #[test]
    fn matches_reference_oracle() {
        use crate::oracle::OracleCache;
        let mut model = DifferenceBitCache::new(1024, 32).unwrap();
        let mut oracle = OracleCache::new(1024, 32, 2, crate::PolicyKind::Lru, 0, 32);
        let mut x = 0x2468_ACE0u64;
        for i in 0..4000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = ((x >> 16) % 256) * 32;
            let kind = if x & 4 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let got = model.access(Addr::new(addr), kind);
            let want = oracle.access(Addr::new(addr), kind);
            assert_eq!(want.diff(&got), None, "access {i} at {addr:#x}");
        }
    }
}
