//! # cache-sim — cache models and memory-hierarchy substrate
//!
//! This crate is the simulation substrate of the [B-Cache reproduction]
//! (ISCA 2006, *Balanced Cache: Reducing Conflict Misses of Direct-Mapped
//! Caches through Programmable Decoders*). It provides:
//!
//! * the [`CacheModel`] trait and access types shared by every cache;
//! * the paper's baseline and comparison caches: [`DirectMappedCache`],
//!   [`SetAssociativeCache`] (2-way … 32-way, LRU/FIFO/random/PLRU),
//!   [`VictimCache`] (Jouppi), [`ColumnAssociativeCache`],
//!   [`SkewedAssociativeCache`], and the CAM-tag
//!   [`HighlyAssociativeCache`];
//! * the Table 4 [`MemoryHierarchy`] (split L1, unified 4-way 256 kB L2,
//!   infinite memory);
//! * statistics, including the per-set usage counters behind the paper's
//!   Table 7 balance analysis.
//!
//! The B-Cache itself lives in the `bcache-core` crate, implemented
//! against the traits defined here.
//!
//! ## Quick start
//!
//! ```
//! use cache_sim::{AccessKind, CacheModel, DirectMappedCache, SetAssociativeCache, PolicyKind};
//!
//! // The paper's worst case: perfectly conflicting blocks.
//! let mut dm = DirectMappedCache::new(256, 32)?;
//! let mut two_way = SetAssociativeCache::new(256, 32, 2, PolicyKind::Lru, 0)?;
//! for _ in 0..4 {
//!     for block in [0u64, 1, 8, 9] {
//!         let addr = (block * 32).into();
//!         dm.access(addr, AccessKind::Read);
//!         two_way.access(addr, AccessKind::Read);
//!     }
//! }
//! assert_eq!(dm.stats().total().hits(), 0);        // thrashes forever
//! assert_eq!(two_way.stats().total().misses(), 4); // only cold misses
//! # Ok::<(), cache_sim::GeometryError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod agac;
mod cam;
pub mod column;
pub mod difference_bit;
pub mod direct;
pub mod geometry;
pub mod hac;
pub mod hierarchy;
pub mod model;
pub mod oracle;
pub mod packed;
pub mod pam;
pub mod replacement;
pub mod set_assoc;
pub mod simd;
pub mod skewed;
pub mod stats;
pub mod victim;
pub mod way_halting;

pub use addr::Addr;
pub use agac::AgacCache;
pub use column::ColumnAssociativeCache;
pub use difference_bit::DifferenceBitCache;
pub use direct::DirectMappedCache;
pub use geometry::{CacheGeometry, GeometryError, TagIndexSplit, DEFAULT_ADDR_BITS};
pub use hac::HighlyAssociativeCache;
pub use hierarchy::{LatencyConfig, MemoryHierarchy};
pub use model::{AccessKind, AccessResult, CacheModel, Eviction};
pub use oracle::{BCacheOracle, OracleCache, OracleOutcome};
pub use pam::PartialMatchCache;
pub use replacement::{make_policy, Lru, PolicyKind, ReplacementPolicy};
pub use set_assoc::SetAssociativeCache;
pub use skewed::SkewedAssociativeCache;
pub use stats::{BalanceReport, BatchTally, CacheStats, Counter, SetUsage};
pub use victim::VictimCache;
pub use way_halting::WayHaltingCache;
