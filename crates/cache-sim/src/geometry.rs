//! Cache geometry: capacity, line size, associativity and the derived
//! address bit-fields.
//!
//! A [`CacheGeometry`] fixes how an address is split into
//! `tag | index | offset` for a conventional cache. Every model keeps one,
//! and the B-Cache derives its lengthened programmable index from it.

use std::fmt;

use crate::addr::{log2_exact, Addr};

/// Errors produced while constructing a [`CacheGeometry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// A size parameter was zero or not a power of two.
    NotPowerOfTwo {
        /// Which parameter was invalid.
        what: &'static str,
        /// The offending value.
        value: usize,
    },
    /// The line size exceeds the capacity.
    LineLargerThanCache {
        /// Line size in bytes.
        line: usize,
        /// Cache size in bytes.
        size: usize,
    },
    /// Associativity exceeds the number of lines.
    AssocLargerThanLines {
        /// Requested associativity.
        assoc: usize,
        /// Available lines.
        lines: usize,
    },
    /// The address width cannot hold offset + index bits.
    AddrTooNarrow {
        /// Requested address width.
        addr_bits: u32,
        /// Bits needed by offset + index.
        needed: u32,
    },
}

impl fmt::Display for GeometryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GeometryError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a nonzero power of two, got {value}")
            }
            GeometryError::LineLargerThanCache { line, size } => {
                write!(f, "line size {line} exceeds cache size {size}")
            }
            GeometryError::AssocLargerThanLines { assoc, lines } => {
                write!(f, "associativity {assoc} exceeds line count {lines}")
            }
            GeometryError::AddrTooNarrow { addr_bits, needed } => {
                write!(
                    f,
                    "address width {addr_bits} cannot hold {needed} offset+index bits"
                )
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// The shape of a cache: capacity, line size, associativity and address
/// width.
///
/// All sizes are powers of two. `assoc == 1` is a direct-mapped cache;
/// `assoc == lines()` is fully associative.
///
/// # Examples
///
/// ```
/// use cache_sim::CacheGeometry;
///
/// // The paper's baseline: 16 kB direct-mapped, 32-byte lines.
/// let g = CacheGeometry::new(16 * 1024, 32, 1)?;
/// assert_eq!(g.sets(), 512);
/// assert_eq!(g.offset_bits(), 5);
/// assert_eq!(g.index_bits(), 9);
/// assert_eq!(g.tag_bits(), 18);
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheGeometry {
    size_bytes: usize,
    line_bytes: usize,
    assoc: usize,
    addr_bits: u32,
}

/// Default simulated physical address width, matching the paper.
pub const DEFAULT_ADDR_BITS: u32 = 32;

impl CacheGeometry {
    /// Creates a geometry with the default 32-bit address width.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] if any size is zero or not a power of
    /// two, if the line exceeds the capacity, or if the associativity
    /// exceeds the number of lines.
    pub fn new(size_bytes: usize, line_bytes: usize, assoc: usize) -> Result<Self, GeometryError> {
        Self::with_addr_bits(size_bytes, line_bytes, assoc, DEFAULT_ADDR_BITS)
    }

    /// Creates a geometry with an explicit address width.
    ///
    /// Narrow widths are useful in tests where the tag space must be small
    /// (for instance to drive the B-Cache's mapping factor to its maximum).
    ///
    /// # Errors
    ///
    /// See [`CacheGeometry::new`]; additionally fails if `addr_bits` cannot
    /// hold the offset and index fields or exceeds 64.
    pub fn with_addr_bits(
        size_bytes: usize,
        line_bytes: usize,
        assoc: usize,
        addr_bits: u32,
    ) -> Result<Self, GeometryError> {
        for (what, value) in [
            ("cache size", size_bytes),
            ("line size", line_bytes),
            ("associativity", assoc),
        ] {
            if value == 0 || !value.is_power_of_two() {
                return Err(GeometryError::NotPowerOfTwo { what, value });
            }
        }
        if line_bytes > size_bytes {
            return Err(GeometryError::LineLargerThanCache {
                line: line_bytes,
                size: size_bytes,
            });
        }
        let lines = size_bytes / line_bytes;
        if assoc > lines {
            return Err(GeometryError::AssocLargerThanLines { assoc, lines });
        }
        let geom = CacheGeometry {
            size_bytes,
            line_bytes,
            assoc,
            addr_bits,
        };
        let needed = geom.offset_bits() + geom.index_bits();
        if addr_bits > 64 || addr_bits < needed {
            return Err(GeometryError::AddrTooNarrow { addr_bits, needed });
        }
        Ok(geom)
    }

    /// Total capacity in bytes.
    pub const fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Cache line (block) size in bytes.
    pub const fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Number of ways per set.
    pub const fn assoc(&self) -> usize {
        self.assoc
    }

    /// Simulated address width in bits.
    pub const fn addr_bits(&self) -> u32 {
        self.addr_bits
    }

    /// Total number of cache lines.
    pub const fn lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }

    /// Number of sets (`lines / assoc`).
    pub const fn sets(&self) -> usize {
        self.lines() / self.assoc
    }

    /// Width of the block-offset field.
    pub const fn offset_bits(&self) -> u32 {
        log2_exact(self.line_bytes as u64)
    }

    /// Width of the set-index field.
    pub const fn index_bits(&self) -> u32 {
        log2_exact(self.sets() as u64)
    }

    /// Width of the tag field (`addr_bits - index - offset`).
    pub const fn tag_bits(&self) -> u32 {
        self.addr_bits - self.index_bits() - self.offset_bits()
    }

    /// Extracts the set index of `addr`.
    #[inline]
    pub fn set_index(&self, addr: Addr) -> usize {
        addr.bits(self.offset_bits(), self.index_bits()) as usize
    }

    /// Extracts the tag of `addr`.
    #[inline]
    pub fn tag(&self, addr: Addr) -> u64 {
        addr.bits(self.offset_bits() + self.index_bits(), self.tag_bits())
    }

    /// Precomputes the `tag | index | offset` field split as shift/mask
    /// pairs, for hot loops that cannot afford the per-access field-width
    /// recomputation of [`set_index`](Self::set_index) / [`tag`](Self::tag).
    pub const fn split(&self) -> TagIndexSplit {
        TagIndexSplit {
            index_shift: self.offset_bits(),
            index_mask: field_mask(self.index_bits()),
            tag_shift: self.offset_bits() + self.index_bits(),
            tag_mask: field_mask(self.tag_bits()),
        }
    }

    /// Rounds `addr` down to its cache-block base.
    pub fn block_base(&self, addr: Addr) -> Addr {
        addr.align_down(self.line_bytes as u64)
    }

    /// Reconstructs the block base address from a `(tag, set)` pair.
    ///
    /// This is the inverse of [`tag`](Self::tag) /
    /// [`set_index`](Self::set_index) and is used to name evicted blocks.
    pub fn reconstruct(&self, tag: u64, set: usize) -> Addr {
        debug_assert!(set < self.sets());
        let idx = (set as u64) << self.offset_bits();
        let tag = tag << (self.offset_bits() + self.index_bits());
        Addr::new(tag | idx)
    }

    /// Returns a copy of this geometry with a different associativity.
    ///
    /// # Errors
    ///
    /// Same as [`CacheGeometry::new`].
    pub fn with_assoc(&self, assoc: usize) -> Result<Self, GeometryError> {
        Self::with_addr_bits(self.size_bytes, self.line_bytes, assoc, self.addr_bits)
    }
}

/// A right-aligned bit mask of `width` bits (0 ≤ width ≤ 64).
const fn field_mask(width: u32) -> u64 {
    if width == 0 {
        0
    } else {
        u64::MAX >> (64 - width)
    }
}

/// The `tag | index | offset` split of a [`CacheGeometry`] as
/// precomputed shift/mask pairs (see [`CacheGeometry::split`]).
///
/// Extraction through this struct is bit-identical to the geometry's
/// own accessors; it exists so batched replay loops read two plain
/// fields per access instead of re-deriving field widths.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TagIndexSplit {
    /// Right-shift bringing the index field to bit 0.
    pub index_shift: u32,
    /// Mask of the shifted index field.
    pub index_mask: u64,
    /// Right-shift bringing the tag field to bit 0.
    pub tag_shift: u32,
    /// Mask of the shifted tag field.
    pub tag_mask: u64,
}

impl TagIndexSplit {
    /// Extracts the set index of `addr` (equals
    /// [`CacheGeometry::set_index`]).
    #[inline(always)]
    pub fn set_index(&self, addr: Addr) -> usize {
        ((addr.raw() >> self.index_shift) & self.index_mask) as usize
    }

    /// Extracts the tag of `addr` (equals [`CacheGeometry::tag`]).
    #[inline(always)]
    pub fn tag(&self, addr: Addr) -> u64 {
        (addr.raw() >> self.tag_shift) & self.tag_mask
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let size = self.size_bytes;
        if size.is_multiple_of(1024) {
            write!(
                f,
                "{}kB/{}B/{}-way",
                size / 1024,
                self.line_bytes,
                self.assoc
            )
        } else {
            write!(f, "{}B/{}B/{}-way", size, self.line_bytes, self.assoc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn baseline() -> CacheGeometry {
        CacheGeometry::new(16 * 1024, 32, 1).unwrap()
    }

    #[test]
    fn paper_baseline_fields() {
        let g = baseline();
        assert_eq!(g.lines(), 512);
        assert_eq!(g.sets(), 512);
        assert_eq!(g.offset_bits(), 5);
        assert_eq!(g.index_bits(), 9);
        assert_eq!(g.tag_bits(), 18);
    }

    #[test]
    fn eight_way_fields() {
        let g = CacheGeometry::new(16 * 1024, 32, 8).unwrap();
        assert_eq!(g.sets(), 64);
        assert_eq!(g.index_bits(), 6);
        assert_eq!(g.tag_bits(), 21);
    }

    #[test]
    fn fully_associative_has_no_index() {
        let g = CacheGeometry::new(512, 32, 16).unwrap();
        assert_eq!(g.sets(), 1);
        assert_eq!(g.index_bits(), 0);
        assert_eq!(g.tag_bits(), 27);
    }

    #[test]
    fn tag_index_round_trip() {
        let g = CacheGeometry::new(16 * 1024, 32, 2).unwrap();
        let addr = Addr::new(0xDEAD_BEE0);
        let tag = g.tag(addr);
        let set = g.set_index(addr);
        assert_eq!(g.reconstruct(tag, set), g.block_base(addr));
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            CacheGeometry::new(3000, 32, 1),
            Err(GeometryError::NotPowerOfTwo {
                what: "cache size",
                ..
            })
        ));
        assert!(matches!(
            CacheGeometry::new(4096, 33, 1),
            Err(GeometryError::NotPowerOfTwo {
                what: "line size",
                ..
            })
        ));
        assert!(matches!(
            CacheGeometry::new(4096, 32, 3),
            Err(GeometryError::NotPowerOfTwo {
                what: "associativity",
                ..
            })
        ));
        assert!(matches!(
            CacheGeometry::new(4096, 32, 0),
            Err(GeometryError::NotPowerOfTwo {
                what: "associativity",
                ..
            })
        ));
    }

    #[test]
    fn rejects_impossible_shapes() {
        assert!(matches!(
            CacheGeometry::new(32, 64, 1),
            Err(GeometryError::LineLargerThanCache { .. })
        ));
        assert!(matches!(
            CacheGeometry::new(1024, 32, 64),
            Err(GeometryError::AssocLargerThanLines { .. })
        ));
        assert!(matches!(
            CacheGeometry::with_addr_bits(16 * 1024, 32, 1, 10),
            Err(GeometryError::AddrTooNarrow { .. })
        ));
    }

    #[test]
    fn with_assoc_preserves_other_fields() {
        let g = baseline().with_assoc(8).unwrap();
        assert_eq!(g.size_bytes(), 16 * 1024);
        assert_eq!(g.assoc(), 8);
        assert_eq!(g.addr_bits(), 32);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(baseline().to_string(), "16kB/32B/1-way");
        let small = CacheGeometry::new(256, 32, 2).unwrap();
        assert_eq!(small.to_string(), "256B/32B/2-way");
    }

    #[test]
    fn narrow_address_width_is_supported() {
        let g = CacheGeometry::with_addr_bits(256, 32, 1, 16).unwrap();
        assert_eq!(g.tag_bits(), 16 - 5 - 3);
    }

    #[test]
    fn split_matches_the_field_accessors() {
        for g in [
            baseline(),
            CacheGeometry::new(16 * 1024, 32, 8).unwrap(),
            CacheGeometry::new(512, 32, 16).unwrap(), // index_bits == 0
            CacheGeometry::with_addr_bits(256, 32, 1, 16).unwrap(),
        ] {
            let split = g.split();
            for raw in [0u64, 0x1040, 0xDEAD_BEE0, 0xFFFF_FFFF, 0x1_0000_0000] {
                let addr = Addr::new(raw);
                assert_eq!(split.set_index(addr), g.set_index(addr), "{g} {raw:#x}");
                assert_eq!(split.tag(addr), g.tag(addr), "{g} {raw:#x}");
            }
        }
    }
}
