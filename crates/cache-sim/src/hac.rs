//! The highly-associative cache (HAC) of Section 6.7: aggressively
//! partitioned subarrays with fully-associative CAM tags inside each
//! subarray.
//!
//! The paper observes that the HAC is "an extreme case of the B-Cache,
//! where the decoder ... is fully programmable": the whole tag (26 bits
//! for a 16 kB, 32-way instance) is held in CAM, versus the B-Cache's
//! 6-bit programmable index. Functionally the HAC behaves as a
//! set-associative cache whose sets are the subarrays; the interest is in
//! its CAM cost, which [`HighlyAssociativeCache::cam_bits_per_line`]
//! exposes for the area/energy comparison.

use telemetry::{NullObserver, Observer};

use crate::addr::Addr;
use crate::geometry::{CacheGeometry, GeometryError};
use crate::model::{AccessKind, AccessResult, CacheModel};
use crate::replacement::PolicyKind;
use crate::set_assoc::SetAssociativeCache;
use crate::stats::{CacheStats, SetUsage};

/// A CAM-tag highly-associative cache partitioned into subarrays.
///
/// Both access paths delegate to the wrapped set-associative array, so
/// [`CacheModel::access_batch`] runs the monomorphized set-associative
/// kernel (with the subarray-wide CAM search as its way scan — the
/// 32-entry sweep of the paper's instance is four [`crate::simd`]
/// AVX2 compare vectors per probe) and is bit-identical to the
/// per-access path, [`Observer`] events included.
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, CacheModel, HighlyAssociativeCache};
///
/// // The paper's instance: 16 kB, 32 B lines, 1 kB subarrays, 32-way.
/// let mut hac = HighlyAssociativeCache::new(16 * 1024, 32, 1024)?;
/// assert_eq!(hac.geometry().assoc(), 32);
/// assert_eq!(hac.cam_bits_per_line(), 26);
/// hac.access(0x0u64.into(), AccessKind::Read);
/// assert!(hac.access(0x0u64.into(), AccessKind::Read).hit);
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct HighlyAssociativeCache<O: Observer = NullObserver> {
    inner: SetAssociativeCache<O>,
    subarray_bytes: usize,
}

impl HighlyAssociativeCache {
    /// Creates a HAC of `size_bytes` with `line_bytes` blocks partitioned
    /// into fully-associative subarrays of `subarray_bytes` each.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn new(
        size_bytes: usize,
        line_bytes: usize,
        subarray_bytes: usize,
    ) -> Result<Self, GeometryError> {
        Self::with_observer(size_bytes, line_bytes, subarray_bytes, NullObserver)
    }
}

impl<O: Observer> HighlyAssociativeCache<O> {
    /// Like [`HighlyAssociativeCache::new`], with an observer wired into
    /// both access paths.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn with_observer(
        size_bytes: usize,
        line_bytes: usize,
        subarray_bytes: usize,
        observer: O,
    ) -> Result<Self, GeometryError> {
        if subarray_bytes == 0 || !subarray_bytes.is_power_of_two() {
            return Err(GeometryError::NotPowerOfTwo {
                what: "associativity",
                value: subarray_bytes,
            });
        }
        let assoc = subarray_bytes / line_bytes;
        let inner = SetAssociativeCache::with_observer(
            size_bytes,
            line_bytes,
            assoc,
            PolicyKind::Lru,
            0,
            observer,
        )?;
        Ok(HighlyAssociativeCache {
            inner,
            subarray_bytes,
        })
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        self.inner.observer()
    }

    /// Mutable access to the attached observer.
    pub fn observer_mut(&mut self) -> &mut O {
        self.inner.observer_mut()
    }

    /// Size of each fully-associative subarray in bytes.
    pub fn subarray_bytes(&self) -> usize {
        self.subarray_bytes
    }

    /// Number of subarrays.
    pub fn subarrays(&self) -> usize {
        self.inner.geometry().sets()
    }

    /// CAM bits per line: the full tag plus the paper's three status bits.
    ///
    /// For the 16 kB / 32 B / 32-way instance this is `23 + 3 = 26` bits
    /// (Section 6.7), dwarfing the B-Cache's 6-bit programmable index.
    pub fn cam_bits_per_line(&self) -> u32 {
        // The paper counts "23(tag) + 3(status)" = 26 for this geometry.
        self.inner.geometry().tag_bits() + 3
    }
}

impl<O: Observer> CacheModel for HighlyAssociativeCache<O> {
    fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        self.inner.access(addr, kind)
    }

    fn access_batch(&mut self, accesses: &[(Addr, AccessKind)]) {
        self.inner.access_batch(accesses)
    }

    fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats()
    }

    fn geometry(&self) -> CacheGeometry {
        self.inner.geometry()
    }

    fn set_usage(&self) -> Option<&SetUsage> {
        self.inner.set_usage()
    }

    fn label(&self) -> String {
        format!(
            "{}k-hac{}",
            self.geometry().size_bytes() / 1024,
            self.geometry().assoc()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_shape() {
        let hac = HighlyAssociativeCache::new(16 * 1024, 32, 1024).unwrap();
        assert_eq!(hac.subarrays(), 16);
        assert_eq!(hac.geometry().assoc(), 32);
        assert_eq!(hac.subarray_bytes(), 1024);
        assert_eq!(hac.cam_bits_per_line(), 26);
    }

    #[test]
    fn conflicts_within_a_subarray_are_absorbed() {
        let mut hac = HighlyAssociativeCache::new(1024, 32, 256).unwrap();
        // 4 subarrays, 8-way each. Eight blocks mapping to subarray 0.
        for k in 0..8u64 {
            assert!(!hac.access(Addr::new(k * 1024), AccessKind::Read).hit);
        }
        for k in 0..8u64 {
            assert!(hac.access(Addr::new(k * 1024), AccessKind::Read).hit);
        }
    }

    #[test]
    fn rejects_bad_subarray_size() {
        assert!(HighlyAssociativeCache::new(16 * 1024, 32, 0).is_err());
        assert!(HighlyAssociativeCache::new(16 * 1024, 32, 1000).is_err());
    }

    #[test]
    fn label_is_descriptive() {
        let hac = HighlyAssociativeCache::new(16 * 1024, 32, 1024).unwrap();
        assert_eq!(hac.label(), "16k-hac32");
    }

    /// Differential hook: this cache is contractually an n-way LRU array
    /// (the lookup machinery changes latency/energy, never hits, misses
    /// or evictions), so the reference oracle must track it exactly.
    #[test]
    fn matches_reference_oracle() {
        use crate::oracle::OracleCache;
        let mut model = HighlyAssociativeCache::new(2048, 32, 256).unwrap();
        let mut oracle = OracleCache::new(2048, 32, 8, crate::PolicyKind::Lru, 0, 32);
        let mut x = 0x2468_ACE0u64;
        for i in 0..4000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = ((x >> 16) % 512) * 32;
            let kind = if x & 4 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let got = model.access(Addr::new(addr), kind);
            let want = oracle.access(Addr::new(addr), kind);
            assert_eq!(want.diff(&got), None, "access {i} at {addr:#x}");
        }
    }
}
