//! The 2-way skewed-associative cache (Seznec), a related-work baseline
//! from Section 7.1 of the paper.
//!
//! Each way is indexed by a *different* hash of the address, built by
//! XORing the conventional index with a slice of the tag. Conflicts in one
//! way are usually not conflicts in the other, which gives a 2-way skewed
//! cache the miss rate of roughly a conventional 4-way cache.

use crate::addr::Addr;
use crate::geometry::{CacheGeometry, GeometryError};
use crate::model::{AccessKind, AccessResult, CacheModel, Eviction};
use crate::stats::{CacheStats, SetUsage};

/// A 2-way skewed-associative, write-back, write-allocate cache.
///
/// Victim selection follows Seznec's enhanced scheme: each line carries a
/// coarse access timestamp and the older of the two candidate lines is
/// replaced (true LRU across ways is ill-defined in a skewed cache
/// because the ways index different sets).
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, CacheModel, SkewedAssociativeCache};
///
/// let mut c = SkewedAssociativeCache::new(16 * 1024, 32)?;
/// c.access(0x0u64.into(), AccessKind::Read);
/// assert!(c.access(0x1fu64.into(), AccessKind::Read).hit);
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct SkewedAssociativeCache {
    geom: CacheGeometry,
    sets_per_way: usize,
    // Full block identifiers (tag|index), per way.
    blocks: [Vec<u64>; 2],
    valid: [Vec<bool>; 2],
    dirty: [Vec<bool>; 2],
    stamps: [Vec<u64>; 2],
    clock: u64,
    stats: CacheStats,
    usage: SetUsage,
}

impl SkewedAssociativeCache {
    /// Creates a 2-way skewed cache of `size_bytes` with `line_bytes`
    /// blocks.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes (the cache must hold
    /// at least two lines).
    pub fn new(size_bytes: usize, line_bytes: usize) -> Result<Self, GeometryError> {
        let geom = CacheGeometry::new(size_bytes, line_bytes, 2)?;
        if geom.index_bits() == 0 {
            // The skewing functions need at least one index bit per way.
            return Err(GeometryError::AssocLargerThanLines {
                assoc: 2,
                lines: geom.lines(),
            });
        }
        let sets_per_way = geom.sets();
        Ok(SkewedAssociativeCache {
            geom,
            sets_per_way,
            blocks: [vec![0; sets_per_way], vec![0; sets_per_way]],
            valid: [vec![false; sets_per_way], vec![false; sets_per_way]],
            dirty: [vec![false; sets_per_way], vec![false; sets_per_way]],
            stamps: [vec![0; sets_per_way], vec![0; sets_per_way]],
            clock: 0,
            stats: CacheStats::new(),
            usage: SetUsage::new(sets_per_way),
        })
    }

    fn block_id(&self, addr: Addr) -> u64 {
        addr.raw() >> self.geom.offset_bits()
    }

    fn block_addr(&self, id: u64) -> Addr {
        Addr::new(id << self.geom.offset_bits())
    }

    /// The skewing function for `way`: index XOR a way-specific mix of the
    /// tag bits.
    fn index(&self, addr: Addr, way: usize) -> usize {
        let idx_bits = self.geom.index_bits();
        let idx = addr.bits(self.geom.offset_bits(), idx_bits);
        let tag = self.geom.tag(addr);
        let mask = (self.sets_per_way - 1) as u64;
        let mix = match way {
            0 => tag,
            _ => (tag >> 1) ^ (tag << (idx_bits - 1)),
        };
        ((idx ^ mix) & mask) as usize
    }

    fn lookup(&self, addr: Addr) -> Option<(usize, usize)> {
        let id = self.block_id(addr);
        (0..2).find_map(|w| {
            let s = self.index(addr, w);
            (self.valid[w][s] && self.blocks[w][s] == id).then_some((w, s))
        })
    }
}

impl CacheModel for SkewedAssociativeCache {
    fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        let id = self.block_id(addr);
        self.clock += 1;
        if let Some((w, s)) = self.lookup(addr) {
            self.stats.record(kind, true);
            self.usage.record(s, true);
            self.stamps[w][s] = self.clock;
            if kind.is_write() {
                self.dirty[w][s] = true;
            }
            return AccessResult::hit();
        }
        self.stats.record(kind, false);
        // Prefer an invalid slot in either way; otherwise replace the
        // older of the two candidate lines.
        let s0 = self.index(addr, 0);
        let s1 = self.index(addr, 1);
        let way = if !self.valid[0][s0] {
            0
        } else if !self.valid[1][s1] {
            1
        } else if self.stamps[0][s0] <= self.stamps[1][s1] {
            0
        } else {
            1
        };
        let s = if way == 0 { s0 } else { s1 };
        self.usage.record(s, false);
        let evicted = if self.valid[way][s] {
            let ev = Eviction {
                block: self.block_addr(self.blocks[way][s]),
                dirty: self.dirty[way][s],
            };
            if ev.dirty {
                self.stats.record_writeback();
            }
            Some(ev)
        } else {
            None
        };
        self.blocks[way][s] = id;
        self.valid[way][s] = true;
        self.dirty[way][s] = kind.is_write();
        self.stamps[way][s] = self.clock;
        AccessResult::miss(evicted)
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.usage.reset();
    }

    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn set_usage(&self) -> Option<&SetUsage> {
        Some(&self.usage)
    }

    fn label(&self) -> String {
        format!("{}k-skew2", self.geom.size_bytes() / 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectMappedCache;

    fn tiny() -> SkewedAssociativeCache {
        SkewedAssociativeCache::new(512, 32).unwrap()
    }

    #[test]
    fn basic_hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(Addr::new(0x100), AccessKind::Read).hit);
        assert!(c.access(Addr::new(0x11f), AccessKind::Read).hit);
    }

    #[test]
    fn skewing_disperses_dm_conflicts() {
        // Blocks spaced by the way size collide in every set of a DM cache
        // but hash to different sets in at least one skewed way.
        let mut skew = tiny();
        let mut dm = DirectMappedCache::new(512, 32).unwrap();
        for _ in 0..100 {
            for k in 0..4u64 {
                let a = Addr::new(k * 512);
                skew.access(a, AccessKind::Read);
                dm.access(a, AccessKind::Read);
            }
        }
        assert!(
            skew.stats().total().misses() < dm.stats().total().misses(),
            "skewed {} vs dm {}",
            skew.stats().total().misses(),
            dm.stats().total().misses()
        );
    }

    #[test]
    fn both_ways_are_used() {
        let mut c = tiny();
        for k in 0..64u64 {
            c.access(Addr::new(k * 32), AccessKind::Read);
        }
        let used0 = c.valid[0].iter().filter(|v| **v).count();
        let used1 = c.valid[1].iter().filter(|v| **v).count();
        assert!(used0 > 0 && used1 > 0);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        // Saturate the cache with writes, then stream reads over fresh
        // blocks; some dirty block must eventually be pushed out.
        for k in 0..16u64 {
            c.access(Addr::new(k * 32), AccessKind::Write);
        }
        for k in 100..164u64 {
            c.access(Addr::new(k * 32), AccessKind::Read);
        }
        assert!(c.stats().writebacks() > 0);
    }

    #[test]
    fn indices_stay_in_range() {
        let c = tiny();
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            for w in 0..2 {
                assert!(c.index(Addr::new(x), w) < c.sets_per_way);
            }
        }
    }

    #[test]
    fn ways_use_different_hashes() {
        let c = tiny();
        let differs = (0..256u64)
            .map(|k| Addr::new(k * 256))
            .filter(|&a| c.index(a, 0) != c.index(a, 1))
            .count();
        assert!(differs > 0, "the two skewing functions must not coincide");
    }

    #[test]
    fn rejects_single_set_geometry() {
        assert!(SkewedAssociativeCache::new(64, 32).is_err());
    }

    #[test]
    fn label_is_descriptive() {
        assert_eq!(
            SkewedAssociativeCache::new(16 * 1024, 32).unwrap().label(),
            "16k-skew2"
        );
    }

    /// Fuzz-subsystem hook: demand-fill sanity — never a hit on a block
    /// the cache has not seen, and at least one miss per distinct block
    /// (the compulsory bound). `harness::fuzz` checks the same invariants
    /// on random configurations.
    #[test]
    fn is_demand_fill() {
        use std::collections::HashSet;
        let mut c = SkewedAssociativeCache::new(512, 32).unwrap();
        let mut seen = HashSet::new();
        let mut x = 0x0F1E_2D3Cu64;
        for i in 0..4000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = ((x >> 16) % 128) * 32;
            let hit = c.access(Addr::new(addr), AccessKind::Read).hit;
            assert!(
                !hit || seen.contains(&addr),
                "access {i}: hit on unseen {addr:#x}"
            );
            seen.insert(addr);
        }
        assert!(c.stats().total().misses() >= seen.len() as u64);
    }
}
