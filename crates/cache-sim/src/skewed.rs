//! The 2-way skewed-associative cache (Seznec), a related-work baseline
//! from Section 7.1 of the paper.
//!
//! Each way is indexed by a *different* hash of the address, built by
//! XORing the conventional index with a slice of the tag. Conflicts in one
//! way are usually not conflicts in the other, which gives a 2-way skewed
//! cache the miss rate of roughly a conventional 4-way cache.

use telemetry::{Event, MissKind, NullObserver, Observer};

use crate::addr::Addr;
use crate::geometry::{CacheGeometry, GeometryError};
use crate::model::{AccessKind, AccessResult, CacheModel, Eviction};
use crate::packed;
use crate::stats::{BatchTally, CacheStats, SetUsage};

/// A 2-way skewed-associative, write-back, write-allocate cache.
///
/// Victim selection follows Seznec's enhanced scheme: each line carries a
/// coarse access timestamp and the older of the two candidate lines is
/// replaced (true LRU across ways is ill-defined in a skewed cache
/// because the ways index different sets).
///
/// Storage is the packed tag-array layout shared with the direct-mapped
/// and set-associative models: one word per line holding tag, dirty and
/// valid bits. A line's block address is recoverable from its way, set
/// and tag because the skewing functions are XOR-invertible. Both access
/// paths run through one shared, always-inlined step, so per-access and
/// [`CacheModel::access_batch`] are bit-identical — statistics,
/// timestamps, and [`Observer`] events alike.
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, CacheModel, SkewedAssociativeCache};
///
/// let mut c = SkewedAssociativeCache::new(16 * 1024, 32)?;
/// c.access(0x0u64.into(), AccessKind::Read);
/// assert!(c.access(0x1fu64.into(), AccessKind::Read).hit);
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct SkewedAssociativeCache<O: Observer = NullObserver> {
    geom: CacheGeometry,
    sets_per_way: usize,
    // Packed `tag | dirty | valid` words and access stamps, per way.
    words: [Vec<u64>; 2],
    stamps: [Vec<u64>; 2],
    clock: u64,
    stats: CacheStats,
    usage: SetUsage,
    observer: O,
}

impl SkewedAssociativeCache {
    /// Creates a 2-way skewed cache of `size_bytes` with `line_bytes`
    /// blocks.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes (the cache must hold
    /// at least two lines).
    pub fn new(size_bytes: usize, line_bytes: usize) -> Result<Self, GeometryError> {
        Self::with_observer(size_bytes, line_bytes, NullObserver)
    }
}

impl<O: Observer> SkewedAssociativeCache<O> {
    /// Like [`SkewedAssociativeCache::new`], with an observer wired into
    /// both access paths.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn with_observer(
        size_bytes: usize,
        line_bytes: usize,
        observer: O,
    ) -> Result<Self, GeometryError> {
        let geom = CacheGeometry::new(size_bytes, line_bytes, 2)?;
        if geom.index_bits() == 0 {
            // The skewing functions need at least one index bit per way.
            return Err(GeometryError::AssocLargerThanLines {
                assoc: 2,
                lines: geom.lines(),
            });
        }
        assert!(
            geom.tag_bits() <= packed::MAX_TAG_BITS,
            "tag width {} exceeds the packed-line limit",
            geom.tag_bits()
        );
        let sets_per_way = geom.sets();
        Ok(SkewedAssociativeCache {
            geom,
            sets_per_way,
            words: [
                vec![packed::EMPTY; sets_per_way],
                vec![packed::EMPTY; sets_per_way],
            ],
            stamps: [vec![0; sets_per_way], vec![0; sets_per_way]],
            clock: 0,
            stats: CacheStats::new(),
            usage: SetUsage::new(sets_per_way),
            observer,
        })
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the attached observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// The way-specific tag mix: the identity for way 0, a one-bit rotate
    /// within the index width for way 1.
    #[inline(always)]
    fn mix(tag: u64, way: usize, idx_bits: u32) -> u64 {
        match way {
            0 => tag,
            _ => (tag >> 1) ^ (tag << (idx_bits - 1)),
        }
    }

    /// The skewing function for `way`: index XOR a way-specific mix of the
    /// tag bits. The hot step inlines this computation; the tests pin it.
    #[cfg(test)]
    fn index(&self, addr: Addr, way: usize) -> usize {
        let idx_bits = self.geom.index_bits();
        let idx = addr.bits(self.geom.offset_bits(), idx_bits);
        let tag = self.geom.tag(addr);
        let mask = (self.sets_per_way - 1) as u64;
        ((idx ^ Self::mix(tag, way, idx_bits)) & mask) as usize
    }

    /// Reconstructs the block address of the line at `(way, set)` from
    /// its stored tag by inverting the skew: `index = set XOR mix(tag)`.
    fn block_addr(&self, way: usize, set: usize, tag: u64) -> Addr {
        let idx_bits = self.geom.index_bits();
        let mask = (self.sets_per_way - 1) as u64;
        let idx = (set as u64 ^ Self::mix(tag, way, idx_bits)) & mask;
        Addr::new(((tag << idx_bits) | idx) << self.geom.offset_bits())
    }

    /// One access. Shared verbatim by both paths, so their statistics,
    /// usage counters and event sequences agree by construction.
    #[inline(always)]
    fn step(&mut self, tally: &mut BatchTally, addr: Addr, kind: AccessKind) -> AccessResult {
        let idx_bits = self.geom.index_bits();
        let mask = (self.sets_per_way - 1) as u64;
        let idx = addr.bits(self.geom.offset_bits(), idx_bits);
        let tag = self.geom.tag(addr);
        let s0 = ((idx ^ tag) & mask) as usize;
        let s1 = ((idx ^ Self::mix(tag, 1, idx_bits)) & mask) as usize;
        self.clock += 1;
        // Way 0 is probed first, matching the original lookup order.
        let w0 = self.words[0][s0];
        let w1 = self.words[1][s1];
        let (hit_way, hit_set) = if packed::matches(w0, tag) {
            (0usize, s0)
        } else if packed::matches(w1, tag) {
            (1usize, s1)
        } else {
            (2usize, 0)
        };
        if hit_way < 2 {
            tally.record(kind, true);
            self.usage.record(hit_set, true);
            if O::ENABLED {
                self.observer.event(Event::SetTouch {
                    set: hit_set as u64,
                    hit: true,
                });
            }
            self.stamps[hit_way][hit_set] = self.clock;
            if kind.is_write() {
                let w = self.words[hit_way][hit_set];
                self.words[hit_way][hit_set] = packed::set_dirty(w);
            }
            return AccessResult::hit();
        }
        tally.record(kind, false);
        if O::ENABLED {
            self.observer.event(Event::Miss {
                kind: MissKind::Tag,
            });
        }
        // Prefer an invalid slot in either way; otherwise replace the
        // older of the two candidate lines.
        let way = if !packed::is_valid(w0) {
            0
        } else if !packed::is_valid(w1) {
            1
        } else if self.stamps[0][s0] <= self.stamps[1][s1] {
            0
        } else {
            1
        };
        let s = if way == 0 { s0 } else { s1 };
        self.usage.record(s, false);
        if O::ENABLED {
            self.observer.event(Event::SetTouch {
                set: s as u64,
                hit: false,
            });
        }
        let old = if way == 0 { w0 } else { w1 };
        let evicted = if packed::is_valid(old) {
            let ev = Eviction {
                block: self.block_addr(way, s, packed::tag(old)),
                dirty: packed::is_dirty(old),
            };
            tally.record_writeback_if(ev.dirty);
            Some(ev)
        } else {
            None
        };
        self.words[way][s] = packed::fill(tag, kind.is_write());
        self.stamps[way][s] = self.clock;
        AccessResult::miss(evicted)
    }
}

impl<O: Observer> CacheModel for SkewedAssociativeCache<O> {
    fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        let mut tally = BatchTally::new();
        let result = self.step(&mut tally, addr, kind);
        tally.flush(&mut self.stats);
        result
    }

    fn access_batch(&mut self, accesses: &[(Addr, AccessKind)]) {
        // Shared-step replay with register-tallied stats. Bit-identical
        // to the `access` loop (the batch-equivalence suite enforces it,
        // events included).
        let mut tally = BatchTally::new();
        for &(addr, kind) in accesses {
            self.step(&mut tally, addr, kind);
        }
        tally.flush(&mut self.stats);
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.usage.reset();
    }

    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn set_usage(&self) -> Option<&SetUsage> {
        Some(&self.usage)
    }

    fn label(&self) -> String {
        format!("{}k-skew2", self.geom.size_bytes() / 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectMappedCache;

    fn tiny() -> SkewedAssociativeCache {
        SkewedAssociativeCache::new(512, 32).unwrap()
    }

    #[test]
    fn basic_hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(Addr::new(0x100), AccessKind::Read).hit);
        assert!(c.access(Addr::new(0x11f), AccessKind::Read).hit);
    }

    #[test]
    fn skewing_disperses_dm_conflicts() {
        // Blocks spaced by the way size collide in every set of a DM cache
        // but hash to different sets in at least one skewed way.
        let mut skew = tiny();
        let mut dm = DirectMappedCache::new(512, 32).unwrap();
        for _ in 0..100 {
            for k in 0..4u64 {
                let a = Addr::new(k * 512);
                skew.access(a, AccessKind::Read);
                dm.access(a, AccessKind::Read);
            }
        }
        assert!(
            skew.stats().total().misses() < dm.stats().total().misses(),
            "skewed {} vs dm {}",
            skew.stats().total().misses(),
            dm.stats().total().misses()
        );
    }

    #[test]
    fn both_ways_are_used() {
        let mut c = tiny();
        for k in 0..64u64 {
            c.access(Addr::new(k * 32), AccessKind::Read);
        }
        let used0 = c.words[0].iter().filter(|w| packed::is_valid(**w)).count();
        let used1 = c.words[1].iter().filter(|w| packed::is_valid(**w)).count();
        assert!(used0 > 0 && used1 > 0);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        // Saturate the cache with writes, then stream reads over fresh
        // blocks; some dirty block must eventually be pushed out.
        for k in 0..16u64 {
            c.access(Addr::new(k * 32), AccessKind::Write);
        }
        for k in 100..164u64 {
            c.access(Addr::new(k * 32), AccessKind::Read);
        }
        assert!(c.stats().writebacks() > 0);
    }

    #[test]
    fn evicted_blocks_reconstruct_their_address() {
        // Force a resident block out with conflicting fills and check the
        // eviction names the original block base (the skew inversion).
        let mut c = tiny();
        c.access(Addr::new(0x100), AccessKind::Read);
        let mut seen = Vec::new();
        for k in 1..64u64 {
            if let Some(ev) = c
                .access(Addr::new(k * 512 + 0x100), AccessKind::Read)
                .evicted
            {
                seen.push(ev.block.raw());
            }
        }
        assert!(
            seen.contains(&0x100),
            "block 0x100 must eventually be evicted under its own address, saw {seen:x?}"
        );
    }

    #[test]
    fn indices_stay_in_range() {
        let c = tiny();
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            for w in 0..2 {
                assert!(c.index(Addr::new(x), w) < c.sets_per_way);
            }
        }
    }

    #[test]
    fn ways_use_different_hashes() {
        let c = tiny();
        let differs = (0..256u64)
            .map(|k| Addr::new(k * 256))
            .filter(|&a| c.index(a, 0) != c.index(a, 1))
            .count();
        assert!(differs > 0, "the two skewing functions must not coincide");
    }

    #[test]
    fn rejects_single_set_geometry() {
        assert!(SkewedAssociativeCache::new(64, 32).is_err());
    }

    #[test]
    fn label_is_descriptive() {
        assert_eq!(
            SkewedAssociativeCache::new(16 * 1024, 32).unwrap().label(),
            "16k-skew2"
        );
    }

    /// Fuzz-subsystem hook: demand-fill sanity — never a hit on a block
    /// the cache has not seen, and at least one miss per distinct block
    /// (the compulsory bound). `harness::fuzz` checks the same invariants
    /// on random configurations.
    #[test]
    fn is_demand_fill() {
        use std::collections::HashSet;
        let mut c = SkewedAssociativeCache::new(512, 32).unwrap();
        let mut seen = HashSet::new();
        let mut x = 0x0F1E_2D3Cu64;
        for i in 0..4000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = ((x >> 16) % 128) * 32;
            let hit = c.access(Addr::new(addr), AccessKind::Read).hit;
            assert!(
                !hit || seen.contains(&addr),
                "access {i}: hit on unseen {addr:#x}"
            );
            seen.insert(addr);
        }
        assert!(c.stats().total().misses() >= seen.len() as u64);
    }

    fn fuzz_accesses(records: usize, seed: u64) -> Vec<(Addr, AccessKind)> {
        let mut x = seed ^ 0x0F1E_2D3Cu64;
        (0..records)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let kind = if x & 4 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                (Addr::new(((x >> 16) % 256) * 32), kind)
            })
            .collect()
    }

    #[test]
    fn access_batch_is_bit_identical_to_the_loop() {
        let mut looped = SkewedAssociativeCache::new(1024, 32).unwrap();
        let mut batched = SkewedAssociativeCache::new(1024, 32).unwrap();
        let accesses = fuzz_accesses(6_000, 5);
        for &(addr, kind) in &accesses {
            looped.access(addr, kind);
        }
        batched.access_batch(&accesses);
        assert_eq!(looped.stats(), batched.stats());
        assert_eq!(looped.usage, batched.usage, "usage counters");
        assert_eq!(looped.words, batched.words, "packed line words");
        assert_eq!(looped.stamps, batched.stamps, "timestamps");
        assert_eq!(looped.clock, batched.clock, "clocks");
    }

    #[test]
    fn observer_sees_identical_events_from_loop_and_batch() {
        use telemetry::EventRing;
        let accesses = fuzz_accesses(5_000, 47);
        let mut looped =
            SkewedAssociativeCache::with_observer(1024, 32, EventRing::new(64 * 1024)).unwrap();
        let mut batched =
            SkewedAssociativeCache::with_observer(1024, 32, EventRing::new(64 * 1024)).unwrap();
        for &(addr, kind) in &accesses {
            looped.access(addr, kind);
        }
        batched.access_batch(&accesses);
        let a: Vec<_> = looped.observer().iter().map(|(_, e)| e.clone()).collect();
        let b: Vec<_> = batched.observer().iter().map(|(_, e)| e.clone()).collect();
        assert!(!a.is_empty(), "the fuzz stream must generate events");
        assert_eq!(a, b, "per-access and batched event sequences diverge");
    }
}
