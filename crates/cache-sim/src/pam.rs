//! Partial address matching (PAM), a related-work baseline from
//! Section 7.2 of the paper.
//!
//! A 2-way set-associative cache whose tag store is split into a fast
//! *partial address directory* (PAD, a few low tag bits) used to predict
//! the hit way, and the full *main directory* (MD) that verifies it.
//! When the PAD prediction is wrong — either a partial-tag alias or a
//! PAD miss on a resident block (impossible here; aliases are the issue)
//! — a second cycle is needed. The B-Cache's counterargument: every
//! B-Cache hit is one cycle, with a miss rate a 2-way cache cannot reach.

use crate::addr::Addr;
use crate::geometry::{CacheGeometry, GeometryError};
use crate::model::{AccessKind, AccessResult, CacheModel};
use crate::replacement::PolicyKind;
use crate::set_assoc::SetAssociativeCache;
use crate::stats::{CacheStats, SetUsage};

/// A 2-way cache with PAD-based way prediction.
///
/// Functionally (for hits/misses) identical to a 2-way LRU cache; the
/// added value is the latency model: a hit whose way was mispredicted by
/// the partial-tag comparison costs one extra cycle
/// ([`AccessResult::extra_latency`]).
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, CacheModel, PartialMatchCache};
///
/// let mut pam = PartialMatchCache::new(16 * 1024, 32, 5)?;
/// pam.access(0x0u64.into(), AccessKind::Read);
/// assert!(pam.access(0x4u64.into(), AccessKind::Read).hit);
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct PartialMatchCache {
    inner: SetAssociativeCache,
    pad_bits: u32,
    // Shadow of the inner cache's contents: block ids per (set, way),
    // kept in sync so PAD predictions can be evaluated.
    shadow: Vec<Option<u64>>,
    second_cycle_hits: u64,
}

impl PartialMatchCache {
    /// Creates a 2-way PAM cache with `pad_bits` of partial tag (the
    /// paper's example uses 5).
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn new(size_bytes: usize, line_bytes: usize, pad_bits: u32) -> Result<Self, GeometryError> {
        let inner = SetAssociativeCache::new(size_bytes, line_bytes, 2, PolicyKind::Lru, 0)?;
        let sets = inner.geometry().sets();
        Ok(PartialMatchCache {
            inner,
            pad_bits,
            shadow: vec![None; sets * 2],
            second_cycle_hits: 0,
        })
    }

    fn partial_tag(&self, tag: u64) -> u64 {
        tag & ((1u64 << self.pad_bits) - 1)
    }

    /// Hits that needed the second (corrective) cycle.
    pub fn second_cycle_hits(&self) -> u64 {
        self.second_cycle_hits
    }

    /// Fraction of hits served in the first cycle.
    pub fn first_cycle_hit_fraction(&self) -> f64 {
        let hits = self.inner.stats().total().hits();
        if hits == 0 {
            1.0
        } else {
            1.0 - self.second_cycle_hits as f64 / hits as f64
        }
    }
}

impl CacheModel for PartialMatchCache {
    fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        let geom = self.inner.geometry();
        let set = geom.set_index(addr);
        let tag = geom.tag(addr);
        let id = (tag << geom.index_bits()) | set as u64;

        // PAD prediction: the first way whose partial tag matches.
        let predicted = (0..2).find(|w| {
            self.shadow[set * 2 + w]
                .map(|b| self.partial_tag(b >> geom.index_bits()) == self.partial_tag(tag))
                .unwrap_or(false)
        });
        // Ground truth via the real cache.
        let actual = (0..2).find(|w| self.shadow[set * 2 + w] == Some(id));

        let mut result = self.inner.access(addr, kind);
        if result.hit {
            // Wrong-way prediction (a partial-tag alias in the other way)
            // costs a corrective cycle.
            if predicted != actual {
                self.second_cycle_hits += 1;
                result.extra_latency = 1;
            }
        } else {
            // Mirror the fill into the shadow directory.
            if let Some(ev) = result.evicted {
                let ev_id = ev.block.raw() >> geom.offset_bits();
                for slot in self.shadow[set * 2..set * 2 + 2].iter_mut() {
                    if *slot == Some(ev_id) {
                        *slot = None;
                    }
                }
            }
            let empty = (0..2)
                .find(|w| self.shadow[set * 2 + w].is_none())
                .expect("eviction freed a way");
            self.shadow[set * 2 + empty] = Some(id);
        }
        result
    }

    fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
        self.second_cycle_hits = 0;
    }

    fn geometry(&self) -> CacheGeometry {
        self.inner.geometry()
    }

    fn set_usage(&self) -> Option<&SetUsage> {
        self.inner.set_usage()
    }

    fn label(&self) -> String {
        format!(
            "{}k-pam{}",
            self.geometry().size_bytes() / 1024,
            self.pad_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_assoc::SetAssociativeCache;

    fn tiny() -> PartialMatchCache {
        PartialMatchCache::new(256, 32, 3).unwrap()
    }

    #[test]
    fn hit_miss_behaviour_equals_two_way() {
        let mut pam = tiny();
        let mut sa = SetAssociativeCache::new(256, 32, 2, PolicyKind::Lru, 0).unwrap();
        let mut x = 5u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = Addr::new((x >> 13) % 4096);
            let a = pam.access(addr, AccessKind::Read);
            let b = sa.access(addr, AccessKind::Read);
            assert_eq!(a.hit, b.hit, "at {addr}");
        }
        assert_eq!(pam.stats().total(), sa.stats().total());
    }

    #[test]
    fn correct_predictions_are_single_cycle() {
        let mut pam = tiny();
        pam.access(Addr::new(0x40), AccessKind::Read);
        let r = pam.access(Addr::new(0x40), AccessKind::Read);
        assert!(r.hit);
        assert_eq!(r.extra_latency, 0);
        assert_eq!(pam.second_cycle_hits(), 0);
    }

    #[test]
    fn partial_tag_aliases_cost_a_second_cycle() {
        // Two blocks in the same set whose tags agree in the low 3 bits:
        // tags t and t + 8 (with 3 PAD bits).
        let mut pam = tiny();
        // 4 sets: tag = addr >> 7. Set 1: addr = 0x20.
        let a = Addr::new(0x20); // tag 0
        let b = Addr::new(0x20 + (8 << 7)); // tag 8: same low 3 bits as 0
        pam.access(a, AccessKind::Read);
        pam.access(b, AccessKind::Read);
        // Accessing `b` predicts way 0 (block a's partial tag matches
        // first) but the block lives in way 1: second-cycle hit.
        let r = pam.access(b, AccessKind::Read);
        assert!(r.hit);
        assert_eq!(r.extra_latency, 1);
        assert!(pam.second_cycle_hits() >= 1);
    }

    #[test]
    fn distinct_partial_tags_predict_perfectly() {
        let mut pam = tiny();
        let a = Addr::new(0x20); // tag 0
        let b = Addr::new(0x20 + (1 << 7)); // tag 1: differs in PAD bits
        pam.access(a, AccessKind::Read);
        pam.access(b, AccessKind::Read);
        assert_eq!(pam.access(a, AccessKind::Read).extra_latency, 0);
        assert_eq!(pam.access(b, AccessKind::Read).extra_latency, 0);
        assert!((pam.first_cycle_hit_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_prediction_counters() {
        let mut pam = tiny();
        pam.access(Addr::new(0x20), AccessKind::Read);
        pam.access(Addr::new(0x20 + (8 << 7)), AccessKind::Read);
        pam.access(Addr::new(0x20 + (8 << 7)), AccessKind::Read);
        pam.reset_stats();
        assert_eq!(pam.second_cycle_hits(), 0);
        assert_eq!(pam.stats().total().accesses(), 0);
    }

    #[test]
    fn label_mentions_pad_width() {
        assert_eq!(
            PartialMatchCache::new(16 * 1024, 32, 5).unwrap().label(),
            "16k-pam5"
        );
    }

    /// Differential hook: this cache is contractually an n-way LRU array
    /// (the lookup machinery changes latency/energy, never hits, misses
    /// or evictions), so the reference oracle must track it exactly.
    #[test]
    fn matches_reference_oracle() {
        use crate::oracle::OracleCache;
        let mut model = PartialMatchCache::new(1024, 32, 3).unwrap();
        let mut oracle = OracleCache::new(1024, 32, 2, crate::PolicyKind::Lru, 0, 32);
        let mut x = 0x2468_ACE0u64;
        for i in 0..4000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = ((x >> 16) % 256) * 32;
            let kind = if x & 4 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let got = model.access(Addr::new(addr), kind);
            let want = oracle.access(Addr::new(addr), kind);
            assert_eq!(want.diff(&got), None, "access {i} at {addr:#x}");
        }
    }
}
