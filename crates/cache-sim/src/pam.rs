//! Partial address matching (PAM), a related-work baseline from
//! Section 7.2 of the paper.
//!
//! A 2-way set-associative cache whose tag store is split into a fast
//! *partial address directory* (PAD, a few low tag bits) used to predict
//! the hit way, and the full *main directory* (MD) that verifies it.
//! When the PAD prediction is wrong — either a partial-tag alias or a
//! PAD miss on a resident block (impossible here; aliases are the issue)
//! — a second cycle is needed. The B-Cache's counterargument: every
//! B-Cache hit is one cycle, with a miss rate a 2-way cache cannot reach.

use telemetry::{NullObserver, Observer};

use crate::addr::Addr;
use crate::geometry::{CacheGeometry, GeometryError};
use crate::model::{AccessKind, AccessResult, CacheModel};
use crate::replacement::{Lru, PolicyKind};
use crate::set_assoc::{step_one, SetAssociativeCache};
use crate::stats::{BatchTally, CacheStats, SetUsage};

/// A 2-way cache with PAD-based way prediction.
///
/// Functionally (for hits/misses) identical to a 2-way LRU cache; the
/// added value is the latency model: a hit whose way was mispredicted by
/// the partial-tag comparison costs one extra cycle
/// ([`AccessResult::extra_latency`]).
///
/// [`CacheModel::access_batch`] fuses the PAD prediction and the shadow
/// bookkeeping around the shared set-associative step kernel and is
/// bit-identical to the per-access path, [`Observer`] events included.
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, CacheModel, PartialMatchCache};
///
/// let mut pam = PartialMatchCache::new(16 * 1024, 32, 5)?;
/// pam.access(0x0u64.into(), AccessKind::Read);
/// assert!(pam.access(0x4u64.into(), AccessKind::Read).hit);
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct PartialMatchCache<O: Observer = NullObserver> {
    inner: SetAssociativeCache<O>,
    pad_bits: u32,
    // Shadow of the inner cache's contents: block ids per (set, way),
    // kept in sync so PAD predictions can be evaluated.
    shadow: Vec<Option<u64>>,
    second_cycle_hits: u64,
}

impl PartialMatchCache {
    /// Creates a 2-way PAM cache with `pad_bits` of partial tag (the
    /// paper's example uses 5).
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn new(size_bytes: usize, line_bytes: usize, pad_bits: u32) -> Result<Self, GeometryError> {
        Self::with_observer(size_bytes, line_bytes, pad_bits, NullObserver)
    }
}

impl<O: Observer> PartialMatchCache<O> {
    /// Like [`PartialMatchCache::new`], with an observer wired into both
    /// access paths.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn with_observer(
        size_bytes: usize,
        line_bytes: usize,
        pad_bits: u32,
        observer: O,
    ) -> Result<Self, GeometryError> {
        let inner = SetAssociativeCache::with_observer(
            size_bytes,
            line_bytes,
            2,
            PolicyKind::Lru,
            0,
            observer,
        )?;
        let sets = inner.geometry().sets();
        Ok(PartialMatchCache {
            inner,
            pad_bits,
            shadow: vec![None; sets * 2],
            second_cycle_hits: 0,
        })
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        self.inner.observer()
    }

    /// Mutable access to the attached observer.
    pub fn observer_mut(&mut self) -> &mut O {
        self.inner.observer_mut()
    }

    fn partial_tag(&self, tag: u64) -> u64 {
        tag & ((1u64 << self.pad_bits) - 1)
    }

    /// Hits that needed the second (corrective) cycle.
    pub fn second_cycle_hits(&self) -> u64 {
        self.second_cycle_hits
    }

    /// Fraction of hits served in the first cycle.
    pub fn first_cycle_hit_fraction(&self) -> f64 {
        let hits = self.inner.stats().total().hits();
        if hits == 0 {
            1.0
        } else {
            1.0 - self.second_cycle_hits as f64 / hits as f64
        }
    }
}

impl<O: Observer> CacheModel for PartialMatchCache<O> {
    fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        let geom = self.inner.geometry();
        let set = geom.set_index(addr);
        let tag = geom.tag(addr);
        let id = (tag << geom.index_bits()) | set as u64;

        // PAD prediction: the first way whose partial tag matches.
        let predicted = (0..2).find(|w| {
            self.shadow[set * 2 + w]
                .map(|b| self.partial_tag(b >> geom.index_bits()) == self.partial_tag(tag))
                .unwrap_or(false)
        });
        // Ground truth via the real cache.
        let actual = (0..2).find(|w| self.shadow[set * 2 + w] == Some(id));

        let mut result = self.inner.access(addr, kind);
        if result.hit {
            // Wrong-way prediction (a partial-tag alias in the other way)
            // costs a corrective cycle.
            if predicted != actual {
                self.second_cycle_hits += 1;
                result.extra_latency = 1;
            }
        } else {
            // Mirror the fill into the shadow directory.
            if let Some(ev) = result.evicted {
                let ev_id = ev.block.raw() >> geom.offset_bits();
                for slot in self.shadow[set * 2..set * 2 + 2].iter_mut() {
                    if *slot == Some(ev_id) {
                        *slot = None;
                    }
                }
            }
            let empty = (0..2)
                .find(|w| self.shadow[set * 2 + w].is_none())
                .expect("eviction freed a way");
            self.shadow[set * 2 + empty] = Some(id);
        }
        result
    }

    fn access_batch(&mut self, accesses: &[(Addr, AccessKind)]) {
        // Fused kernel: PAD prediction + shared step + shadow mirror.
        // Bit-identical to the `access` loop (the batch-equivalence
        // suite enforces it, events included).
        let index_bits = self.inner.geometry().index_bits();
        let pad_mask = (1u64 << self.pad_bits) - 1;
        let shadow = &mut self.shadow;
        let mut second_cycle = 0u64;
        let (split, _assoc, lines, usage, policy, stats, observer) = self.inner.batch_parts();
        let mut tally = BatchTally::new();
        macro_rules! kernel {
            ($policy:expr) => {{
                let p = $policy;
                for &(addr, kind) in accesses {
                    let set = split.set_index(addr);
                    let tag = split.tag(addr);
                    let id = (tag << index_bits) | set as u64;
                    let predicted = (0..2).find(|w| {
                        shadow[set * 2 + w]
                            .map(|b| (b >> index_bits) & pad_mask == tag & pad_mask)
                            .unwrap_or(false)
                    });
                    let actual = (0..2).find(|w| shadow[set * 2 + w] == Some(id));
                    let out = step_one::<_, _, 2>(
                        &split, 2, lines, usage, p, &mut tally, observer, addr, kind,
                    );
                    if out.hit {
                        if predicted != actual {
                            second_cycle += 1;
                        }
                    } else {
                        if let Some((ev_tag, _)) = out.evicted {
                            let ev_id = (ev_tag << index_bits) | set as u64;
                            for slot in shadow[set * 2..set * 2 + 2].iter_mut() {
                                if *slot == Some(ev_id) {
                                    *slot = None;
                                }
                            }
                        }
                        let empty = (0..2)
                            .find(|w| shadow[set * 2 + w].is_none())
                            .expect("eviction freed a way");
                        shadow[set * 2 + empty] = Some(id);
                    }
                }
            }};
        }
        if let Some(lru) = policy.as_any_mut().downcast_mut::<Lru>() {
            kernel!(lru)
        } else {
            kernel!(policy.as_mut())
        }
        tally.flush(stats);
        self.second_cycle_hits += second_cycle;
    }

    fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
        self.second_cycle_hits = 0;
    }

    fn geometry(&self) -> CacheGeometry {
        self.inner.geometry()
    }

    fn set_usage(&self) -> Option<&SetUsage> {
        self.inner.set_usage()
    }

    fn label(&self) -> String {
        format!(
            "{}k-pam{}",
            self.geometry().size_bytes() / 1024,
            self.pad_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_assoc::SetAssociativeCache;

    fn tiny() -> PartialMatchCache {
        PartialMatchCache::new(256, 32, 3).unwrap()
    }

    #[test]
    fn hit_miss_behaviour_equals_two_way() {
        let mut pam = tiny();
        let mut sa = SetAssociativeCache::new(256, 32, 2, PolicyKind::Lru, 0).unwrap();
        let mut x = 5u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = Addr::new((x >> 13) % 4096);
            let a = pam.access(addr, AccessKind::Read);
            let b = sa.access(addr, AccessKind::Read);
            assert_eq!(a.hit, b.hit, "at {addr}");
        }
        assert_eq!(pam.stats().total(), sa.stats().total());
    }

    #[test]
    fn correct_predictions_are_single_cycle() {
        let mut pam = tiny();
        pam.access(Addr::new(0x40), AccessKind::Read);
        let r = pam.access(Addr::new(0x40), AccessKind::Read);
        assert!(r.hit);
        assert_eq!(r.extra_latency, 0);
        assert_eq!(pam.second_cycle_hits(), 0);
    }

    #[test]
    fn partial_tag_aliases_cost_a_second_cycle() {
        // Two blocks in the same set whose tags agree in the low 3 bits:
        // tags t and t + 8 (with 3 PAD bits).
        let mut pam = tiny();
        // 4 sets: tag = addr >> 7. Set 1: addr = 0x20.
        let a = Addr::new(0x20); // tag 0
        let b = Addr::new(0x20 + (8 << 7)); // tag 8: same low 3 bits as 0
        pam.access(a, AccessKind::Read);
        pam.access(b, AccessKind::Read);
        // Accessing `b` predicts way 0 (block a's partial tag matches
        // first) but the block lives in way 1: second-cycle hit.
        let r = pam.access(b, AccessKind::Read);
        assert!(r.hit);
        assert_eq!(r.extra_latency, 1);
        assert!(pam.second_cycle_hits() >= 1);
    }

    #[test]
    fn distinct_partial_tags_predict_perfectly() {
        let mut pam = tiny();
        let a = Addr::new(0x20); // tag 0
        let b = Addr::new(0x20 + (1 << 7)); // tag 1: differs in PAD bits
        pam.access(a, AccessKind::Read);
        pam.access(b, AccessKind::Read);
        assert_eq!(pam.access(a, AccessKind::Read).extra_latency, 0);
        assert_eq!(pam.access(b, AccessKind::Read).extra_latency, 0);
        assert!((pam.first_cycle_hit_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears_prediction_counters() {
        let mut pam = tiny();
        pam.access(Addr::new(0x20), AccessKind::Read);
        pam.access(Addr::new(0x20 + (8 << 7)), AccessKind::Read);
        pam.access(Addr::new(0x20 + (8 << 7)), AccessKind::Read);
        pam.reset_stats();
        assert_eq!(pam.second_cycle_hits(), 0);
        assert_eq!(pam.stats().total().accesses(), 0);
    }

    #[test]
    fn label_mentions_pad_width() {
        assert_eq!(
            PartialMatchCache::new(16 * 1024, 32, 5).unwrap().label(),
            "16k-pam5"
        );
    }

    fn fuzz_accesses(records: usize, seed: u64) -> Vec<(Addr, AccessKind)> {
        let mut x = seed ^ 0x2468_ACE0u64;
        (0..records)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let kind = if x & 4 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                (Addr::new(((x >> 16) % 256) * 32), kind)
            })
            .collect()
    }

    #[test]
    fn access_batch_is_bit_identical_to_the_loop() {
        let mut looped = PartialMatchCache::new(1024, 32, 3).unwrap();
        let mut batched = PartialMatchCache::new(1024, 32, 3).unwrap();
        let accesses = fuzz_accesses(6_000, 2);
        for &(addr, kind) in &accesses {
            looped.access(addr, kind);
        }
        batched.access_batch(&accesses);
        assert_eq!(looped.stats(), batched.stats());
        assert_eq!(looped.shadow, batched.shadow, "shadow directories");
        assert_eq!(
            looped.second_cycle_hits, batched.second_cycle_hits,
            "second-cycle hit counters"
        );
    }

    #[test]
    fn observer_sees_identical_events_from_loop_and_batch() {
        use telemetry::EventRing;
        let accesses = fuzz_accesses(5_000, 23);
        let mut looped =
            PartialMatchCache::with_observer(1024, 32, 3, EventRing::new(64 * 1024)).unwrap();
        let mut batched =
            PartialMatchCache::with_observer(1024, 32, 3, EventRing::new(64 * 1024)).unwrap();
        for &(addr, kind) in &accesses {
            looped.access(addr, kind);
        }
        batched.access_batch(&accesses);
        let a: Vec<_> = looped.observer().iter().map(|(_, e)| e.clone()).collect();
        let b: Vec<_> = batched.observer().iter().map(|(_, e)| e.clone()).collect();
        assert!(!a.is_empty(), "the fuzz stream must generate events");
        assert_eq!(a, b, "per-access and batched event sequences diverge");
    }

    /// Differential hook: this cache is contractually an n-way LRU array
    /// (the lookup machinery changes latency/energy, never hits, misses
    /// or evictions), so the reference oracle must track it exactly.
    #[test]
    fn matches_reference_oracle() {
        use crate::oracle::OracleCache;
        let mut model = PartialMatchCache::new(1024, 32, 3).unwrap();
        let mut oracle = OracleCache::new(1024, 32, 2, crate::PolicyKind::Lru, 0, 32);
        let mut x = 0x2468_ACE0u64;
        for i in 0..4000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = ((x >> 16) % 256) * 32;
            let kind = if x & 4 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let got = model.access(Addr::new(addr), kind);
            let want = oracle.access(Addr::new(addr), kind);
            assert_eq!(want.diff(&got), None, "access {i} at {addr:#x}");
        }
    }
}
