//! Replacement policies.
//!
//! Policies are stateful per `(set, way)` grids. The same machinery serves
//! conventional set-associative caches and the B-Cache, whose "sets" are
//! the NPI groups of `BAS` candidate ways each (paper Section 3.3).

use std::any::Any;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which replacement policy to instantiate.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub enum PolicyKind {
    /// Least-recently-used, the paper's default for every figure.
    #[default]
    Lru,
    /// First-in-first-out (fill order).
    Fifo,
    /// Uniform random victim, the paper's low-cost alternative.
    Random,
    /// Tree pseudo-LRU (requires power-of-two associativity).
    TreePlru,
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Fifo => "FIFO",
            PolicyKind::Random => "random",
            PolicyKind::TreePlru => "tree-PLRU",
        })
    }
}

/// Per-set replacement state over a fixed `(sets, assoc)` grid.
///
/// Callers must route events consistently: [`on_access`] on every hit,
/// [`on_fill`] on every fill, and [`victim`] only when all ways of the set
/// hold valid blocks (invalid ways should be filled first).
///
/// [`on_access`]: ReplacementPolicy::on_access
/// [`on_fill`]: ReplacementPolicy::on_fill
/// [`victim`]: ReplacementPolicy::victim
pub trait ReplacementPolicy: fmt::Debug {
    /// Notes a hit on `(set, way)`.
    fn on_access(&mut self, set: usize, way: usize);

    /// Notes a fill into `(set, way)`.
    fn on_fill(&mut self, set: usize, way: usize);

    /// Chooses the way to evict from a full `set`.
    fn victim(&mut self, set: usize) -> usize;

    /// The policy's kind.
    fn kind(&self) -> PolicyKind;

    /// The concrete policy as [`Any`], so batch kernels can specialize
    /// on a known type (inlining its updates) instead of paying a
    /// virtual call per access.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// Creates a boxed policy for a `(sets, assoc)` grid.
///
/// `seed` only matters for [`PolicyKind::Random`], which must be
/// deterministic for reproducible experiments.
///
/// # Panics
///
/// Panics if `sets` or `assoc` is zero, or if `TreePlru` is requested with
/// a non-power-of-two associativity.
pub fn make_policy(
    kind: PolicyKind,
    sets: usize,
    assoc: usize,
    seed: u64,
) -> Box<dyn ReplacementPolicy> {
    assert!(sets > 0 && assoc > 0, "policy grid must be non-empty");
    match kind {
        PolicyKind::Lru => Box::new(Lru::new(sets, assoc)),
        PolicyKind::Fifo => Box::new(Fifo::new(sets, assoc)),
        PolicyKind::Random => Box::new(RandomPolicy::new(sets, assoc, seed)),
        PolicyKind::TreePlru => Box::new(TreePlru::new(sets, assoc)),
    }
}

/// True LRU via monotonic access stamps.
#[derive(Debug)]
pub struct Lru {
    assoc: usize,
    stamps: Vec<u64>,
    clock: u64,
}

impl Lru {
    /// Creates LRU state for a `(sets, assoc)` grid.
    pub fn new(sets: usize, assoc: usize) -> Self {
        Lru {
            assoc,
            stamps: vec![0; sets * assoc],
            clock: 0,
        }
    }

    #[inline]
    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.stamps[set * self.assoc + way] = self.clock;
    }
}

impl ReplacementPolicy for Lru {
    #[inline]
    fn on_access(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    #[inline]
    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.assoc;
        // First minimal stamp via the lane-sliced min reduction: the
        // iterator min_by_key compiles to a serial compare chain that
        // dominates wide-associativity miss paths, while `min_index`
        // runs four stamps per compare on the AVX2 backend (identical
        // lowest-index tie-break either way).
        crate::simd::min_index(&self.stamps[base..base + self.assoc])
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Lru
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// FIFO: the way filled longest ago is evicted; hits do not refresh.
#[derive(Debug)]
pub struct Fifo {
    assoc: usize,
    fill_stamps: Vec<u64>,
    clock: u64,
}

impl Fifo {
    /// Creates FIFO state for a `(sets, assoc)` grid.
    pub fn new(sets: usize, assoc: usize) -> Self {
        Fifo {
            assoc,
            fill_stamps: vec![0; sets * assoc],
            clock: 0,
        }
    }
}

impl ReplacementPolicy for Fifo {
    fn on_access(&mut self, _set: usize, _way: usize) {}

    fn on_fill(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.fill_stamps[set * self.assoc + way] = self.clock;
    }

    fn victim(&mut self, set: usize) -> usize {
        let base = set * self.assoc;
        let slice = &self.fill_stamps[base..base + self.assoc];
        slice
            .iter()
            .enumerate()
            .min_by_key(|&(_, stamp)| *stamp)
            .map(|(way, _)| way)
            .expect("associativity is nonzero")
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Fifo
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Uniform random victim selection with a seeded generator.
pub struct RandomPolicy {
    assoc: usize,
    rng: StdRng,
}

impl RandomPolicy {
    /// Creates random-replacement state; `sets` is accepted for interface
    /// symmetry but unused.
    pub fn new(_sets: usize, assoc: usize, seed: u64) -> Self {
        RandomPolicy {
            assoc,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl fmt::Debug for RandomPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RandomPolicy")
            .field("assoc", &self.assoc)
            .finish()
    }
}

impl ReplacementPolicy for RandomPolicy {
    fn on_access(&mut self, _set: usize, _way: usize) {}

    fn on_fill(&mut self, _set: usize, _way: usize) {}

    fn victim(&mut self, _set: usize) -> usize {
        self.rng.gen_range(0..self.assoc)
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::Random
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Tree pseudo-LRU over a power-of-two associativity.
///
/// Each set keeps `assoc - 1` direction bits arranged as an implicit
/// binary tree; an access flips the bits along its path to point away from
/// the touched way, and the victim walk follows the bits.
#[derive(Debug)]
pub struct TreePlru {
    assoc: usize,
    // assoc - 1 bits per set, flattened. bits[0] is the root.
    bits: Vec<bool>,
}

impl TreePlru {
    /// Creates tree-PLRU state.
    ///
    /// # Panics
    ///
    /// Panics if `assoc` is not a power of two.
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(
            assoc.is_power_of_two(),
            "tree-PLRU requires power-of-two associativity"
        );
        TreePlru {
            assoc,
            bits: vec![false; sets * (assoc.max(2) - 1)],
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        if self.assoc == 1 {
            return;
        }
        let base = set * (self.assoc - 1);
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.assoc;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let go_right = way >= mid;
            // Point the bit at the *other* half so the victim walk avoids
            // the recently used way.
            self.bits[base + node] = !go_right;
            if go_right {
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
    }
}

impl ReplacementPolicy for TreePlru {
    fn on_access(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn on_fill(&mut self, set: usize, way: usize) {
        self.touch(set, way);
    }

    fn victim(&mut self, set: usize) -> usize {
        if self.assoc == 1 {
            return 0;
        }
        let base = set * (self.assoc - 1);
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.assoc;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.bits[base + node] {
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        lo
    }

    fn kind(&self) -> PolicyKind {
        PolicyKind::TreePlru
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut p = Lru::new(1, 4);
        for way in 0..4 {
            p.on_fill(0, way);
        }
        p.on_access(0, 0); // order now: 1 oldest, then 2, 3, 0
        assert_eq!(p.victim(0), 1);
        p.on_access(0, 1);
        assert_eq!(p.victim(0), 2);
    }

    #[test]
    fn lru_sets_are_independent() {
        let mut p = Lru::new(2, 2);
        p.on_fill(0, 0);
        p.on_fill(1, 1);
        p.on_fill(0, 1);
        p.on_fill(1, 0);
        assert_eq!(p.victim(0), 0);
        assert_eq!(p.victim(1), 1);
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut p = Fifo::new(1, 3);
        p.on_fill(0, 0);
        p.on_fill(0, 1);
        p.on_fill(0, 2);
        p.on_access(0, 0); // must not refresh way 0
        assert_eq!(p.victim(0), 0);
        p.on_fill(0, 0);
        assert_eq!(p.victim(0), 1);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let mut a = RandomPolicy::new(1, 8, 42);
        let mut b = RandomPolicy::new(1, 8, 42);
        for _ in 0..100 {
            let va = a.victim(0);
            assert_eq!(va, b.victim(0));
            assert!(va < 8);
        }
    }

    #[test]
    fn random_different_seeds_diverge() {
        let mut a = RandomPolicy::new(1, 8, 1);
        let mut b = RandomPolicy::new(1, 8, 2);
        let same = (0..64).filter(|_| a.victim(0) == b.victim(0)).count();
        assert!(
            same < 64,
            "different seeds should not produce identical streams"
        );
    }

    #[test]
    fn tree_plru_never_evicts_most_recent() {
        let mut p = TreePlru::new(1, 8);
        for way in 0..8 {
            p.on_fill(0, way);
        }
        for way in 0..8 {
            p.on_access(0, way);
            assert_ne!(p.victim(0), way, "PLRU must not pick the just-touched way");
        }
    }

    #[test]
    fn tree_plru_matches_lru_for_two_ways() {
        // For assoc=2 tree-PLRU is exact LRU.
        let mut plru = TreePlru::new(1, 2);
        let mut lru = Lru::new(1, 2);
        let pattern = [0usize, 1, 0, 0, 1, 1, 0, 1, 1, 0];
        for &w in &pattern {
            plru.on_access(0, w);
            lru.on_access(0, w);
            assert_eq!(plru.victim(0), lru.victim(0));
        }
    }

    #[test]
    fn tree_plru_handles_assoc_one() {
        let mut p = TreePlru::new(4, 1);
        p.on_fill(3, 0);
        assert_eq!(p.victim(3), 0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn tree_plru_rejects_odd_assoc() {
        TreePlru::new(1, 3);
    }

    #[test]
    fn make_policy_dispatches() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Random,
            PolicyKind::TreePlru,
        ] {
            let p = make_policy(kind, 4, 4, 7);
            assert_eq!(p.kind(), kind);
        }
    }

    #[test]
    fn policy_kind_display() {
        assert_eq!(PolicyKind::Lru.to_string(), "LRU");
        assert_eq!(PolicyKind::Random.to_string(), "random");
    }

    #[test]
    fn single_way_victim_is_always_zero_for_every_policy() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Random,
            PolicyKind::TreePlru,
        ] {
            let mut p = make_policy(kind, 4, 1, 9);
            for set in 0..4 {
                p.on_fill(set, 0);
                p.on_access(set, 0);
                for _ in 0..8 {
                    assert_eq!(p.victim(set), 0, "{kind:?} set {set}");
                }
            }
        }
    }

    #[test]
    fn lru_cold_set_victim_is_way_zero() {
        // All stamps equal: min_by_key ties break to the lowest way.
        let mut p = Lru::new(2, 4);
        assert_eq!(p.victim(0), 0);
        assert_eq!(p.victim(1), 0);
    }

    #[test]
    fn lru_repeated_touch_is_idempotent() {
        let mut p = Lru::new(1, 4);
        for way in 0..4 {
            p.on_fill(0, way);
        }
        for _ in 0..5 {
            p.on_access(0, 2); // hammering one way must not reorder the rest
        }
        assert_eq!(p.victim(0), 0);
        p.on_access(0, 0);
        assert_eq!(p.victim(0), 1);
    }

    #[test]
    fn lru_eviction_order_under_cyclic_wraparound() {
        let mut p = Lru::new(1, 4);
        for way in 0..4 {
            p.on_fill(0, way);
        }
        // A cyclic sweep: after touching way i, the victim is i+1 (mod 4),
        // for as long as the sweep runs (clock stamps never wrap in u64).
        for round in 0..3 {
            for way in 0..4 {
                p.on_access(0, way);
                assert_eq!(p.victim(0), (way + 1) % 4, "round {round} way {way}");
            }
        }
    }

    #[test]
    fn fifo_eviction_order_wraps_in_fill_order() {
        let mut p = Fifo::new(1, 3);
        for way in 0..3 {
            p.on_fill(0, way);
        }
        // Refilling the victim each time walks the ways in fill order and
        // wraps around indefinitely.
        for expect in [0usize, 1, 2, 0, 1, 2, 0] {
            let v = p.victim(0);
            assert_eq!(v, expect);
            p.on_fill(0, v);
        }
    }

    #[test]
    fn tree_plru_victim_fill_cycle_covers_every_way() {
        // With the victim refilled each time (the miss path), tree-PLRU
        // walks a fixed permutation of the ways: 0, 2, 1, 3 for assoc 4.
        let mut p = TreePlru::new(1, 4);
        for way in 0..4 {
            p.on_fill(0, way);
        }
        let mut victims = Vec::new();
        for _ in 0..8 {
            let v = p.victim(0);
            victims.push(v);
            p.on_fill(0, v);
        }
        assert_eq!(victims, [0, 2, 1, 3, 0, 2, 1, 3]);
    }

    #[test]
    fn random_covers_every_way_eventually() {
        let mut p = RandomPolicy::new(1, 4, 3);
        let mut seen = [false; 4];
        for _ in 0..256 {
            seen[p.victim(0)] = true;
        }
        assert_eq!(seen, [true; 4], "random victims must cover all ways");
    }
}
