//! Memory addresses and bit-field helpers.
//!
//! Every cache model in this workspace indexes and tags blocks by slicing
//! bit fields out of an address. [`Addr`] is a thin newtype over `u64` so
//! that raw trace offsets, PC values and cache-block bases cannot be mixed
//! up with ordinary integers, plus a handful of bit-extraction helpers that
//! the models share.

use std::fmt;
use std::ops::{Add, Sub};

/// A byte address in the simulated 32-bit (by default) physical address
/// space.
///
/// The paper assumes 32-bit addresses; the simulator stores them in a `u64`
/// so synthetic workloads may exceed 4 GiB when convenient. Bit-slicing
/// helpers treat bit 0 as the least significant bit.
///
/// # Examples
///
/// ```
/// use cache_sim::Addr;
///
/// let a = Addr::new(0xDEAD_BEEF);
/// assert_eq!(a.bits(4, 8), 0xEE);         // bits [4, 12)
/// assert_eq!(a.align_down(32), Addr::new(0xDEAD_BEE0));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw integer.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw integer value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Extracts `count` bits starting at bit `lo` (LSB = bit 0).
    ///
    /// Returns the bits right-aligned. `count == 0` yields `0`.
    ///
    /// # Panics
    ///
    /// Panics if `lo + count > 64`.
    pub const fn bits(self, lo: u32, count: u32) -> u64 {
        assert!(lo + count <= 64, "bit range out of the 64-bit word");
        if count == 0 {
            return 0;
        }
        let mask = if count == 64 {
            u64::MAX
        } else {
            (1u64 << count) - 1
        };
        (self.0 >> lo) & mask
    }

    /// Rounds the address down to a multiple of `align` (a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub const fn align_down(self, align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        Addr(self.0 & !(align - 1))
    }

    /// Returns `true` if the address is a multiple of `align` (a power of
    /// two).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub const fn is_aligned(self, align: u64) -> bool {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.0 & (align - 1) == 0
    }

    /// Returns the address advanced by `offset` bytes.
    pub const fn offset(self, offset: u64) -> Self {
        Addr(self.0.wrapping_add(offset))
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(addr: Addr) -> Self {
        addr.0
    }
}

impl Add<u64> for Addr {
    type Output = Addr;

    fn add(self, rhs: u64) -> Addr {
        Addr(self.0.wrapping_add(rhs))
    }
}

impl Sub<u64> for Addr {
    type Output = Addr;

    fn sub(self, rhs: u64) -> Addr {
        Addr(self.0.wrapping_sub(rhs))
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Addr({:#x})", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

/// Returns `log2(n)` for a power-of-two `n`.
///
/// This is the workhorse for turning sizes (sets, ways, mapping factors)
/// into field widths.
///
/// # Panics
///
/// Panics if `n` is zero or not a power of two.
///
/// # Examples
///
/// ```
/// assert_eq!(cache_sim::addr::log2_exact(512), 9);
/// ```
pub const fn log2_exact(n: u64) -> u32 {
    assert!(n.is_power_of_two(), "value must be a power of two");
    n.trailing_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_extracts_right_aligned_fields() {
        let a = Addr::new(0b1011_0110);
        assert_eq!(a.bits(0, 3), 0b110);
        assert_eq!(a.bits(3, 3), 0b110);
        assert_eq!(a.bits(4, 4), 0b1011);
        assert_eq!(a.bits(0, 0), 0);
    }

    #[test]
    fn bits_full_word() {
        let a = Addr::new(u64::MAX);
        assert_eq!(a.bits(0, 64), u64::MAX);
        assert_eq!(a.bits(63, 1), 1);
    }

    #[test]
    #[should_panic(expected = "bit range")]
    fn bits_rejects_out_of_range() {
        Addr::new(0).bits(60, 8);
    }

    #[test]
    fn align_down_masks_low_bits() {
        assert_eq!(Addr::new(0x1234).align_down(32), Addr::new(0x1220));
        assert_eq!(Addr::new(0x1220).align_down(32), Addr::new(0x1220));
        assert_eq!(Addr::new(31).align_down(32), Addr::new(0));
    }

    #[test]
    fn is_aligned_checks_low_bits() {
        assert!(Addr::new(0x40).is_aligned(64));
        assert!(!Addr::new(0x41).is_aligned(64));
        assert!(Addr::new(0).is_aligned(1));
    }

    #[test]
    fn arithmetic_wraps() {
        let a = Addr::new(u64::MAX);
        assert_eq!(a + 1, Addr::new(0));
        assert_eq!(Addr::new(0) - 1, Addr::new(u64::MAX));
        assert_eq!(Addr::new(0x100).offset(0x20), Addr::new(0x120));
    }

    #[test]
    fn log2_exact_of_powers() {
        assert_eq!(log2_exact(1), 0);
        assert_eq!(log2_exact(2), 1);
        assert_eq!(log2_exact(1 << 20), 20);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn log2_exact_rejects_non_powers() {
        log2_exact(12);
    }

    #[test]
    fn formatting_is_nonempty() {
        let a = Addr::new(0xff);
        assert_eq!(format!("{a}"), "0xff");
        assert_eq!(format!("{a:?}"), "Addr(0xff)");
        assert_eq!(format!("{a:x}"), "ff");
        assert_eq!(format!("{a:X}"), "FF");
        assert_eq!(format!("{a:b}"), "11111111");
    }

    #[test]
    fn conversions_round_trip() {
        let a: Addr = 42u64.into();
        let raw: u64 = a.into();
        assert_eq!(raw, 42);
    }
}
