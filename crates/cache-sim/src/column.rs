//! The column-associative cache (Agarwal & Pudar), a related-work
//! baseline from Section 7.1 of the paper.
//!
//! A direct-mapped array with two hashing functions: the normal index
//! `h1`, and a rehash index `h2` obtained by flipping the most significant
//! index bit. Each line carries a *rehash bit* marking blocks that live in
//! their alternate location. First-time hits cost one cycle; rehash hits
//! cost an extra cycle and swap the two blocks so the MRU block sits in
//! its primary slot.

use telemetry::{Event, MissKind, NullObserver, Observer};

use crate::addr::Addr;
use crate::geometry::{CacheGeometry, GeometryError};
use crate::model::{AccessKind, AccessResult, CacheModel, Eviction};
use crate::stats::{BatchTally, CacheStats, SetUsage};

/// A column-associative cache.
///
/// Both access paths — per-access and [`CacheModel::access_batch`] — run
/// through one shared, always-inlined step covering the primary probe,
/// the rehash probe, and the swap/displace bookkeeping, so they are
/// bit-identical: statistics, rehash counters, and [`Observer`] events
/// alike. The batched path hoists the geometry split and tallies stats
/// in registers.
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, CacheModel, ColumnAssociativeCache};
///
/// let mut c = ColumnAssociativeCache::new(16 * 1024, 32)?;
/// c.access(0x0u64.into(), AccessKind::Read);
/// c.access(0x4000u64.into(), AccessKind::Read); // conflict -> rehash slot
/// assert!(c.access(0x0u64.into(), AccessKind::Read).hit);
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct ColumnAssociativeCache<O: Observer = NullObserver> {
    geom: CacheGeometry,
    // Full block-identifying tags: tag | index, so a block can sit in
    // either of its two slots without ambiguity.
    blocks: Vec<u64>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    rehash: Vec<bool>,
    stats: CacheStats,
    usage: SetUsage,
    rehash_hits: u64,
    observer: O,
}

impl ColumnAssociativeCache {
    /// Creates a column-associative cache of `size_bytes` with
    /// `line_bytes` blocks.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes, including a cache
    /// with a single set (the rehash function needs at least one index
    /// bit).
    pub fn new(size_bytes: usize, line_bytes: usize) -> Result<Self, GeometryError> {
        Self::with_observer(size_bytes, line_bytes, NullObserver)
    }
}

impl<O: Observer> ColumnAssociativeCache<O> {
    /// Like [`ColumnAssociativeCache::new`], with an observer wired into
    /// both access paths.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn with_observer(
        size_bytes: usize,
        line_bytes: usize,
        observer: O,
    ) -> Result<Self, GeometryError> {
        let geom = CacheGeometry::new(size_bytes, line_bytes, 1)?;
        if geom.index_bits() == 0 {
            return Err(GeometryError::AssocLargerThanLines { assoc: 1, lines: 1 });
        }
        let sets = geom.sets();
        Ok(ColumnAssociativeCache {
            geom,
            blocks: vec![0; sets],
            valid: vec![false; sets],
            dirty: vec![false; sets],
            rehash: vec![false; sets],
            stats: CacheStats::new(),
            usage: SetUsage::new(sets),
            rehash_hits: 0,
            observer,
        })
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the attached observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// The block identifier stored per line: tag and index bits together.
    fn block_id(&self, addr: Addr) -> u64 {
        addr.raw() >> self.geom.offset_bits()
    }

    fn block_addr(&self, id: u64) -> Addr {
        Addr::new(id << self.geom.offset_bits())
    }

    /// Primary index: the conventional one.
    fn h1(&self, addr: Addr) -> usize {
        self.geom.set_index(addr)
    }

    /// Rehash index: primary with the MSB of the index flipped.
    fn h2(&self, addr: Addr) -> usize {
        self.h1(addr) ^ (self.geom.sets() >> 1)
    }

    /// Hits served from the rehash location (second probe, +1 cycle).
    pub fn rehash_hits(&self) -> u64 {
        self.rehash_hits
    }

    fn evict(&mut self, tally: &mut BatchTally, slot: usize) -> Option<Eviction> {
        if !self.valid[slot] {
            return None;
        }
        let ev = Eviction {
            block: self.block_addr(self.blocks[slot]),
            dirty: self.dirty[slot],
        };
        tally.record_writeback_if(ev.dirty);
        self.valid[slot] = false;
        Some(ev)
    }

    fn fill(&mut self, slot: usize, id: u64, dirty: bool, rehashed: bool) {
        self.blocks[slot] = id;
        self.valid[slot] = true;
        self.dirty[slot] = dirty;
        self.rehash[slot] = rehashed;
    }

    /// One access. Shared verbatim by both paths, so their statistics,
    /// usage counters and event sequences agree by construction.
    #[inline(always)]
    fn step(&mut self, tally: &mut BatchTally, addr: Addr, kind: AccessKind) -> AccessResult {
        let id = self.block_id(addr);
        let i1 = self.h1(addr);
        let i2 = self.h2(addr);

        // First probe: the primary location.
        if self.valid[i1] && self.blocks[i1] == id {
            tally.record(kind, true);
            self.usage.record(i1, true);
            if O::ENABLED {
                self.observer.event(Event::SetTouch {
                    set: i1 as u64,
                    hit: true,
                });
            }
            if kind.is_write() {
                self.dirty[i1] = true;
            }
            return AccessResult::hit();
        }

        // The primary slot holds some other address's *rehashed* block:
        // per the column-associative algorithm, do not probe further —
        // claim the primary slot immediately (the rehashed occupant loses).
        if self.valid[i1] && self.rehash[i1] {
            tally.record(kind, false);
            self.usage.record(i1, false);
            if O::ENABLED {
                self.observer.event(Event::Miss {
                    kind: MissKind::Tag,
                });
                self.observer.event(Event::SetTouch {
                    set: i1 as u64,
                    hit: false,
                });
            }
            let ev = self.evict(tally, i1);
            self.fill(i1, id, kind.is_write(), false);
            return AccessResult::miss(ev);
        }

        // Second probe: the rehash location.
        if self.valid[i2] && self.blocks[i2] == id {
            tally.record(kind, true);
            self.usage.record(i2, true);
            if O::ENABLED {
                self.observer.event(Event::SetTouch {
                    set: i2 as u64,
                    hit: true,
                });
            }
            self.rehash_hits += 1;
            // Swap so the MRU block sits in its primary slot.
            self.blocks.swap(i1, i2);
            self.dirty.swap(i1, i2);
            self.valid.swap(i1, i2);
            self.rehash[i1] = false;
            self.rehash[i2] = self.valid[i2];
            if kind.is_write() {
                self.dirty[i1] = true;
            }
            return AccessResult::slow_hit(1);
        }

        // Full miss: the old primary resident moves to the rehash slot
        // (evicting its occupant), and the new block takes the primary.
        tally.record(kind, false);
        self.usage.record(i1, false);
        if O::ENABLED {
            self.observer.event(Event::Miss {
                kind: MissKind::Tag,
            });
            self.observer.event(Event::SetTouch {
                set: i1 as u64,
                hit: false,
            });
        }
        let ev = self.evict(tally, i2);
        if self.valid[i1] {
            let moved_id = self.blocks[i1];
            let moved_dirty = self.dirty[i1];
            self.fill(i2, moved_id, moved_dirty, true);
        }
        self.fill(i1, id, kind.is_write(), false);
        AccessResult::miss(ev)
    }
}

impl<O: Observer> CacheModel for ColumnAssociativeCache<O> {
    fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        let mut tally = BatchTally::new();
        let result = self.step(&mut tally, addr, kind);
        tally.flush(&mut self.stats);
        result
    }

    fn access_batch(&mut self, accesses: &[(Addr, AccessKind)]) {
        // Shared-step replay with register-tallied stats. Bit-identical
        // to the `access` loop (the batch-equivalence suite enforces it,
        // events included).
        let mut tally = BatchTally::new();
        for &(addr, kind) in accesses {
            self.step(&mut tally, addr, kind);
        }
        tally.flush(&mut self.stats);
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.usage.reset();
        self.rehash_hits = 0;
    }

    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn set_usage(&self) -> Option<&SetUsage> {
        Some(&self.usage)
    }

    fn label(&self) -> String {
        format!("{}k-column", self.geom.size_bytes() / 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ColumnAssociativeCache {
        ColumnAssociativeCache::new(256, 32).unwrap()
    }

    #[test]
    fn absorbs_pairwise_conflicts() {
        // Blocks 0 and 8 collide in set 0 of a plain DM cache; the column-
        // associative cache keeps 0 in set 0 and 8 in the rehash set 4.
        let mut c = tiny();
        assert!(!c.access(Addr::new(0), AccessKind::Read).hit);
        assert!(!c.access(Addr::new(256), AccessKind::Read).hit);
        let r0 = c.access(Addr::new(0), AccessKind::Read);
        assert!(r0.hit);
        let r8 = c.access(Addr::new(256), AccessKind::Read);
        assert!(r8.hit);
        assert!(c.rehash_hits() >= 1);
    }

    #[test]
    fn rehash_hit_costs_an_extra_cycle_and_swaps() {
        let mut c = tiny();
        c.access(Addr::new(0), AccessKind::Read);
        c.access(Addr::new(256), AccessKind::Read); // 0 rehashes to set 4
        let r = c.access(Addr::new(0), AccessKind::Read);
        assert!(r.hit);
        assert_eq!(r.extra_latency, 1);
        // After the swap, 0 is primary again: next access is a fast hit.
        let r2 = c.access(Addr::new(0), AccessKind::Read);
        assert_eq!(r2.extra_latency, 0);
    }

    #[test]
    fn rehashed_occupant_loses_primary_slot() {
        let mut c = tiny();
        // Block 0 (set 0), then block 8 (same set) -> 0 rehashed to set 4.
        c.access(Addr::new(0), AccessKind::Read);
        c.access(Addr::new(256), AccessKind::Read);
        // A block whose *primary* set is 4 must displace the rehashed 0
        // without probing further.
        let r = c.access(Addr::new(4 * 32), AccessKind::Read);
        assert!(!r.hit);
        assert!(c.access(Addr::new(4 * 32), AccessKind::Read).hit);
        // 0 is gone now.
        assert!(!c.access(Addr::new(0), AccessKind::Read).hit);
    }

    #[test]
    fn dirty_blocks_write_back_on_rehash_eviction() {
        let mut c = tiny();
        c.access(Addr::new(0), AccessKind::Write);
        c.access(Addr::new(256), AccessKind::Read); // dirty 0 -> set 4
        c.access(Addr::new(512), AccessKind::Read); // 256 -> set 4, evicts 0
        assert_eq!(c.stats().writebacks(), 1);
    }

    #[test]
    fn beats_direct_mapped_on_two_way_conflicts() {
        use crate::direct::DirectMappedCache;
        let mut col = tiny();
        let mut dm = DirectMappedCache::new(256, 32).unwrap();
        for _ in 0..50 {
            for block in [0u64, 8, 1, 9] {
                let a = Addr::new(block * 32);
                col.access(a, AccessKind::Read);
                dm.access(a, AccessKind::Read);
            }
        }
        assert!(col.stats().total().misses() < dm.stats().total().misses());
    }

    #[test]
    fn rejects_single_set_geometry() {
        assert!(ColumnAssociativeCache::new(32, 32).is_err());
    }

    #[test]
    fn label_is_descriptive() {
        assert_eq!(
            ColumnAssociativeCache::new(16 * 1024, 32).unwrap().label(),
            "16k-column"
        );
    }

    /// Fuzz-subsystem hook: demand-fill sanity — never a hit on a block
    /// the cache has not seen, and at least one miss per distinct block
    /// (the compulsory bound). `harness::fuzz` checks the same invariants
    /// on random configurations.
    #[test]
    fn is_demand_fill() {
        use std::collections::HashSet;
        let mut c = ColumnAssociativeCache::new(512, 32).unwrap();
        let mut seen = HashSet::new();
        let mut x = 0x0F1E_2D3Cu64;
        for i in 0..4000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = ((x >> 16) % 128) * 32;
            let hit = c.access(Addr::new(addr), AccessKind::Read).hit;
            assert!(
                !hit || seen.contains(&addr),
                "access {i}: hit on unseen {addr:#x}"
            );
            seen.insert(addr);
        }
        assert!(c.stats().total().misses() >= seen.len() as u64);
    }

    fn fuzz_accesses(records: usize, seed: u64) -> Vec<(Addr, AccessKind)> {
        let mut x = seed ^ 0x0F1E_2D3Cu64;
        (0..records)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let kind = if x & 4 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                (Addr::new(((x >> 16) % 256) * 32), kind)
            })
            .collect()
    }

    #[test]
    fn access_batch_is_bit_identical_to_the_loop() {
        let mut looped = ColumnAssociativeCache::new(1024, 32).unwrap();
        let mut batched = ColumnAssociativeCache::new(1024, 32).unwrap();
        let accesses = fuzz_accesses(6_000, 4);
        for &(addr, kind) in &accesses {
            looped.access(addr, kind);
        }
        batched.access_batch(&accesses);
        assert_eq!(looped.stats(), batched.stats());
        assert_eq!(looped.usage, batched.usage, "usage counters");
        assert_eq!(looped.blocks, batched.blocks, "block ids");
        assert_eq!(looped.valid, batched.valid, "valid bits");
        assert_eq!(looped.dirty, batched.dirty, "dirty bits");
        assert_eq!(looped.rehash, batched.rehash, "rehash bits");
        assert_eq!(looped.rehash_hits, batched.rehash_hits, "rehash hits");
    }

    #[test]
    fn observer_sees_identical_events_from_loop_and_batch() {
        use telemetry::EventRing;
        let accesses = fuzz_accesses(5_000, 41);
        let mut looped =
            ColumnAssociativeCache::with_observer(1024, 32, EventRing::new(64 * 1024)).unwrap();
        let mut batched =
            ColumnAssociativeCache::with_observer(1024, 32, EventRing::new(64 * 1024)).unwrap();
        for &(addr, kind) in &accesses {
            looped.access(addr, kind);
        }
        batched.access_batch(&accesses);
        let a: Vec<_> = looped.observer().iter().map(|(_, e)| e.clone()).collect();
        let b: Vec<_> = batched.observer().iter().map(|(_, e)| e.clone()).collect();
        assert!(!a.is_empty(), "the fuzz stream must generate events");
        assert_eq!(a, b, "per-access and batched event sequences diverge");
    }
}
