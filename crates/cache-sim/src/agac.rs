//! The adaptive group-associative cache (AGAC, Peir et al.), a
//! related-work baseline from Section 7.1 of the paper.
//!
//! A direct-mapped cache that fills "cache holes" — frames whose resident
//! line has not been referenced recently — with lines displaced from
//! their home frame. An *out-of-position directory* (a small
//! fully-associative table) locates relocated lines; hitting one costs
//! two extra cycles (the paper: "the AGAC needs three cycles to access
//! those relocated cache lines", versus one cycle for every B-Cache hit).

use telemetry::{Event, MissKind, NullObserver, Observer};

use crate::addr::Addr;
use crate::geometry::{CacheGeometry, GeometryError};
use crate::model::{AccessKind, AccessResult, CacheModel, Eviction};
use crate::stats::{BatchTally, CacheStats, SetUsage};

/// The adaptive group-associative cache.
///
/// Both access paths run through one shared, always-inlined step, so
/// per-access and [`CacheModel::access_batch`] are bit-identical —
/// statistics, directory state, and [`Observer`] events alike.
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, AgacCache, CacheModel};
///
/// let mut agac = AgacCache::new(16 * 1024, 32, 64)?;
/// agac.access(0x0u64.into(), AccessKind::Read);
/// assert!(agac.access(0x10u64.into(), AccessKind::Read).hit);
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct AgacCache<O: Observer = NullObserver> {
    geom: CacheGeometry,
    // Per frame: resident block id (addr >> offset), validity, dirtiness,
    // and a reference bit that decays periodically. The reference bits
    // live in a bitmap so hole scans run a word at a time; bits past
    // `frames` in the last word stay permanently set so the scan never
    // reports a frame that does not exist.
    blocks: Vec<u64>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    referenced: Vec<u64>,
    ref_tail_mask: u64,
    // Out-of-position directory: (block id, frame) pairs, FIFO-replaced.
    // The counting filter over-approximates the directory's id set (256
    // buckets keyed by low id bits) so the common case — an id nowhere in
    // the directory — skips the linear probe and the retain sweeps.
    out_dir: Vec<(u64, usize)>,
    out_filter: Vec<u32>,
    out_capacity: usize,
    out_next: usize,
    // Reference bits are cleared every `decay_period` accesses.
    decay_period: u64,
    accesses_since_decay: u64,
    hole_scan: usize,
    stats: CacheStats,
    usage: SetUsage,
    relocated_hits: u64,
    observer: O,
}

impl AgacCache {
    /// Creates an AGAC of `size_bytes`/`line_bytes` with an
    /// `out_entries`-entry out-of-position directory.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn new(
        size_bytes: usize,
        line_bytes: usize,
        out_entries: usize,
    ) -> Result<Self, GeometryError> {
        Self::with_observer(size_bytes, line_bytes, out_entries, NullObserver)
    }
}

impl<O: Observer> AgacCache<O> {
    /// Like [`AgacCache::new`], with an observer wired into both access
    /// paths.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn with_observer(
        size_bytes: usize,
        line_bytes: usize,
        out_entries: usize,
        observer: O,
    ) -> Result<Self, GeometryError> {
        let geom = CacheGeometry::new(size_bytes, line_bytes, 1)?;
        let frames = geom.sets();
        let ref_words = frames.div_ceil(64);
        let ref_tail_mask = if frames % 64 == 0 {
            0
        } else {
            !0u64 << (frames % 64)
        };
        let mut referenced = vec![0u64; ref_words];
        referenced[ref_words - 1] |= ref_tail_mask;
        Ok(AgacCache {
            geom,
            blocks: vec![0; frames],
            valid: vec![false; frames],
            dirty: vec![false; frames],
            referenced,
            ref_tail_mask,
            out_dir: Vec::with_capacity(out_entries),
            out_filter: vec![0; 256],
            out_capacity: out_entries.max(1),
            out_next: 0,
            decay_period: (frames as u64) * 4,
            accesses_since_decay: 0,
            hole_scan: 0,
            stats: CacheStats::new(),
            usage: SetUsage::new(frames),
            relocated_hits: 0,
            observer,
        })
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the attached observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    fn block_id(&self, addr: Addr) -> u64 {
        addr.raw() >> self.geom.offset_bits()
    }

    fn block_addr(&self, id: u64) -> Addr {
        Addr::new(id << self.geom.offset_bits())
    }

    fn home_frame(&self, id: u64) -> usize {
        (id as usize) & (self.geom.sets() - 1)
    }

    /// Hits served from relocated (out-of-position) lines.
    pub fn relocated_hits(&self) -> u64 {
        self.relocated_hits
    }

    #[inline(always)]
    fn is_referenced(&self, frame: usize) -> bool {
        self.referenced[frame >> 6] & (1u64 << (frame & 63)) != 0
    }

    #[inline(always)]
    fn set_referenced(&mut self, frame: usize) {
        self.referenced[frame >> 6] |= 1u64 << (frame & 63);
    }

    #[inline(always)]
    fn filter_bucket(id: u64) -> usize {
        id as usize & 0xFF
    }

    fn decay_tick(&mut self) {
        self.accesses_since_decay += 1;
        if self.accesses_since_decay >= self.decay_period {
            self.accesses_since_decay = 0;
            self.referenced.fill(0);
            let last = self.referenced.len() - 1;
            self.referenced[last] |= self.ref_tail_mask;
        }
    }

    /// First unreferenced frame in `[lo, hi)`, skipping `exclude`, found a
    /// bitmap word at a time.
    fn scan_holes(&self, lo: usize, hi: usize, exclude: usize) -> Option<usize> {
        let mut f = lo;
        while f < hi {
            let w = f >> 6;
            let mut bits = !self.referenced[w] & (!0u64 << (f & 63));
            let word_end = (w + 1) << 6;
            if hi < word_end {
                bits &= (1u64 << (hi & 63)) - 1;
            }
            if exclude >> 6 == w {
                bits &= !(1u64 << (exclude & 63));
            }
            if bits != 0 {
                return Some((w << 6) + bits.trailing_zeros() as usize);
            }
            f = word_end.min(hi);
        }
        None
    }

    /// Finds a hole: a valid-or-empty frame whose line is not recently
    /// referenced and which is not the excluded frame. Scans round-robin
    /// so holes spread across the cache; the cursor only moves when a
    /// hole is found, exactly like the one-frame-at-a-time scan it
    /// replaces.
    fn find_hole(&mut self, exclude: usize) -> Option<usize> {
        let frames = self.geom.sets();
        let found = self
            .scan_holes(self.hole_scan, frames, exclude)
            .or_else(|| self.scan_holes(0, self.hole_scan, exclude));
        if let Some(f) = found {
            self.hole_scan = (f + 1) % frames;
        }
        found
    }

    fn evict_frame(&mut self, tally: &mut BatchTally, frame: usize) -> Option<Eviction> {
        if !self.valid[frame] {
            return None;
        }
        let id = self.blocks[frame];
        // Drop any out-of-position mapping for the evicted line.
        if self.out_filter[Self::filter_bucket(id)] > 0 {
            let before = self.out_dir.len();
            self.out_dir.retain(|&(b, f)| !(b == id && f == frame));
            self.out_filter[Self::filter_bucket(id)] -= (before - self.out_dir.len()) as u32;
        }
        let ev = Eviction {
            block: self.block_addr(id),
            dirty: self.dirty[frame],
        };
        tally.record_writeback_if(ev.dirty);
        self.valid[frame] = false;
        Some(ev)
    }

    fn install(&mut self, frame: usize, id: u64, dirty: bool) {
        self.blocks[frame] = id;
        self.valid[frame] = true;
        self.dirty[frame] = dirty;
        self.set_referenced(frame);
    }

    fn record_out_of_position(&mut self, id: u64, frame: usize) {
        self.out_filter[Self::filter_bucket(id)] += 1;
        if self.out_dir.len() < self.out_capacity {
            self.out_dir.push((id, frame));
        } else {
            self.out_next %= self.out_capacity;
            let (old, _) = self.out_dir[self.out_next];
            self.out_filter[Self::filter_bucket(old)] -= 1;
            self.out_dir[self.out_next] = (id, frame);
            self.out_next += 1;
        }
    }

    /// One access. Shared verbatim by both paths, so their statistics,
    /// directory state and event sequences agree by construction.
    #[inline(always)]
    fn step(&mut self, tally: &mut BatchTally, addr: Addr, kind: AccessKind) -> AccessResult {
        self.decay_tick();
        let id = self.block_id(addr);
        let home = self.home_frame(id);

        // In-position hit: one cycle.
        if self.valid[home] && self.blocks[home] == id {
            tally.record(kind, true);
            self.usage.record(home, true);
            if O::ENABLED {
                self.observer.event(Event::SetTouch {
                    set: home as u64,
                    hit: true,
                });
            }
            self.set_referenced(home);
            if kind.is_write() {
                self.dirty[home] = true;
            }
            return AccessResult::hit();
        }

        // Out-of-position hit: the directory names the hole frame. The
        // filter rules out most ids without touching the directory.
        if self.out_filter[Self::filter_bucket(id)] > 0 {
            if let Some(pos) = self
                .out_dir
                .iter()
                .position(|&(b, f)| b == id && self.valid[f] && self.blocks[f] == id)
            {
                let (_, frame) = self.out_dir[pos];
                tally.record(kind, true);
                self.usage.record(frame, true);
                if O::ENABLED {
                    self.observer.event(Event::SetTouch {
                        set: frame as u64,
                        hit: true,
                    });
                }
                self.relocated_hits += 1;
                self.set_referenced(frame);
                if kind.is_write() {
                    self.dirty[frame] = true;
                }
                return AccessResult::slow_hit(2);
            }
        }

        // Miss. The incoming line takes its home frame; a recently used
        // resident is relocated into a hole instead of dying.
        tally.record(kind, false);
        self.usage.record(home, false);
        if O::ENABLED {
            self.observer.event(Event::Miss {
                kind: MissKind::Tag,
            });
            self.observer.event(Event::SetTouch {
                set: home as u64,
                hit: false,
            });
        }
        let mut evicted = None;
        if self.valid[home] {
            if self.is_referenced(home) {
                if let Some(hole) = self.find_hole(home) {
                    let displaced_ev = self.evict_frame(tally, hole);
                    let moved_id = self.blocks[home];
                    let moved_dirty = self.dirty[home];
                    // Remove a stale out-dir entry for the moved line (it
                    // may itself have been out of position) and re-record.
                    if self.out_filter[Self::filter_bucket(moved_id)] > 0 {
                        let before = self.out_dir.len();
                        self.out_dir.retain(|&(b, _)| b != moved_id);
                        self.out_filter[Self::filter_bucket(moved_id)] -=
                            (before - self.out_dir.len()) as u32;
                    }
                    self.install(hole, moved_id, moved_dirty);
                    if self.home_frame(moved_id) != hole {
                        self.record_out_of_position(moved_id, hole);
                    }
                    self.valid[home] = false;
                    evicted = displaced_ev;
                } else {
                    evicted = self.evict_frame(tally, home);
                }
            } else {
                evicted = self.evict_frame(tally, home);
            }
        }
        self.install(home, id, kind.is_write());
        AccessResult::miss(evicted)
    }
}

impl<O: Observer> CacheModel for AgacCache<O> {
    fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        let mut tally = BatchTally::new();
        let result = self.step(&mut tally, addr, kind);
        tally.flush(&mut self.stats);
        result
    }

    fn access_batch(&mut self, accesses: &[(Addr, AccessKind)]) {
        // Shared-step replay with register-tallied stats. Bit-identical
        // to the `access` loop (the batch-equivalence suite enforces it,
        // events included).
        let mut tally = BatchTally::new();
        for &(addr, kind) in accesses {
            self.step(&mut tally, addr, kind);
        }
        tally.flush(&mut self.stats);
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.usage.reset();
        self.relocated_hits = 0;
    }

    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn set_usage(&self) -> Option<&SetUsage> {
        Some(&self.usage)
    }

    fn label(&self) -> String {
        format!("{}k-agac", self.geom.size_bytes() / 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectMappedCache;

    fn tiny() -> AgacCache {
        AgacCache::new(256, 32, 4).unwrap()
    }

    #[test]
    fn in_position_hits_are_fast() {
        let mut c = tiny();
        c.access(Addr::new(0x40), AccessKind::Read);
        let r = c.access(Addr::new(0x40), AccessKind::Read);
        assert!(r.hit);
        assert_eq!(r.extra_latency, 0);
    }

    #[test]
    fn relocated_lines_hit_slowly() {
        let mut c = tiny();
        // Make block 0 recently used, then displace it with block 8
        // (same home frame): it should relocate into a hole.
        c.access(Addr::new(0), AccessKind::Read);
        c.access(Addr::new(0), AccessKind::Read);
        c.access(Addr::new(256), AccessKind::Read);
        let r = c.access(Addr::new(0), AccessKind::Read);
        assert!(r.hit, "recently used line must survive in a hole");
        assert_eq!(
            r.extra_latency, 2,
            "out-of-position hits take 3 cycles total"
        );
        assert_eq!(c.relocated_hits(), 1);
    }

    #[test]
    fn unreferenced_residents_die_in_place() {
        let mut c = tiny();
        c.access(Addr::new(0), AccessKind::Read);
        // Decay all reference bits.
        for i in 0..c.decay_period {
            c.access(Addr::new(0x20 + (i % 2) * 0x20), AccessKind::Read);
        }
        // Block 0's ref bit is now clear: a conflicting fill evicts it.
        c.access(Addr::new(256), AccessKind::Read);
        assert!(!c.access(Addr::new(0), AccessKind::Read).hit);
    }

    #[test]
    fn beats_direct_mapped_on_pairwise_conflicts() {
        let mut agac = AgacCache::new(256, 32, 8).unwrap();
        let mut dm = DirectMappedCache::new(256, 32).unwrap();
        for _ in 0..100 {
            for block in [0u64, 8, 1, 9] {
                let a = Addr::new(block * 32);
                agac.access(a, AccessKind::Read);
                dm.access(a, AccessKind::Read);
            }
        }
        assert!(
            agac.stats().total().misses() < dm.stats().total().misses() / 2,
            "AGAC {} vs DM {}",
            agac.stats().total().misses(),
            dm.stats().total().misses()
        );
    }

    #[test]
    fn dirty_relocated_lines_write_back_once_evicted() {
        let mut c = tiny();
        c.access(Addr::new(0), AccessKind::Write);
        c.access(Addr::new(0), AccessKind::Read);
        c.access(Addr::new(256), AccessKind::Read); // 0 relocates, dirty
                                                    // Flood every frame so the dirty relocated line eventually dies.
        for k in 0..64u64 {
            c.access(Addr::new(0x2000 + k * 32), AccessKind::Read);
        }
        assert!(c.stats().writebacks() >= 1);
    }

    #[test]
    fn out_directory_capacity_is_bounded() {
        let mut c = AgacCache::new(256, 32, 2).unwrap();
        for k in 0..32u64 {
            c.access(Addr::new(k * 256), AccessKind::Read);
            c.access(Addr::new(k * 256), AccessKind::Read);
        }
        assert!(c.out_dir.len() <= 2);
    }

    #[test]
    fn label_is_descriptive() {
        assert_eq!(
            AgacCache::new(16 * 1024, 32, 64).unwrap().label(),
            "16k-agac"
        );
    }

    /// Fuzz-subsystem hook: demand-fill sanity — never a hit on a block
    /// the cache has not seen, and at least one miss per distinct block
    /// (the compulsory bound). `harness::fuzz` checks the same invariants
    /// on random configurations.
    #[test]
    fn is_demand_fill() {
        use std::collections::HashSet;
        let mut c = AgacCache::new(512, 32, 4).unwrap();
        let mut seen = HashSet::new();
        let mut x = 0x0F1E_2D3Cu64;
        for i in 0..4000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = ((x >> 16) % 128) * 32;
            let hit = c.access(Addr::new(addr), AccessKind::Read).hit;
            assert!(
                !hit || seen.contains(&addr),
                "access {i}: hit on unseen {addr:#x}"
            );
            seen.insert(addr);
        }
        assert!(c.stats().total().misses() >= seen.len() as u64);
    }

    fn fuzz_accesses(records: usize, seed: u64) -> Vec<(Addr, AccessKind)> {
        let mut x = seed ^ 0x0F1E_2D3Cu64;
        (0..records)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let kind = if x & 4 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                (Addr::new(((x >> 16) % 256) * 32), kind)
            })
            .collect()
    }

    #[test]
    fn access_batch_is_bit_identical_to_the_loop() {
        let mut looped = AgacCache::new(1024, 32, 8).unwrap();
        let mut batched = AgacCache::new(1024, 32, 8).unwrap();
        let accesses = fuzz_accesses(6_000, 13);
        for &(addr, kind) in &accesses {
            looped.access(addr, kind);
        }
        batched.access_batch(&accesses);
        assert_eq!(looped.stats(), batched.stats());
        assert_eq!(looped.usage, batched.usage, "usage counters");
        assert_eq!(looped.blocks, batched.blocks, "block ids");
        assert_eq!(looped.valid, batched.valid, "valid bits");
        assert_eq!(looped.dirty, batched.dirty, "dirty bits");
        assert_eq!(looped.referenced, batched.referenced, "reference bits");
        assert_eq!(looped.out_dir, batched.out_dir, "out-of-position dir");
        assert_eq!(looped.out_next, batched.out_next, "FIFO cursors");
        assert_eq!(looped.hole_scan, batched.hole_scan, "hole scan cursors");
        assert_eq!(looped.relocated_hits, batched.relocated_hits);
    }

    #[test]
    fn observer_sees_identical_events_from_loop_and_batch() {
        use telemetry::EventRing;
        let accesses = fuzz_accesses(5_000, 29);
        let mut looped = AgacCache::with_observer(1024, 32, 8, EventRing::new(64 * 1024)).unwrap();
        let mut batched = AgacCache::with_observer(1024, 32, 8, EventRing::new(64 * 1024)).unwrap();
        for &(addr, kind) in &accesses {
            looped.access(addr, kind);
        }
        batched.access_batch(&accesses);
        let a: Vec<_> = looped.observer().iter().map(|(_, e)| e.clone()).collect();
        let b: Vec<_> = batched.observer().iter().map(|(_, e)| e.clone()).collect();
        assert!(!a.is_empty(), "the fuzz stream must generate events");
        assert_eq!(a, b, "per-access and batched event sequences diverge");
    }
}
