//! The adaptive group-associative cache (AGAC, Peir et al.), a
//! related-work baseline from Section 7.1 of the paper.
//!
//! A direct-mapped cache that fills "cache holes" — frames whose resident
//! line has not been referenced recently — with lines displaced from
//! their home frame. An *out-of-position directory* (a small
//! fully-associative table) locates relocated lines; hitting one costs
//! two extra cycles (the paper: "the AGAC needs three cycles to access
//! those relocated cache lines", versus one cycle for every B-Cache hit).

use crate::addr::Addr;
use crate::geometry::{CacheGeometry, GeometryError};
use crate::model::{AccessKind, AccessResult, CacheModel, Eviction};
use crate::stats::{CacheStats, SetUsage};

/// The adaptive group-associative cache.
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, AgacCache, CacheModel};
///
/// let mut agac = AgacCache::new(16 * 1024, 32, 64)?;
/// agac.access(0x0u64.into(), AccessKind::Read);
/// assert!(agac.access(0x10u64.into(), AccessKind::Read).hit);
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct AgacCache {
    geom: CacheGeometry,
    // Per frame: resident block id (addr >> offset), validity, dirtiness,
    // and a reference bit that decays periodically.
    blocks: Vec<u64>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    referenced: Vec<bool>,
    // Out-of-position directory: (block id, frame) pairs, FIFO-replaced.
    out_dir: Vec<(u64, usize)>,
    out_capacity: usize,
    out_next: usize,
    // Reference bits are cleared every `decay_period` accesses.
    decay_period: u64,
    accesses_since_decay: u64,
    hole_scan: usize,
    stats: CacheStats,
    usage: SetUsage,
    relocated_hits: u64,
}

impl AgacCache {
    /// Creates an AGAC of `size_bytes`/`line_bytes` with an
    /// `out_entries`-entry out-of-position directory.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn new(
        size_bytes: usize,
        line_bytes: usize,
        out_entries: usize,
    ) -> Result<Self, GeometryError> {
        let geom = CacheGeometry::new(size_bytes, line_bytes, 1)?;
        let frames = geom.sets();
        Ok(AgacCache {
            geom,
            blocks: vec![0; frames],
            valid: vec![false; frames],
            dirty: vec![false; frames],
            referenced: vec![false; frames],
            out_dir: Vec::with_capacity(out_entries),
            out_capacity: out_entries.max(1),
            out_next: 0,
            decay_period: (frames as u64) * 4,
            accesses_since_decay: 0,
            hole_scan: 0,
            stats: CacheStats::new(),
            usage: SetUsage::new(frames),
            relocated_hits: 0,
        })
    }

    fn block_id(&self, addr: Addr) -> u64 {
        addr.raw() >> self.geom.offset_bits()
    }

    fn block_addr(&self, id: u64) -> Addr {
        Addr::new(id << self.geom.offset_bits())
    }

    fn home_frame(&self, id: u64) -> usize {
        (id as usize) & (self.geom.sets() - 1)
    }

    /// Hits served from relocated (out-of-position) lines.
    pub fn relocated_hits(&self) -> u64 {
        self.relocated_hits
    }

    fn decay_tick(&mut self) {
        self.accesses_since_decay += 1;
        if self.accesses_since_decay >= self.decay_period {
            self.accesses_since_decay = 0;
            self.referenced.fill(false);
        }
    }

    /// Finds a hole: a valid-or-empty frame whose line is not recently
    /// referenced and which is not the excluded frame. Scans round-robin
    /// so holes spread across the cache.
    fn find_hole(&mut self, exclude: usize) -> Option<usize> {
        let frames = self.geom.sets();
        for _ in 0..frames {
            let f = self.hole_scan;
            self.hole_scan = (self.hole_scan + 1) % frames;
            if f != exclude && !self.referenced[f] {
                return Some(f);
            }
        }
        None
    }

    fn evict_frame(&mut self, frame: usize) -> Option<Eviction> {
        if !self.valid[frame] {
            return None;
        }
        let id = self.blocks[frame];
        // Drop any out-of-position mapping for the evicted line.
        self.out_dir.retain(|&(b, f)| !(b == id && f == frame));
        let ev = Eviction {
            block: self.block_addr(id),
            dirty: self.dirty[frame],
        };
        if ev.dirty {
            self.stats.record_writeback();
        }
        self.valid[frame] = false;
        Some(ev)
    }

    fn install(&mut self, frame: usize, id: u64, dirty: bool) {
        self.blocks[frame] = id;
        self.valid[frame] = true;
        self.dirty[frame] = dirty;
        self.referenced[frame] = true;
    }

    fn record_out_of_position(&mut self, id: u64, frame: usize) {
        if self.out_dir.len() < self.out_capacity {
            self.out_dir.push((id, frame));
        } else {
            self.out_next %= self.out_capacity;
            self.out_dir[self.out_next] = (id, frame);
            self.out_next += 1;
        }
    }
}

impl CacheModel for AgacCache {
    fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        self.decay_tick();
        let id = self.block_id(addr);
        let home = self.home_frame(id);

        // In-position hit: one cycle.
        if self.valid[home] && self.blocks[home] == id {
            self.stats.record(kind, true);
            self.usage.record(home, true);
            self.referenced[home] = true;
            if kind.is_write() {
                self.dirty[home] = true;
            }
            return AccessResult::hit();
        }

        // Out-of-position hit: the directory names the hole frame.
        if let Some(pos) = self
            .out_dir
            .iter()
            .position(|&(b, f)| b == id && self.valid[f] && self.blocks[f] == id)
        {
            let (_, frame) = self.out_dir[pos];
            self.stats.record(kind, true);
            self.usage.record(frame, true);
            self.relocated_hits += 1;
            self.referenced[frame] = true;
            if kind.is_write() {
                self.dirty[frame] = true;
            }
            return AccessResult::slow_hit(2);
        }

        // Miss. The incoming line takes its home frame; a recently used
        // resident is relocated into a hole instead of dying.
        self.stats.record(kind, false);
        self.usage.record(home, false);
        let mut evicted = None;
        if self.valid[home] {
            if self.referenced[home] {
                if let Some(hole) = self.find_hole(home) {
                    let displaced_ev = self.evict_frame(hole);
                    let moved_id = self.blocks[home];
                    let moved_dirty = self.dirty[home];
                    // Remove a stale out-dir entry for the moved line (it
                    // may itself have been out of position) and re-record.
                    self.out_dir.retain(|&(b, _)| b != moved_id);
                    self.install(hole, moved_id, moved_dirty);
                    if self.home_frame(moved_id) != hole {
                        self.record_out_of_position(moved_id, hole);
                    }
                    self.valid[home] = false;
                    evicted = displaced_ev;
                } else {
                    evicted = self.evict_frame(home);
                }
            } else {
                evicted = self.evict_frame(home);
            }
        }
        self.install(home, id, kind.is_write());
        AccessResult::miss(evicted)
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.usage.reset();
        self.relocated_hits = 0;
    }

    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn set_usage(&self) -> Option<&SetUsage> {
        Some(&self.usage)
    }

    fn label(&self) -> String {
        format!("{}k-agac", self.geom.size_bytes() / 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectMappedCache;

    fn tiny() -> AgacCache {
        AgacCache::new(256, 32, 4).unwrap()
    }

    #[test]
    fn in_position_hits_are_fast() {
        let mut c = tiny();
        c.access(Addr::new(0x40), AccessKind::Read);
        let r = c.access(Addr::new(0x40), AccessKind::Read);
        assert!(r.hit);
        assert_eq!(r.extra_latency, 0);
    }

    #[test]
    fn relocated_lines_hit_slowly() {
        let mut c = tiny();
        // Make block 0 recently used, then displace it with block 8
        // (same home frame): it should relocate into a hole.
        c.access(Addr::new(0), AccessKind::Read);
        c.access(Addr::new(0), AccessKind::Read);
        c.access(Addr::new(256), AccessKind::Read);
        let r = c.access(Addr::new(0), AccessKind::Read);
        assert!(r.hit, "recently used line must survive in a hole");
        assert_eq!(
            r.extra_latency, 2,
            "out-of-position hits take 3 cycles total"
        );
        assert_eq!(c.relocated_hits(), 1);
    }

    #[test]
    fn unreferenced_residents_die_in_place() {
        let mut c = tiny();
        c.access(Addr::new(0), AccessKind::Read);
        // Decay all reference bits.
        for i in 0..c.decay_period {
            c.access(Addr::new(0x20 + (i % 2) * 0x20), AccessKind::Read);
        }
        // Block 0's ref bit is now clear: a conflicting fill evicts it.
        c.access(Addr::new(256), AccessKind::Read);
        assert!(!c.access(Addr::new(0), AccessKind::Read).hit);
    }

    #[test]
    fn beats_direct_mapped_on_pairwise_conflicts() {
        let mut agac = AgacCache::new(256, 32, 8).unwrap();
        let mut dm = DirectMappedCache::new(256, 32).unwrap();
        for _ in 0..100 {
            for block in [0u64, 8, 1, 9] {
                let a = Addr::new(block * 32);
                agac.access(a, AccessKind::Read);
                dm.access(a, AccessKind::Read);
            }
        }
        assert!(
            agac.stats().total().misses() < dm.stats().total().misses() / 2,
            "AGAC {} vs DM {}",
            agac.stats().total().misses(),
            dm.stats().total().misses()
        );
    }

    #[test]
    fn dirty_relocated_lines_write_back_once_evicted() {
        let mut c = tiny();
        c.access(Addr::new(0), AccessKind::Write);
        c.access(Addr::new(0), AccessKind::Read);
        c.access(Addr::new(256), AccessKind::Read); // 0 relocates, dirty
                                                    // Flood every frame so the dirty relocated line eventually dies.
        for k in 0..64u64 {
            c.access(Addr::new(0x2000 + k * 32), AccessKind::Read);
        }
        assert!(c.stats().writebacks() >= 1);
    }

    #[test]
    fn out_directory_capacity_is_bounded() {
        let mut c = AgacCache::new(256, 32, 2).unwrap();
        for k in 0..32u64 {
            c.access(Addr::new(k * 256), AccessKind::Read);
            c.access(Addr::new(k * 256), AccessKind::Read);
        }
        assert!(c.out_dir.len() <= 2);
    }

    #[test]
    fn label_is_descriptive() {
        assert_eq!(
            AgacCache::new(16 * 1024, 32, 64).unwrap().label(),
            "16k-agac"
        );
    }

    /// Fuzz-subsystem hook: demand-fill sanity — never a hit on a block
    /// the cache has not seen, and at least one miss per distinct block
    /// (the compulsory bound). `harness::fuzz` checks the same invariants
    /// on random configurations.
    #[test]
    fn is_demand_fill() {
        use std::collections::HashSet;
        let mut c = AgacCache::new(512, 32, 4).unwrap();
        let mut seen = HashSet::new();
        let mut x = 0x0F1E_2D3Cu64;
        for i in 0..4000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = ((x >> 16) % 128) * 32;
            let hit = c.access(Addr::new(addr), AccessKind::Read).hit;
            assert!(
                !hit || seen.contains(&addr),
                "access {i}: hit on unseen {addr:#x}"
            );
            seen.insert(addr);
        }
        assert!(c.stats().total().misses() >= seen.len() as u64);
    }
}
