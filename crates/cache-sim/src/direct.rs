//! The conventional direct-mapped cache — the paper's baseline.

use telemetry::{Event, MissKind, NullObserver, Observer};

use crate::addr::Addr;
use crate::geometry::{CacheGeometry, GeometryError};
use crate::model::{AccessKind, AccessResult, CacheModel, Eviction};
use crate::packed;
use crate::simd;
use crate::stats::{BatchTally, CacheStats, SetUsage};

/// A direct-mapped, write-back, write-allocate cache.
///
/// This is the baseline of every experiment in the paper: a 16 kB,
/// 32-byte-line instance for both L1 caches.
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, CacheModel, DirectMappedCache};
///
/// let mut dm = DirectMappedCache::new(16 * 1024, 32)?;
/// let miss = dm.access(0x1000u64.into(), AccessKind::Read);
/// assert!(!miss.hit);
/// let hit = dm.access(0x1004u64.into(), AccessKind::Read);
/// assert!(hit.hit);
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct DirectMappedCache<O: Observer = NullObserver> {
    geom: CacheGeometry,
    /// One [`packed`] `tag|dirty|valid` word per set.
    lines: Vec<u64>,
    stats: CacheStats,
    usage: SetUsage,
    observer: O,
}

impl DirectMappedCache {
    /// Creates a direct-mapped cache of `size_bytes` with `line_bytes`
    /// blocks.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn new(size_bytes: usize, line_bytes: usize) -> Result<Self, GeometryError> {
        Self::from_geometry(CacheGeometry::new(size_bytes, line_bytes, 1)?)
    }

    /// Creates a direct-mapped cache from an explicit geometry.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::AssocLargerThanLines`] if the geometry is
    /// not direct-mapped.
    pub fn from_geometry(geom: CacheGeometry) -> Result<Self, GeometryError> {
        Self::from_geometry_with_observer(geom, NullObserver)
    }
}

impl<O: Observer> DirectMappedCache<O> {
    /// Creates a direct-mapped cache that emits [`Event`]s to `observer`.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn with_observer(
        size_bytes: usize,
        line_bytes: usize,
        observer: O,
    ) -> Result<Self, GeometryError> {
        Self::from_geometry_with_observer(CacheGeometry::new(size_bytes, line_bytes, 1)?, observer)
    }

    /// Creates a direct-mapped cache from an explicit geometry, emitting
    /// events to `observer`.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError::AssocLargerThanLines`] if the geometry is
    /// not direct-mapped.
    pub fn from_geometry_with_observer(
        geom: CacheGeometry,
        observer: O,
    ) -> Result<Self, GeometryError> {
        if geom.assoc() != 1 {
            return Err(GeometryError::AssocLargerThanLines {
                assoc: geom.assoc(),
                lines: 1,
            });
        }
        assert!(
            geom.tag_bits() <= packed::MAX_TAG_BITS,
            "tag field of {geom} does not fit a packed line word"
        );
        let sets = geom.sets();
        Ok(DirectMappedCache {
            geom,
            lines: vec![packed::EMPTY; sets],
            stats: CacheStats::new(),
            usage: SetUsage::new(sets),
            observer,
        })
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// The attached observer, mutably.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Returns `true` if the block containing `addr` is resident, without
    /// touching statistics or replacement state.
    pub fn probe(&self, addr: Addr) -> bool {
        let set = self.geom.set_index(addr);
        packed::matches(self.lines[set], self.geom.tag(addr))
    }
}

impl<O: Observer> CacheModel for DirectMappedCache<O> {
    fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        let set = self.geom.set_index(addr);
        let tag = self.geom.tag(addr);
        let word = self.lines[set];
        let hit = packed::matches(word, tag);
        self.stats.record(kind, hit);
        self.usage.record(set, hit);
        if O::ENABLED {
            if !hit {
                self.observer.event(Event::Miss {
                    kind: MissKind::Tag,
                });
                if packed::is_dirty(word) {
                    self.observer.event(Event::Writeback { set: set as u64 });
                }
            }
            self.observer.event(Event::SetTouch {
                set: set as u64,
                hit,
            });
        }
        if hit {
            if kind.is_write() {
                self.lines[set] = packed::set_dirty(word);
            }
            return AccessResult::hit();
        }
        // Miss: evict the resident block (if any) and fill.
        let evicted = if packed::is_valid(word) {
            let block = self.geom.reconstruct(packed::tag(word), set);
            let dirty = packed::is_dirty(word);
            if dirty {
                self.stats.record_writeback();
            }
            Some(Eviction { block, dirty })
        } else {
            None
        };
        self.lines[set] = packed::fill(tag, kind.is_write());
        AccessResult::miss(evicted)
    }

    fn access_batch(&mut self, accesses: &[(Addr, AccessKind)]) {
        // Monomorphized replay: precomputed field split, packed lines,
        // statistics tallied in registers — bit-identical outcome to the
        // `access` loop above (the batch-equivalence suite enforces it).
        //
        // The address decode (set/tag split) is the pure, state-
        // independent half of an access, so it runs a whole lane group
        // ahead of the serial hit/miss resolution: eight addresses are
        // swizzled through `simd::shr_and` per iteration, then resolved
        // in order against the line array.
        let split = self.geom.split();
        let lines = &mut self.lines[..];
        let usage = &mut self.usage;
        let observer = &mut self.observer;
        let mut tally = BatchTally::new();
        let be = simd::backend();
        let mut raw = [0u64; simd::LANES];
        let mut sets = [0u64; simd::LANES];
        let mut tags = [0u64; simd::LANES];
        for group in accesses.chunks(simd::LANES) {
            let n = group.len();
            for (i, &(addr, _)) in group.iter().enumerate() {
                raw[i] = addr.raw();
            }
            simd::shr_and_with(
                be,
                &raw[..n],
                split.index_shift,
                split.index_mask,
                &mut sets[..n],
            );
            simd::shr_and_with(
                be,
                &raw[..n],
                split.tag_shift,
                split.tag_mask,
                &mut tags[..n],
            );
            for (i, &(_, kind)) in group.iter().enumerate() {
                let set = sets[i] as usize;
                let tag = tags[i];
                let word = lines[set];
                let hit = packed::matches(word, tag);
                tally.record(kind, hit);
                usage.record(set, hit);
                if O::ENABLED {
                    if !hit {
                        observer.event(Event::Miss {
                            kind: MissKind::Tag,
                        });
                        if packed::is_dirty(word) {
                            observer.event(Event::Writeback { set: set as u64 });
                        }
                    }
                    observer.event(Event::SetTouch {
                        set: set as u64,
                        hit,
                    });
                }
                if hit {
                    if kind.is_write() {
                        lines[set] = packed::set_dirty(word);
                    }
                } else {
                    tally.record_writeback_if(packed::is_dirty(word));
                    lines[set] = packed::fill(tag, kind.is_write());
                }
            }
        }
        tally.flush(&mut self.stats);
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.usage.reset();
    }

    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn set_usage(&self) -> Option<&SetUsage> {
        Some(&self.usage)
    }

    fn label(&self) -> String {
        format!("{}k-dm", self.geom.size_bytes() / 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DirectMappedCache {
        // 8 sets of 32-byte lines, like the paper's Figure 1 example.
        DirectMappedCache::new(256, 32).unwrap()
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(Addr::new(0x40), AccessKind::Read).hit);
        assert!(
            c.access(Addr::new(0x5f), AccessKind::Read).hit,
            "same line must hit"
        );
        assert_eq!(c.stats().total().misses(), 1);
        assert_eq!(c.stats().total().hits(), 1);
    }

    #[test]
    fn conflicting_lines_thrash() {
        // Paper Section 2.2: the sequence 0,1,8,9,0,1,8,9 (line granules)
        // never hits in a direct-mapped cache with 8 sets.
        let mut c = tiny();
        let line = 32u64;
        for _ in 0..2 {
            for block in [0u64, 1, 8, 9] {
                let r = c.access(Addr::new(block * line), AccessKind::Read);
                assert!(!r.hit);
            }
        }
        assert_eq!(c.stats().total().misses(), 8);
        assert_eq!(c.stats().total().hits(), 0);
    }

    #[test]
    fn eviction_reports_dirty_block() {
        let mut c = tiny();
        c.access(Addr::new(0x0), AccessKind::Write);
        // Block 8 maps to the same set 0 (8 * 32 = 256 = cache size).
        let r = c.access(Addr::new(256), AccessKind::Read);
        let ev = r.evicted.expect("conflict must evict");
        assert_eq!(ev.block, Addr::new(0));
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks(), 1);
    }

    #[test]
    fn clean_eviction_is_not_a_writeback() {
        let mut c = tiny();
        c.access(Addr::new(0x0), AccessKind::Read);
        let r = c.access(Addr::new(256), AccessKind::Read);
        assert!(!r.evicted.unwrap().dirty);
        assert_eq!(c.stats().writebacks(), 0);
    }

    #[test]
    fn write_hit_dirties_block() {
        let mut c = tiny();
        c.access(Addr::new(0x0), AccessKind::Read);
        c.access(Addr::new(0x4), AccessKind::Write);
        let r = c.access(Addr::new(256), AccessKind::Read);
        assert!(r.evicted.unwrap().dirty);
    }

    #[test]
    fn probe_does_not_disturb_stats() {
        let mut c = tiny();
        c.access(Addr::new(0x40), AccessKind::Read);
        assert!(c.probe(Addr::new(0x44)));
        assert!(!c.probe(Addr::new(0x80)));
        assert_eq!(c.stats().total().accesses(), 1);
    }

    #[test]
    fn usage_tracks_sets() {
        let mut c = tiny();
        c.access(Addr::new(0x20), AccessKind::Read); // set 1
        c.access(Addr::new(0x20), AccessKind::Read);
        let u = c.set_usage().unwrap();
        assert_eq!(u.misses(1), 1);
        assert_eq!(u.hits(1), 1);
        assert_eq!(u.accesses(0), 0);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = tiny();
        c.access(Addr::new(0x40), AccessKind::Read);
        c.reset_stats();
        assert_eq!(c.stats().total().accesses(), 0);
        assert!(
            c.access(Addr::new(0x40), AccessKind::Read).hit,
            "contents must survive reset"
        );
    }

    #[test]
    fn from_geometry_rejects_set_associative_shapes() {
        let g = CacheGeometry::new(1024, 32, 2).unwrap();
        assert!(DirectMappedCache::from_geometry(g).is_err());
    }

    #[test]
    fn label_mentions_size() {
        assert_eq!(
            DirectMappedCache::new(16 * 1024, 32).unwrap().label(),
            "16k-dm"
        );
    }

    #[test]
    fn access_batch_is_bit_identical_to_the_loop() {
        let mut looped = DirectMappedCache::new(1024, 32).unwrap();
        let mut batched = DirectMappedCache::new(1024, 32).unwrap();
        let mut x = 0x1357_9BDFu64;
        let accesses: Vec<(Addr, AccessKind)> = (0..5_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let kind = if x & 4 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                (Addr::new(((x >> 16) % 256) * 32), kind)
            })
            .collect();
        for &(addr, kind) in &accesses {
            looped.access(addr, kind);
        }
        batched.access_batch(&accesses);
        assert_eq!(looped.stats(), batched.stats());
        assert_eq!(looped.usage, batched.usage);
        assert_eq!(looped.lines, batched.lines, "contents must match too");
    }

    #[test]
    fn observer_sees_identical_events_from_loop_and_batch() {
        use telemetry::EventRing;
        let mut looped =
            DirectMappedCache::with_observer(1024, 32, EventRing::new(64 * 1024)).unwrap();
        let mut batched =
            DirectMappedCache::with_observer(1024, 32, EventRing::new(64 * 1024)).unwrap();
        let mut x = 0x0F1E_2D3Cu64;
        let accesses: Vec<(Addr, AccessKind)> = (0..3_000)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let kind = if x & 4 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                (Addr::new(((x >> 16) % 128) * 32), kind)
            })
            .collect();
        for &(addr, kind) in &accesses {
            looped.access(addr, kind);
        }
        batched.access_batch(&accesses);
        assert_eq!(looped.stats(), batched.stats());
        let a: Vec<_> = looped.observer().iter().collect();
        let b: Vec<_> = batched.observer().iter().collect();
        assert_eq!(a, b, "event sequences must be identical");
        assert!(!a.is_empty());
    }

    #[test]
    fn observer_event_counts_agree_with_stats() {
        use telemetry::EventCounts;
        let mut c = DirectMappedCache::with_observer(256, 32, EventCounts::new()).unwrap();
        let mut x = 0x5A5A_A5A5u64;
        for _ in 0..2_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            c.access(Addr::new(((x >> 16) % 64) * 32), AccessKind::Read);
        }
        let counts = *c.observer();
        assert_eq!(counts.total_misses(), c.stats().total().misses());
        assert_eq!(counts.tag_misses, c.stats().total().misses());
        assert_eq!(counts.set_hits, c.stats().total().hits());
        assert_eq!(counts.set_misses, c.stats().total().misses());
        assert_eq!(counts.pd_reprograms, 0, "no PD in a conventional cache");
    }

    /// Differential hook: the fuzzer's reference model (`crate::oracle`)
    /// must agree with this cache access-by-access; `harness::fuzz`
    /// explores random geometries, this pins one conflict-heavy stream.
    #[test]
    fn matches_reference_oracle() {
        use crate::oracle::OracleCache;
        let mut model = DirectMappedCache::new(1024, 32).unwrap();
        let mut oracle = OracleCache::new(1024, 32, 1, crate::PolicyKind::Lru, 0, 32);
        let mut x = 0x2468_ACE0u64;
        for i in 0..4000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = ((x >> 16) % 256) * 32;
            let kind = if x & 4 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let got = model.access(Addr::new(addr), kind);
            let want = oracle.access(Addr::new(addr), kind);
            assert_eq!(want.diff(&got), None, "access {i} at {addr:#x}");
        }
        assert_eq!(oracle.misses(), model.stats().total().misses());
        assert_eq!(oracle.writebacks(), model.stats().writebacks());
    }
}
