//! Runtime-dispatched SIMD lane operations for the batched replay
//! kernels.
//!
//! Every hot probe in the simulator is a data-parallel sweep over a
//! small `u64` array: the packed tag compare of the direct-mapped and
//! set-associative arrays, the CAM probes behind [`crate::cam`] (the
//! victim buffer, AGAC's directory, the HAC subarrays), the B-Cache's
//! programmable-decoder entry match in `bcache-core`, and the LRU
//! stamp scan. This module factors those sweeps into a handful of
//! *lane operations* — compare-mask, first-set-lane, masked select,
//! popcount tally, min-index, and a swizzled shift-and-mask used for
//! address field decode — each with two implementations:
//!
//! * a **portable** pure-`u64` path written as straight-line,
//!   branch-free loops the scalar backend unrolls (this is exactly the
//!   code the PR 7 kernels inlined by hand), and
//! * an **AVX2** path (`core::arch::x86_64`) processing four 64-bit
//!   lanes per vector, guarded by `is_x86_feature_detected!`.
//!
//! Dispatch is decided once per process and cached in an atomic:
//! [`backend`] returns AVX2 only when the CPU reports it *and* the
//! `BCACHE_NO_SIMD` environment knob is unset (any value other than
//! `0` forces the portable path — the CI equivalence matrix runs both
//! ways). Every operation also has an explicit `*_with(Backend, ...)`
//! form so tests can compare the two implementations in-process
//! without touching global state.
//!
//! Semantics are identical across backends by construction and
//! enforced by `harness/tests/simd_equivalence.rs`: first-match,
//! first-invalid and first-minimum indices, bit-for-bit.

use std::sync::atomic::{AtomicU8, Ordering};

/// Lanes the batched kernels consume per iteration (the u64×8 group:
/// two AVX2 vectors, or one unrolled portable block).
pub const LANES: usize = 8;

/// Which implementation the lane operations run on.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Pure-`u64` bit-sliced loops; always available.
    Portable,
    /// Four 64-bit lanes per `__m256i` vector (x86-64 only).
    Avx2,
}

impl Backend {
    /// Stable lowercase name, used to stamp bench output.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Portable => "portable",
            Backend::Avx2 => "avx2",
        }
    }
}

/// `0` = undecided, `1` = portable, `2` = AVX2.
static BACKEND: AtomicU8 = AtomicU8::new(0);

/// Decides the backend from the environment, uncached: portable when
/// `BCACHE_NO_SIMD` is set to anything but `0`, otherwise AVX2 when
/// the CPU reports it.
pub fn detect() -> Backend {
    let disabled = std::env::var_os("BCACHE_NO_SIMD").is_some_and(|v| !v.is_empty() && v != *"0");
    if disabled {
        return Backend::Portable;
    }
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        return Backend::Avx2;
    }
    Backend::Portable
}

/// The process-wide backend, decided by [`detect`] on first use and
/// cached.
#[inline]
pub fn backend() -> Backend {
    match BACKEND.load(Ordering::Relaxed) {
        1 => Backend::Portable,
        2 => Backend::Avx2,
        _ => {
            let b = detect();
            force_backend(b);
            b
        }
    }
}

/// Overrides the cached backend for the rest of the process (or until
/// the next call). Intended for equivalence tests and benchmarks;
/// forcing [`Backend::Avx2`] on a CPU without AVX2 is undefined
/// behavior, so callers must gate on [`detect`].
pub fn force_backend(b: Backend) {
    let code = match b {
        Backend::Portable => 1,
        Backend::Avx2 => 2,
    };
    BACKEND.store(code, Ordering::Relaxed);
}

/// The backends safe to run on this machine, portable first. Tests
/// iterate this to cover both dispatch paths where the hardware
/// allows.
pub fn available_backends() -> Vec<Backend> {
    let mut out = vec![Backend::Portable];
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") {
        out.push(Backend::Avx2);
    }
    out
}

// ---------------------------------------------------------------------
// Lane operations. Each `op(...)` delegates to `op_with(backend(), ...)`;
// the `_with` form is the testable, explicitly-dispatched entry point.

/// Bit `i` of the result is set iff `(words[i] & and_mask) == needle`.
///
/// The one compare that serves every probe in the tree: packed
/// tag-match is `and_mask = !2` (dirty bit ignored) against the
/// `tag<<2|1` search key, validity is `and_mask = 1`, and the PD's
/// raw-entry compare is `and_mask = !0`. `words.len()` must be ≤ 64.
#[inline(always)]
pub fn masked_eq_mask(words: &[u64], and_mask: u64, needle: u64) -> u64 {
    masked_eq_mask_with(backend(), words, and_mask, needle)
}

/// [`masked_eq_mask`] on an explicit backend.
#[inline(always)]
pub fn masked_eq_mask_with(b: Backend, words: &[u64], and_mask: u64, needle: u64) -> u64 {
    debug_assert!(words.len() <= 64, "lane mask wider than u64");
    #[cfg(target_arch = "x86_64")]
    if b == Backend::Avx2 {
        return unsafe { avx2::masked_eq_mask(words, and_mask, needle) };
    }
    let _ = b;
    portable::masked_eq_mask(words, and_mask, needle)
}

/// One pass, two needles: returns the lane masks of
/// `(words[i] == needle_a, words[i] == needle_b)`.
///
/// The programmable decoder's fused probe: one load per entry feeds
/// both the PI match and the cold-entry (sentinel) compare.
#[inline(always)]
pub fn dual_eq_masks(words: &[u64], needle_a: u64, needle_b: u64) -> (u64, u64) {
    dual_eq_masks_with(backend(), words, needle_a, needle_b)
}

/// [`dual_eq_masks`] on an explicit backend.
#[inline(always)]
pub fn dual_eq_masks_with(b: Backend, words: &[u64], needle_a: u64, needle_b: u64) -> (u64, u64) {
    debug_assert!(words.len() <= 64, "lane mask wider than u64");
    // Below one vector the scalar compares win (see `first_match_with`).
    if words.len() < 4 {
        return portable::dual_eq_masks(words, needle_a, needle_b);
    }
    #[cfg(target_arch = "x86_64")]
    if b == Backend::Avx2 {
        return unsafe { avx2::dual_eq_masks(words, needle_a, needle_b) };
    }
    let _ = b;
    portable::dual_eq_masks(words, needle_a, needle_b)
}

/// The first set lane of a compare mask, i.e. the CAM's priority
/// encoder.
#[inline(always)]
pub fn first_set_lane(mask: u64) -> Option<usize> {
    (mask != 0).then(|| mask.trailing_zeros() as usize)
}

/// Index of the first word with `(word & and_mask) == needle`, over a
/// slice of any length (chunked compare-mask with an early out).
#[inline(always)]
pub fn first_match(words: &[u64], and_mask: u64, needle: u64) -> Option<usize> {
    first_match_with(backend(), words, and_mask, needle)
}

/// [`first_match`] on an explicit backend.
#[inline(always)]
pub fn first_match_with(b: Backend, words: &[u64], and_mask: u64, needle: u64) -> Option<usize> {
    // Tiny widths (direct-mapped, 2-way) go straight to the scalar
    // compare: a vector setup costs more than the probe itself.
    if words.len() < 4 {
        return words.iter().position(|&w| (w & and_mask) == needle);
    }
    #[cfg(target_arch = "x86_64")]
    if b == Backend::Avx2 {
        return unsafe { avx2::first_match(words, and_mask, needle) };
    }
    let _ = b;
    portable::first_match(words, and_mask, needle)
}

/// How many words satisfy `(word & and_mask) == needle` (popcount
/// tally over the compare masks); any slice length.
#[inline(always)]
pub fn count_matching(words: &[u64], and_mask: u64, needle: u64) -> usize {
    count_matching_with(backend(), words, and_mask, needle)
}

/// [`count_matching`] on an explicit backend.
#[inline(always)]
pub fn count_matching_with(b: Backend, words: &[u64], and_mask: u64, needle: u64) -> usize {
    #[cfg(target_arch = "x86_64")]
    if b == Backend::Avx2 {
        return unsafe { avx2::count_matching(words, and_mask, needle) };
    }
    let _ = b;
    portable::count_matching(words, and_mask, needle)
}

/// Lane-wise select: `out[i] = if mask bit i { on[i] } else { off[i] }`.
///
/// The blend primitive of the min-reduction below; exposed because the
/// interleaved replay kernel and tests use it directly. All three
/// slices must share a length ≤ 64.
#[inline(always)]
pub fn select_lanes(mask: u64, on: &[u64], off: &[u64], out: &mut [u64]) {
    select_lanes_with(backend(), mask, on, off, out)
}

/// [`select_lanes`] on an explicit backend.
#[inline(always)]
pub fn select_lanes_with(b: Backend, mask: u64, on: &[u64], off: &[u64], out: &mut [u64]) {
    assert!(
        on.len() == off.len() && on.len() == out.len() && on.len() <= 64,
        "select_lanes needs three equal slices of at most 64 lanes"
    );
    #[cfg(target_arch = "x86_64")]
    if b == Backend::Avx2 {
        return unsafe { avx2::select_lanes(mask, on, off, out) };
    }
    let _ = b;
    portable::select_lanes(mask, on, off, out)
}

/// Index of the first minimum of `stamps` — exactly the victim LRU's
/// `min_by_key` picks (ties break to the lowest index). Returns 0 for
/// an empty slice.
#[inline(always)]
pub fn min_index(stamps: &[u64]) -> usize {
    min_index_with(backend(), stamps)
}

/// [`min_index`] on an explicit backend.
#[inline(always)]
pub fn min_index_with(b: Backend, stamps: &[u64]) -> usize {
    // Below one vector the serial compare chain wins.
    if stamps.len() < 4 {
        let mut best = 0;
        for (i, &s) in stamps.iter().enumerate().skip(1) {
            if s < stamps[best] {
                best = i;
            }
        }
        return best;
    }
    #[cfg(target_arch = "x86_64")]
    if b == Backend::Avx2 {
        return unsafe { avx2::min_index(stamps) };
    }
    let _ = b;
    portable::min_index(stamps)
}

/// Swizzled field decode: `out[i] = (src[i] >> shift) & mask`.
///
/// The pure (state-independent) half of an access — splitting a lane
/// group of addresses into set indices or tags — which the batched
/// kernels hoist out of the serial hit/miss resolution loop.
#[inline(always)]
pub fn shr_and(src: &[u64], shift: u32, mask: u64, out: &mut [u64]) {
    shr_and_with(backend(), src, shift, mask, out)
}

/// [`shr_and`] on an explicit backend.
#[inline(always)]
pub fn shr_and_with(b: Backend, src: &[u64], shift: u32, mask: u64, out: &mut [u64]) {
    assert_eq!(src.len(), out.len(), "shr_and needs equal slices");
    debug_assert!(shift < 64, "shift must stay in range");
    #[cfg(target_arch = "x86_64")]
    if b == Backend::Avx2 {
        return unsafe { avx2::shr_and(src, shift, mask, out) };
    }
    let _ = b;
    portable::shr_and(src, shift, mask, out)
}

// ---------------------------------------------------------------------
// Portable (pure-u64) implementations: bit-sliced loops with no data-
// dependent branches, the shape LLVM auto-vectorizes on any target.

mod portable {
    use super::LANES;

    #[inline(always)]
    pub fn masked_eq_mask(words: &[u64], and_mask: u64, needle: u64) -> u64 {
        let mut m = 0u64;
        for (i, &w) in words.iter().enumerate() {
            m |= (((w & and_mask) == needle) as u64) << i;
        }
        m
    }

    #[inline(always)]
    pub fn dual_eq_masks(words: &[u64], needle_a: u64, needle_b: u64) -> (u64, u64) {
        let (mut a, mut b) = (0u64, 0u64);
        for (i, &w) in words.iter().enumerate() {
            a |= ((w == needle_a) as u64) << i;
            b |= ((w == needle_b) as u64) << i;
        }
        (a, b)
    }

    #[inline(always)]
    pub fn first_match(words: &[u64], and_mask: u64, needle: u64) -> Option<usize> {
        // Lane groups of LANES with a per-group early out: the group
        // body is branch-free, the exit test is one compare per group.
        let mut base = 0;
        let mut chunks = words.chunks_exact(LANES);
        for c in &mut chunks {
            let m = masked_eq_mask(c, and_mask, needle);
            if m != 0 {
                return Some(base + m.trailing_zeros() as usize);
            }
            base += LANES;
        }
        let m = masked_eq_mask(chunks.remainder(), and_mask, needle);
        (m != 0).then(|| base + m.trailing_zeros() as usize)
    }

    #[inline(always)]
    pub fn count_matching(words: &[u64], and_mask: u64, needle: u64) -> usize {
        let mut n = 0usize;
        for &w in words {
            n += ((w & and_mask) == needle) as usize;
        }
        n
    }

    #[inline(always)]
    pub fn select_lanes(mask: u64, on: &[u64], off: &[u64], out: &mut [u64]) {
        for i in 0..out.len() {
            // Branch-free blend: all-ones lane where the mask bit is set.
            let lane = 0u64.wrapping_sub((mask >> i) & 1);
            out[i] = (on[i] & lane) | (off[i] & !lane);
        }
    }

    #[inline(always)]
    pub fn min_index(stamps: &[u64]) -> usize {
        // Two passes: a lane-sliced running minimum (vectorizable),
        // then the priority encoder over lanes equal to the global
        // minimum — which is exactly "first index of the minimum".
        let mut vmin = [u64::MAX; LANES];
        let mut chunks = stamps.chunks_exact(LANES);
        for c in &mut chunks {
            let mut lt = 0u64;
            for i in 0..LANES {
                lt |= ((c[i] < vmin[i]) as u64) << i;
            }
            let mut next = [0u64; LANES];
            select_lanes(lt, c, &vmin, &mut next);
            vmin = next;
        }
        let mut m = u64::MAX;
        for &s in vmin.iter().chain(chunks.remainder()) {
            if s < m {
                m = s;
            }
        }
        first_match(stamps, !0, m).expect("the minimum is present")
    }

    #[inline(always)]
    pub fn shr_and(src: &[u64], shift: u32, mask: u64, out: &mut [u64]) {
        for i in 0..src.len() {
            out[i] = (src[i] >> shift) & mask;
        }
    }
}

// ---------------------------------------------------------------------
// AVX2 implementations: four u64 lanes per __m256i vector, scalar
// tails. All functions here require the avx2 target feature, which
// dispatch guarantees via `is_x86_feature_detected!`.

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// Compare-mask of one vector: bit i of the nibble is lane i's
    /// `(w & and_mask) == needle`.
    #[inline(always)]
    unsafe fn cmp_nibble(v: __m256i, and_mask: __m256i, needle: __m256i) -> u64 {
        let eq = _mm256_cmpeq_epi64(_mm256_and_si256(v, and_mask), needle);
        _mm256_movemask_pd(_mm256_castsi256_pd(eq)) as u64 & 0xF
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn masked_eq_mask(words: &[u64], and_mask: u64, needle: u64) -> u64 {
        let am = _mm256_set1_epi64x(and_mask as i64);
        let nd = _mm256_set1_epi64x(needle as i64);
        let mut m = 0u64;
        let mut lane = 0;
        let mut chunks = words.chunks_exact(4);
        for c in &mut chunks {
            let v = _mm256_loadu_si256(c.as_ptr() as *const __m256i);
            m |= cmp_nibble(v, am, nd) << lane;
            lane += 4;
        }
        for (i, &w) in chunks.remainder().iter().enumerate() {
            m |= (((w & and_mask) == needle) as u64) << (lane + i);
        }
        m
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn dual_eq_masks(words: &[u64], needle_a: u64, needle_b: u64) -> (u64, u64) {
        let all = _mm256_set1_epi64x(-1);
        let na = _mm256_set1_epi64x(needle_a as i64);
        let nb = _mm256_set1_epi64x(needle_b as i64);
        let (mut a, mut b) = (0u64, 0u64);
        let mut lane = 0;
        let mut chunks = words.chunks_exact(4);
        for c in &mut chunks {
            let v = _mm256_loadu_si256(c.as_ptr() as *const __m256i);
            a |= cmp_nibble(v, all, na) << lane;
            b |= cmp_nibble(v, all, nb) << lane;
            lane += 4;
        }
        for (i, &w) in chunks.remainder().iter().enumerate() {
            a |= ((w == needle_a) as u64) << (lane + i);
            b |= ((w == needle_b) as u64) << (lane + i);
        }
        (a, b)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn first_match(words: &[u64], and_mask: u64, needle: u64) -> Option<usize> {
        let am = _mm256_set1_epi64x(and_mask as i64);
        let nd = _mm256_set1_epi64x(needle as i64);
        let mut base = 0;
        let mut chunks = words.chunks_exact(4);
        for c in &mut chunks {
            let v = _mm256_loadu_si256(c.as_ptr() as *const __m256i);
            let m = cmp_nibble(v, am, nd);
            if m != 0 {
                return Some(base + m.trailing_zeros() as usize);
            }
            base += 4;
        }
        chunks
            .remainder()
            .iter()
            .position(|&w| (w & and_mask) == needle)
            .map(|i| base + i)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn count_matching(words: &[u64], and_mask: u64, needle: u64) -> usize {
        let am = _mm256_set1_epi64x(and_mask as i64);
        let nd = _mm256_set1_epi64x(needle as i64);
        let mut n = 0usize;
        let mut chunks = words.chunks_exact(4);
        for c in &mut chunks {
            let v = _mm256_loadu_si256(c.as_ptr() as *const __m256i);
            n += cmp_nibble(v, am, nd).count_ones() as usize;
        }
        for &w in chunks.remainder() {
            n += ((w & and_mask) == needle) as usize;
        }
        n
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn select_lanes(mask: u64, on: &[u64], off: &[u64], out: &mut [u64]) {
        // Lane i of the select mask is all-ones iff nibble bit i is
        // set: broadcast the nibble, AND with each lane's bit, compare.
        let lane_bits = _mm256_set_epi64x(8, 4, 2, 1);
        let mut i = 0;
        while i + 4 <= out.len() {
            let nib = _mm256_set1_epi64x(((mask >> i) & 0xF) as i64);
            let sel = _mm256_cmpeq_epi64(_mm256_and_si256(nib, lane_bits), lane_bits);
            let a = _mm256_loadu_si256(on.as_ptr().add(i) as *const __m256i);
            let b = _mm256_loadu_si256(off.as_ptr().add(i) as *const __m256i);
            let r = _mm256_blendv_epi8(b, a, sel);
            _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, r);
            i += 4;
        }
        while i < out.len() {
            out[i] = if (mask >> i) & 1 != 0 { on[i] } else { off[i] };
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn min_index(stamps: &[u64]) -> usize {
        // AVX2 has no unsigned 64-bit min, so compare in the sign-
        // biased domain (x ^ 1<<63 makes unsigned order signed) and
        // blend, then resolve the first lane equal to the global min.
        let bias = _mm256_set1_epi64x(i64::MIN);
        let mut vmin = _mm256_set1_epi64x(-1);
        let mut chunks = stamps.chunks_exact(4);
        for c in &mut chunks {
            let v = _mm256_loadu_si256(c.as_ptr() as *const __m256i);
            let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(vmin, bias), _mm256_xor_si256(v, bias));
            vmin = _mm256_blendv_epi8(vmin, v, gt);
        }
        let lanes = [
            _mm256_extract_epi64::<0>(vmin) as u64,
            _mm256_extract_epi64::<1>(vmin) as u64,
            _mm256_extract_epi64::<2>(vmin) as u64,
            _mm256_extract_epi64::<3>(vmin) as u64,
        ];
        let mut m = u64::MAX;
        for &s in lanes.iter().chain(chunks.remainder()) {
            if s < m {
                m = s;
            }
        }
        first_match(stamps, !0, m).expect("the minimum is present")
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn shr_and(src: &[u64], shift: u32, mask: u64, out: &mut [u64]) {
        let cnt = _mm_cvtsi64_si128(shift as i64);
        let am = _mm256_set1_epi64x(mask as i64);
        let mut i = 0;
        while i + 4 <= src.len() {
            let v = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let r = _mm256_and_si256(_mm256_srl_epi64(v, cnt), am);
            _mm256_storeu_si256(out.as_mut_ptr().add(i) as *mut __m256i, r);
            i += 4;
        }
        while i < src.len() {
            out[i] = (src[i] >> shift) & mask;
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64, matching the shims' generator.
    fn rng(seed: u64) -> impl FnMut() -> u64 {
        let mut s = seed;
        move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Words with deliberately clustered values so compares hit often.
    fn words_of(len: usize, seed: u64) -> Vec<u64> {
        let mut next = rng(seed);
        (0..len).map(|_| next() % 8).collect()
    }

    #[test]
    fn detect_honors_the_env_knob() {
        // `detect` is uncached, so the knob can be probed directly.
        let saved = std::env::var_os("BCACHE_NO_SIMD");
        std::env::set_var("BCACHE_NO_SIMD", "1");
        assert_eq!(detect(), Backend::Portable);
        std::env::set_var("BCACHE_NO_SIMD", "0");
        let unset_result = detect();
        std::env::remove_var("BCACHE_NO_SIMD");
        assert_eq!(detect(), unset_result, "0 must mean 'not disabled'");
        if let Some(v) = saved {
            std::env::set_var("BCACHE_NO_SIMD", v);
        }
    }

    #[test]
    fn available_backends_lists_portable_first() {
        let b = available_backends();
        assert_eq!(b[0], Backend::Portable);
        assert!(b.len() <= 2);
    }

    #[test]
    fn backend_cache_round_trips_forced_values() {
        let prior = backend();
        force_backend(Backend::Portable);
        assert_eq!(backend(), Backend::Portable);
        force_backend(prior);
        assert_eq!(backend(), prior);
    }

    /// Every lane operation, portable vs AVX2 (when available) vs a
    /// straight scalar reference, across lengths that exercise both
    /// the vector body and the tails.
    #[test]
    fn backends_agree_on_every_op_and_length() {
        for len in 0..=33 {
            for seed in 0..4u64 {
                let words = words_of(len, seed * 977 + len as u64);
                for &(and_mask, needle) in
                    &[(!0u64, 3u64), (!2u64, 1), (1u64, 0), (!0u64, u64::MAX)]
                {
                    let reference_mask: u64 = words
                        .iter()
                        .enumerate()
                        .map(|(i, &w)| (((w & and_mask) == needle) as u64) << i)
                        .sum();
                    let reference_first = words.iter().position(|&w| (w & and_mask) == needle);
                    let reference_count =
                        words.iter().filter(|&&w| (w & and_mask) == needle).count();
                    for b in available_backends() {
                        assert_eq!(
                            masked_eq_mask_with(b, &words, and_mask, needle),
                            reference_mask,
                            "masked_eq_mask {b:?} len {len}"
                        );
                        assert_eq!(
                            first_match_with(b, &words, and_mask, needle),
                            reference_first,
                            "first_match {b:?} len {len}"
                        );
                        assert_eq!(
                            count_matching_with(b, &words, and_mask, needle),
                            reference_count,
                            "count_matching {b:?} len {len}"
                        );
                    }
                }
                // dual_eq_masks ≡ two single-needle masks.
                for b in available_backends() {
                    let (a, c) = dual_eq_masks_with(b, &words, 3, u64::MAX);
                    assert_eq!(a, masked_eq_mask_with(b, &words, !0, 3), "{b:?}");
                    assert_eq!(c, masked_eq_mask_with(b, &words, !0, u64::MAX), "{b:?}");
                }
                // min_index ≡ the first-minimum scan.
                if !words.is_empty() {
                    let reference_min = words
                        .iter()
                        .enumerate()
                        .min_by_key(|&(_, s)| *s)
                        .map(|(i, _)| i)
                        .unwrap();
                    for b in available_backends() {
                        assert_eq!(
                            min_index_with(b, &words),
                            reference_min,
                            "min_index {b:?} len {len} {words:?}"
                        );
                    }
                }
                // select_lanes and shr_and against the scalar law.
                let mut next = rng(seed + 1000);
                let mask = next();
                let off = words_of(len.min(64), seed + 7);
                if words.len() <= 64 {
                    for b in available_backends() {
                        let mut out = vec![0u64; len];
                        select_lanes_with(b, mask, &words, &off, &mut out);
                        for i in 0..len {
                            let want = if (mask >> i) & 1 != 0 {
                                words[i]
                            } else {
                                off[i]
                            };
                            assert_eq!(out[i], want, "select {b:?} lane {i}");
                        }
                    }
                }
                for shift in [0u32, 5, 31, 63] {
                    for b in available_backends() {
                        let mut out = vec![0u64; len];
                        shr_and_with(b, &words, shift, 0x3FF, &mut out);
                        for i in 0..len {
                            assert_eq!(out[i], (words[i] >> shift) & 0x3FF, "{b:?}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn min_index_breaks_ties_to_the_lowest_lane() {
        for b in available_backends() {
            assert_eq!(min_index_with(b, &[5, 2, 2, 9]), 1, "{b:?}");
            assert_eq!(min_index_with(b, &[0; 32]), 0, "{b:?}");
            assert_eq!(min_index_with(b, &[3]), 0, "{b:?}");
            assert_eq!(min_index_with(b, &[]), 0, "{b:?}");
            // The tie at a lane-group boundary: lanes 3 and 4 equal.
            let mut s = vec![9u64; 11];
            s[3] = 1;
            s[4] = 1;
            assert_eq!(min_index_with(b, &s), 3, "{b:?}");
            // Minimum only in the scalar tail.
            let mut t = vec![7u64; 9];
            t[8] = 0;
            assert_eq!(min_index_with(b, &t), 8, "{b:?}");
        }
    }

    #[test]
    fn first_set_lane_is_a_priority_encoder() {
        assert_eq!(first_set_lane(0), None);
        assert_eq!(first_set_lane(0b1000), Some(3));
        assert_eq!(first_set_lane(u64::MAX), Some(0));
    }
}
