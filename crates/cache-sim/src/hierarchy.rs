//! The two-level memory hierarchy of the paper's evaluation: split L1
//! instruction/data caches, a unified 4-way 256 kB L2, and an infinite
//! main memory (Table 4).

use crate::addr::Addr;
use crate::model::{AccessKind, CacheModel};
use crate::replacement::PolicyKind;
use crate::set_assoc::SetAssociativeCache;

/// Latency parameters of the hierarchy, in cycles (paper Table 4).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct LatencyConfig {
    /// Base L1 hit latency.
    pub l1_hit: u64,
    /// L2 hit latency, charged on every L1 miss that hits in L2.
    pub l2_hit: u64,
    /// Main-memory access latency, charged on every L2 miss.
    pub memory: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        // Table 4: L1 one-cycle, L2 6-cycle hit, 100-cycle main memory.
        LatencyConfig {
            l1_hit: 1,
            l2_hit: 6,
            memory: 100,
        }
    }
}

/// A split-L1, unified-L2 memory hierarchy.
///
/// The hierarchy is non-inclusive: L1 fills allocate in L2 on the way in
/// (the L2 services the L1 miss), and dirty L1 victims are written back
/// into the L2; dirty L2 victims disappear into the infinite memory.
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, DirectMappedCache, MemoryHierarchy};
///
/// let l1i = DirectMappedCache::new(16 * 1024, 32)?;
/// let l1d = DirectMappedCache::new(16 * 1024, 32)?;
/// let mut h = MemoryHierarchy::new(Box::new(l1i), Box::new(l1d));
/// let cold = h.data_access(0x1000u64.into(), AccessKind::Read);
/// assert_eq!(cold, 1 + 6 + 100);      // L1 miss, L2 miss, memory
/// let warm = h.data_access(0x1000u64.into(), AccessKind::Read);
/// assert_eq!(warm, 1);                // L1 hit
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
pub struct MemoryHierarchy {
    l1i: Box<dyn CacheModel>,
    l1d: Box<dyn CacheModel>,
    l2: SetAssociativeCache,
    latency: LatencyConfig,
    l2_accesses: u64,
    memory_accesses: u64,
}

impl MemoryHierarchy {
    /// Builds the paper's hierarchy around the given L1 caches: unified
    /// 256 kB, 128-byte-line, 4-way LRU L2 and default latencies.
    pub fn new(l1i: Box<dyn CacheModel>, l1d: Box<dyn CacheModel>) -> Self {
        let l2 = SetAssociativeCache::new(256 * 1024, 128, 4, PolicyKind::Lru, 0)
            .expect("paper L2 geometry is valid");
        Self::with_l2(l1i, l1d, l2, LatencyConfig::default())
    }

    /// Builds a hierarchy with an explicit L2 and latency configuration.
    pub fn with_l2(
        l1i: Box<dyn CacheModel>,
        l1d: Box<dyn CacheModel>,
        l2: SetAssociativeCache,
        latency: LatencyConfig,
    ) -> Self {
        MemoryHierarchy {
            l1i,
            l1d,
            l2,
            latency,
            l2_accesses: 0,
            memory_accesses: 0,
        }
    }

    /// Services an instruction fetch; returns its latency in cycles.
    pub fn fetch(&mut self, pc: Addr) -> u64 {
        let r = self.l1i.access(pc, AccessKind::InstrFetch);
        let mut cycles = self.latency.l1_hit + u64::from(r.extra_latency);
        if !r.hit {
            cycles += self.refill(pc, AccessKind::Read);
        }
        if let Some(ev) = r.evicted {
            self.writeback(ev);
        }
        cycles
    }

    /// Services a data access; returns its latency in cycles.
    pub fn data_access(&mut self, addr: Addr, kind: AccessKind) -> u64 {
        debug_assert!(
            !matches!(kind, AccessKind::InstrFetch),
            "use fetch() for instructions"
        );
        let r = self.l1d.access(addr, kind);
        let mut cycles = self.latency.l1_hit + u64::from(r.extra_latency);
        if !r.hit {
            // The L2 sees the refill as a read regardless of the L1 kind;
            // the store's dirtiness lives in the L1 block.
            cycles += self.refill(addr, AccessKind::Read);
        }
        if let Some(ev) = r.evicted {
            self.writeback(ev);
        }
        cycles
    }

    /// Charges an L2 lookup (plus memory on an L2 miss) for an L1 refill.
    fn refill(&mut self, addr: Addr, kind: AccessKind) -> u64 {
        self.l2_accesses += 1;
        let r = self.l2.access(addr, kind);
        // L2 victims fall into the infinite memory; dirty ones cost a
        // memory write that we count but do not put on the load's path
        // (write buffers hide it), matching common simulator practice.
        if let Some(ev) = r.evicted {
            if ev.dirty {
                self.memory_accesses += 1;
            }
        }
        if r.hit {
            self.latency.l2_hit
        } else {
            self.memory_accesses += 1;
            self.latency.l2_hit + self.latency.memory
        }
    }

    /// Absorbs a dirty L1 victim into the L2 (off the critical path).
    fn writeback(&mut self, ev: crate::model::Eviction) {
        if ev.dirty {
            self.l2_accesses += 1;
            let r = self.l2.access(ev.block, AccessKind::Write);
            if let Some(l2ev) = r.evicted {
                if l2ev.dirty {
                    self.memory_accesses += 1;
                }
            }
            if !r.hit {
                self.memory_accesses += 1;
            }
        }
    }

    /// The L1 instruction cache.
    pub fn l1i(&self) -> &dyn CacheModel {
        self.l1i.as_ref()
    }

    /// The L1 data cache.
    pub fn l1d(&self) -> &dyn CacheModel {
        self.l1d.as_ref()
    }

    /// The unified L2.
    pub fn l2(&self) -> &SetAssociativeCache {
        &self.l2
    }

    /// Total L2 lookups (refills + write-backs).
    pub fn l2_accesses(&self) -> u64 {
        self.l2_accesses
    }

    /// Total main-memory accesses (L2 misses + dirty L2 victims).
    pub fn memory_accesses(&self) -> u64 {
        self.memory_accesses
    }

    /// The latency configuration.
    pub fn latency(&self) -> LatencyConfig {
        self.latency
    }

    /// Clears statistics on every level, keeping contents (used to drop
    /// the warm-up prefix of a run).
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.l2_accesses = 0;
        self.memory_accesses = 0;
    }
}

impl std::fmt::Debug for MemoryHierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryHierarchy")
            .field("l1i", &self.l1i.label())
            .field("l1d", &self.l1d.label())
            .field("l2", &self.l2.label())
            .field("latency", &self.latency)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectMappedCache;

    fn hierarchy() -> MemoryHierarchy {
        let l1i = DirectMappedCache::new(1024, 32).unwrap();
        let l1d = DirectMappedCache::new(1024, 32).unwrap();
        MemoryHierarchy::new(Box::new(l1i), Box::new(l1d))
    }

    #[test]
    fn latency_tiers() {
        let mut h = hierarchy();
        // Cold: L1 miss + L2 miss.
        assert_eq!(
            h.data_access(Addr::new(0x100), AccessKind::Read),
            1 + 6 + 100
        );
        // L1 hit.
        assert_eq!(h.data_access(Addr::new(0x100), AccessKind::Read), 1);
        // Conflict out of L1 (1 kB apart), but L2 holds the 128 B block.
        h.data_access(Addr::new(0x100 + 1024), AccessKind::Read);
        let l2_hit = h.data_access(Addr::new(0x100), AccessKind::Read);
        assert_eq!(l2_hit, 1 + 6);
    }

    #[test]
    fn fetch_and_data_use_separate_l1s() {
        let mut h = hierarchy();
        h.fetch(Addr::new(0x200));
        assert_eq!(h.l1i().stats().total().accesses(), 1);
        assert_eq!(h.l1d().stats().total().accesses(), 0);
        h.data_access(Addr::new(0x200), AccessKind::Read);
        assert_eq!(h.l1d().stats().total().accesses(), 1);
    }

    #[test]
    fn l1_writeback_lands_in_l2() {
        let mut h = hierarchy();
        h.data_access(Addr::new(0x0), AccessKind::Write);
        let l2_before = h.l2_accesses();
        // Evict the dirty block from L1 (1 kB conflict).
        h.data_access(Addr::new(1024), AccessKind::Read);
        assert!(
            h.l2_accesses() > l2_before,
            "refill plus write-back must touch L2"
        );
        assert_eq!(h.l1d().stats().writebacks(), 1);
        // The written-back block now hits in L2.
        assert_eq!(h.data_access(Addr::new(0x0), AccessKind::Read), 1 + 6);
    }

    #[test]
    fn memory_access_counter_tracks_l2_misses() {
        let mut h = hierarchy();
        h.data_access(Addr::new(0), AccessKind::Read);
        h.data_access(Addr::new(1 << 20), AccessKind::Read);
        assert_eq!(h.memory_accesses(), 2);
        h.data_access(Addr::new(0), AccessKind::Read); // L1 conflict, L2 hit
        assert_eq!(h.memory_accesses(), 2);
    }

    #[test]
    fn reset_stats_clears_counters_everywhere() {
        let mut h = hierarchy();
        h.data_access(Addr::new(0), AccessKind::Read);
        h.fetch(Addr::new(0x40));
        h.reset_stats();
        assert_eq!(h.l2_accesses(), 0);
        assert_eq!(h.memory_accesses(), 0);
        assert_eq!(h.l1i().stats().total().accesses(), 0);
        assert_eq!(h.l1d().stats().total().accesses(), 0);
        assert_eq!(h.l2().stats().total().accesses(), 0);
        // Contents survive: the block is still in L1.
        assert_eq!(h.data_access(Addr::new(0), AccessKind::Read), 1);
    }

    #[test]
    fn default_latencies_match_table4() {
        let lat = LatencyConfig::default();
        assert_eq!(lat.l1_hit, 1);
        assert_eq!(lat.l2_hit, 6);
        assert_eq!(lat.memory, 100);
    }

    #[test]
    fn paper_l2_shape() {
        let h = hierarchy();
        let g = h.l2().geometry();
        assert_eq!(g.size_bytes(), 256 * 1024);
        assert_eq!(g.line_bytes(), 128);
        assert_eq!(g.assoc(), 4);
    }
}
