//! Conventional set-associative caches (2-way … fully associative).

use telemetry::{Event, MissKind, NullObserver, Observer};

use crate::addr::Addr;
use crate::cam;
use crate::geometry::TagIndexSplit;
use crate::geometry::{CacheGeometry, GeometryError};
use crate::model::{AccessKind, AccessResult, CacheModel, Eviction};
use crate::packed;
use crate::replacement::{make_policy, Lru, PolicyKind, ReplacementPolicy};
use crate::stats::{BatchTally, CacheStats, SetUsage};

/// A set-associative, write-back, write-allocate cache with a pluggable
/// replacement policy.
///
/// The paper compares the B-Cache against 2-, 4-, 8- and 32-way instances
/// of this model (all LRU), and the unified L2 is a 4-way instance.
///
/// Both access paths run through one shared step function
/// ([`step_one`]), so per-access and batched replay are bit-identical —
/// statistics, replacement state, and [`Observer`] events alike. The
/// wrapper models (way-halting, PAM, difference-bit) fuse their shadow
/// bookkeeping around the same step via [`SetAssociativeCache::batch_parts`].
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, CacheModel, PolicyKind, SetAssociativeCache};
///
/// let mut l2 = SetAssociativeCache::new(256 * 1024, 128, 4, PolicyKind::Lru, 0)?;
/// assert!(!l2.access(0x8000u64.into(), AccessKind::Read).hit);
/// assert!(l2.access(0x8000u64.into(), AccessKind::Read).hit);
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct SetAssociativeCache<O: Observer = NullObserver> {
    geom: CacheGeometry,
    // One packed tag|dirty|valid word per line, way-major within each
    // set: slot = set * assoc + way.
    lines: Vec<u64>,
    policy: Box<dyn ReplacementPolicy>,
    stats: CacheStats,
    usage: SetUsage,
    observer: O,
}

impl SetAssociativeCache {
    /// Creates a cache of `size_bytes` with `line_bytes` blocks and `assoc`
    /// ways per set.
    ///
    /// `seed` feeds the random replacement policy; other policies ignore
    /// it.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn new(
        size_bytes: usize,
        line_bytes: usize,
        assoc: usize,
        policy: PolicyKind,
        seed: u64,
    ) -> Result<Self, GeometryError> {
        Self::with_observer(size_bytes, line_bytes, assoc, policy, seed, NullObserver)
    }

    /// Creates a cache from an explicit geometry.
    ///
    /// # Errors
    ///
    /// Never fails for a valid geometry; the `Result` mirrors
    /// [`SetAssociativeCache::new`].
    pub fn from_geometry(
        geom: CacheGeometry,
        policy: PolicyKind,
        seed: u64,
    ) -> Result<Self, GeometryError> {
        Self::from_geometry_with_observer(geom, policy, seed, NullObserver)
    }

    /// Creates a fully-associative cache with `lines` blocks.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn fully_associative(
        lines: usize,
        line_bytes: usize,
        policy: PolicyKind,
        seed: u64,
    ) -> Result<Self, GeometryError> {
        Self::new(lines * line_bytes, line_bytes, lines, policy, seed)
    }
}

impl<O: Observer> SetAssociativeCache<O> {
    /// Like [`SetAssociativeCache::new`], but wiring `observer` into
    /// both access paths. With the default [`NullObserver`] every
    /// emission site compiles out.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn with_observer(
        size_bytes: usize,
        line_bytes: usize,
        assoc: usize,
        policy: PolicyKind,
        seed: u64,
        observer: O,
    ) -> Result<Self, GeometryError> {
        Self::from_geometry_with_observer(
            CacheGeometry::new(size_bytes, line_bytes, assoc)?,
            policy,
            seed,
            observer,
        )
    }

    /// Like [`SetAssociativeCache::from_geometry`], with an observer.
    ///
    /// # Errors
    ///
    /// Never fails for a valid geometry; the `Result` mirrors
    /// [`SetAssociativeCache::new`].
    pub fn from_geometry_with_observer(
        geom: CacheGeometry,
        policy: PolicyKind,
        seed: u64,
        observer: O,
    ) -> Result<Self, GeometryError> {
        assert!(
            geom.tag_bits() <= packed::MAX_TAG_BITS,
            "tag field of {geom} does not fit a packed line word"
        );
        let sets = geom.sets();
        let ways = geom.assoc();
        Ok(SetAssociativeCache {
            geom,
            lines: vec![packed::EMPTY; sets * ways],
            policy: make_policy(policy, sets, ways, seed),
            stats: CacheStats::new(),
            usage: SetUsage::new(sets),
            observer,
        })
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the attached observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.geom.assoc() + way
    }

    /// Looks up the way holding `addr`'s block, if resident.
    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        let base = self.slot(set, 0);
        self.lines[base..base + self.geom.assoc()]
            .iter()
            .position(|&w| packed::matches(w, tag))
    }

    /// Returns `true` if the block containing `addr` is resident, without
    /// touching statistics or replacement state.
    pub fn probe(&self, addr: Addr) -> bool {
        self.find_way(self.geom.set_index(addr), self.geom.tag(addr))
            .is_some()
    }

    /// The replacement policy in use.
    pub fn policy_kind(&self) -> PolicyKind {
        self.policy.kind()
    }

    /// Removes the block containing `addr` (if resident) and returns it.
    ///
    /// Used by wrappers to migrate blocks between arrays. Does not touch
    /// hit/miss statistics.
    pub fn extract(&mut self, addr: Addr) -> Option<Eviction> {
        let set = self.geom.set_index(addr);
        let tag = self.geom.tag(addr);
        let way = self.find_way(set, tag)?;
        let s = self.slot(set, way);
        let dirty = packed::is_dirty(self.lines[s]);
        self.lines[s] = packed::EMPTY;
        Some(Eviction {
            block: self.geom.reconstruct(tag, set),
            dirty,
        })
    }

    /// Inserts a block without counting an access, evicting if necessary.
    ///
    /// Returns the displaced block, if any. Wrappers use this for
    /// swap/demote traffic that the paper does not count as references.
    pub fn insert(&mut self, addr: Addr, dirty: bool) -> Option<Eviction> {
        let set = self.geom.set_index(addr);
        let tag = self.geom.tag(addr);
        if let Some(way) = self.find_way(set, tag) {
            // Already resident: refresh recency and merge dirtiness.
            let s = self.slot(set, way);
            if dirty {
                self.lines[s] = packed::set_dirty(self.lines[s]);
            }
            self.policy.on_access(set, way);
            return None;
        }
        let (way, evicted) = self.choose_fill_slot(set);
        let s = self.slot(set, way);
        self.lines[s] = packed::fill(tag, dirty);
        self.policy.on_fill(set, way);
        evicted
    }

    fn choose_fill_slot(&mut self, set: usize) -> (usize, Option<Eviction>) {
        if let Some(way) =
            (0..self.geom.assoc()).find(|&w| !packed::is_valid(self.lines[self.slot(set, w)]))
        {
            return (way, None);
        }
        let way = self.policy.victim(set);
        debug_assert!(way < self.geom.assoc(), "policy returned out-of-range way");
        let s = self.slot(set, way);
        let word = self.lines[s];
        let block = self.geom.reconstruct(packed::tag(word), set);
        let dirty = packed::is_dirty(word);
        if dirty {
            self.stats.record_writeback();
        }
        (way, Some(Eviction { block, dirty }))
    }

    /// The packed line words of `set`, in way order (wrapper models scan
    /// these for halt-tag and way-prediction decisions).
    pub(crate) fn set_words(&self, set: usize) -> &[u64] {
        let assoc = self.geom.assoc();
        &self.lines[set * assoc..(set + 1) * assoc]
    }

    /// Destructures the cache into the pieces the batched kernels need,
    /// with disjoint borrows so wrapper models can keep their own shadow
    /// state mutable alongside. The caller drives [`step_one`] and
    /// flushes the tally into the returned [`CacheStats`].
    #[allow(clippy::type_complexity)]
    pub(crate) fn batch_parts(
        &mut self,
    ) -> (
        TagIndexSplit,
        usize,
        &mut [u64],
        &mut SetUsage,
        &mut Box<dyn ReplacementPolicy>,
        &mut CacheStats,
        &mut O,
    ) {
        (
            self.geom.split(),
            self.geom.assoc(),
            &mut self.lines,
            &mut self.usage,
            &mut self.policy,
            &mut self.stats,
            &mut self.observer,
        )
    }
}

/// What [`step_one`] did, in kernel-friendly form: the evicted block is
/// reported as a raw `(tag, dirty)` pair so hot loops that do not need
/// the reconstructed address pay nothing for it.
pub(crate) struct StepOutcome {
    pub(crate) hit: bool,
    pub(crate) set: usize,
    pub(crate) evicted: Option<(u64, bool)>,
}

/// One access against a destructured set-associative array. Shared by
/// the per-access path, the batched kernel, and the wrapper models'
/// fused kernels, so every path is bit-identical by construction —
/// statistics, replacement state, and [`Observer`] events alike.
///
/// Generic over the replacement policy so callers can pass either a
/// concrete [`Lru`] (updates inlined, no virtual dispatch) or the boxed
/// `dyn` policy, and over the associativity: `A > 0` monomorphizes the
/// way scans into the fused CAM probe — a [`crate::simd`] compare-mask
/// over whole lane groups, AVX2 or portable per the process backend
/// (`A` must equal `assoc`) — while `A == 0` falls back to
/// runtime-width scans with identical first-match semantics.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
pub(crate) fn step_one<P: ReplacementPolicy + ?Sized, O: Observer, const A: usize>(
    split: &TagIndexSplit,
    assoc: usize,
    lines: &mut [u64],
    usage: &mut SetUsage,
    policy: &mut P,
    tally: &mut BatchTally,
    observer: &mut O,
    addr: Addr,
    kind: AccessKind,
) -> StepOutcome {
    debug_assert!(A == 0 || A == assoc, "const width must match the geometry");
    let set = split.set_index(addr);
    let tag = split.tag(addr);
    let base = set * assoc;
    let ways = &mut lines[base..base + assoc];
    if let Some(way) = cam::find_match::<A>(ways, tag) {
        tally.record(kind, true);
        usage.record(set, true);
        if O::ENABLED {
            observer.event(Event::SetTouch {
                set: set as u64,
                hit: true,
            });
        }
        policy.on_access(set, way);
        if kind.is_write() {
            ways[way] = packed::set_dirty(ways[way]);
        }
        return StepOutcome {
            hit: true,
            set,
            evicted: None,
        };
    }
    tally.record(kind, false);
    usage.record(set, false);
    if O::ENABLED {
        observer.event(Event::Miss {
            kind: MissKind::Tag,
        });
        observer.event(Event::SetTouch {
            set: set as u64,
            hit: false,
        });
    }
    let (way, evicted) = match cam::find_invalid::<A>(ways) {
        Some(w) => (w, None),
        None => {
            let w = policy.victim(set);
            debug_assert!(w < assoc, "policy returned out-of-range way");
            let word = ways[w];
            let dirty = packed::is_dirty(word);
            tally.record_writeback_if(dirty);
            (w, Some((packed::tag(word), dirty)))
        }
    };
    ways[way] = packed::fill(tag, kind.is_write());
    policy.on_fill(set, way);
    StepOutcome {
        hit: false,
        set,
        evicted,
    }
}

/// The hot loop of [`SetAssociativeCache::access_batch`]: [`step_one`]
/// over the whole batch with register-tallied stats, monomorphized per
/// associativity (`A == 0` is the runtime-width fallback).
#[allow(clippy::too_many_arguments)]
fn replay_batch<P: ReplacementPolicy + ?Sized, O: Observer, const A: usize>(
    split: TagIndexSplit,
    assoc: usize,
    lines: &mut [u64],
    usage: &mut SetUsage,
    policy: &mut P,
    observer: &mut O,
    accesses: &[(Addr, AccessKind)],
) -> BatchTally {
    let mut tally = BatchTally::new();
    for &(addr, kind) in accesses {
        step_one::<P, O, A>(
            &split, assoc, lines, usage, policy, &mut tally, observer, addr, kind,
        );
    }
    tally
}

/// Dispatches a kernel macro over the common associativity widths: the
/// matched width becomes a const generic (`$kernel!(8)` etc.), anything
/// else takes the runtime fallback (`$kernel!(0)`).
macro_rules! dispatch_assoc {
    ($assoc:expr, $kernel:ident) => {
        match $assoc {
            1 => $kernel!(1),
            2 => $kernel!(2),
            4 => $kernel!(4),
            8 => $kernel!(8),
            16 => $kernel!(16),
            32 => $kernel!(32),
            _ => $kernel!(0),
        }
    };
}

impl<O: Observer> CacheModel for SetAssociativeCache<O> {
    fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        let split = self.geom.split();
        let assoc = self.geom.assoc();
        let mut tally = BatchTally::new();
        let out = step_one::<_, _, 0>(
            &split,
            assoc,
            &mut self.lines,
            &mut self.usage,
            self.policy.as_mut(),
            &mut tally,
            &mut self.observer,
            addr,
            kind,
        );
        tally.flush(&mut self.stats);
        if out.hit {
            AccessResult::hit()
        } else {
            AccessResult::miss(out.evicted.map(|(tag, dirty)| Eviction {
                block: self.geom.reconstruct(tag, out.set),
                dirty,
            }))
        }
    }

    fn access_batch(&mut self, accesses: &[(Addr, AccessKind)]) {
        // Monomorphized replay over the packed line array. LRU — the
        // paper's default — runs the kernel with its stamp updates
        // inlined; other policies take the same kernel through dynamic
        // dispatch. Bit-identical to the `access` loop (the
        // batch-equivalence suite enforces it, events included).
        let split = self.geom.split();
        let assoc = self.geom.assoc();
        let tally = if let Some(lru) = self.policy.as_any_mut().downcast_mut::<Lru>() {
            macro_rules! kernel {
                ($a:literal) => {
                    replay_batch::<_, _, $a>(
                        split,
                        assoc,
                        &mut self.lines,
                        &mut self.usage,
                        lru,
                        &mut self.observer,
                        accesses,
                    )
                };
            }
            dispatch_assoc!(assoc, kernel)
        } else {
            macro_rules! kernel {
                ($a:literal) => {
                    replay_batch::<_, _, $a>(
                        split,
                        assoc,
                        &mut self.lines,
                        &mut self.usage,
                        self.policy.as_mut(),
                        &mut self.observer,
                        accesses,
                    )
                };
            }
            dispatch_assoc!(assoc, kernel)
        };
        tally.flush(&mut self.stats);
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.usage.reset();
    }

    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn set_usage(&self) -> Option<&SetUsage> {
        Some(&self.usage)
    }

    fn label(&self) -> String {
        format!("{}k{}way", self.geom.size_bytes() / 1024, self.geom.assoc())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectMappedCache;

    fn tiny(assoc: usize) -> SetAssociativeCache {
        SetAssociativeCache::new(256, 32, assoc, PolicyKind::Lru, 0).unwrap()
    }

    #[test]
    fn two_way_absorbs_the_paper_thrash_sequence() {
        // Paper Section 2.2: 0,1,8,9 repeated hits in a 2-way cache after
        // the four warm-up misses.
        let mut c = tiny(2);
        let line = 32u64;
        for block in [0u64, 1, 8, 9] {
            assert!(!c.access(Addr::new(block * line), AccessKind::Read).hit);
        }
        for _ in 0..4 {
            for block in [0u64, 1, 8, 9] {
                assert!(c.access(Addr::new(block * line), AccessKind::Read).hit);
            }
        }
        assert_eq!(c.stats().total().misses(), 4);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny(2); // 4 sets
        let line = 32u64;
        let set0 = |tag: u64| Addr::new(tag * 4 * line); // tags in set 0
        c.access(set0(0), AccessKind::Read);
        c.access(set0(1), AccessKind::Read);
        c.access(set0(0), AccessKind::Read); // 1 is now LRU
        let r = c.access(set0(2), AccessKind::Read);
        assert_eq!(r.evicted.unwrap().block, set0(1));
        assert!(c.probe(set0(0)));
        assert!(!c.probe(set0(1)));
    }

    #[test]
    fn assoc_one_matches_direct_mapped() {
        let mut sa = tiny(1);
        let mut dm = DirectMappedCache::new(256, 32).unwrap();
        // Pseudo-random but deterministic probe sequence.
        let mut x = 0x12345678u64;
        for _ in 0..2000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = Addr::new(x % 4096);
            let kind = if x & 1 == 0 {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            let a = sa.access(addr, kind);
            let b = dm.access(addr, kind);
            assert_eq!(a.hit, b.hit, "divergence at {addr}");
            assert_eq!(a.evicted, b.evicted);
        }
        assert_eq!(sa.stats(), dm.stats());
    }

    #[test]
    fn fully_associative_uses_single_set() {
        let c = SetAssociativeCache::fully_associative(16, 32, PolicyKind::Lru, 0).unwrap();
        assert_eq!(c.geometry().sets(), 1);
        assert_eq!(c.geometry().assoc(), 16);
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny(2);
        let set0 = |tag: u64| Addr::new(tag * 128);
        c.access(set0(0), AccessKind::Write);
        c.access(set0(1), AccessKind::Read);
        let r = c.access(set0(2), AccessKind::Read);
        let ev = r.evicted.unwrap();
        assert_eq!(ev.block, set0(0));
        assert!(ev.dirty);
        assert_eq!(c.stats().writebacks(), 1);
    }

    #[test]
    fn extract_removes_block_silently() {
        let mut c = tiny(2);
        c.access(Addr::new(0x40), AccessKind::Write);
        let accesses_before = c.stats().total().accesses();
        let ev = c.extract(Addr::new(0x40)).unwrap();
        assert_eq!(ev.block, Addr::new(0x40));
        assert!(ev.dirty);
        assert!(!c.probe(Addr::new(0x40)));
        assert_eq!(c.stats().total().accesses(), accesses_before);
        assert!(c.extract(Addr::new(0x40)).is_none());
    }

    #[test]
    fn insert_fills_and_displaces() {
        let mut c = tiny(2);
        assert!(c.insert(Addr::new(0x000), false).is_none());
        assert!(c.insert(Addr::new(0x100), true).is_none());
        // Third block in set 0 displaces the LRU (0x000).
        let ev = c.insert(Addr::new(0x200), false).unwrap();
        assert_eq!(ev.block, Addr::new(0x000));
        assert!(!ev.dirty);
        // Re-inserting a resident block merges dirtiness instead.
        assert!(c.insert(Addr::new(0x100), false).is_none());
        let ev2 = c.extract(Addr::new(0x100)).unwrap();
        assert!(ev2.dirty, "dirtiness must be sticky across insert");
    }

    #[test]
    fn random_policy_stays_within_bounds() {
        let mut c = SetAssociativeCache::new(256, 32, 4, PolicyKind::Random, 9).unwrap();
        for i in 0..4000u64 {
            c.access(Addr::new(i * 64), AccessKind::Read);
        }
        // 2 sets * 4 ways = 8 lines; all still addressable without panic.
        assert!(c.stats().total().accesses() == 4000);
    }

    #[test]
    fn label_shows_ways() {
        assert_eq!(
            SetAssociativeCache::new(16 * 1024, 32, 8, PolicyKind::Lru, 0)
                .unwrap()
                .label(),
            "16k8way"
        );
    }

    fn fuzz_accesses(records: usize, seed: u64) -> Vec<(Addr, AccessKind)> {
        let mut x = seed ^ 0x0F1E_2D3Cu64;
        (0..records)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let kind = if x & 4 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                (Addr::new(((x >> 16) % 512) * 32), kind)
            })
            .collect()
    }

    #[test]
    fn access_batch_is_bit_identical_to_the_loop() {
        for policy in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Random,
            PolicyKind::TreePlru,
        ] {
            let mut looped = SetAssociativeCache::new(2048, 32, 4, policy, 99).unwrap();
            let mut batched = SetAssociativeCache::new(2048, 32, 4, policy, 99).unwrap();
            let accesses = fuzz_accesses(5_000, 0);
            for &(addr, kind) in &accesses {
                looped.access(addr, kind);
            }
            batched.access_batch(&accesses);
            assert_eq!(looped.stats(), batched.stats(), "{policy:?}");
            assert_eq!(looped.usage, batched.usage, "{policy:?}");
            assert_eq!(looped.lines, batched.lines, "{policy:?} contents");
        }
    }

    #[test]
    fn observer_sees_identical_events_from_loop_and_batch() {
        use telemetry::EventRing;
        let accesses = fuzz_accesses(5_000, 31);
        let mut looped = SetAssociativeCache::with_observer(
            2048,
            32,
            4,
            PolicyKind::Lru,
            0,
            EventRing::new(64 * 1024),
        )
        .unwrap();
        let mut batched = SetAssociativeCache::with_observer(
            2048,
            32,
            4,
            PolicyKind::Lru,
            0,
            EventRing::new(64 * 1024),
        )
        .unwrap();
        for &(addr, kind) in &accesses {
            looped.access(addr, kind);
        }
        batched.access_batch(&accesses);
        let a: Vec<_> = looped.observer().iter().map(|(_, e)| e.clone()).collect();
        let b: Vec<_> = batched.observer().iter().map(|(_, e)| e.clone()).collect();
        assert!(!a.is_empty(), "the fuzz stream must generate events");
        assert_eq!(a, b, "per-access and batched event sequences diverge");
    }

    /// Differential hook: every replacement policy must track the
    /// reference oracle (`crate::oracle`) access-by-access.
    #[test]
    fn matches_reference_oracle_for_every_policy() {
        use crate::oracle::OracleCache;
        for policy in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Random,
            PolicyKind::TreePlru,
        ] {
            let mut model = SetAssociativeCache::new(2048, 32, 4, policy, 99).unwrap();
            let mut oracle = OracleCache::new(2048, 32, 4, policy, 99, 32);
            let mut x = 0x1357_9BDFu64;
            for i in 0..4000u64 {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let addr = ((x >> 16) % 512) * 32;
                let kind = if x & 4 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let got = model.access(Addr::new(addr), kind);
                let want = oracle.access(Addr::new(addr), kind);
                assert_eq!(want.diff(&got), None, "{policy:?} access {i} at {addr:#x}");
            }
        }
    }
}
