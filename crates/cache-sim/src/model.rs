//! The [`CacheModel`] trait implemented by every cache in this workspace,
//! together with the access request/response types.

use crate::addr::Addr;
use crate::geometry::CacheGeometry;
use crate::stats::{CacheStats, SetUsage};

/// What kind of memory reference an access is.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A data load.
    Read,
    /// A data store (write-allocate: misses fill the block, then dirty it).
    Write,
    /// An instruction fetch.
    InstrFetch,
}

impl AccessKind {
    /// Whether this access dirties the block it touches.
    pub const fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

/// A block pushed out of a cache by a fill.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Eviction {
    /// Block-aligned base address of the evicted block.
    pub block: Addr,
    /// Whether the block was dirty and must be written back.
    pub dirty: bool,
}

/// The outcome of one cache access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the reference hit in this cache (victim-buffer hits count).
    pub hit: bool,
    /// Extra cycles beyond the cache's base hit latency.
    ///
    /// Zero for every hit in a direct-mapped cache or a B-Cache; one for a
    /// swap hit in a victim buffer or a rehash hit in a column-associative
    /// cache. Only meaningful when `hit` is `true`.
    pub extra_latency: u32,
    /// Block evicted to make room for the fill, if any.
    pub evicted: Option<Eviction>,
}

impl AccessResult {
    /// A plain single-cycle hit.
    pub const fn hit() -> Self {
        AccessResult {
            hit: true,
            extra_latency: 0,
            evicted: None,
        }
    }

    /// A hit that costs `extra` additional cycles.
    pub const fn slow_hit(extra: u32) -> Self {
        AccessResult {
            hit: true,
            extra_latency: extra,
            evicted: None,
        }
    }

    /// A miss, optionally evicting a block.
    pub const fn miss(evicted: Option<Eviction>) -> Self {
        AccessResult {
            hit: false,
            extra_latency: 0,
            evicted,
        }
    }
}

/// A cache that can service block-granular accesses.
///
/// Implementations are *functional* models: they track which blocks are
/// resident and dirty, maintain replacement state, and count statistics.
/// They do not store data bytes. All of them use write-back,
/// write-allocate semantics, matching the paper's SimpleScalar setup.
pub trait CacheModel {
    /// Services one access and updates internal state and statistics.
    fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult;

    /// Aggregate statistics since the last [`reset_stats`](Self::reset_stats).
    fn stats(&self) -> &CacheStats;

    /// Clears statistics without disturbing cache contents.
    ///
    /// Used by the harness to discard the warm-up prefix of a run, the
    /// stand-in for the paper's fast-forward phase.
    fn reset_stats(&mut self);

    /// The nominal geometry (capacity / line / associativity).
    fn geometry(&self) -> CacheGeometry;

    /// Per-set usage counters, when the model tracks them.
    fn set_usage(&self) -> Option<&SetUsage> {
        None
    }

    /// Short human-readable configuration label, e.g. `"16k8way"`.
    fn label(&self) -> String;

    /// Services a batch of accesses, updating state and statistics
    /// exactly as the equivalent [`access`](Self::access) loop would.
    ///
    /// The default implementation *is* that loop; models with a hot
    /// replay path override it with a monomorphized version that skips
    /// per-access dispatch. Overrides must stay bit-identical to the
    /// loop — statistics, set usage, replacement state and contents —
    /// which `harness`'s batch-equivalence suite enforces.
    fn access_batch(&mut self, accesses: &[(Addr, AccessKind)]) {
        for &(addr, kind) in accesses {
            self.access(addr, kind);
        }
    }
}

/// Convenience: `Box<dyn CacheModel>` forwards to the inner model.
impl CacheModel for Box<dyn CacheModel> {
    fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        (**self).access(addr, kind)
    }

    fn stats(&self) -> &CacheStats {
        (**self).stats()
    }

    fn reset_stats(&mut self) {
        (**self).reset_stats()
    }

    fn geometry(&self) -> CacheGeometry {
        (**self).geometry()
    }

    fn set_usage(&self) -> Option<&SetUsage> {
        (**self).set_usage()
    }

    fn label(&self) -> String {
        (**self).label()
    }

    fn access_batch(&mut self, accesses: &[(Addr, AccessKind)]) {
        (**self).access_batch(accesses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_kind_write_detection() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
        assert!(!AccessKind::InstrFetch.is_write());
    }

    #[test]
    fn result_constructors() {
        assert!(AccessResult::hit().hit);
        assert_eq!(AccessResult::hit().extra_latency, 0);
        assert_eq!(AccessResult::slow_hit(2).extra_latency, 2);
        let ev = Eviction {
            block: Addr::new(0x40),
            dirty: true,
        };
        let r = AccessResult::miss(Some(ev));
        assert!(!r.hit);
        assert_eq!(r.evicted, Some(ev));
    }
}
