//! Monomorphized CAM-search primitives over packed line words.
//!
//! The B-Cache kernel's fused programmable-decoder probe showed the
//! pattern: a fully-associative search over a const-width array of
//! packed `u64` words compiles to straight-line, branch-free compares.
//! This module generalizes that trick so every model with a CAM-style
//! structure — the victim buffer's 16-entry FA search, AGAC's
//! out-of-position directory, the HAC subarrays — shares one
//! implementation, now built on the [`crate::simd`] lane operations:
//! each probe is a compare-mask (AVX2 or portable, decided once per
//! process) followed by a `trailing_zeros` priority encode.
//!
//! Each helper takes a const generic width `N`; `N == 0` selects a
//! runtime-width fallback with identical semantics (first match /
//! first invalid / first minimum), so callers dispatch on the common
//! power-of-two widths and fall back for exotic shapes. With `N > 0`
//! the slice length is known to the compiler, so the portable backend
//! unrolls the lane loop exactly like the hand-written PR 7 kernels.

use crate::packed;
use crate::simd;

/// Reborrows the slice with its length visible to the compiler when a
/// const width is given (the `N == 0` fallback passes it through).
#[inline(always)]
fn fixed<const N: usize>(words: &[u64]) -> &[u64] {
    if N == 0 {
        return words;
    }
    debug_assert_eq!(
        words.len(),
        N,
        "const-width CAM called on a mismatched slice"
    );
    let arr: &[u64; N] = words[..N].try_into().expect("length checked above");
    arr
}

/// Index of the first word whose packed tag matches `tag`, if any.
///
/// With `N > 0` the scan unrolls into a branchless match-mask followed
/// by a single `trailing_zeros`; `N == 0` degrades to a runtime-width
/// scan with the same first-match semantics.
#[inline(always)]
pub(crate) fn find_match<const N: usize>(words: &[u64], tag: u64) -> Option<usize> {
    simd::first_match(
        fixed::<N>(words),
        packed::MATCH_MASK,
        packed::search_key(tag),
    )
}

/// Index of the first invalid (empty) word, if any.
#[inline(always)]
pub(crate) fn find_invalid<const N: usize>(words: &[u64]) -> Option<usize> {
    simd::first_match(fixed::<N>(words), packed::VALID_MASK, 0)
}

/// Index of the minimum stamp (ties break to the lowest index), i.e.
/// exactly the victim [`crate::replacement::Lru`] would choose.
#[inline(always)]
pub(crate) fn min_stamp<const N: usize>(stamps: &[u64]) -> usize {
    simd::min_index(fixed::<N>(stamps))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_and_runtime_widths_agree() {
        let words = [
            packed::fill(7, false),
            packed::EMPTY,
            packed::fill(7, true),
            packed::fill(9, false),
        ];
        assert_eq!(find_match::<4>(&words, 7), Some(0));
        assert_eq!(find_match::<0>(&words, 7), Some(0));
        assert_eq!(find_match::<4>(&words, 9), Some(3));
        assert_eq!(find_match::<0>(&words, 9), Some(3));
        assert_eq!(find_match::<4>(&words, 11), None);
        assert_eq!(find_match::<0>(&words, 11), None);
        assert_eq!(find_invalid::<4>(&words), Some(1));
        assert_eq!(find_invalid::<0>(&words), Some(1));
        let full = [packed::fill(1, false); 4];
        assert_eq!(find_invalid::<4>(&full), None);
        assert_eq!(find_invalid::<0>(&full), None);
    }

    #[test]
    fn min_stamp_breaks_ties_like_lru() {
        // Lru::victim uses the first minimum.
        assert_eq!(min_stamp::<4>(&[5, 2, 2, 9]), 1);
        assert_eq!(min_stamp::<0>(&[5, 2, 2, 9]), 1);
        assert_eq!(min_stamp::<1>(&[3]), 0);
        assert_eq!(min_stamp::<0>(&[3]), 0);
        assert_eq!(min_stamp::<4>(&[0, 0, 0, 0]), 0);
    }

    /// Deterministic probe fixtures for one width: packed words with
    /// repeated tags, interleaved invalid slots, and stamp arrays with
    /// planted ties.
    fn fixture(n: usize, seed: u64) -> (Vec<u64>, Vec<u64>) {
        let mut x = seed ^ 0xA076_1D64_78BD_642F;
        let mut step = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        let words = (0..n)
            .map(|_| {
                let r = step();
                if r % 5 == 0 {
                    packed::EMPTY
                } else {
                    packed::fill(r % 6, r % 3 == 0)
                }
            })
            .collect();
        let stamps = (0..n).map(|_| step() % 4).collect();
        (words, stamps)
    }

    /// The runtime fallback (`N == 0`) pinned against the const-width
    /// path for every width 1–33 — covering each lane-group shape, the
    /// scalar tails, and the non-power-of-two widths only the fallback
    /// branch of `dispatch_assoc!`/`dispatch_entries!` ever sees.
    #[test]
    fn runtime_fallback_matches_every_const_width_1_to_33() {
        macro_rules! pin_width {
            ($($n:literal),+ $(,)?) => {$(
                for seed in 0..8u64 {
                    let (words, stamps) = fixture($n, seed * 131 + $n);
                    for tag in 0..7u64 {
                        assert_eq!(
                            find_match::<$n>(&words, tag),
                            find_match::<0>(&words, tag),
                            "find_match width {} tag {tag} seed {seed}", $n
                        );
                    }
                    assert_eq!(
                        find_invalid::<$n>(&words),
                        find_invalid::<0>(&words),
                        "find_invalid width {} seed {seed}", $n
                    );
                    assert_eq!(
                        min_stamp::<$n>(&stamps),
                        min_stamp::<0>(&stamps),
                        "min_stamp width {} seed {seed}", $n
                    );
                }
            )+};
        }
        pin_width!(
            1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24,
            25, 26, 27, 28, 29, 30, 31, 32, 33,
        );
    }

    /// The fallback's semantics stated directly: first match, first
    /// invalid, first minimum — independent of any const-width path.
    #[test]
    fn runtime_fallback_first_semantics() {
        for n in 1..=33usize {
            let (words, stamps) = fixture(n, n as u64 * 31);
            for tag in 0..7u64 {
                assert_eq!(
                    find_match::<0>(&words, tag),
                    words.iter().position(|&w| packed::matches(w, tag)),
                    "width {n} tag {tag}"
                );
            }
            assert_eq!(
                find_invalid::<0>(&words),
                words.iter().position(|&w| !packed::is_valid(w)),
                "width {n}"
            );
            let want = stamps
                .iter()
                .enumerate()
                .min_by_key(|&(_, s)| *s)
                .map(|(i, _)| i)
                .unwrap();
            assert_eq!(min_stamp::<0>(&stamps), want, "width {n}: {stamps:?}");
        }
    }
}
