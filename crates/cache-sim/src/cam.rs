//! Monomorphized CAM-search primitives over packed line words.
//!
//! The B-Cache kernel's fused programmable-decoder probe showed the
//! pattern: a fully-associative search over a const-width array of
//! packed `u64` words compiles to straight-line, branch-free compares
//! that the backend vectorizes. This module generalizes that trick so
//! every model with a CAM-style structure — the victim buffer's
//! 16-entry FA search, AGAC's out-of-position directory, the HAC
//! subarrays — shares one implementation.
//!
//! Each helper takes a const generic width `N`; `N == 0` selects a
//! runtime-width fallback with identical semantics (first match /
//! first invalid / first minimum), so callers dispatch on the common
//! power-of-two widths and fall back for exotic shapes.

use crate::packed;

/// Index of the first word whose packed tag matches `tag`, if any.
///
/// With `N > 0` the scan unrolls into a branchless match-mask followed
/// by a single `trailing_zeros`; `N == 0` degrades to a linear scan.
#[inline(always)]
pub(crate) fn find_match<const N: usize>(words: &[u64], tag: u64) -> Option<usize> {
    if N == 0 {
        return words.iter().position(|&w| packed::matches(w, tag));
    }
    debug_assert_eq!(
        words.len(),
        N,
        "const-width CAM called on a mismatched slice"
    );
    let mut mask = 0u64;
    for (i, &w) in words[..N].iter().enumerate() {
        mask |= (packed::matches(w, tag) as u64) << i;
    }
    if mask == 0 {
        None
    } else {
        Some(mask.trailing_zeros() as usize)
    }
}

/// Index of the first invalid (empty) word, if any.
#[inline(always)]
pub(crate) fn find_invalid<const N: usize>(words: &[u64]) -> Option<usize> {
    if N == 0 {
        return words.iter().position(|&w| !packed::is_valid(w));
    }
    debug_assert_eq!(
        words.len(),
        N,
        "const-width CAM called on a mismatched slice"
    );
    let mut mask = 0u64;
    for (i, &w) in words[..N].iter().enumerate() {
        mask |= (!packed::is_valid(w) as u64) << i;
    }
    if mask == 0 {
        None
    } else {
        Some(mask.trailing_zeros() as usize)
    }
}

/// Index of the minimum stamp (ties break to the lowest index), i.e.
/// exactly the victim [`crate::replacement::Lru`] would choose.
#[inline(always)]
pub(crate) fn min_stamp<const N: usize>(stamps: &[u64]) -> usize {
    if N == 0 {
        return stamps
            .iter()
            .enumerate()
            .min_by_key(|&(_, s)| *s)
            .map(|(i, _)| i)
            .unwrap_or(0);
    }
    debug_assert_eq!(
        stamps.len(),
        N,
        "const-width CAM called on a mismatched slice"
    );
    let mut best = 0usize;
    for (i, &s) in stamps.iter().enumerate().take(N).skip(1) {
        if s < stamps[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_and_runtime_widths_agree() {
        let words = [
            packed::fill(7, false),
            packed::EMPTY,
            packed::fill(7, true),
            packed::fill(9, false),
        ];
        assert_eq!(find_match::<4>(&words, 7), Some(0));
        assert_eq!(find_match::<0>(&words, 7), Some(0));
        assert_eq!(find_match::<4>(&words, 9), Some(3));
        assert_eq!(find_match::<0>(&words, 9), Some(3));
        assert_eq!(find_match::<4>(&words, 11), None);
        assert_eq!(find_match::<0>(&words, 11), None);
        assert_eq!(find_invalid::<4>(&words), Some(1));
        assert_eq!(find_invalid::<0>(&words), Some(1));
        let full = [packed::fill(1, false); 4];
        assert_eq!(find_invalid::<4>(&full), None);
        assert_eq!(find_invalid::<0>(&full), None);
    }

    #[test]
    fn min_stamp_breaks_ties_like_lru() {
        // Lru::victim uses min_by_key, which keeps the first minimum.
        assert_eq!(min_stamp::<4>(&[5, 2, 2, 9]), 1);
        assert_eq!(min_stamp::<0>(&[5, 2, 2, 9]), 1);
        assert_eq!(min_stamp::<1>(&[3]), 0);
        assert_eq!(min_stamp::<0>(&[3]), 0);
        assert_eq!(min_stamp::<4>(&[0, 0, 0, 0]), 0);
    }
}
