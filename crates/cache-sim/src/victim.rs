//! A direct-mapped cache backed by a small fully-associative victim
//! buffer (Jouppi), the paper's main prior-art comparator (Section 6.6).

use telemetry::{Event, MissKind, NullObserver, Observer};

use crate::addr::Addr;
use crate::cam;
use crate::geometry::{CacheGeometry, GeometryError, TagIndexSplit};
use crate::model::{AccessKind, AccessResult, CacheModel, Eviction};
use crate::packed;
use crate::stats::{BatchTally, CacheStats, SetUsage};

/// Direct-mapped cache plus an `N`-entry fully-associative victim buffer.
///
/// Semantics follow Jouppi's victim cache: every block evicted from the
/// main array is demoted into the buffer; a main-array miss that hits in
/// the buffer swaps the two blocks and counts as a (one-cycle-slower) hit.
/// The paper evaluates a 16-entry buffer and charges the extra cycle when
/// the buffer is probed sequentially after the main array.
///
/// Both the main array and the buffer live in packed `u64` SoA arrays
/// (`tag|dirty|valid` words plus LRU stamps for the buffer), and
/// [`CacheModel::access_batch`] replays through a kernel monomorphized
/// on the buffer width, so the 16-entry FA search runs as one
/// [`crate::simd`] compare-mask probe per lane group (AVX2 when the
/// CPU has it, the unrolled portable loop otherwise) — the same CAM
/// primitive the B-Cache kernel uses. The per-access and
/// batched paths share one step function and are bit-identical,
/// including the [`Observer`] event sequence.
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, CacheModel, VictimCache};
///
/// let mut vc = VictimCache::new(16 * 1024, 32, 16)?;
/// vc.access(0x0u64.into(), AccessKind::Read);       // miss
/// vc.access(0x4000u64.into(), AccessKind::Read);    // conflict: 0x0 demoted
/// let swap = vc.access(0x0u64.into(), AccessKind::Read);
/// assert!(swap.hit);                                // recovered from buffer
/// assert_eq!(swap.extra_latency, 1);
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct VictimCache<O: Observer = NullObserver> {
    geom: CacheGeometry,
    // Packed main array, one word per set (the cache is direct-mapped).
    lines: Vec<u64>,
    // The FA buffer: packed words whose tag field is the block id
    // (`addr >> offset_bits`), plus exact-LRU stamps.
    buf_words: Vec<u64>,
    buf_stamps: Vec<u64>,
    buf_clock: u64,
    stats: CacheStats,
    usage: SetUsage,
    buffer_hits: u64,
    buffer_probes: u64,
    observer: O,
}

impl VictimCache {
    /// Creates a direct-mapped cache of `size_bytes`/`line_bytes` with an
    /// `entries`-block victim buffer (LRU).
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn new(
        size_bytes: usize,
        line_bytes: usize,
        entries: usize,
    ) -> Result<Self, GeometryError> {
        Self::with_observer(size_bytes, line_bytes, entries, NullObserver)
    }
}

impl<O: Observer> VictimCache<O> {
    /// Like [`VictimCache::new`], but wiring `observer` into both access
    /// paths. With the default [`NullObserver`] every emission site
    /// compiles out.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn with_observer(
        size_bytes: usize,
        line_bytes: usize,
        entries: usize,
        observer: O,
    ) -> Result<Self, GeometryError> {
        let geom = CacheGeometry::new(size_bytes, line_bytes, 1)?;
        // The buffer keeps the shape rules of its former incarnation as
        // a fully-associative SetAssociativeCache: entries must form a
        // valid (power-of-two) single-set geometry.
        CacheGeometry::new(entries * line_bytes, line_bytes, entries)?;
        assert!(
            geom.tag_bits() <= packed::MAX_TAG_BITS
                && (geom.addr_bits() - geom.offset_bits()) <= packed::MAX_TAG_BITS,
            "tag field of {geom} does not fit a packed line word"
        );
        let sets = geom.sets();
        Ok(VictimCache {
            geom,
            lines: vec![packed::EMPTY; sets],
            buf_words: vec![packed::EMPTY; entries],
            buf_stamps: vec![0; entries],
            buf_clock: 0,
            stats: CacheStats::new(),
            usage: SetUsage::new(sets),
            buffer_hits: 0,
            buffer_probes: 0,
            observer,
        })
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the attached observer.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Number of buffer entries.
    pub fn buffer_entries(&self) -> usize {
        self.buf_words.len()
    }

    /// How many main-array misses were recovered by the buffer.
    pub fn buffer_hits(&self) -> u64 {
        self.buffer_hits
    }

    /// How many times the buffer was probed (= main-array misses).
    pub fn buffer_probes(&self) -> u64 {
        self.buffer_probes
    }

    /// Mask selecting the block-id field (`addr >> offset_bits` within
    /// the geometry's address width).
    fn id_mask(&self) -> u64 {
        let bits = self.geom.addr_bits() - self.geom.offset_bits();
        if bits >= 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        }
    }
}

/// Inserts a freshly demoted block `id` into the buffer with exact
/// FA-LRU semantics: the first invalid slot (or the LRU victim) is
/// filled. Returns the displaced `(block id, dirty)`, if any.
///
/// The caller only ever demotes the main array's old resident, which
/// cannot also live in the buffer (a block is in exactly one of the
/// two structures), so no merge scan is needed.
#[inline(always)]
fn buf_insert<const N: usize>(
    words: &mut [u64],
    stamps: &mut [u64],
    clock: &mut u64,
    id: u64,
    dirty: bool,
) -> Option<(u64, bool)> {
    debug_assert!(
        cam::find_match::<N>(words, id).is_none(),
        "main array and victim buffer must stay exclusive"
    );
    let (slot, displaced) = match cam::find_invalid::<N>(words) {
        Some(i) => (i, None),
        None => {
            let v = cam::min_stamp::<N>(stamps);
            let w = words[v];
            (v, Some((packed::tag(w), packed::is_dirty(w))))
        }
    };
    words[slot] = packed::fill(id, dirty);
    *clock += 1;
    stamps[slot] = *clock;
    displaced
}

/// One access against the destructured cache state. Shared verbatim by
/// the per-access and batched paths, so their statistics, set-usage
/// counters and [`Observer`] event sequences agree by construction.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn step<O: Observer, const N: usize>(
    split: &TagIndexSplit,
    index_bits: u32,
    offset_bits: u32,
    id_mask: u64,
    lines: &mut [u64],
    buf_words: &mut [u64],
    buf_stamps: &mut [u64],
    buf_clock: &mut u64,
    usage: &mut SetUsage,
    tally: &mut BatchTally,
    buffer_hits: &mut u64,
    buffer_probes: &mut u64,
    observer: &mut O,
    addr: Addr,
    kind: AccessKind,
) -> AccessResult {
    let set = split.set_index(addr);
    let tag = split.tag(addr);
    let word = lines[set];
    if packed::matches(word, tag) {
        tally.record(kind, true);
        usage.record(set, true);
        if O::ENABLED {
            observer.event(Event::SetTouch {
                set: set as u64,
                hit: true,
            });
        }
        if kind.is_write() {
            lines[set] = packed::set_dirty(word);
        }
        return AccessResult::hit();
    }
    // Main-array miss: probe the buffer with the fused CAM search.
    *buffer_probes += 1;
    let id = (addr.raw() >> offset_bits) & id_mask;
    if let Some(i) = cam::find_match::<N>(buf_words, id) {
        // Swap: promoted block enters the main array, the resident
        // block is demoted into the slot just vacated.
        *buffer_hits += 1;
        tally.record(kind, true);
        usage.record(set, true);
        if O::ENABLED {
            observer.event(Event::SetTouch {
                set: set as u64,
                hit: true,
            });
        }
        let promoted_dirty = packed::is_dirty(buf_words[i]);
        buf_words[i] = packed::EMPTY;
        if packed::is_valid(word) {
            let old_id = (packed::tag(word) << index_bits) | set as u64;
            let displaced = buf_insert::<N>(
                buf_words,
                buf_stamps,
                buf_clock,
                old_id,
                packed::is_dirty(word),
            );
            debug_assert!(displaced.is_none(), "buffer cannot overflow during a swap");
        }
        lines[set] = packed::fill(tag, promoted_dirty || kind.is_write());
        return AccessResult::slow_hit(1);
    }
    // Full miss: fill the main array, demote the old resident.
    tally.record(kind, false);
    usage.record(set, false);
    if O::ENABLED {
        observer.event(Event::Miss {
            kind: MissKind::Tag,
        });
        observer.event(Event::SetTouch {
            set: set as u64,
            hit: false,
        });
    }
    let mut evicted = None;
    if packed::is_valid(word) {
        let old_id = (packed::tag(word) << index_bits) | set as u64;
        if let Some((out_id, out_dirty)) = buf_insert::<N>(
            buf_words,
            buf_stamps,
            buf_clock,
            old_id,
            packed::is_dirty(word),
        ) {
            tally.record_writeback_if(out_dirty);
            evicted = Some(Eviction {
                block: Addr::new(out_id << offset_bits),
                dirty: out_dirty,
            });
        }
    }
    lines[set] = packed::fill(tag, kind.is_write());
    AccessResult::miss(evicted)
}

/// Expands to a `match` dispatching `$entries` to a monomorphized
/// invocation of `$kernel!(N)` for the buffer widths worth specializing
/// (powers of two up to 32; the paper evaluates 16). `0` selects the
/// runtime-width fallback.
macro_rules! dispatch_entries {
    ($entries:expr, $kernel:ident) => {
        match $entries {
            1 => $kernel!(1),
            2 => $kernel!(2),
            4 => $kernel!(4),
            8 => $kernel!(8),
            16 => $kernel!(16),
            32 => $kernel!(32),
            _ => $kernel!(0),
        }
    };
}

impl<O: Observer> CacheModel for VictimCache<O> {
    fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        let split = self.geom.split();
        let index_bits = self.geom.index_bits();
        let offset_bits = self.geom.offset_bits();
        let id_mask = self.id_mask();
        let mut tally = BatchTally::new();
        let (mut hits, mut probes) = (0u64, 0u64);
        macro_rules! kernel {
            ($n:literal) => {
                step::<O, $n>(
                    &split,
                    index_bits,
                    offset_bits,
                    id_mask,
                    &mut self.lines,
                    &mut self.buf_words,
                    &mut self.buf_stamps,
                    &mut self.buf_clock,
                    &mut self.usage,
                    &mut tally,
                    &mut hits,
                    &mut probes,
                    &mut self.observer,
                    addr,
                    kind,
                )
            };
        }
        let result = dispatch_entries!(self.buf_words.len(), kernel);
        tally.flush(&mut self.stats);
        self.buffer_hits += hits;
        self.buffer_probes += probes;
        result
    }

    fn access_batch(&mut self, accesses: &[(Addr, AccessKind)]) {
        // Monomorphized replay: state is hoisted into locals once, the
        // buffer scan unrolls for the common widths, and statistics are
        // tallied in registers. Bit-identical to the `access` loop (the
        // batch-equivalence suite enforces it, events included).
        let split = self.geom.split();
        let index_bits = self.geom.index_bits();
        let offset_bits = self.geom.offset_bits();
        let id_mask = self.id_mask();
        let mut tally = BatchTally::new();
        let (mut hits, mut probes) = (0u64, 0u64);
        macro_rules! kernel {
            ($n:literal) => {
                for &(addr, kind) in accesses {
                    step::<O, $n>(
                        &split,
                        index_bits,
                        offset_bits,
                        id_mask,
                        &mut self.lines,
                        &mut self.buf_words,
                        &mut self.buf_stamps,
                        &mut self.buf_clock,
                        &mut self.usage,
                        &mut tally,
                        &mut hits,
                        &mut probes,
                        &mut self.observer,
                        addr,
                        kind,
                    );
                }
            };
        }
        dispatch_entries!(self.buf_words.len(), kernel);
        tally.flush(&mut self.stats);
        self.buffer_hits += hits;
        self.buffer_probes += probes;
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.usage.reset();
        self.buffer_hits = 0;
        self.buffer_probes = 0;
    }

    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn set_usage(&self) -> Option<&SetUsage> {
        Some(&self.usage)
    }

    fn label(&self) -> String {
        format!("victim{}", self.buffer_entries())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 8-set main array, 2-entry buffer.
    fn tiny() -> VictimCache {
        VictimCache::new(256, 32, 2).unwrap()
    }

    #[test]
    fn buffer_recovers_conflict_victims() {
        let mut c = tiny();
        // Blocks 0 and 8 collide in set 0 of the 8-set main array.
        assert!(!c.access(Addr::new(0), AccessKind::Read).hit);
        assert!(!c.access(Addr::new(256), AccessKind::Read).hit);
        // 0 was demoted to the buffer: this is a swap hit.
        let r = c.access(Addr::new(0), AccessKind::Read);
        assert!(r.hit);
        assert_eq!(r.extra_latency, 1);
        assert_eq!(c.buffer_hits(), 1);
        // And 256 is now in the buffer.
        assert!(c.access(Addr::new(256), AccessKind::Read).hit);
    }

    #[test]
    fn two_entry_buffer_absorbs_the_paper_thrash_sequence() {
        // 0,1,8,9 on an 8-set DM cache: blocks 0/8 and 1/9 collide. A
        // 2-entry buffer turns the steady state into all hits.
        let mut c = tiny();
        let line = 32u64;
        for block in [0u64, 1, 8, 9] {
            assert!(!c.access(Addr::new(block * line), AccessKind::Read).hit);
        }
        for _ in 0..4 {
            for block in [0u64, 1, 8, 9] {
                assert!(c.access(Addr::new(block * line), AccessKind::Read).hit);
            }
        }
        assert_eq!(c.stats().total().misses(), 4);
    }

    #[test]
    fn buffer_overflow_evicts_oldest_victim() {
        let mut c = tiny();
        // Four conflicting blocks in set 0; buffer holds only two victims.
        for tag in 0..4u64 {
            c.access(Addr::new(tag * 256), AccessKind::Read);
        }
        // Main: tag 3. Buffer: tags 1, 2 (tag 0 was pushed out).
        assert!(
            !c.access(Addr::new(0), AccessKind::Read).hit,
            "oldest victim must be gone"
        );
        assert!(c.access(Addr::new(2 * 256), AccessKind::Read).hit);
    }

    #[test]
    fn dirtiness_survives_demotion_and_promotion() {
        let mut c = tiny();
        c.access(Addr::new(0), AccessKind::Write);
        c.access(Addr::new(256), AccessKind::Read); // dirty 0 demoted
        c.access(Addr::new(0), AccessKind::Read); // swap back (still dirty)
        c.access(Addr::new(512), AccessKind::Read); // 0 demoted again
                                                    // Push two more victims through so dirty block 0 leaves the buffer.
        c.access(Addr::new(768), AccessKind::Read);
        let r = c.access(Addr::new(1024), AccessKind::Read);
        let ev = r.evicted.expect("buffer overflow must surface an eviction");
        assert_eq!(ev.block, Addr::new(0));
        assert!(ev.dirty, "dirtiness must follow the block through swaps");
    }

    #[test]
    fn miss_rate_never_worse_than_plain_dm_on_conflict_traffic() {
        use crate::direct::DirectMappedCache;
        let mut vc = VictimCache::new(256, 32, 4).unwrap();
        let mut dm = DirectMappedCache::new(256, 32).unwrap();
        let mut x = 7u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = Addr::new((x >> 16) % 2048);
            vc.access(addr, AccessKind::Read);
            dm.access(addr, AccessKind::Read);
        }
        assert!(vc.stats().total().misses() <= dm.stats().total().misses());
    }

    #[test]
    fn probes_count_main_misses() {
        let mut c = tiny();
        c.access(Addr::new(0), AccessKind::Read); // probe (cold miss)
        c.access(Addr::new(0), AccessKind::Read); // main hit, no probe
        c.access(Addr::new(256), AccessKind::Read); // probe
        assert_eq!(c.buffer_probes(), 2);
    }

    #[test]
    fn reset_clears_buffer_counters() {
        let mut c = tiny();
        c.access(Addr::new(0), AccessKind::Read);
        c.access(Addr::new(256), AccessKind::Read);
        c.access(Addr::new(0), AccessKind::Read);
        c.reset_stats();
        assert_eq!(c.buffer_hits(), 0);
        assert_eq!(c.buffer_probes(), 0);
        assert_eq!(c.stats().total().accesses(), 0);
    }

    #[test]
    fn label_shows_entries() {
        assert_eq!(
            VictimCache::new(16 * 1024, 32, 16).unwrap().label(),
            "victim16"
        );
    }

    /// Fuzz-subsystem hook: the main array mirrors a plain DM cache, so
    /// a DM hit is always a victim-cache hit, and the cache is
    /// demand-fill (it never hits a block it has not seen).
    #[test]
    fn dominates_direct_mapped_and_is_demand_fill() {
        use std::collections::HashSet;
        let mut vc = VictimCache::new(512, 32, 4).unwrap();
        let mut dm = crate::DirectMappedCache::new(512, 32).unwrap();
        let mut seen = HashSet::new();
        let mut x = 0x0F1E_2D3Cu64;
        for i in 0..4000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = ((x >> 16) % 128) * 32;
            let hit = vc.access(Addr::new(addr), AccessKind::Read).hit;
            let dm_hit = dm.access(Addr::new(addr), AccessKind::Read).hit;
            assert!(
                !hit || seen.contains(&addr),
                "access {i}: hit on unseen {addr:#x}"
            );
            assert!(!dm_hit || hit, "access {i}: lost a DM hit at {addr:#x}");
            seen.insert(addr);
        }
        assert!(vc.stats().total().misses() >= seen.len() as u64);
    }

    fn fuzz_accesses(records: usize, seed: u64) -> Vec<(Addr, AccessKind)> {
        let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
        (0..records)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let kind = if x & 4 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                (Addr::new(((x >> 16) % 1024) * 32), kind)
            })
            .collect()
    }

    #[test]
    fn access_batch_is_bit_identical_to_the_loop() {
        // Covers a monomorphized width (4) and the runtime fallback is
        // exercised indirectly by min_stamp/find_match tests in `cam`.
        for entries in [1usize, 2, 4, 16] {
            let mut looped = VictimCache::new(512, 32, entries).unwrap();
            let mut batched = VictimCache::new(512, 32, entries).unwrap();
            let accesses = fuzz_accesses(8_000, entries as u64);
            for &(addr, kind) in &accesses {
                looped.access(addr, kind);
            }
            batched.access_batch(&accesses);
            assert_eq!(looped.stats(), batched.stats(), "victim{entries}");
            assert_eq!(looped.usage, batched.usage, "victim{entries} usage");
            assert_eq!(looped.lines, batched.lines, "victim{entries} main array");
            assert_eq!(
                looped.buf_words, batched.buf_words,
                "victim{entries} buffer"
            );
            assert_eq!(
                looped.buf_stamps, batched.buf_stamps,
                "victim{entries} LRU stamps"
            );
            assert_eq!(
                (looped.buffer_hits, looped.buffer_probes),
                (batched.buffer_hits, batched.buffer_probes),
                "victim{entries} side counters"
            );
        }
    }

    #[test]
    fn observer_sees_identical_events_from_loop_and_batch() {
        use telemetry::EventRing;
        let accesses = fuzz_accesses(6_000, 77);
        let mut looped = VictimCache::with_observer(512, 32, 4, EventRing::new(64 * 1024)).unwrap();
        let mut batched =
            VictimCache::with_observer(512, 32, 4, EventRing::new(64 * 1024)).unwrap();
        for &(addr, kind) in &accesses {
            looped.access(addr, kind);
        }
        batched.access_batch(&accesses);
        let a: Vec<_> = looped.observer().iter().map(|(_, e)| e.clone()).collect();
        let b: Vec<_> = batched.observer().iter().map(|(_, e)| e.clone()).collect();
        assert!(!a.is_empty(), "the fuzz stream must generate events");
        assert_eq!(a, b, "per-access and batched event sequences diverge");
    }

    #[test]
    fn observer_event_counts_agree_with_stats() {
        use telemetry::EventCounts;
        let accesses = fuzz_accesses(6_000, 99);
        let mut c = VictimCache::with_observer(512, 32, 4, EventCounts::default()).unwrap();
        c.access_batch(&accesses);
        let counts = *c.observer();
        let total = c.stats().total();
        assert_eq!(counts.tag_misses, total.misses());
        assert_eq!(counts.set_hits, total.hits());
        assert_eq!(counts.set_misses, total.misses());
    }
}
