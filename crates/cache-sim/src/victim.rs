//! A direct-mapped cache backed by a small fully-associative victim
//! buffer (Jouppi), the paper's main prior-art comparator (Section 6.6).

use crate::addr::Addr;
use crate::geometry::{CacheGeometry, GeometryError};
use crate::model::{AccessKind, AccessResult, CacheModel, Eviction};
use crate::replacement::PolicyKind;
use crate::set_assoc::SetAssociativeCache;
use crate::stats::{CacheStats, SetUsage};

/// Direct-mapped cache plus an `N`-entry fully-associative victim buffer.
///
/// Semantics follow Jouppi's victim cache: every block evicted from the
/// main array is demoted into the buffer; a main-array miss that hits in
/// the buffer swaps the two blocks and counts as a (one-cycle-slower) hit.
/// The paper evaluates a 16-entry buffer and charges the extra cycle when
/// the buffer is probed sequentially after the main array.
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, CacheModel, VictimCache};
///
/// let mut vc = VictimCache::new(16 * 1024, 32, 16)?;
/// vc.access(0x0u64.into(), AccessKind::Read);       // miss
/// vc.access(0x4000u64.into(), AccessKind::Read);    // conflict: 0x0 demoted
/// let swap = vc.access(0x0u64.into(), AccessKind::Read);
/// assert!(swap.hit);                                // recovered from buffer
/// assert_eq!(swap.extra_latency, 1);
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct VictimCache {
    geom: CacheGeometry,
    tags: Vec<u64>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    buffer: SetAssociativeCache,
    stats: CacheStats,
    usage: SetUsage,
    buffer_hits: u64,
    buffer_probes: u64,
}

impl VictimCache {
    /// Creates a direct-mapped cache of `size_bytes`/`line_bytes` with an
    /// `entries`-block victim buffer (LRU).
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn new(
        size_bytes: usize,
        line_bytes: usize,
        entries: usize,
    ) -> Result<Self, GeometryError> {
        let geom = CacheGeometry::new(size_bytes, line_bytes, 1)?;
        let buffer =
            SetAssociativeCache::fully_associative(entries, line_bytes, PolicyKind::Lru, 0)?;
        let sets = geom.sets();
        Ok(VictimCache {
            geom,
            tags: vec![0; sets],
            valid: vec![false; sets],
            dirty: vec![false; sets],
            buffer,
            stats: CacheStats::new(),
            usage: SetUsage::new(sets),
            buffer_hits: 0,
            buffer_probes: 0,
        })
    }

    /// Number of buffer entries.
    pub fn buffer_entries(&self) -> usize {
        self.buffer.geometry().lines()
    }

    /// How many main-array misses were recovered by the buffer.
    pub fn buffer_hits(&self) -> u64 {
        self.buffer_hits
    }

    /// How many times the buffer was probed (= main-array misses).
    pub fn buffer_probes(&self) -> u64 {
        self.buffer_probes
    }

    /// Replaces the block in `set` with `addr`'s block, demoting the old
    /// resident into the buffer. Returns the block pushed out of the
    /// buffer, if any.
    fn fill_main(&mut self, set: usize, addr: Addr, dirty: bool) -> Option<Eviction> {
        let mut out = None;
        if self.valid[set] {
            let old = Eviction {
                block: self.geom.reconstruct(self.tags[set], set),
                dirty: self.dirty[set],
            };
            out = self.buffer.insert(old.block, old.dirty);
        }
        self.tags[set] = self.geom.tag(addr);
        self.valid[set] = true;
        self.dirty[set] = dirty;
        out
    }
}

impl CacheModel for VictimCache {
    fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        let set = self.geom.set_index(addr);
        let tag = self.geom.tag(addr);
        if self.valid[set] && self.tags[set] == tag {
            self.stats.record(kind, true);
            self.usage.record(set, true);
            if kind.is_write() {
                self.dirty[set] = true;
            }
            return AccessResult::hit();
        }
        // Main-array miss: probe the buffer.
        self.buffer_probes += 1;
        if let Some(from_buffer) = self.buffer.extract(addr) {
            // Swap: promoted block enters the main array, the resident
            // block is demoted into the slot just vacated.
            self.buffer_hits += 1;
            self.stats.record(kind, true);
            self.usage.record(set, true);
            let displaced = self.fill_main(set, addr, from_buffer.dirty || kind.is_write());
            debug_assert!(displaced.is_none(), "buffer cannot overflow during a swap");
            return AccessResult::slow_hit(1);
        }
        // Full miss: fill the main array, demote the old resident.
        self.stats.record(kind, false);
        self.usage.record(set, false);
        let evicted = self.fill_main(set, addr, kind.is_write());
        if let Some(ev) = &evicted {
            if ev.dirty {
                self.stats.record_writeback();
            }
        }
        AccessResult::miss(evicted)
    }

    fn stats(&self) -> &CacheStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
        self.usage.reset();
        self.buffer_hits = 0;
        self.buffer_probes = 0;
    }

    fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    fn set_usage(&self) -> Option<&SetUsage> {
        Some(&self.usage)
    }

    fn label(&self) -> String {
        format!("victim{}", self.buffer_entries())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 8-set main array, 2-entry buffer.
    fn tiny() -> VictimCache {
        VictimCache::new(256, 32, 2).unwrap()
    }

    #[test]
    fn buffer_recovers_conflict_victims() {
        let mut c = tiny();
        // Blocks 0 and 8 collide in set 0 of the 8-set main array.
        assert!(!c.access(Addr::new(0), AccessKind::Read).hit);
        assert!(!c.access(Addr::new(256), AccessKind::Read).hit);
        // 0 was demoted to the buffer: this is a swap hit.
        let r = c.access(Addr::new(0), AccessKind::Read);
        assert!(r.hit);
        assert_eq!(r.extra_latency, 1);
        assert_eq!(c.buffer_hits(), 1);
        // And 256 is now in the buffer.
        assert!(c.access(Addr::new(256), AccessKind::Read).hit);
    }

    #[test]
    fn two_entry_buffer_absorbs_the_paper_thrash_sequence() {
        // 0,1,8,9 on an 8-set DM cache: blocks 0/8 and 1/9 collide. A
        // 2-entry buffer turns the steady state into all hits.
        let mut c = tiny();
        let line = 32u64;
        for block in [0u64, 1, 8, 9] {
            assert!(!c.access(Addr::new(block * line), AccessKind::Read).hit);
        }
        for _ in 0..4 {
            for block in [0u64, 1, 8, 9] {
                assert!(c.access(Addr::new(block * line), AccessKind::Read).hit);
            }
        }
        assert_eq!(c.stats().total().misses(), 4);
    }

    #[test]
    fn buffer_overflow_evicts_oldest_victim() {
        let mut c = tiny();
        // Four conflicting blocks in set 0; buffer holds only two victims.
        for tag in 0..4u64 {
            c.access(Addr::new(tag * 256), AccessKind::Read);
        }
        // Main: tag 3. Buffer: tags 1, 2 (tag 0 was pushed out).
        assert!(
            !c.access(Addr::new(0), AccessKind::Read).hit,
            "oldest victim must be gone"
        );
        assert!(c.access(Addr::new(2 * 256), AccessKind::Read).hit);
    }

    #[test]
    fn dirtiness_survives_demotion_and_promotion() {
        let mut c = tiny();
        c.access(Addr::new(0), AccessKind::Write);
        c.access(Addr::new(256), AccessKind::Read); // dirty 0 demoted
        c.access(Addr::new(0), AccessKind::Read); // swap back (still dirty)
        c.access(Addr::new(512), AccessKind::Read); // 0 demoted again
                                                    // Push two more victims through so dirty block 0 leaves the buffer.
        c.access(Addr::new(768), AccessKind::Read);
        let r = c.access(Addr::new(1024), AccessKind::Read);
        let ev = r.evicted.expect("buffer overflow must surface an eviction");
        assert_eq!(ev.block, Addr::new(0));
        assert!(ev.dirty, "dirtiness must follow the block through swaps");
    }

    #[test]
    fn miss_rate_never_worse_than_plain_dm_on_conflict_traffic() {
        use crate::direct::DirectMappedCache;
        let mut vc = VictimCache::new(256, 32, 4).unwrap();
        let mut dm = DirectMappedCache::new(256, 32).unwrap();
        let mut x = 7u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = Addr::new((x >> 16) % 2048);
            vc.access(addr, AccessKind::Read);
            dm.access(addr, AccessKind::Read);
        }
        assert!(vc.stats().total().misses() <= dm.stats().total().misses());
    }

    #[test]
    fn probes_count_main_misses() {
        let mut c = tiny();
        c.access(Addr::new(0), AccessKind::Read); // probe (cold miss)
        c.access(Addr::new(0), AccessKind::Read); // main hit, no probe
        c.access(Addr::new(256), AccessKind::Read); // probe
        assert_eq!(c.buffer_probes(), 2);
    }

    #[test]
    fn reset_clears_buffer_counters() {
        let mut c = tiny();
        c.access(Addr::new(0), AccessKind::Read);
        c.access(Addr::new(256), AccessKind::Read);
        c.access(Addr::new(0), AccessKind::Read);
        c.reset_stats();
        assert_eq!(c.buffer_hits(), 0);
        assert_eq!(c.buffer_probes(), 0);
        assert_eq!(c.stats().total().accesses(), 0);
    }

    #[test]
    fn label_shows_entries() {
        assert_eq!(
            VictimCache::new(16 * 1024, 32, 16).unwrap().label(),
            "victim16"
        );
    }

    /// Fuzz-subsystem hook: the main array mirrors a plain DM cache, so
    /// a DM hit is always a victim-cache hit, and the cache is
    /// demand-fill (it never hits a block it has not seen).
    #[test]
    fn dominates_direct_mapped_and_is_demand_fill() {
        use std::collections::HashSet;
        let mut vc = VictimCache::new(512, 32, 4).unwrap();
        let mut dm = crate::DirectMappedCache::new(512, 32).unwrap();
        let mut seen = HashSet::new();
        let mut x = 0x0F1E_2D3Cu64;
        for i in 0..4000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = ((x >> 16) % 128) * 32;
            let hit = vc.access(Addr::new(addr), AccessKind::Read).hit;
            let dm_hit = dm.access(Addr::new(addr), AccessKind::Read).hit;
            assert!(
                !hit || seen.contains(&addr),
                "access {i}: hit on unseen {addr:#x}"
            );
            assert!(!dm_hit || hit, "access {i}: lost a DM hit at {addr:#x}");
            seen.insert(addr);
        }
        assert!(vc.stats().total().misses() >= seen.len() as u64);
    }
}
