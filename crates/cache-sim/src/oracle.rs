//! Slow-but-obviously-correct reference simulators ("oracles") for
//! differential testing.
//!
//! Every production model in this crate earns its speed with packed
//! arrays, bit-sliced address fields and incremental bookkeeping — all
//! places where an off-by-one silently shifts every figure of the
//! reproduction. The oracles here recompute everything the expensive
//! way on every access:
//!
//! * [`OracleCache`] models any (capacity, block, associativity,
//!   replacement) organization as an explicit tag map. Address fields
//!   come from plain integer division/modulo, never bit slicing; LRU
//!   and FIFO victims are found by scanning exact per-line timestamps.
//! * [`BCacheOracle`] models the Balanced Cache with the programmable-
//!   decoder contents tracked symbolically — each resident line carries
//!   its programmed PI — and the BAS candidate set recomputed from
//!   first principles (arithmetic on the block number) on every access.
//!
//! For [`PolicyKind::Random`] and [`PolicyKind::TreePlru`] the victim
//! *choice* is mirrored through [`make_policy`] with the same seed
//! (re-deriving a PRNG stream or PLRU tree independently would just
//! duplicate the code under test); everything else — residency, way
//! assignment, dirtiness, eviction reporting, statistics — is
//! recomputed independently, so the oracle still catches any
//! bookkeeping bug, including calling the policy at the wrong moment
//! (the mirrored streams desynchronize and the divergence surfaces).
//!
//! The `bcache-repro fuzz` subcommand (crate `harness`) drives every
//! registered model against these oracles on randomized configurations
//! and adversarial address streams; each model file also keeps a pinned
//! oracle-equivalence test next to its implementation.

use crate::addr::Addr;
use crate::model::{AccessKind, AccessResult, Eviction};
use crate::replacement::{make_policy, PolicyKind, ReplacementPolicy};

/// What the oracle says one access must do.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OracleOutcome {
    /// Whether the access hits.
    pub hit: bool,
    /// The block evicted by a miss, if any.
    pub evicted: Option<Eviction>,
}

impl OracleOutcome {
    /// Compares against a production model's [`AccessResult`], returning
    /// a human-readable description of the first disagreement.
    pub fn diff(&self, got: &AccessResult) -> Option<String> {
        if self.hit != got.hit {
            return Some(format!("hit: oracle {} vs model {}", self.hit, got.hit));
        }
        if self.evicted != got.evicted {
            return Some(format!(
                "evicted: oracle {:?} vs model {:?}",
                self.evicted, got.evicted
            ));
        }
        None
    }
}

#[derive(Clone, Debug)]
struct OracleLine {
    block: u64,
    dirty: bool,
    last_use: u64,
    filled: u64,
}

/// An explicit tag-map reference cache: any (capacity, block size,
/// associativity, replacement) organization, write-back/write-allocate,
/// with exact LRU/FIFO bookkeeping via per-line timestamps.
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, Addr, CacheModel, DirectMappedCache};
/// use cache_sim::oracle::OracleCache;
/// use cache_sim::PolicyKind;
///
/// let mut dm = DirectMappedCache::new(256, 32)?;
/// let mut oracle = OracleCache::new(256, 32, 1, PolicyKind::Lru, 0, 32);
/// for addr in [0u64, 256, 0, 32] {
///     let got = dm.access(Addr::new(addr), AccessKind::Read);
///     let want = oracle.access(Addr::new(addr), AccessKind::Read);
///     assert_eq!(want.diff(&got), None);
/// }
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct OracleCache {
    sets: u64,
    assoc: usize,
    line_bytes: u64,
    addr_mask: u64,
    kind: PolicyKind,
    // slot = set * assoc + way; `None` is an invalid way.
    lines: Vec<Option<OracleLine>>,
    // Mirrored victim chooser for Random / tree-PLRU (see module docs).
    mirrored: Option<Box<dyn ReplacementPolicy>>,
    clock: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
}

impl OracleCache {
    /// Creates a cold oracle. `addr_bits` bounds the address space the
    /// production models decode (bits above it are ignored, matching
    /// [`crate::CacheGeometry`]'s tag extraction).
    ///
    /// # Panics
    ///
    /// Panics if the shape is degenerate (zero line size, associativity
    /// larger than the line count, capacity not divisible into sets).
    pub fn new(
        size_bytes: usize,
        line_bytes: usize,
        assoc: usize,
        kind: PolicyKind,
        seed: u64,
        addr_bits: u32,
    ) -> Self {
        assert!(line_bytes > 0 && assoc > 0 && size_bytes >= line_bytes * assoc);
        let total_lines = size_bytes / line_bytes;
        assert_eq!(total_lines % assoc, 0, "lines must divide into sets");
        let sets = (total_lines / assoc) as u64;
        let mirrored = match kind {
            PolicyKind::Random | PolicyKind::TreePlru => {
                Some(make_policy(kind, sets as usize, assoc, seed))
            }
            PolicyKind::Lru | PolicyKind::Fifo => None,
        };
        OracleCache {
            sets,
            assoc,
            line_bytes: line_bytes as u64,
            addr_mask: if addr_bits >= 64 {
                u64::MAX
            } else {
                (1u64 << addr_bits) - 1
            },
            kind,
            lines: (0..total_lines).map(|_| None).collect(),
            mirrored,
            clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
        }
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions recorded so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    fn choose_victim(&mut self, set: usize) -> usize {
        let base = set * self.assoc;
        match self.kind {
            // Exact recency / fill order from the per-line timestamps.
            PolicyKind::Lru => (0..self.assoc)
                .min_by_key(|&w| self.lines[base + w].as_ref().map_or(0, |l| l.last_use))
                .expect("nonzero associativity"),
            PolicyKind::Fifo => (0..self.assoc)
                .min_by_key(|&w| self.lines[base + w].as_ref().map_or(0, |l| l.filled))
                .expect("nonzero associativity"),
            PolicyKind::Random | PolicyKind::TreePlru => self
                .mirrored
                .as_mut()
                .expect("mirrored policy present")
                .victim(set),
        }
    }

    /// Runs one access and returns what must happen.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> OracleOutcome {
        let block = (addr.raw() & self.addr_mask) / self.line_bytes;
        let set = (block % self.sets) as usize;
        let base = set * self.assoc;
        self.clock += 1;

        if let Some(way) = (0..self.assoc).find(|&w| {
            self.lines[base + w]
                .as_ref()
                .is_some_and(|l| l.block == block)
        }) {
            let line = self.lines[base + way].as_mut().expect("resident line");
            line.last_use = self.clock;
            if kind.is_write() {
                line.dirty = true;
            }
            if let Some(p) = self.mirrored.as_mut() {
                p.on_access(set, way);
            }
            self.hits += 1;
            return OracleOutcome {
                hit: true,
                evicted: None,
            };
        }

        self.misses += 1;
        // Fill the first invalid way; evict only when the set is full.
        let (way, evicted) = match (0..self.assoc).find(|&w| self.lines[base + w].is_none()) {
            Some(w) => (w, None),
            None => {
                let w = self.choose_victim(set);
                let old = self.lines[base + w].take().expect("victim was resident");
                if old.dirty {
                    self.writebacks += 1;
                }
                (
                    w,
                    Some(Eviction {
                        block: Addr::new(old.block * self.line_bytes),
                        dirty: old.dirty,
                    }),
                )
            }
        };
        self.lines[base + way] = Some(OracleLine {
            block,
            dirty: kind.is_write(),
            last_use: self.clock,
            filled: self.clock,
        });
        if let Some(p) = self.mirrored.as_mut() {
            p.on_fill(set, way);
        }
        OracleOutcome {
            hit: false,
            evicted,
        }
    }
}

#[derive(Clone, Debug)]
struct BEntry {
    /// The PI symbolically programmed into this way's decoder entry.
    pi: u64,
    block: u64,
    dirty: bool,
    last_use: u64,
    filled: u64,
}

/// A reference Balanced Cache that tracks programmable-decoder contents
/// symbolically and recomputes the BAS candidate set from first
/// principles — integer arithmetic on the block number — on every
/// access.
///
/// Models the paper's design (`ForcedVictim` PD-hit handling): a PD hit
/// with a tag miss *must* evict the matching way; a PD miss fills a
/// cold way or the replacement victim and reprograms its entry.
///
/// The field widths are passed in directly so the oracle shares no
/// layout code with `bcache-core`:
///
/// * `npi_bits` — non-programmable index width (`groups = 2^npi_bits`);
/// * `pi_bits` — programmable index width (`BAS = 2^(pi_bits - mf_bits)`);
/// * `mf_bits` — `log2` of the mapping factor (tag bits consumed);
/// * `high_tag_pi` — `true` mirrors `PiTagBits::High` (the PI's tag
///   part comes from the top of the address instead of adjacent bits).
#[derive(Debug)]
pub struct BCacheOracle {
    line_bytes: u64,
    addr_bits: u32,
    npi_bits: u32,
    pi_bits: u32,
    mf_bits: u32,
    high_tag_pi: bool,
    bas: usize,
    kind: PolicyKind,
    // slot = group * bas + way; `None` is a cold decoder entry (which by
    // the unique-decoding invariant is exactly an invalid block).
    entries: Vec<Option<BEntry>>,
    mirrored: Option<Box<dyn ReplacementPolicy>>,
    clock: u64,
    hits: u64,
    misses: u64,
    writebacks: u64,
    pd_hit_misses: u64,
    pd_miss_misses: u64,
}

impl BCacheOracle {
    /// Creates a cold B-Cache oracle. See the type docs for the field
    /// meanings; `seed` feeds the mirrored random policy.
    ///
    /// # Panics
    ///
    /// Panics if `mf_bits > pi_bits` (the BAS would be fractional) or
    /// the widths exceed the address size.
    pub fn new(
        line_bytes: u64,
        addr_bits: u32,
        npi_bits: u32,
        pi_bits: u32,
        mf_bits: u32,
        high_tag_pi: bool,
        kind: PolicyKind,
        seed: u64,
    ) -> Self {
        assert!(line_bytes.is_power_of_two() && line_bytes > 0);
        assert!(mf_bits <= pi_bits, "MF cannot exceed the PI width");
        let offset_bits = line_bytes.trailing_zeros();
        assert!(offset_bits + npi_bits + pi_bits <= addr_bits + mf_bits);
        let groups = 1usize << npi_bits;
        let bas = 1usize << (pi_bits - mf_bits);
        let mirrored = match kind {
            PolicyKind::Random | PolicyKind::TreePlru => Some(make_policy(kind, groups, bas, seed)),
            PolicyKind::Lru | PolicyKind::Fifo => None,
        };
        BCacheOracle {
            line_bytes,
            addr_bits,
            npi_bits,
            pi_bits,
            mf_bits,
            high_tag_pi,
            bas,
            kind,
            entries: (0..groups * bas).map(|_| None).collect(),
            mirrored,
            clock: 0,
            hits: 0,
            misses: 0,
            writebacks: 0,
            pd_hit_misses: 0,
            pd_miss_misses: 0,
        }
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Dirty evictions recorded so far.
    pub fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Misses on which the symbolic PD matched (forced victim).
    pub fn pd_hit_misses(&self) -> u64 {
        self.pd_hit_misses
    }

    /// Misses on which the symbolic PD also missed (policy victim).
    pub fn pd_miss_misses(&self) -> u64 {
        self.pd_miss_misses
    }

    /// Number of NPI groups.
    pub fn groups(&self) -> usize {
        1 << self.npi_bits
    }

    /// Decomposes an address into (group, pi, block) from first
    /// principles: plain shifts-as-division on the block number rather
    /// than the production [`crate::addr::Addr::bits`] extraction.
    fn fields(&self, addr: Addr) -> (usize, u64, u64) {
        let masked = if self.addr_bits >= 64 {
            addr.raw()
        } else {
            addr.raw() & ((1u64 << self.addr_bits) - 1)
        };
        let block = masked / self.line_bytes;
        let groups = 1u64 << self.npi_bits;
        let group = (block % groups) as usize;
        let above_npi = block / groups;
        let pi = if self.high_tag_pi {
            // Index part next to the NPI, tag part from the address top.
            let bas_bits = self.pi_bits - self.mf_bits;
            let index_part = above_npi % (1u64 << bas_bits);
            let tag_part = if self.mf_bits == 0 {
                0
            } else {
                (masked >> (self.addr_bits - self.mf_bits)) % (1u64 << self.mf_bits)
            };
            (tag_part << bas_bits) | index_part
        } else if self.pi_bits == 0 {
            0
        } else {
            above_npi % (1u64 << self.pi_bits)
        };
        (group, pi, block)
    }

    /// Recomputes the BAS candidate set for `pi` in `group` and asserts
    /// the unique-decoding invariant on the symbolic PD contents.
    fn matching_way(&self, group: usize, pi: u64) -> Option<usize> {
        let base = group * self.bas;
        let matches: Vec<usize> = (0..self.bas)
            .filter(|&w| self.entries[base + w].as_ref().is_some_and(|e| e.pi == pi))
            .collect();
        assert!(
            matches.len() <= 1,
            "oracle PD lost unique decoding in group {group}: ways {matches:?} share PI {pi:#x}"
        );
        matches.first().copied()
    }

    fn choose_victim(&mut self, group: usize) -> usize {
        let base = group * self.bas;
        match self.kind {
            PolicyKind::Lru => (0..self.bas)
                .min_by_key(|&w| self.entries[base + w].as_ref().map_or(0, |e| e.last_use))
                .expect("nonzero BAS"),
            PolicyKind::Fifo => (0..self.bas)
                .min_by_key(|&w| self.entries[base + w].as_ref().map_or(0, |e| e.filled))
                .expect("nonzero BAS"),
            PolicyKind::Random | PolicyKind::TreePlru => self
                .mirrored
                .as_mut()
                .expect("mirrored policy present")
                .victim(group),
        }
    }

    fn evict(&mut self, group: usize, way: usize) -> Option<Eviction> {
        let old = self.entries[group * self.bas + way].take()?;
        if old.dirty {
            self.writebacks += 1;
        }
        Some(Eviction {
            block: Addr::new(old.block * self.line_bytes),
            dirty: old.dirty,
        })
    }

    fn fill(&mut self, group: usize, way: usize, pi: u64, block: u64, dirty: bool) {
        self.entries[group * self.bas + way] = Some(BEntry {
            pi,
            block,
            dirty,
            last_use: self.clock,
            filled: self.clock,
        });
        if let Some(p) = self.mirrored.as_mut() {
            p.on_fill(group, way);
        }
    }

    /// Runs one access and returns what must happen.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> OracleOutcome {
        let (group, pi, block) = self.fields(addr);
        self.clock += 1;
        match self.matching_way(group, pi) {
            Some(way) => {
                let entry = self.entries[group * self.bas + way]
                    .as_mut()
                    .expect("matching PD entry has a resident block");
                if entry.block == block {
                    // PD hit + tag hit.
                    entry.last_use = self.clock;
                    if kind.is_write() {
                        entry.dirty = true;
                    }
                    if let Some(p) = self.mirrored.as_mut() {
                        p.on_access(group, way);
                    }
                    self.hits += 1;
                    OracleOutcome {
                        hit: true,
                        evicted: None,
                    }
                } else {
                    // PD hit + tag miss: forced victim — evicting any
                    // other way would leave two identical PIs decoded.
                    self.misses += 1;
                    self.pd_hit_misses += 1;
                    let ev = self.evict(group, way);
                    self.fill(group, way, pi, block, kind.is_write());
                    OracleOutcome {
                        hit: false,
                        evicted: ev,
                    }
                }
            }
            None => {
                // PD miss: predetermined miss; fill a cold way or the
                // replacement victim and reprogram its entry.
                self.misses += 1;
                self.pd_miss_misses += 1;
                let base = group * self.bas;
                let way = match (0..self.bas).find(|&w| self.entries[base + w].is_none()) {
                    Some(w) => w,
                    None => self.choose_victim(group),
                };
                let ev = self.evict(group, way);
                self.fill(group, way, pi, block, kind.is_write());
                OracleOutcome {
                    hit: false,
                    evicted: ev,
                }
            }
        }
    }
}

/// Number of distinct blocks touched by `addrs` — the compulsory-miss
/// lower bound every demand-fill cache must respect.
pub fn distinct_blocks<I: IntoIterator<Item = Addr>>(addrs: I, line_bytes: u64) -> u64 {
    let mut blocks: Vec<u64> = addrs.into_iter().map(|a| a.raw() / line_bytes).collect();
    blocks.sort_unstable();
    blocks.dedup();
    blocks.len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectMappedCache;
    use crate::model::CacheModel;
    use crate::set_assoc::SetAssociativeCache;

    fn lcg_stream(seed: u64, len: usize, span: u64) -> Vec<(u64, bool)> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 16) % span, x & 4 == 0)
            })
            .collect()
    }

    fn kind(w: bool) -> AccessKind {
        if w {
            AccessKind::Write
        } else {
            AccessKind::Read
        }
    }

    #[test]
    fn oracle_matches_direct_mapped_exactly() {
        let mut dm = DirectMappedCache::new(512, 32).unwrap();
        let mut oracle = OracleCache::new(512, 32, 1, PolicyKind::Lru, 0, 32);
        for (addr, w) in lcg_stream(1, 4000, 1 << 14) {
            let got = dm.access(Addr::new(addr), kind(w));
            let want = oracle.access(Addr::new(addr), kind(w));
            assert_eq!(want.diff(&got), None, "at {addr:#x}");
        }
        assert_eq!(oracle.misses(), dm.stats().total().misses());
        assert_eq!(oracle.writebacks(), dm.stats().writebacks());
    }

    #[test]
    fn oracle_matches_set_assoc_for_every_policy() {
        for kind_ in [
            PolicyKind::Lru,
            PolicyKind::Fifo,
            PolicyKind::Random,
            PolicyKind::TreePlru,
        ] {
            let mut sa = SetAssociativeCache::new(1024, 32, 4, kind_, 77).unwrap();
            let mut oracle = OracleCache::new(1024, 32, 4, kind_, 77, 32);
            for (addr, w) in lcg_stream(kind_ as u64 + 2, 5000, 1 << 13) {
                let got = sa.access(Addr::new(addr), kind(w));
                let want = oracle.access(Addr::new(addr), kind(w));
                assert_eq!(want.diff(&got), None, "{kind_:?} at {addr:#x}");
            }
            assert_eq!(oracle.hits(), sa.stats().total().hits(), "{kind_:?}");
        }
    }

    #[test]
    fn bcache_oracle_degenerates_to_direct_mapped() {
        // MF = 1, BAS = 1: the whole index is the NPI and the oracle must
        // replay direct-mapped behaviour exactly.
        let mut dm = DirectMappedCache::new(512, 32).unwrap();
        let mut oracle = BCacheOracle::new(32, 32, 4, 0, 0, false, PolicyKind::Lru, 0);
        for (addr, w) in lcg_stream(9, 4000, 1 << 13) {
            let got = dm.access(Addr::new(addr), kind(w));
            let want = oracle.access(Addr::new(addr), kind(w));
            assert_eq!(want.diff(&got), None, "at {addr:#x}");
        }
        assert_eq!(
            oracle.pd_hit_misses() + oracle.pd_miss_misses(),
            oracle.misses()
        );
    }

    #[test]
    fn distinct_blocks_counts_lines_not_bytes() {
        let addrs = [0u64, 4, 31, 32, 64, 64].map(Addr::new);
        assert_eq!(distinct_blocks(addrs, 32), 3);
    }

    #[test]
    fn outcome_diff_reports_field() {
        let want = OracleOutcome {
            hit: true,
            evicted: None,
        };
        assert!(want
            .diff(&AccessResult::miss(None))
            .unwrap()
            .contains("hit"));
        assert_eq!(want.diff(&AccessResult::hit()), None);
    }
}
