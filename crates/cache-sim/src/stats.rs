//! Access statistics: aggregate hit/miss counters, per-set usage counters,
//! and the set-balance classification used by Table 7 of the paper.

use std::fmt;

use crate::model::AccessKind;

/// Aggregate hit/miss counters for one cache.
///
/// Counters are split by access kind so instruction and data behaviour can
/// be reported separately when a cache is shared (the unified L2).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    reads: Counter,
    writes: Counter,
    fetches: Counter,
    /// Dirty blocks pushed out (write-backs to the next level).
    writebacks: u64,
}

/// A single hit/miss counter pair.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct Counter {
    hits: u64,
    misses: u64,
}

impl Counter {
    /// Number of hits recorded.
    pub const fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of misses recorded.
    pub const fn misses(&self) -> u64 {
        self.misses
    }

    /// Total accesses recorded.
    pub const fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in `[0, 1]`; `0` when no accesses were recorded.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    fn record(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    fn merge(&mut self, other: &Counter) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

impl CacheStats {
    /// Creates an empty statistics block.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access of the given kind.
    pub fn record(&mut self, kind: AccessKind, hit: bool) {
        match kind {
            AccessKind::Read => self.reads.record(hit),
            AccessKind::Write => self.writes.record(hit),
            AccessKind::InstrFetch => self.fetches.record(hit),
        }
    }

    /// Records a dirty eviction (write-back).
    pub fn record_writeback(&mut self) {
        self.writebacks += 1;
    }

    /// Adds `hits` hits and `misses` misses of `kind` in one call.
    ///
    /// This is the flush half of the batched replay paths: they tally a
    /// batch in locals and land the sums here, which is arithmetically
    /// identical to calling [`record`](Self::record) per access.
    pub fn record_bulk(&mut self, kind: AccessKind, hits: u64, misses: u64) {
        let c = match kind {
            AccessKind::Read => &mut self.reads,
            AccessKind::Write => &mut self.writes,
            AccessKind::InstrFetch => &mut self.fetches,
        };
        c.hits += hits;
        c.misses += misses;
    }

    /// Adds `n` write-backs in one call (the bulk counterpart of
    /// [`record_writeback`](Self::record_writeback)).
    pub fn record_writebacks(&mut self, n: u64) {
        self.writebacks += n;
    }

    /// Counter for data reads.
    pub const fn reads(&self) -> &Counter {
        &self.reads
    }

    /// Counter for data writes.
    pub const fn writes(&self) -> &Counter {
        &self.writes
    }

    /// Counter for instruction fetches.
    pub const fn fetches(&self) -> &Counter {
        &self.fetches
    }

    /// Number of write-backs to the next level.
    pub const fn writebacks(&self) -> u64 {
        self.writebacks
    }

    /// Sum over all access kinds.
    pub fn total(&self) -> Counter {
        let mut c = self.reads;
        c.merge(&self.writes);
        c.merge(&self.fetches);
        c
    }

    /// Overall miss rate across every access kind.
    pub fn miss_rate(&self) -> f64 {
        self.total().miss_rate()
    }

    /// Clears every counter.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.total();
        write!(
            f,
            "{} accesses, {} hits, {} misses ({:.4}% miss rate), {} writebacks",
            t.accesses(),
            t.hits(),
            t.misses(),
            t.miss_rate() * 100.0,
            self.writebacks
        )
    }
}

/// Per-kind hit/miss/write-back tallies for one batch of accesses.
///
/// Batched replay loops ([`CacheModel::access_batch`]) accumulate here
/// — plain stack words the optimizer keeps in registers — and land the
/// sums in a [`CacheStats`] with one [`flush`](Self::flush), which is
/// arithmetically identical to recording each access on its own.
///
/// [`CacheModel::access_batch`]: crate::CacheModel::access_batch
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchTally {
    hits: [u64; 3],
    misses: [u64; 3],
    writebacks: u64,
}

impl BatchTally {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    const fn kind_slot(kind: AccessKind) -> usize {
        match kind {
            AccessKind::Read => 0,
            AccessKind::Write => 1,
            AccessKind::InstrFetch => 2,
        }
    }

    /// Tallies one access of `kind`.
    #[inline(always)]
    pub fn record(&mut self, kind: AccessKind, hit: bool) {
        let slot = Self::kind_slot(kind);
        self.hits[slot] += hit as u64;
        self.misses[slot] += !hit as u64;
    }

    /// Tallies one dirty eviction.
    #[inline(always)]
    pub fn record_writeback(&mut self) {
        self.writebacks += 1;
    }

    /// Tallies a dirty eviction when `dirty` holds.
    ///
    /// Branchless on purpose: whether a victim is dirty is close to a
    /// coin flip on write-mixed streams, so a conditional here would be
    /// the least predictable branch of a replay kernel.
    #[inline(always)]
    pub fn record_writeback_if(&mut self, dirty: bool) {
        self.writebacks += dirty as u64;
    }

    /// Lands the tallies in `stats`.
    pub fn flush(self, stats: &mut CacheStats) {
        for (kind, slot) in [
            (AccessKind::Read, 0),
            (AccessKind::Write, 1),
            (AccessKind::InstrFetch, 2),
        ] {
            stats.record_bulk(kind, self.hits[slot], self.misses[slot]);
        }
        stats.record_writebacks(self.writebacks);
    }
}

/// Per-set access counters, the raw material of the paper's Table 7.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SetUsage {
    hits: Vec<u64>,
    misses: Vec<u64>,
}

impl SetUsage {
    /// Creates counters for `sets` cache sets.
    pub fn new(sets: usize) -> Self {
        SetUsage {
            hits: vec![0; sets],
            misses: vec![0; sets],
        }
    }

    /// Number of sets tracked.
    pub fn sets(&self) -> usize {
        self.hits.len()
    }

    /// Records an access to `set`.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[inline]
    pub fn record(&mut self, set: usize, hit: bool) {
        if hit {
            self.hits[set] += 1;
        } else {
            self.misses[set] += 1;
        }
    }

    /// Hits observed by `set`.
    pub fn hits(&self, set: usize) -> u64 {
        self.hits[set]
    }

    /// Misses observed by `set`.
    pub fn misses(&self, set: usize) -> u64 {
        self.misses[set]
    }

    /// Total accesses observed by `set`.
    pub fn accesses(&self, set: usize) -> u64 {
        self.hits[set] + self.misses[set]
    }

    /// Per-set hit counts as a slice (index = set). The windowed
    /// profiler scans every set once per window; the slice pair lets
    /// that loop run without per-element bounds checks.
    pub fn hit_counts(&self) -> &[u64] {
        &self.hits
    }

    /// Per-set miss counts as a slice (index = set).
    pub fn miss_counts(&self) -> &[u64] {
        &self.misses
    }

    /// Clears every counter, keeping the set count.
    pub fn reset(&mut self) {
        self.hits.fill(0);
        self.misses.fill(0);
    }

    /// Computes the paper's balance classification (Section 6.4).
    pub fn balance(&self) -> BalanceReport {
        BalanceReport::from_usage(self)
    }
}

/// The Section 6.4 / Table 7 balance classification.
///
/// * a set is a **frequent-hit set** when its hits are more than twice the
///   per-set average;
/// * a set is a **frequent-miss set** when its misses are more than twice
///   the per-set average;
/// * a set is a **less-accessed set** when its total accesses are below
///   half the per-set average.
///
/// All fields are fractions in `[0, 1]`.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct BalanceReport {
    /// Fraction of sets classified as frequent-hit sets (`fhs`).
    pub frequent_hit_sets: f64,
    /// Fraction of all hits landing in frequent-hit sets (`ch`).
    pub hits_in_frequent_hit_sets: f64,
    /// Fraction of sets classified as frequent-miss sets (`fms`).
    pub frequent_miss_sets: f64,
    /// Fraction of all misses landing in frequent-miss sets (`cm`).
    pub misses_in_frequent_miss_sets: f64,
    /// Fraction of sets classified as less-accessed sets (`las`).
    pub less_accessed_sets: f64,
    /// Fraction of all accesses landing in less-accessed sets (`tca`).
    pub accesses_in_less_accessed_sets: f64,
}

impl BalanceReport {
    /// Builds a report from raw per-set counters.
    pub fn from_usage(usage: &SetUsage) -> Self {
        let sets = usage.sets();
        if sets == 0 {
            return Self::default();
        }
        let total_hits: u64 = usage.hits.iter().sum();
        let total_misses: u64 = usage.misses.iter().sum();
        let total_accesses = total_hits + total_misses;
        let avg_hits = total_hits as f64 / sets as f64;
        let avg_misses = total_misses as f64 / sets as f64;
        let avg_accesses = total_accesses as f64 / sets as f64;

        let mut fhs = 0usize;
        let mut fhs_hits = 0u64;
        let mut fms = 0usize;
        let mut fms_misses = 0u64;
        let mut las = 0usize;
        let mut las_accesses = 0u64;
        for s in 0..sets {
            let h = usage.hits[s];
            let m = usage.misses[s];
            if total_hits > 0 && (h as f64) > 2.0 * avg_hits {
                fhs += 1;
                fhs_hits += h;
            }
            if total_misses > 0 && (m as f64) > 2.0 * avg_misses {
                fms += 1;
                fms_misses += m;
            }
            if ((h + m) as f64) < avg_accesses / 2.0 {
                las += 1;
                las_accesses += h + m;
            }
        }

        let frac = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        BalanceReport {
            frequent_hit_sets: fhs as f64 / sets as f64,
            hits_in_frequent_hit_sets: frac(fhs_hits, total_hits),
            frequent_miss_sets: fms as f64 / sets as f64,
            misses_in_frequent_miss_sets: frac(fms_misses, total_misses),
            less_accessed_sets: las as f64 / sets as f64,
            accesses_in_less_accessed_sets: frac(las_accesses, total_accesses),
        }
    }
}

impl fmt::Display for BalanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fhs {:.1}% (ch {:.1}%), fms {:.1}% (cm {:.1}%), las {:.1}% (tca {:.1}%)",
            self.frequent_hit_sets * 100.0,
            self.hits_in_frequent_hit_sets * 100.0,
            self.frequent_miss_sets * 100.0,
            self.misses_in_frequent_miss_sets * 100.0,
            self.less_accessed_sets * 100.0,
            self.accesses_in_less_accessed_sets * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_split_by_kind() {
        let mut s = CacheStats::new();
        s.record(AccessKind::Read, true);
        s.record(AccessKind::Read, false);
        s.record(AccessKind::Write, false);
        s.record(AccessKind::InstrFetch, true);
        assert_eq!(s.reads().hits(), 1);
        assert_eq!(s.reads().misses(), 1);
        assert_eq!(s.writes().misses(), 1);
        assert_eq!(s.fetches().hits(), 1);
        assert_eq!(s.total().accesses(), 4);
        assert_eq!(s.total().misses(), 2);
        assert!((s.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_miss_rate() {
        assert_eq!(CacheStats::new().miss_rate(), 0.0);
    }

    #[test]
    fn batch_tally_flush_equals_per_access_recording() {
        let mut per_access = CacheStats::new();
        let mut tally = BatchTally::new();
        let pattern = [
            (AccessKind::Read, true),
            (AccessKind::Read, false),
            (AccessKind::Write, true),
            (AccessKind::Write, false),
            (AccessKind::InstrFetch, false),
        ];
        for &(kind, hit) in &pattern {
            per_access.record(kind, hit);
            tally.record(kind, hit);
            if !hit {
                per_access.record_writeback();
                tally.record_writeback();
            }
        }
        let mut batched = CacheStats::new();
        tally.flush(&mut batched);
        assert_eq!(per_access, batched);
    }

    #[test]
    fn bulk_recording_equals_per_access_recording() {
        let mut per_access = CacheStats::new();
        for _ in 0..3 {
            per_access.record(AccessKind::Read, true);
        }
        per_access.record(AccessKind::Read, false);
        per_access.record(AccessKind::Write, false);
        per_access.record(AccessKind::InstrFetch, true);
        per_access.record_writeback();
        per_access.record_writeback();

        let mut bulk = CacheStats::new();
        bulk.record_bulk(AccessKind::Read, 3, 1);
        bulk.record_bulk(AccessKind::Write, 0, 1);
        bulk.record_bulk(AccessKind::InstrFetch, 1, 0);
        bulk.record_writebacks(2);
        assert_eq!(per_access, bulk);
    }

    #[test]
    fn writebacks_accumulate_and_reset() {
        let mut s = CacheStats::new();
        s.record_writeback();
        s.record_writeback();
        assert_eq!(s.writebacks(), 2);
        s.reset();
        assert_eq!(s.writebacks(), 0);
        assert_eq!(s.total().accesses(), 0);
    }

    #[test]
    fn set_usage_records_per_set() {
        let mut u = SetUsage::new(4);
        u.record(0, true);
        u.record(0, false);
        u.record(3, false);
        assert_eq!(u.hits(0), 1);
        assert_eq!(u.misses(0), 1);
        assert_eq!(u.accesses(0), 2);
        assert_eq!(u.accesses(3), 1);
        assert_eq!(u.accesses(1), 0);
        u.reset();
        assert_eq!(u.accesses(0), 0);
        assert_eq!(u.sets(), 4);
    }

    #[test]
    fn balance_flags_skewed_usage() {
        // 8 sets; set 0 gets nearly all hits, set 1 all misses, rest idle.
        let mut u = SetUsage::new(8);
        for _ in 0..80 {
            u.record(0, true);
        }
        for _ in 0..40 {
            u.record(1, false);
        }
        u.record(2, true);
        let b = u.balance();
        // Set 0 holds 80/81 hits and is well over 2x the average (~10).
        assert!((b.frequent_hit_sets - 1.0 / 8.0).abs() < 1e-12);
        assert!(b.hits_in_frequent_hit_sets > 0.95);
        assert!((b.frequent_miss_sets - 1.0 / 8.0).abs() < 1e-12);
        assert!((b.misses_in_frequent_miss_sets - 1.0).abs() < 1e-12);
        // Sets 2..8 each see <= 1 access versus an average of ~15.
        assert!(b.less_accessed_sets >= 6.0 / 8.0);
    }

    #[test]
    fn balance_of_uniform_usage_has_no_outliers() {
        let mut u = SetUsage::new(16);
        for s in 0..16 {
            for _ in 0..10 {
                u.record(s, true);
            }
            u.record(s, false);
        }
        let b = u.balance();
        assert_eq!(b.frequent_hit_sets, 0.0);
        assert_eq!(b.frequent_miss_sets, 0.0);
        assert_eq!(b.less_accessed_sets, 0.0);
    }

    #[test]
    fn balance_of_empty_usage_is_default() {
        assert_eq!(SetUsage::new(0).balance(), BalanceReport::default());
        let b = SetUsage::new(4).balance();
        assert_eq!(b.frequent_hit_sets, 0.0);
        assert_eq!(b.accesses_in_less_accessed_sets, 0.0);
    }

    #[test]
    fn display_formats_are_nonempty() {
        let s = CacheStats::new();
        assert!(!s.to_string().is_empty());
        let b = BalanceReport::default();
        assert!(!b.to_string().is_empty());
    }
}
