//! The way-halting cache (Zhang et al.), mentioned in Section 6.8 of the
//! B-Cache paper alongside the skewed-associative cache.
//!
//! A set-associative cache that stores the low few tag bits of every way
//! in a small fully-parallel "halt tag" array searched concurrently with
//! decoding: ways whose halt tag mismatches are *halted* — their data and
//! full-tag arrays are never enabled — saving energy without touching the
//! miss rate or adding cycles. Like the B-Cache's PD, the halt tags need
//! address bits before translation completes, which is why the paper
//! discusses the two designs together.

use crate::addr::Addr;
use crate::geometry::{CacheGeometry, GeometryError};
use crate::model::{AccessKind, AccessResult, CacheModel};
use crate::replacement::PolicyKind;
use crate::set_assoc::SetAssociativeCache;
use crate::stats::{CacheStats, SetUsage};

/// A set-associative cache with way halting.
///
/// Functionally identical to the wrapped LRU cache; the added value is
/// the energy-relevant statistic: how many way accesses the halt tags
/// suppressed ([`WayHaltingCache::halted_fraction`]).
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, CacheModel, WayHaltingCache};
///
/// let mut c = WayHaltingCache::new(16 * 1024, 32, 4, 4)?;
/// c.access(0x0u64.into(), AccessKind::Read);
/// assert!(c.access(0x4u64.into(), AccessKind::Read).hit);
/// telemetry::tele_info!("halted {:.0}% of way lookups", c.halted_fraction() * 100.0);
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct WayHaltingCache {
    inner: SetAssociativeCache,
    halt_bits: u32,
    // Shadow block ids per (set, way) to evaluate halt decisions.
    shadow: Vec<Option<u64>>,
    ways_examined: u64,
    ways_halted: u64,
}

impl WayHaltingCache {
    /// Creates a way-halting cache with `halt_bits` of halt tag per way
    /// (the original design uses 4).
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn new(
        size_bytes: usize,
        line_bytes: usize,
        assoc: usize,
        halt_bits: u32,
    ) -> Result<Self, GeometryError> {
        let inner = SetAssociativeCache::new(size_bytes, line_bytes, assoc, PolicyKind::Lru, 0)?;
        let slots = inner.geometry().sets() * assoc;
        Ok(WayHaltingCache {
            inner,
            halt_bits,
            shadow: vec![None; slots],
            ways_examined: 0,
            ways_halted: 0,
        })
    }

    fn halt_tag(&self, tag: u64) -> u64 {
        tag & ((1u64 << self.halt_bits) - 1)
    }

    /// Fraction of way lookups suppressed by the halt tags; the original
    /// paper reports 50–90% of ways halted on average.
    pub fn halted_fraction(&self) -> f64 {
        if self.ways_examined == 0 {
            0.0
        } else {
            self.ways_halted as f64 / self.ways_examined as f64
        }
    }

    /// Ways whose full lookup was suppressed.
    pub fn ways_halted(&self) -> u64 {
        self.ways_halted
    }
}

impl CacheModel for WayHaltingCache {
    fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        let geom = self.inner.geometry();
        let assoc = geom.assoc();
        let set = geom.set_index(addr);
        let tag = geom.tag(addr);
        let id = (tag << geom.index_bits()) | set as u64;
        let want = self.halt_tag(tag);

        for w in 0..assoc {
            self.ways_examined += 1;
            let halted = match self.shadow[set * assoc + w] {
                Some(block) => self.halt_tag(block >> geom.index_bits()) != want,
                None => true, // empty ways halt trivially
            };
            if halted {
                self.ways_halted += 1;
            }
        }

        let result = self.inner.access(addr, kind);
        if !result.hit {
            // Mirror the fill into the shadow.
            if let Some(ev) = result.evicted {
                let ev_id = ev.block.raw() >> geom.offset_bits();
                for slot in self.shadow[set * assoc..(set + 1) * assoc].iter_mut() {
                    if *slot == Some(ev_id) {
                        *slot = None;
                    }
                }
            }
            let empty = (0..assoc)
                .find(|w| self.shadow[set * assoc + w].is_none())
                .expect("eviction freed a way");
            self.shadow[set * assoc + empty] = Some(id);
        }
        result
    }

    fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
        self.ways_examined = 0;
        self.ways_halted = 0;
    }

    fn geometry(&self) -> CacheGeometry {
        self.inner.geometry()
    }

    fn set_usage(&self) -> Option<&SetUsage> {
        self.inner.set_usage()
    }

    fn label(&self) -> String {
        format!(
            "{}k{}way-halt{}",
            self.geometry().size_bytes() / 1024,
            self.geometry().assoc(),
            self.halt_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WayHaltingCache {
        WayHaltingCache::new(512, 32, 4, 4).unwrap()
    }

    #[test]
    fn miss_rate_equals_plain_set_associative() {
        let mut wh = tiny();
        let mut sa = SetAssociativeCache::new(512, 32, 4, PolicyKind::Lru, 0).unwrap();
        let mut x = 11u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = Addr::new((x >> 14) % 8192);
            assert_eq!(
                wh.access(addr, AccessKind::Read).hit,
                sa.access(addr, AccessKind::Read).hit
            );
        }
        assert_eq!(wh.stats().total(), sa.stats().total());
    }

    #[test]
    fn distinct_halt_tags_halt_most_ways() {
        let mut c = tiny();
        // Four blocks in set 0 with distinct low-4 tag bits.
        for tag in 0..4u64 {
            c.access(Addr::new(tag << 7), AccessKind::Read);
        }
        c.reset_stats();
        // Re-access each: the three other ways halt every time.
        for tag in 0..4u64 {
            assert!(c.access(Addr::new(tag << 7), AccessKind::Read).hit);
        }
        assert!(
            (c.halted_fraction() - 0.75).abs() < 1e-12,
            "{}",
            c.halted_fraction()
        );
    }

    #[test]
    fn aliased_halt_tags_cannot_halt() {
        let mut c = tiny();
        // Two blocks whose tags agree in the low 4 bits (tag 0 and 16).
        c.access(Addr::new(0), AccessKind::Read);
        c.access(Addr::new(16 << 7), AccessKind::Read);
        c.reset_stats();
        c.access(Addr::new(0), AccessKind::Read);
        // Of the 4 ways examined: the alias way cannot halt, two empty
        // ways halt -> 2 of 4.
        assert!(
            (c.halted_fraction() - 0.5).abs() < 1e-12,
            "{}",
            c.halted_fraction()
        );
    }

    #[test]
    fn reset_clears_halt_counters() {
        let mut c = tiny();
        c.access(Addr::new(0), AccessKind::Read);
        c.reset_stats();
        assert_eq!(c.ways_halted(), 0);
        assert_eq!(c.halted_fraction(), 0.0);
    }

    #[test]
    fn label_mentions_halting() {
        assert_eq!(
            WayHaltingCache::new(16 * 1024, 32, 4, 4).unwrap().label(),
            "16k4way-halt4"
        );
    }

    /// Differential hook: this cache is contractually an n-way LRU array
    /// (the lookup machinery changes latency/energy, never hits, misses
    /// or evictions), so the reference oracle must track it exactly.
    #[test]
    fn matches_reference_oracle() {
        use crate::oracle::OracleCache;
        let mut model = WayHaltingCache::new(2048, 32, 4, 4).unwrap();
        let mut oracle = OracleCache::new(2048, 32, 4, crate::PolicyKind::Lru, 0, 32);
        let mut x = 0x2468_ACE0u64;
        for i in 0..4000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = ((x >> 16) % 512) * 32;
            let kind = if x & 4 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let got = model.access(Addr::new(addr), kind);
            let want = oracle.access(Addr::new(addr), kind);
            assert_eq!(want.diff(&got), None, "access {i} at {addr:#x}");
        }
    }
}
