//! The way-halting cache (Zhang et al.), mentioned in Section 6.8 of the
//! B-Cache paper alongside the skewed-associative cache.
//!
//! A set-associative cache that stores the low few tag bits of every way
//! in a small fully-parallel "halt tag" array searched concurrently with
//! decoding: ways whose halt tag mismatches are *halted* — their data and
//! full-tag arrays are never enabled — saving energy without touching the
//! miss rate or adding cycles. Like the B-Cache's PD, the halt tags need
//! address bits before translation completes, which is why the paper
//! discusses the two designs together.

use telemetry::{NullObserver, Observer};

use crate::addr::Addr;
use crate::geometry::{CacheGeometry, GeometryError};
use crate::model::{AccessKind, AccessResult, CacheModel};
use crate::packed;
use crate::replacement::{Lru, PolicyKind};
use crate::set_assoc::{step_one, SetAssociativeCache};
use crate::stats::{BatchTally, CacheStats, SetUsage};

/// A set-associative cache with way halting.
///
/// Functionally identical to the wrapped LRU cache; the added value is
/// the energy-relevant statistic: how many way accesses the halt tags
/// suppressed ([`WayHaltingCache::halted_fraction`]).
///
/// [`CacheModel::access_batch`] fuses the halt-tag pre-scan and the
/// shadow-directory bookkeeping around the shared set-associative step
/// kernel, so the batched path is bit-identical to the per-access one —
/// statistics, halt counters, and [`Observer`] events alike.
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, CacheModel, WayHaltingCache};
///
/// let mut c = WayHaltingCache::new(16 * 1024, 32, 4, 4)?;
/// c.access(0x0u64.into(), AccessKind::Read);
/// assert!(c.access(0x4u64.into(), AccessKind::Read).hit);
/// telemetry::tele_info!("halted {:.0}% of way lookups", c.halted_fraction() * 100.0);
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
#[derive(Debug)]
pub struct WayHaltingCache<O: Observer = NullObserver> {
    inner: SetAssociativeCache<O>,
    halt_bits: u32,
    ways_examined: u64,
    ways_halted: u64,
}

impl WayHaltingCache {
    /// Creates a way-halting cache with `halt_bits` of halt tag per way
    /// (the original design uses 4).
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn new(
        size_bytes: usize,
        line_bytes: usize,
        assoc: usize,
        halt_bits: u32,
    ) -> Result<Self, GeometryError> {
        Self::with_observer(size_bytes, line_bytes, assoc, halt_bits, NullObserver)
    }
}

impl<O: Observer> WayHaltingCache<O> {
    /// Like [`WayHaltingCache::new`], with an observer wired into both
    /// access paths.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] for invalid shapes.
    pub fn with_observer(
        size_bytes: usize,
        line_bytes: usize,
        assoc: usize,
        halt_bits: u32,
        observer: O,
    ) -> Result<Self, GeometryError> {
        let inner = SetAssociativeCache::with_observer(
            size_bytes,
            line_bytes,
            assoc,
            PolicyKind::Lru,
            0,
            observer,
        )?;
        Ok(WayHaltingCache {
            inner,
            halt_bits,
            ways_examined: 0,
            ways_halted: 0,
        })
    }

    /// The attached observer.
    pub fn observer(&self) -> &O {
        self.inner.observer()
    }

    /// Mutable access to the attached observer.
    pub fn observer_mut(&mut self) -> &mut O {
        self.inner.observer_mut()
    }

    /// Fraction of way lookups suppressed by the halt tags; the original
    /// paper reports 50–90% of ways halted on average.
    pub fn halted_fraction(&self) -> f64 {
        if self.ways_examined == 0 {
            0.0
        } else {
            self.ways_halted as f64 / self.ways_examined as f64
        }
    }

    /// Ways whose full lookup was suppressed.
    pub fn ways_halted(&self) -> u64 {
        self.ways_halted
    }
}

impl<O: Observer> CacheModel for WayHaltingCache<O> {
    fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        // The halt decision needs exactly what the packed tag array
        // already holds: a way halts when it is empty or its stored
        // tag's low bits mismatch the incoming address's.
        let geom = self.inner.geometry();
        let set = geom.set_index(addr);
        let tag = geom.tag(addr);
        let halt_mask = (1u64 << self.halt_bits) - 1;
        for &w in self.inner.set_words(set) {
            self.ways_examined += 1;
            let halted = !packed::is_valid(w) || (packed::tag(w) ^ tag) & halt_mask != 0;
            self.ways_halted += halted as u64;
        }
        self.inner.access(addr, kind)
    }

    fn access_batch(&mut self, accesses: &[(Addr, AccessKind)]) {
        // Fused kernel: halt-tag pre-scan over the packed words + shared
        // step, with register-tallied stats, the inner LRU devirtualized,
        // and the way scans monomorphized for the common associativities.
        // Bit-identical to the `access` loop (the batch-equivalence
        // suite enforces it, events included).
        let halt_mask = (1u64 << self.halt_bits) - 1;
        let (mut examined, mut halted_n) = (0u64, 0u64);
        let (split, assoc, lines, usage, policy, stats, observer) = self.inner.batch_parts();
        let mut tally = BatchTally::new();
        macro_rules! kernel {
            ($policy:expr, $a:literal) => {{
                let p = $policy;
                for &(addr, kind) in accesses {
                    let set = split.set_index(addr);
                    let tag = split.tag(addr);
                    for &w in &lines[set * assoc..(set + 1) * assoc] {
                        let halted =
                            !packed::is_valid(w) || (packed::tag(w) ^ tag) & halt_mask != 0;
                        halted_n += halted as u64;
                    }
                    examined += assoc as u64;
                    step_one::<_, _, $a>(
                        &split, assoc, lines, usage, p, &mut tally, observer, addr, kind,
                    );
                }
            }};
        }
        if let Some(lru) = policy.as_any_mut().downcast_mut::<Lru>() {
            match assoc {
                2 => kernel!(lru, 2),
                4 => kernel!(lru, 4),
                8 => kernel!(lru, 8),
                _ => kernel!(lru, 0),
            }
        } else {
            kernel!(policy.as_mut(), 0)
        }
        tally.flush(stats);
        self.ways_examined += examined;
        self.ways_halted += halted_n;
    }

    fn stats(&self) -> &CacheStats {
        self.inner.stats()
    }

    fn reset_stats(&mut self) {
        self.inner.reset_stats();
        self.ways_examined = 0;
        self.ways_halted = 0;
    }

    fn geometry(&self) -> CacheGeometry {
        self.inner.geometry()
    }

    fn set_usage(&self) -> Option<&SetUsage> {
        self.inner.set_usage()
    }

    fn label(&self) -> String {
        format!(
            "{}k{}way-halt{}",
            self.geometry().size_bytes() / 1024,
            self.geometry().assoc(),
            self.halt_bits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WayHaltingCache {
        WayHaltingCache::new(512, 32, 4, 4).unwrap()
    }

    #[test]
    fn miss_rate_equals_plain_set_associative() {
        let mut wh = tiny();
        let mut sa = SetAssociativeCache::new(512, 32, 4, PolicyKind::Lru, 0).unwrap();
        let mut x = 11u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let addr = Addr::new((x >> 14) % 8192);
            assert_eq!(
                wh.access(addr, AccessKind::Read).hit,
                sa.access(addr, AccessKind::Read).hit
            );
        }
        assert_eq!(wh.stats().total(), sa.stats().total());
    }

    #[test]
    fn distinct_halt_tags_halt_most_ways() {
        let mut c = tiny();
        // Four blocks in set 0 with distinct low-4 tag bits.
        for tag in 0..4u64 {
            c.access(Addr::new(tag << 7), AccessKind::Read);
        }
        c.reset_stats();
        // Re-access each: the three other ways halt every time.
        for tag in 0..4u64 {
            assert!(c.access(Addr::new(tag << 7), AccessKind::Read).hit);
        }
        assert!(
            (c.halted_fraction() - 0.75).abs() < 1e-12,
            "{}",
            c.halted_fraction()
        );
    }

    #[test]
    fn aliased_halt_tags_cannot_halt() {
        let mut c = tiny();
        // Two blocks whose tags agree in the low 4 bits (tag 0 and 16).
        c.access(Addr::new(0), AccessKind::Read);
        c.access(Addr::new(16 << 7), AccessKind::Read);
        c.reset_stats();
        c.access(Addr::new(0), AccessKind::Read);
        // Of the 4 ways examined: the alias way cannot halt, two empty
        // ways halt -> 2 of 4.
        assert!(
            (c.halted_fraction() - 0.5).abs() < 1e-12,
            "{}",
            c.halted_fraction()
        );
    }

    #[test]
    fn reset_clears_halt_counters() {
        let mut c = tiny();
        c.access(Addr::new(0), AccessKind::Read);
        c.reset_stats();
        assert_eq!(c.ways_halted(), 0);
        assert_eq!(c.halted_fraction(), 0.0);
    }

    #[test]
    fn label_mentions_halting() {
        assert_eq!(
            WayHaltingCache::new(16 * 1024, 32, 4, 4).unwrap().label(),
            "16k4way-halt4"
        );
    }

    fn fuzz_accesses(records: usize, seed: u64) -> Vec<(Addr, AccessKind)> {
        let mut x = seed ^ 0x2468_ACE0u64;
        (0..records)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let kind = if x & 4 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                (Addr::new(((x >> 16) % 512) * 32), kind)
            })
            .collect()
    }

    #[test]
    fn access_batch_is_bit_identical_to_the_loop() {
        let mut looped = WayHaltingCache::new(2048, 32, 4, 4).unwrap();
        let mut batched = WayHaltingCache::new(2048, 32, 4, 4).unwrap();
        let accesses = fuzz_accesses(6_000, 1);
        for &(addr, kind) in &accesses {
            looped.access(addr, kind);
        }
        batched.access_batch(&accesses);
        assert_eq!(looped.stats(), batched.stats());
        assert_eq!(
            (looped.ways_examined, looped.ways_halted),
            (batched.ways_examined, batched.ways_halted),
            "halt counters"
        );
    }

    #[test]
    fn observer_sees_identical_events_from_loop_and_batch() {
        use telemetry::EventRing;
        let accesses = fuzz_accesses(5_000, 13);
        let mut looped =
            WayHaltingCache::with_observer(2048, 32, 4, 4, EventRing::new(64 * 1024)).unwrap();
        let mut batched =
            WayHaltingCache::with_observer(2048, 32, 4, 4, EventRing::new(64 * 1024)).unwrap();
        for &(addr, kind) in &accesses {
            looped.access(addr, kind);
        }
        batched.access_batch(&accesses);
        let a: Vec<_> = looped.observer().iter().map(|(_, e)| e.clone()).collect();
        let b: Vec<_> = batched.observer().iter().map(|(_, e)| e.clone()).collect();
        assert!(!a.is_empty(), "the fuzz stream must generate events");
        assert_eq!(a, b, "per-access and batched event sequences diverge");
    }

    /// Differential hook: this cache is contractually an n-way LRU array
    /// (the lookup machinery changes latency/energy, never hits, misses
    /// or evictions), so the reference oracle must track it exactly.
    #[test]
    fn matches_reference_oracle() {
        use crate::oracle::OracleCache;
        let mut model = WayHaltingCache::new(2048, 32, 4, 4).unwrap();
        let mut oracle = OracleCache::new(2048, 32, 4, crate::PolicyKind::Lru, 0, 32);
        let mut x = 0x2468_ACE0u64;
        for i in 0..4000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = ((x >> 16) % 512) * 32;
            let kind = if x & 4 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            let got = model.access(Addr::new(addr), kind);
            let want = oracle.access(Addr::new(addr), kind);
            assert_eq!(want.diff(&got), None, "access {i} at {addr:#x}");
        }
    }
}
