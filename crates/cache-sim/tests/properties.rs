//! Property-based tests for the cache substrate.

use cache_sim::{
    AccessKind, Addr, CacheModel, DirectMappedCache, PolicyKind, SetAssociativeCache, VictimCache,
};
use proptest::prelude::*;

/// A compact trace description: block numbers within a bounded region plus
/// a read/write flag, so conflicts are frequent.
fn trace_strategy(max_len: usize) -> impl Strategy<Value = Vec<(u64, bool)>> {
    prop::collection::vec((0u64..512, any::<bool>()), 1..max_len)
}

fn kind(is_write: bool) -> AccessKind {
    if is_write {
        AccessKind::Write
    } else {
        AccessKind::Read
    }
}

proptest! {
    /// A 1-way set-associative cache is exactly a direct-mapped cache.
    #[test]
    fn set_assoc_one_way_equals_direct_mapped(trace in trace_strategy(400)) {
        let mut sa = SetAssociativeCache::new(1024, 32, 1, PolicyKind::Lru, 0).unwrap();
        let mut dm = DirectMappedCache::new(1024, 32).unwrap();
        for &(block, w) in &trace {
            let addr = Addr::new(block * 32);
            let a = sa.access(addr, kind(w));
            let b = dm.access(addr, kind(w));
            prop_assert_eq!(a.hit, b.hit);
            prop_assert_eq!(a.evicted, b.evicted);
        }
    }

    /// LRU is a stack algorithm per set: with the number of sets held
    /// constant, misses never increase with associativity.
    #[test]
    fn lru_miss_count_monotone_in_associativity(trace in trace_strategy(400)) {
        // 32 sets throughout; capacity grows with associativity, which is
        // exactly the inclusion property LRU guarantees per set.
        let mut misses = Vec::new();
        for assoc in [1usize, 2, 4, 8] {
            let mut c = SetAssociativeCache::new(32 * 32 * assoc, 32, assoc, PolicyKind::Lru, 0).unwrap();
            for &(block, w) in &trace {
                c.access(Addr::new(block * 32), kind(w));
            }
            misses.push(c.stats().total().misses());
        }
        for pair in misses.windows(2) {
            prop_assert!(pair[1] <= pair[0], "misses {:?} not monotone", misses);
        }
    }

    /// A victim cache never has more misses than the same direct-mapped
    /// cache alone on the same trace... is not true in general, but the
    /// total resident blocks never exceed capacity, and hits stay hits:
    /// here we check the weaker, always-true invariant that every access
    /// is counted exactly once and the hit flag matches a reference
    /// model of "block present in main or buffer".
    #[test]
    fn victim_cache_matches_reference_presence(trace in trace_strategy(300)) {
        let mut vc = VictimCache::new(512, 32, 4).unwrap();
        // Reference: main array map set->block plus a 4-deep LRU list.
        let mut main: Vec<Option<u64>> = vec![None; 16];
        let mut buf: Vec<u64> = Vec::new(); // most recent at the back
        for &(block, w) in &trace {
            let addr = Addr::new(block * 32);
            let set = (block % 16) as usize;
            let expected_hit = main[set] == Some(block) || buf.contains(&block);
            let r = vc.access(addr, kind(w));
            prop_assert_eq!(r.hit, expected_hit, "block {} set {}", block, set);
            // Update the reference model.
            if main[set] == Some(block) {
                // fast hit: nothing moves
            } else if let Some(pos) = buf.iter().position(|&b| b == block) {
                // swap hit
                buf.remove(pos);
                if let Some(old) = main[set] {
                    buf.push(old);
                }
                main[set] = Some(block);
            } else {
                // miss: demote old resident
                if let Some(old) = main[set] {
                    if buf.len() == 4 {
                        buf.remove(0);
                    }
                    buf.push(old);
                }
                main[set] = Some(block);
            }
        }
    }

    /// Statistics identities: hits + misses == accesses, and per-set usage
    /// sums to the aggregate counters.
    #[test]
    fn stats_identities(trace in trace_strategy(300)) {
        let mut c = SetAssociativeCache::new(1024, 32, 4, PolicyKind::Lru, 0).unwrap();
        for &(block, w) in &trace {
            c.access(Addr::new(block * 32), kind(w));
        }
        let total = c.stats().total();
        prop_assert_eq!(total.accesses(), trace.len() as u64);
        let usage = c.set_usage().unwrap();
        let hits: u64 = (0..usage.sets()).map(|s| usage.hits(s)).sum();
        let misses: u64 = (0..usage.sets()).map(|s| usage.misses(s)).sum();
        prop_assert_eq!(hits, total.hits());
        prop_assert_eq!(misses, total.misses());
    }

    /// Fully-associative LRU obeys the stack property over buffer sizes.
    #[test]
    fn fully_associative_lru_stack_property(trace in trace_strategy(300)) {
        let mut misses = Vec::new();
        for lines in [4usize, 8, 16] {
            let mut c = SetAssociativeCache::fully_associative(lines, 32, PolicyKind::Lru, 0).unwrap();
            for &(block, w) in &trace {
                c.access(Addr::new(block * 32), kind(w));
            }
            misses.push(c.stats().total().misses());
        }
        prop_assert!(misses[1] <= misses[0] && misses[2] <= misses[1]);
    }

    /// Write-backs only happen for blocks that were actually written.
    #[test]
    fn no_writebacks_on_read_only_traces(trace in prop::collection::vec(0u64..512, 1..300)) {
        let mut c = SetAssociativeCache::new(512, 32, 2, PolicyKind::Lru, 0).unwrap();
        for &block in &trace {
            let r = c.access(Addr::new(block * 32), AccessKind::Read);
            if let Some(ev) = r.evicted {
                prop_assert!(!ev.dirty);
            }
        }
        prop_assert_eq!(c.stats().writebacks(), 0);
    }

    /// Evicted blocks are always distinct from the incoming block and
    /// block-aligned.
    #[test]
    fn evictions_are_aligned_and_foreign(trace in trace_strategy(300)) {
        let mut c = SetAssociativeCache::new(512, 32, 2, PolicyKind::Lru, 0).unwrap();
        for &(block, w) in &trace {
            let addr = Addr::new(block * 32);
            let r = c.access(addr, kind(w));
            if let Some(ev) = r.evicted {
                prop_assert!(ev.block.is_aligned(32));
                prop_assert_ne!(ev.block, addr.align_down(32));
            }
        }
    }
}
