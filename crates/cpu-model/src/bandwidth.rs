//! A per-cycle bandwidth regulator used by the fetch, issue and retire
//! stages.

/// Grants at most `width` slots per cycle, never going backwards in time.
#[derive(Clone, Debug)]
pub struct BandwidthLimiter {
    width: u32,
    cycle: u64,
    used: u32,
}

impl BandwidthLimiter {
    /// Creates a limiter granting `width` slots per cycle.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn new(width: u32) -> Self {
        assert!(width > 0, "bandwidth must be positive");
        BandwidthLimiter {
            width,
            cycle: 0,
            used: 0,
        }
    }

    /// Reserves the next slot at or after `earliest`; returns its cycle.
    pub fn slot(&mut self, earliest: u64) -> u64 {
        if earliest > self.cycle {
            self.cycle = earliest;
            self.used = 0;
        }
        if self.used >= self.width {
            self.cycle += 1;
            self.used = 0;
        }
        self.used += 1;
        self.cycle
    }

    /// The cycle of the most recently granted slot.
    pub fn current_cycle(&self) -> u64 {
        self.cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn width_slots_per_cycle() {
        let mut b = BandwidthLimiter::new(2);
        assert_eq!(b.slot(0), 0);
        assert_eq!(b.slot(0), 0);
        assert_eq!(b.slot(0), 1, "third request spills into the next cycle");
        assert_eq!(b.slot(0), 1);
        assert_eq!(b.slot(0), 2);
    }

    #[test]
    fn earliest_constraint_resets_the_count() {
        let mut b = BandwidthLimiter::new(2);
        b.slot(0);
        b.slot(0);
        assert_eq!(b.slot(5), 5);
        assert_eq!(b.slot(0), 5, "past constraints cannot move time backwards");
        assert_eq!(b.slot(0), 6);
    }

    #[test]
    fn monotonic_grants() {
        let mut b = BandwidthLimiter::new(3);
        let mut last = 0;
        for i in 0..100u64 {
            let c = b.slot(i / 5);
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        BandwidthLimiter::new(0);
    }
}
