//! Processor configuration (paper Table 4).

use std::fmt;

use crate::tlb::TlbConfig;

/// Configuration of the out-of-order timing model.
///
/// Defaults reproduce the paper's Table 4: a 4-wide machine with a
/// 16-entry instruction window, four functional units, one-cycle L1s, a
/// 6-cycle 256 kB L2 and 100-cycle main memory.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct CpuConfig {
    /// Instructions fetched per cycle.
    pub fetch_width: u32,
    /// Instructions issued to functional units per cycle.
    pub issue_width: u32,
    /// Instructions retired per cycle.
    pub retire_width: u32,
    /// Instruction-window (ROB) entries.
    pub window: usize,
    /// Front-end depth: cycles from fetch to earliest dispatch.
    pub frontend_depth: u64,
    /// Extra cycles to redirect fetch after a mispredicted branch
    /// resolves.
    pub mispredict_penalty: u64,
    /// Latency of long operations (multiplies, FP arithmetic).
    pub long_op_latency: u64,
    /// Instruction TLB; `None` models perfect translation (the paper's
    /// setup, which does not charge TLB latency).
    pub itlb: Option<TlbConfig>,
    /// Data TLB; `None` models perfect translation.
    pub dtlb: Option<TlbConfig>,
}

impl Default for CpuConfig {
    fn default() -> Self {
        CpuConfig {
            fetch_width: 4,
            issue_width: 4,
            retire_width: 4,
            window: 16,
            frontend_depth: 3,
            mispredict_penalty: 3,
            long_op_latency: 4,
            itlb: None,
            dtlb: None,
        }
    }
}

impl fmt::Display for CpuConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-wide fetch/issue/retire, {}-entry window",
            self.fetch_width, self.window
        )
    }
}

/// Renders the paper's Table 4 processor-configuration rows.
pub fn table4_rows() -> Vec<(&'static str, String)> {
    let c = CpuConfig::default();
    vec![
        (
            "Fetch/Issue/Retire Width",
            format!("{} instructions/cycle, 4 functional units", c.fetch_width),
        ),
        (
            "Instruction Window Size",
            format!("{} instructions", c.window),
        ),
        ("L1 cache", "16kB, 32B linesize, direct mapped".to_string()),
        (
            "L2 Unified Cache",
            "256kB, 128B linesize, 4-way, 6 cycle hit".to_string(),
        ),
        ("Main Memory", "Infinite size, 100 cycle access".to_string()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlbs_default_off_like_the_paper() {
        let c = CpuConfig::default();
        assert!(c.itlb.is_none() && c.dtlb.is_none());
    }

    #[test]
    fn defaults_match_table4() {
        let c = CpuConfig::default();
        assert_eq!(c.fetch_width, 4);
        assert_eq!(c.issue_width, 4);
        assert_eq!(c.retire_width, 4);
        assert_eq!(c.window, 16);
    }

    #[test]
    fn table4_mentions_the_paper_parameters() {
        let rows = table4_rows();
        assert_eq!(rows.len(), 5);
        assert!(rows.iter().any(|(_, v)| v.contains("16 instructions")));
        assert!(rows.iter().any(|(_, v)| v.contains("100 cycle")));
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!CpuConfig::default().to_string().is_empty());
    }
}
