//! # cpu-model — the Table 4 out-of-order processor
//!
//! A 4-issue, 16-entry-window, out-of-order timing model in the spirit of
//! SimpleScalar's `sim-outorder` configuration used by the B-Cache paper
//! (Table 4). The model consumes `trace-gen` instruction streams, drives
//! a `cache-sim` [`cache_sim::MemoryHierarchy`], and reports IPC — the
//! metric behind the paper's Figure 8 (performance) and Figure 9
//! (energy, through cycle counts).
//!
//! The core is timestamp-driven rather than cycle-stepped: every dynamic
//! instruction receives fetch / dispatch / issue / complete / retire
//! times under bandwidth, window, dependence, cache-latency and
//! branch-redirect constraints. See [`Cpu::run`].
//!
//! ## Quick start
//!
//! ```
//! use cache_sim::{DirectMappedCache, MemoryHierarchy};
//! use cpu_model::{Cpu, CpuConfig};
//! use trace_gen::{profiles, Trace};
//!
//! let hierarchy = MemoryHierarchy::new(
//!     Box::new(DirectMappedCache::new(16 * 1024, 32)?),
//!     Box::new(DirectMappedCache::new(16 * 1024, 32)?),
//! );
//! let mut cpu = Cpu::new(CpuConfig::default(), hierarchy);
//! let report = cpu.run(Trace::new(&profiles::by_name("equake").unwrap(), 1).take(50_000));
//! telemetry::tele_info!("IPC = {:.3}", report.ipc());
//! # Ok::<(), cache_sim::GeometryError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bandwidth;
pub mod config;
pub mod cpu;
pub mod tlb;

pub use bandwidth::BandwidthLimiter;
pub use config::{table4_rows, CpuConfig};
pub use cpu::{Cpu, CpuReport};
pub use tlb::{Tlb, TlbConfig};
