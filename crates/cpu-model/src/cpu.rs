//! The out-of-order core timing model.
//!
//! A timestamp-driven model in the style of trace-driven
//! instruction-window simulators: each dynamic instruction receives
//! fetch, dispatch, issue, completion and retire timestamps subject to
//! the machine's structural constraints (fetch/issue/retire bandwidth,
//! window occupancy, dependences, cache latencies, branch redirects).
//! This captures exactly the effects the paper's IPC evaluation depends
//! on — L1 miss latency exposed through the window — at a fraction of the
//! cost of a cycle-by-cycle core model.

use cache_sim::{AccessKind, Addr, MemoryHierarchy};
use trace_gen::{Op, TraceRecord};

use crate::bandwidth::BandwidthLimiter;
use crate::config::CpuConfig;
use crate::tlb::Tlb;

/// The result of one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct CpuReport {
    /// Instructions executed.
    pub instructions: u64,
    /// Total cycles.
    pub cycles: u64,
    /// Loads + stores executed.
    pub memory_ops: u64,
    /// Mispredicted branches encountered.
    pub mispredicts: u64,
    /// Instruction-TLB misses (0 when no iTLB is configured).
    pub itlb_misses: u64,
    /// Data-TLB misses (0 when no dTLB is configured).
    pub dtlb_misses: u64,
}

impl CpuReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// The 4-issue out-of-order processor of Table 4, wrapped around a
/// [`MemoryHierarchy`].
///
/// # Examples
///
/// ```
/// use cache_sim::{DirectMappedCache, MemoryHierarchy};
/// use cpu_model::{Cpu, CpuConfig};
/// use trace_gen::{profiles, Trace};
///
/// let l1i = DirectMappedCache::new(16 * 1024, 32)?;
/// let l1d = DirectMappedCache::new(16 * 1024, 32)?;
/// let hierarchy = MemoryHierarchy::new(Box::new(l1i), Box::new(l1d));
/// let mut cpu = Cpu::new(CpuConfig::default(), hierarchy);
///
/// let profile = profiles::by_name("gzip").unwrap();
/// let report = cpu.run(Trace::new(&profile, 1).take(10_000));
/// assert!(report.ipc() > 0.1 && report.ipc() <= 4.0);
/// # Ok::<(), cache_sim::GeometryError>(())
/// ```
pub struct Cpu {
    config: CpuConfig,
    hierarchy: MemoryHierarchy,
}

impl Cpu {
    /// Creates a core around a memory hierarchy.
    pub fn new(config: CpuConfig, hierarchy: MemoryHierarchy) -> Self {
        Cpu { config, hierarchy }
    }

    /// The memory hierarchy (for miss statistics after a run).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Mutable access to the hierarchy (e.g. to reset statistics between
    /// a warm-up prefix and the measured run).
    pub fn hierarchy_mut(&mut self) -> &mut MemoryHierarchy {
        &mut self.hierarchy
    }

    /// The configuration.
    pub fn config(&self) -> CpuConfig {
        self.config
    }

    /// Simulates the trace to completion and reports timing.
    pub fn run<I>(&mut self, trace: I) -> CpuReport
    where
        I: IntoIterator<Item = TraceRecord>,
    {
        let cfg = self.config;
        let mut itlb = cfg.itlb.map(Tlb::new);
        let mut dtlb = cfg.dtlb.map(Tlb::new);
        let mut fetch_bw = BandwidthLimiter::new(cfg.fetch_width);
        let mut issue_bw = BandwidthLimiter::new(cfg.issue_width);
        let mut retire_bw = BandwidthLimiter::new(cfg.retire_width);

        // Retire times of the last `window` instructions (ring buffer):
        // instruction i cannot dispatch before i - window retired.
        let mut rob = vec![0u64; cfg.window];
        // Completion times of recent instructions for dependences.
        const DEP_RING: usize = 8;
        let mut completions = [0u64; DEP_RING];

        let mut fetch_line = u64::MAX;
        let mut fetch_block_ready = 0u64; // I$ miss stall
        let mut redirect_until = 0u64; // branch mispredict redirect
        let mut last_retire = 0u64;

        let mut n = 0u64;
        let mut memory_ops = 0u64;
        let mut mispredicts = 0u64;

        for rec in trace {
            let i = n as usize;

            // --- Fetch ---
            let line = rec.pc / 32;
            if line != fetch_line {
                fetch_line = line;
                // The I$ access starts once fetch reaches this block.
                let start = fetch_block_ready
                    .max(redirect_until)
                    .max(fetch_bw.current_cycle());
                let mut latency = self.hierarchy.fetch(Addr::new(rec.pc));
                if let Some(t) = itlb.as_mut() {
                    latency += t.translate(Addr::new(rec.pc));
                }
                fetch_block_ready = start + latency - 1;
            }
            let fetch_t = fetch_bw.slot(fetch_block_ready.max(redirect_until));

            // --- Dispatch: front-end depth + a free window slot ---
            let rob_free = rob[i % cfg.window];
            let dispatch_t = (fetch_t + cfg.frontend_depth).max(rob_free);

            // --- Ready: wait for the synthetic producer ---
            // A deterministic dependence distance in [1, DEP_RING] hashed
            // from the PC models the ILP available around this PC.
            let dep_dist = ((rec.pc >> 2).wrapping_mul(2654435761) >> 16) as usize % DEP_RING + 1;
            let dep_ready = if (i as u64) >= dep_dist as u64 {
                completions[(i - dep_dist) % DEP_RING]
            } else {
                0
            };
            let ready_t = dispatch_t.max(dep_ready);

            // --- Issue & execute ---
            let issue_t = issue_bw.slot(ready_t);
            let latency = match rec.op {
                Op::Alu | Op::Branch { .. } => 1,
                Op::Long => cfg.long_op_latency,
                Op::Load(addr) => {
                    memory_ops += 1;
                    let tlb_lat = dtlb.as_mut().map_or(0, |t| t.translate(Addr::new(addr)));
                    tlb_lat
                        + self
                            .hierarchy
                            .data_access(Addr::new(addr), AccessKind::Read)
                }
                Op::Store(addr) => {
                    memory_ops += 1;
                    if let Some(t) = dtlb.as_mut() {
                        t.translate(Addr::new(addr));
                    }
                    // The store buffer hides the store's miss latency, but
                    // the access still updates the cache state (write-
                    // allocate) and the L2/memory traffic counters.
                    self.hierarchy
                        .data_access(Addr::new(addr), AccessKind::Write);
                    1
                }
            };
            let complete_t = issue_t + latency;
            completions[i % DEP_RING] = complete_t;

            // --- Branch redirect ---
            if let Op::Branch { mispredict: true } = rec.op {
                mispredicts += 1;
                redirect_until = redirect_until.max(complete_t + cfg.mispredict_penalty);
            }

            // --- Retire: in order, bounded bandwidth ---
            let retire_t = retire_bw.slot(complete_t.max(last_retire));
            last_retire = retire_t;
            rob[i % cfg.window] = retire_t;

            n += 1;
        }

        CpuReport {
            instructions: n,
            cycles: last_retire + 1,
            memory_ops,
            mispredicts,
            itlb_misses: itlb.map_or(0, |t| t.misses()),
            dtlb_misses: dtlb.map_or(0, |t| t.misses()),
        }
    }
}

impl std::fmt::Debug for Cpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cpu")
            .field("config", &self.config)
            .field("hierarchy", &self.hierarchy)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::DirectMappedCache;

    fn dm_hierarchy() -> MemoryHierarchy {
        let l1i = DirectMappedCache::new(16 * 1024, 32).unwrap();
        let l1d = DirectMappedCache::new(16 * 1024, 32).unwrap();
        MemoryHierarchy::new(Box::new(l1i), Box::new(l1d))
    }

    fn cpu() -> Cpu {
        Cpu::new(CpuConfig::default(), dm_hierarchy())
    }

    /// A straight-line all-ALU trace with a warm I$.
    fn alu_trace(n: usize) -> Vec<TraceRecord> {
        (0..n)
            .map(|i| TraceRecord {
                pc: 0x1000 + (i as u64 % 8) * 4,
                op: Op::Alu,
            })
            .collect()
    }

    #[test]
    fn ipc_bounded_by_width() {
        let mut c = cpu();
        let r = c.run(alu_trace(10_000));
        assert!(r.ipc() <= 4.0, "IPC {} exceeds machine width", r.ipc());
        assert!(
            r.ipc() > 0.5,
            "IPC {} unreasonably low for pure ALU work",
            r.ipc()
        );
        assert_eq!(r.instructions, 10_000);
    }

    #[test]
    fn cache_misses_reduce_ipc() {
        // Loads striding far beyond L2 versus loads hitting one line.
        let hit_trace: Vec<TraceRecord> = (0..5_000)
            .map(|i| TraceRecord {
                pc: 0x1000 + (i % 4) * 4,
                op: Op::Load(0x8000),
            })
            .collect();
        let miss_trace: Vec<TraceRecord> = (0..5_000)
            .map(|i| TraceRecord {
                pc: 0x1000 + (i % 4) * 4,
                op: Op::Load(0x10_0000 + i * 4096),
            })
            .collect();
        let ipc_hit = cpu().run(hit_trace).ipc();
        let ipc_miss = cpu().run(miss_trace).ipc();
        assert!(
            ipc_hit > 3.0 * ipc_miss,
            "misses must hurt: hit {ipc_hit:.3} vs miss {ipc_miss:.3}"
        );
    }

    #[test]
    fn mispredicts_reduce_ipc() {
        let clean: Vec<TraceRecord> = (0..5_000)
            .map(|i| TraceRecord {
                pc: 0x1000 + (i % 8) * 4,
                op: Op::Branch { mispredict: false },
            })
            .collect();
        let dirty: Vec<TraceRecord> = (0..5_000)
            .map(|i| TraceRecord {
                pc: 0x1000 + (i % 8) * 4,
                op: Op::Branch {
                    mispredict: i % 4 == 0,
                },
            })
            .collect();
        let ipc_clean = cpu().run(clean).ipc();
        let ipc_dirty = cpu().run(dirty).ipc();
        assert!(ipc_clean > ipc_dirty, "{ipc_clean} vs {ipc_dirty}");
    }

    #[test]
    fn long_ops_are_slower_than_alu() {
        let alu = cpu().run(alu_trace(5_000)).ipc();
        let long_trace: Vec<TraceRecord> = (0..5_000)
            .map(|i| TraceRecord {
                pc: 0x1000 + (i % 8) * 4,
                op: Op::Long,
            })
            .collect();
        let long = cpu().run(long_trace).ipc();
        assert!(alu > long);
    }

    #[test]
    fn icache_misses_stall_fetch() {
        // Jump across many lines (one instruction per line) far apart so
        // every fetch misses, versus a tight loop.
        let scattered: Vec<TraceRecord> = (0..2_000)
            .map(|i| TraceRecord {
                pc: (i as u64) * 40_960,
                op: Op::Alu,
            })
            .collect();
        let tight = cpu().run(alu_trace(2_000)).ipc();
        let scattered_ipc = cpu().run(scattered).ipc();
        assert!(tight > 5.0 * scattered_ipc, "{tight} vs {scattered_ipc}");
    }

    #[test]
    fn deterministic_runs() {
        let t = alu_trace(3_000);
        let a = cpu().run(t.clone());
        let b = cpu().run(t);
        assert_eq!(a, b);
    }

    #[test]
    fn counts_memory_ops_and_mispredicts() {
        let trace = vec![
            TraceRecord {
                pc: 0,
                op: Op::Load(64),
            },
            TraceRecord {
                pc: 4,
                op: Op::Store(128),
            },
            TraceRecord {
                pc: 8,
                op: Op::Branch { mispredict: true },
            },
            TraceRecord {
                pc: 12,
                op: Op::Alu,
            },
        ];
        let r = cpu().run(trace);
        assert_eq!(r.memory_ops, 2);
        assert_eq!(r.mispredicts, 1);
        assert_eq!(r.instructions, 4);
    }

    #[test]
    fn empty_trace_reports_zero_work() {
        let r = cpu().run(Vec::new());
        assert_eq!(r.instructions, 0);
        assert_eq!(r.ipc(), 0.0);
    }

    #[test]
    fn hierarchy_statistics_are_visible_after_run() {
        let mut c = cpu();
        c.run(alu_trace(100));
        assert!(c.hierarchy().l1i().stats().total().accesses() > 0);
    }

    #[test]
    fn tlb_misses_cost_cycles() {
        use crate::tlb::TlbConfig;
        // Loads striding across many pages versus one page.
        let wide: Vec<TraceRecord> = (0..3_000)
            .map(|i| TraceRecord {
                pc: 0x1000 + (i % 4) * 4,
                op: Op::Load((i % 512) * 8192),
            })
            .collect();
        let mut with_tlb = Cpu::new(
            CpuConfig {
                dtlb: Some(TlbConfig {
                    entries: 8,
                    page_bytes: 8192,
                    miss_penalty: 30,
                }),
                ..CpuConfig::default()
            },
            dm_hierarchy(),
        );
        let mut without = cpu();
        let r_tlb = with_tlb.run(wide.clone());
        let r_no = without.run(wide);
        assert!(
            r_tlb.dtlb_misses > 1_000,
            "512 pages overwhelm an 8-entry TLB"
        );
        assert!(r_tlb.cycles > r_no.cycles, "page walks must cost cycles");
        assert_eq!(r_no.dtlb_misses, 0);
    }

    #[test]
    fn window_limits_overlap_of_long_loads() {
        // With a 16-entry window, at most ~16 instructions can be in
        // flight: a stream of independent 100-cycle misses cannot sustain
        // more than window/latency IPC.
        let misses: Vec<TraceRecord> = (0..2_000)
            .map(|i| TraceRecord {
                pc: 0x1000 + (i % 4) * 4,
                op: Op::Load(0x100_0000 + i * 8192),
            })
            .collect();
        let r = cpu().run(misses);
        let bound = 16.0 / 100.0;
        assert!(
            r.ipc() < bound * 2.5,
            "IPC {} violates window bound {bound}",
            r.ipc()
        );
    }
}
