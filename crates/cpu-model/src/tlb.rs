//! A translation lookaside buffer model.
//!
//! Section 6.8 of the paper discusses virtually-indexed,
//! physically-tagged L1s, where the B-Cache's PI tag bits may need
//! translation before the programmable decoders can fire. This TLB model
//! lets the timing experiments charge translation latency and quantify
//! how often the bits would have been unavailable.
//!
//! Translation is identity (the synthetic traces use flat addresses);
//! only the reach/miss behaviour and its latency are modelled.

use cache_sim::Addr;

/// Configuration of one TLB.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: usize,
    /// Page size in bytes (power of two).
    pub page_bytes: u64,
    /// Cycles added to an access on a TLB miss (page-walk cost).
    pub miss_penalty: u64,
}

impl Default for TlbConfig {
    fn default() -> Self {
        // A typical early-2000s core: 64-entry fully associative, 8 kB
        // pages (Alpha-like), ~30-cycle walk.
        TlbConfig {
            entries: 64,
            page_bytes: 8192,
            miss_penalty: 30,
        }
    }
}

/// A fully-associative TLB with LRU replacement.
#[derive(Clone, Debug)]
pub struct Tlb {
    config: TlbConfig,
    // (virtual page number, last-use stamp) pairs.
    entries: Vec<(u64, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if the page size is not a power of two or `entries` is 0.
    pub fn new(config: TlbConfig) -> Self {
        assert!(
            config.page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(config.entries > 0, "TLB must have at least one entry");
        Tlb {
            config,
            entries: Vec::with_capacity(config.entries),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    fn vpn(&self, addr: Addr) -> u64 {
        addr.raw() / self.config.page_bytes
    }

    /// Translates `addr`, returning the added latency (0 on a hit).
    pub fn translate(&mut self, addr: Addr) -> u64 {
        self.clock += 1;
        let vpn = self.vpn(addr);
        if let Some(e) = self.entries.iter_mut().find(|(v, _)| *v == vpn) {
            e.1 = self.clock;
            self.hits += 1;
            return 0;
        }
        self.misses += 1;
        if self.entries.len() < self.config.entries {
            self.entries.push((vpn, self.clock));
        } else {
            let lru = self
                .entries
                .iter_mut()
                .min_by_key(|(_, stamp)| *stamp)
                .expect("TLB is non-empty");
            *lru = (vpn, self.clock);
        }
        self.config.miss_penalty
    }

    /// TLB hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// TLB misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Total coverage in bytes (`entries × page size`).
    pub fn reach_bytes(&self) -> u64 {
        self.config.entries as u64 * self.config.page_bytes
    }

    /// Clears statistics, keeping the entries.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Tlb {
        Tlb::new(TlbConfig {
            entries: 2,
            page_bytes: 4096,
            miss_penalty: 25,
        })
    }

    #[test]
    fn same_page_hits() {
        let mut t = tiny();
        assert_eq!(t.translate(Addr::new(0x1000)), 25);
        assert_eq!(t.translate(Addr::new(0x1FFF)), 0, "same page");
        assert_eq!(t.translate(Addr::new(0x2000)), 25, "next page");
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut t = tiny();
        t.translate(Addr::new(0x0000)); // page 0
        t.translate(Addr::new(0x1000)); // page 1
        t.translate(Addr::new(0x0000)); // touch page 0
        t.translate(Addr::new(0x2000)); // page 2 evicts page 1 (LRU)
        assert_eq!(t.translate(Addr::new(0x0000)), 0, "page 0 survived");
        assert_eq!(t.translate(Addr::new(0x1000)), 25, "page 1 evicted");
    }

    #[test]
    fn reach_and_miss_rate() {
        let mut t = tiny();
        assert_eq!(t.reach_bytes(), 8192);
        t.translate(Addr::new(0));
        t.translate(Addr::new(0));
        assert!((t.miss_rate() - 0.5).abs() < 1e-12);
        t.reset_stats();
        assert_eq!(t.miss_rate(), 0.0);
        assert_eq!(
            t.translate(Addr::new(0)),
            0,
            "entries survive a stats reset"
        );
    }

    #[test]
    fn default_config_is_sane() {
        let c = TlbConfig::default();
        assert!(c.page_bytes.is_power_of_two());
        assert!(c.entries >= 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_page_size() {
        Tlb::new(TlbConfig {
            entries: 4,
            page_bytes: 3000,
            miss_penalty: 10,
        });
    }
}
