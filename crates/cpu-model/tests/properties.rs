//! Property-based tests for the CPU timing model.

use cache_sim::{DirectMappedCache, MemoryHierarchy};
use cpu_model::{Cpu, CpuConfig};
use proptest::prelude::*;
use trace_gen::{Op, TraceRecord};

fn hierarchy() -> MemoryHierarchy {
    MemoryHierarchy::new(
        Box::new(DirectMappedCache::new(16 * 1024, 32).unwrap()),
        Box::new(DirectMappedCache::new(16 * 1024, 32).unwrap()),
    )
}

/// Strategy over small synthetic traces with all operation kinds.
fn trace_strategy(max_len: usize) -> impl Strategy<Value = Vec<TraceRecord>> {
    prop::collection::vec(
        (0u64..4096, 0u32..5, 0u64..(1 << 22), any::<bool>()).prop_map(|(pc, kind, addr, flag)| {
            let op = match kind {
                0 => Op::Alu,
                1 => Op::Long,
                2 => Op::Load(addr),
                3 => Op::Store(addr),
                _ => Op::Branch { mispredict: flag },
            };
            TraceRecord { pc: pc * 4, op }
        }),
        1..max_len,
    )
}

proptest! {
    /// IPC never exceeds the machine width and cycles grow at least with
    /// retire bandwidth.
    #[test]
    fn ipc_bounded_by_machine_width(trace in trace_strategy(2000)) {
        let n = trace.len() as u64;
        let report = Cpu::new(CpuConfig::default(), hierarchy()).run(trace);
        prop_assert_eq!(report.instructions, n);
        prop_assert!(report.ipc() <= 4.0 + 1e-9);
        prop_assert!(report.cycles >= n.div_ceil(4));
    }

    /// The model is deterministic: same trace, same report.
    #[test]
    fn deterministic(trace in trace_strategy(800)) {
        let a = Cpu::new(CpuConfig::default(), hierarchy()).run(trace.clone());
        let b = Cpu::new(CpuConfig::default(), hierarchy()).run(trace);
        prop_assert_eq!(a, b);
    }

    /// A wider window never makes execution slower (monotone resource).
    #[test]
    fn bigger_window_never_hurts(trace in trace_strategy(800)) {
        let small = Cpu::new(CpuConfig { window: 8, ..CpuConfig::default() }, hierarchy())
            .run(trace.clone());
        let large = Cpu::new(CpuConfig { window: 64, ..CpuConfig::default() }, hierarchy())
            .run(trace);
        prop_assert!(large.cycles <= small.cycles, "{} vs {}", large.cycles, small.cycles);
    }

    /// A faster memory system never makes execution slower.
    #[test]
    fn faster_memory_never_hurts(trace in trace_strategy(800)) {
        use cache_sim::{LatencyConfig, PolicyKind, SetAssociativeCache};
        let slow_lat = LatencyConfig { l1_hit: 1, l2_hit: 6, memory: 200 };
        let fast_lat = LatencyConfig { l1_hit: 1, l2_hit: 6, memory: 50 };
        let build = |lat: LatencyConfig| {
            MemoryHierarchy::with_l2(
                Box::new(DirectMappedCache::new(16 * 1024, 32).unwrap()),
                Box::new(DirectMappedCache::new(16 * 1024, 32).unwrap()),
                SetAssociativeCache::new(256 * 1024, 128, 4, PolicyKind::Lru, 0).unwrap(),
                lat,
            )
        };
        let slow = Cpu::new(CpuConfig::default(), build(slow_lat)).run(trace.clone());
        let fast = Cpu::new(CpuConfig::default(), build(fast_lat)).run(trace);
        prop_assert!(fast.cycles <= slow.cycles);
    }

    /// Memory-op and mispredict counters match the trace contents.
    #[test]
    fn counters_match_trace(trace in trace_strategy(800)) {
        let mem = trace.iter().filter(|r| r.op.is_mem()).count() as u64;
        let misp = trace
            .iter()
            .filter(|r| matches!(r.op, Op::Branch { mispredict: true }))
            .count() as u64;
        let report = Cpu::new(CpuConfig::default(), hierarchy()).run(trace);
        prop_assert_eq!(report.memory_ops, mem);
        prop_assert_eq!(report.mispredicts, misp);
    }
}
