//! Criterion benchmark crate for the B-Cache reproduction.
//!
//! The benches live in `benches/`:
//!
//! * `figures` — one group per paper figure (3, 4, 5, 8, 9, 12), running
//!   a scaled-down version of the corresponding harness experiment;
//! * `tables` — one group per paper table (1–7);
//! * `simulator` — micro-benchmarks of the substrate (cache models,
//!   trace generation, the CPU core);
//! * `ablations` — the design-choice studies DESIGN.md calls out (LRU vs
//!   random replacement, forced-victim vs evict-both, PI bit selection,
//!   design A vs B).
//!
//! Run them with `cargo bench --workspace`. Record counts are kept small
//! so a full sweep finishes in minutes; the harness binary
//! (`bcache-repro`) is the tool for full-scale regeneration.

/// Record count used by the figure/table benches (scaled down from the
/// harness default of 2 M so Criterion sampling stays fast).
pub const BENCH_RECORDS: u64 = 20_000;
