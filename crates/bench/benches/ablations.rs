//! Ablation benches for the design choices DESIGN.md calls out. Each
//! bench reports runtime; the *quality* comparison (miss rates) is
//! logged once at the start of the run via [`telemetry::tele_info!`]
//! (filterable with `BCACHE_LOG`) so `cargo bench` output doubles as an
//! ablation table.

use bcache_core::{BCacheParams, BalancedCache, PdHitPolicy, PiTagBits};
use cache_sim::{AccessKind, Addr, CacheGeometry, CacheModel, PolicyKind};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use telemetry::tele_info;
use trace_gen::{profiles, Op, Trace};

const RECORDS: usize = 200_000;

fn geom() -> CacheGeometry {
    CacheGeometry::new(16 * 1024, 32, 1).unwrap()
}

/// Replays a benchmark's data stream through a B-Cache variant and
/// returns the miss rate.
fn miss_rate(benchmark: &str, params: BCacheParams) -> f64 {
    let profile = profiles::by_name(benchmark).unwrap();
    let mut bc = BalancedCache::new(params);
    for r in Trace::new(&profile, 1).take(RECORDS) {
        if let Some(a) = r.op.data_addr() {
            let kind = if matches!(r.op, Op::Store(_)) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            bc.access(Addr::new(a), kind);
        }
    }
    bc.stats().miss_rate()
}

fn bench_replacement_policy(c: &mut Criterion) {
    // Section 3.3: LRU vs random replacement in the B-Cache.
    let lru = BCacheParams::new(geom(), 8, 8, PolicyKind::Lru).unwrap();
    let rnd = BCacheParams::new(geom(), 8, 8, PolicyKind::Random)
        .unwrap()
        .with_seed(7);
    tele_info!(
        "[ablation] equake D$ miss rate: LRU {:.3}% vs random {:.3}%",
        miss_rate("equake", lru) * 100.0,
        miss_rate("equake", rnd) * 100.0
    );
    let mut g = c.benchmark_group("ablation-replacement");
    g.sample_size(10);
    for (name, params) in [("lru", lru), ("random", rnd)] {
        g.bench_function(name, |b| b.iter(|| black_box(miss_rate("equake", params))));
    }
    g.finish();
}

fn bench_pd_hit_policy(c: &mut Criterion) {
    // Section 2.3: forced victim vs the evict-both alternative the paper
    // rejects.
    let forced = BCacheParams::paper_default(geom()).unwrap();
    let both = forced.with_pd_hit_policy(PdHitPolicy::EvictBoth);
    tele_info!(
        "[ablation] wupwise D$ miss rate: forced-victim {:.3}% vs evict-both {:.3}%",
        miss_rate("wupwise", forced) * 100.0,
        miss_rate("wupwise", both) * 100.0
    );
    let mut g = c.benchmark_group("ablation-pd-hit-policy");
    g.sample_size(10);
    for (name, params) in [("forced-victim", forced), ("evict-both", both)] {
        g.bench_function(name, |b| b.iter(|| black_box(miss_rate("wupwise", params))));
    }
    g.finish();
}

fn bench_pi_bit_selection(c: &mut Criterion) {
    // The indexing-choice question the paper leaves open: low vs high tag
    // bits in the PI.
    let low = BCacheParams::paper_default(geom()).unwrap();
    let high = low.with_pi_tag_bits(PiTagBits::High);
    tele_info!(
        "[ablation] facerec D$ miss rate: PI from low tag bits {:.3}% vs high {:.3}%",
        miss_rate("facerec", low) * 100.0,
        miss_rate("facerec", high) * 100.0
    );
    let mut g = c.benchmark_group("ablation-pi-bits");
    g.sample_size(10);
    for (name, params) in [("low-tag-bits", low), ("high-tag-bits", high)] {
        g.bench_function(name, |b| b.iter(|| black_box(miss_rate("facerec", params))));
    }
    g.finish();
}

fn bench_design_a_vs_b(c: &mut Criterion) {
    // Section 6.3: equal PD length, clusters vs mapping factor.
    let a = BCacheParams::new(geom(), 8, 8, PolicyKind::Lru).unwrap(); // 6-bit PD
    let b_ = BCacheParams::new(geom(), 16, 4, PolicyKind::Lru).unwrap(); // 6-bit PD
    tele_info!(
        "[ablation] twolf D$ miss rate: design A (MF8,BAS8) {:.3}% vs design B (MF16,BAS4) {:.3}%",
        miss_rate("twolf", a) * 100.0,
        miss_rate("twolf", b_) * 100.0
    );
    let mut g = c.benchmark_group("ablation-design-a-vs-b");
    g.sample_size(10);
    for (name, params) in [("A-mf8-bas8", a), ("B-mf16-bas4", b_)] {
        g.bench_function(name, |b| b.iter(|| black_box(miss_rate("twolf", params))));
    }
    g.finish();
}

criterion_group!(
    ablations,
    bench_replacement_policy,
    bench_pd_hit_policy,
    bench_pi_bit_selection,
    bench_design_a_vs_b
);
criterion_main!(ablations);
