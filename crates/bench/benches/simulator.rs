//! Substrate micro-benchmarks: raw accesses/second of each cache model,
//! trace generation throughput, and the CPU timing model.

use bcache_core::{BCacheParams, BalancedCache};
use cache_sim::{
    AccessKind, Addr, CacheGeometry, CacheModel, ColumnAssociativeCache, DirectMappedCache,
    MemoryHierarchy, PolicyKind, SetAssociativeCache, SkewedAssociativeCache, VictimCache,
};
use cpu_model::{Cpu, CpuConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use trace_gen::{profiles, Trace};

const N: u64 = 10_000;

/// A deterministic mixed address pattern with hits and conflicts.
fn addresses() -> Vec<Addr> {
    let mut x = 0x1234_5678u64;
    (0..N)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            Addr::new((x >> 16) % (1 << 20))
        })
        .collect()
}

fn bench_cache_models(c: &mut Criterion) {
    let addrs = addresses();
    let geom = CacheGeometry::new(16 * 1024, 32, 1).unwrap();
    let mut g = c.benchmark_group("cache-models");
    g.throughput(Throughput::Elements(N));

    let mut run = |name: &str, mut model: Box<dyn CacheModel>| {
        g.bench_function(name, |b| {
            b.iter(|| {
                for &a in &addrs {
                    black_box(model.access(a, AccessKind::Read));
                }
            })
        });
    };
    run(
        "direct-mapped",
        Box::new(DirectMappedCache::new(16 * 1024, 32).unwrap()),
    );
    run(
        "8-way-lru",
        Box::new(SetAssociativeCache::new(16 * 1024, 32, 8, PolicyKind::Lru, 0).unwrap()),
    );
    run(
        "victim16",
        Box::new(VictimCache::new(16 * 1024, 32, 16).unwrap()),
    );
    run(
        "bcache-mf8-bas8",
        Box::new(BalancedCache::new(
            BCacheParams::paper_default(geom).unwrap(),
        )),
    );
    run(
        "column-assoc",
        Box::new(ColumnAssociativeCache::new(16 * 1024, 32).unwrap()),
    );
    run(
        "skewed-2way",
        Box::new(SkewedAssociativeCache::new(16 * 1024, 32).unwrap()),
    );
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace-gen");
    g.throughput(Throughput::Elements(N));
    for name in ["equake", "mcf"] {
        let profile = profiles::by_name(name).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(Trace::new(&profile, 1).take(N as usize).count());
            })
        });
    }
    g.finish();
}

fn bench_cpu_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("cpu-model");
    g.throughput(Throughput::Elements(N));
    g.bench_function("out-of-order-core", |b| {
        let profile = profiles::by_name("gcc").unwrap();
        b.iter(|| {
            let hierarchy = MemoryHierarchy::new(
                Box::new(DirectMappedCache::new(16 * 1024, 32).unwrap()),
                Box::new(DirectMappedCache::new(16 * 1024, 32).unwrap()),
            );
            let mut cpu = Cpu::new(CpuConfig::default(), hierarchy);
            black_box(cpu.run(Trace::new(&profile, 1).take(N as usize)))
        })
    });
    g.finish();
}

fn bench_vm_kernels(c: &mut Criterion) {
    use trace_gen::kernels::{matmul, run_kernel};
    let mut g = c.benchmark_group("vm-kernels");
    g.bench_function("matmul-16", |b| {
        let k = matmul(16);
        b.iter(|| black_box(run_kernel(&k, 2_000_000).1.len()))
    });
    g.finish();
}

criterion_group!(
    simulator,
    bench_cache_models,
    bench_trace_generation,
    bench_cpu_model,
    bench_vm_kernels
);
criterion_main!(simulator);
