//! One Criterion group per paper figure: each benchmark runs a
//! scaled-down version of the harness experiment that regenerates the
//! figure, so `cargo bench` exercises every figure's full code path.

use bcache_bench::BENCH_RECORDS;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::config::CacheConfig;
use harness::run::{run_bcache_pd_stats, run_miss_rates, RunLength, Side};
use harness::{fig3, perf};
use std::hint::black_box;
use trace_gen::profiles;

fn len() -> RunLength {
    RunLength::with_records(BENCH_RECORDS)
}

fn bench_fig3(c: &mut Criterion) {
    // The wupwise MF sweep; one representative point per iteration.
    let profile = profiles::by_name("wupwise").unwrap();
    let mut g = c.benchmark_group("fig3");
    for mf in [8usize, 64] {
        g.bench_function(format!("wupwise-MF{mf}"), |b| {
            b.iter(|| {
                black_box(run_bcache_pd_stats(
                    &profile,
                    mf,
                    8,
                    16 * 1024,
                    Side::Data,
                    len(),
                ))
            })
        });
    }
    g.bench_function("full-sweep", |b| {
        b.iter(|| black_box(fig3::figure3_for("wupwise", RunLength::with_records(5_000))))
    });
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    // D$ miss-rate reductions over the nine comparison configurations.
    let configs = CacheConfig::figure4_set();
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    for name in ["equake", "mcf"] {
        let profile = profiles::by_name(name).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(run_miss_rates(
                    &profile,
                    &configs,
                    16 * 1024,
                    Side::Data,
                    len(),
                ))
            })
        });
    }
    g.finish();
}

fn bench_fig5(c: &mut Criterion) {
    // I$ miss-rate reductions.
    let configs = CacheConfig::figure4_set();
    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    for name in ["crafty", "wupwise"] {
        let profile = profiles::by_name(name).unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(run_miss_rates(
                    &profile,
                    &configs,
                    16 * 1024,
                    Side::Instruction,
                    len(),
                ))
            })
        });
    }
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    // IPC: full CPU + hierarchy runs, baseline vs B-Cache.
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    for (name, config) in [
        ("equake-baseline", CacheConfig::DirectMapped),
        ("equake-bcache", CacheConfig::BCache { mf: 8, bas: 8 }),
    ] {
        let profile = profiles::by_name("equake").unwrap();
        g.bench_function(name, |b| {
            b.iter(|| black_box(perf::run_config(&profile, &config, len())))
        });
    }
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    // Energy: the Figure 9 pipeline (run + normalization) on one
    // benchmark across baseline, 8-way and B-Cache.
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    g.bench_function("gzip-energy-pipeline", |b| {
        let profile = profiles::by_name("gzip").unwrap();
        let configs = [
            CacheConfig::DirectMapped,
            CacheConfig::SetAssoc(8),
            CacheConfig::BCache { mf: 8, bas: 8 },
        ];
        b.iter(|| {
            let row = perf::PerfRow {
                benchmark: "gzip".into(),
                outcomes: configs
                    .iter()
                    .map(|c| perf::run_config(&profile, c, len()))
                    .collect(),
            };
            black_box(row.normalized_energy())
        })
    });
    g.finish();
}

fn bench_fig12(c: &mut Criterion) {
    // 8 kB / 32 kB sweeps over the twelve configurations.
    let configs = CacheConfig::figure12_set();
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    for size in [8 * 1024usize, 32 * 1024] {
        let profile = profiles::by_name("twolf").unwrap();
        g.bench_function(format!("twolf-{}k", size / 1024), |b| {
            b.iter(|| black_box(run_miss_rates(&profile, &configs, size, Side::Data, len())))
        });
    }
    g.finish();
}

criterion_group!(
    figures,
    bench_fig3,
    bench_fig4,
    bench_fig5,
    bench_fig8,
    bench_fig9,
    bench_fig12
);
criterion_main!(figures);
