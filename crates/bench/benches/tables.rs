//! One Criterion group per paper table.

use bcache_bench::BENCH_RECORDS;
use criterion::{criterion_group, criterion_main, Criterion};
use harness::run::{run_bcache_pd_stats, RunLength, Side};
use harness::{balance, tables};
use power_model::{table1_rows, table2};
use std::hint::black_box;
use trace_gen::profiles;

fn len() -> RunLength {
    RunLength::with_records(BENCH_RECORDS)
}

fn bench_tab1(c: &mut Criterion) {
    c.benchmark_group("tab1")
        .bench_function("decoder-timing-rows", |b| {
            b.iter(|| black_box(table1_rows()))
        })
        .bench_function("render", |b| b.iter(|| black_box(tables::render_table1())));
}

fn bench_tab2(c: &mut Criterion) {
    use bcache_core::BCacheParams;
    use cache_sim::CacheGeometry;
    let params =
        BCacheParams::paper_default(CacheGeometry::new(16 * 1024, 32, 1).unwrap()).unwrap();
    c.benchmark_group("tab2")
        .bench_function("storage-cost", |b| b.iter(|| black_box(table2(&params))))
        .bench_function("render", |b| b.iter(|| black_box(tables::render_table2())));
}

fn bench_tab3(c: &mut Criterion) {
    c.benchmark_group("tab3")
        .bench_function("energy-breakdowns", |b| {
            b.iter(|| black_box(tables::table3_breakdowns()))
        })
        .bench_function("render", |b| b.iter(|| black_box(tables::render_table3())));
}

fn bench_tab4(c: &mut Criterion) {
    c.benchmark_group("tab4")
        .bench_function("render", |b| b.iter(|| black_box(tables::render_table4())));
}

fn bench_tab5_tab6(c: &mut Criterion) {
    // The MF x BAS design-space grid; one representative cell per
    // iteration (the full grid is 8 cells x 26 benchmarks).
    let mut g = c.benchmark_group("tab5-tab6");
    g.sample_size(10);
    for (mf, bas) in [(8usize, 8usize), (16, 4)] {
        let profile = profiles::by_name("twolf").unwrap();
        g.bench_function(format!("cell-MF{mf}-BAS{bas}"), |b| {
            b.iter(|| {
                black_box(run_bcache_pd_stats(
                    &profile,
                    mf,
                    bas,
                    16 * 1024,
                    Side::Data,
                    len(),
                ))
            })
        });
    }
    g.finish();
}

fn bench_tab7(c: &mut Criterion) {
    let mut g = c.benchmark_group("tab7");
    g.sample_size(10);
    g.bench_function("balance-equake", |b| {
        b.iter(|| {
            // One benchmark's baseline-vs-B-Cache balance classification.
            let rows = balance::table7(RunLength::with_records(2_000));
            black_box(rows)
        })
    });
    g.finish();
}

criterion_group!(
    tables_group,
    bench_tab1,
    bench_tab2,
    bench_tab3,
    bench_tab4,
    bench_tab5_tab6,
    bench_tab7
);
criterion_main!(tables_group);
