//! Command-line plumbing for the telemetry subsystem: the shared
//! `--metrics <path>` / `--trace-events <path>` flags, metric-file
//! writers, and the per-set-usage histogram builder the `run` and
//! `stats` reports share.
//!
//! The flags are stripped from the argument list *before* each
//! subcommand's own option parser runs, so `RunOptions`, `BenchOptions`
//! and `FuzzOptions` stay untouched (and `Copy`).

use std::io;

use cache_sim::SetUsage;
use telemetry::{EventRing, Histogram, Recorder};

/// The telemetry output destinations requested on the command line.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetryFlags {
    /// `--metrics <path>`: write the merged [`Recorder`] as JSON.
    pub metrics: Option<String>,
    /// `--trace-events <path>`: write an [`EventRing`] as JSON Lines.
    pub trace_events: Option<String>,
}

impl TelemetryFlags {
    /// Removes `--metrics <path>` and `--trace-events <path>` from
    /// `args`, returning the requested destinations. Every other
    /// argument is left in place (and in order) for the subcommand's
    /// own parser.
    ///
    /// Scanning stops at a `--` terminator, and a token that is the
    /// *value* of another path/name-taking option (`--out --metrics`
    /// names a file literally called `--metrics`) is skipped, not
    /// stripped — the earlier greedy scan consumed both shapes.
    ///
    /// # Errors
    ///
    /// Returns a message if either flag is missing its path argument.
    pub fn extract(args: &mut Vec<String>) -> Result<TelemetryFlags, String> {
        // Options (of any subcommand parser) whose next token is a
        // value, which must therefore never be interpreted as a
        // telemetry flag.
        const VALUE_OPTS: &[&str] = &[
            "--records",
            "--warmup",
            "--seed",
            "--jobs",
            "--bench",
            "--side",
            "--out",
            "--baseline",
            "--iters",
            "--scenario",
            "--retries",
            "--backoff-ms",
            "--job-timeout-ms",
            "--inject-fault",
            "--checkpoint",
            "--resume",
            "--model",
            "--benchmark",
            "--window",
            "--event-ring-cap",
            "--addr",
            "--queue-cap",
            "--outbuf-cap",
            "--workers",
            "--connections",
            "--requests",
        ];
        let mut flags = TelemetryFlags::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--" => break,
                "--metrics" => {
                    if i + 1 >= args.len() {
                        return Err("--metrics needs a path argument".into());
                    }
                    flags.metrics = Some(args.remove(i + 1));
                    args.remove(i);
                }
                "--trace-events" => {
                    if i + 1 >= args.len() {
                        return Err("--trace-events needs a path argument".into());
                    }
                    flags.trace_events = Some(args.remove(i + 1));
                    args.remove(i);
                }
                opt if VALUE_OPTS.contains(&opt) => i += 2,
                _ => i += 1,
            }
        }
        Ok(flags)
    }

    /// Whether any telemetry output was requested.
    pub fn any(&self) -> bool {
        self.metrics.is_some() || self.trace_events.is_some()
    }
}

/// Writes `rec` to `path` as JSON. `include_timing` controls whether
/// the wall-clock `timing` section (non-deterministic by nature) is
/// part of the file; the determinism golden test writes without it.
pub fn write_metrics(path: &str, rec: &Recorder, include_timing: bool) -> io::Result<()> {
    std::fs::write(path, rec.to_json(include_timing))
}

/// Writes `ring` to `path` as JSON Lines (header line with
/// capacity/pushed/dropped, then one event object per line).
pub fn write_events(path: &str, ring: &EventRing) -> io::Result<()> {
    std::fs::write(path, ring.to_jsonl())
}

/// Renders the degraded-run summary appended to `run`/`stats`/figure
/// reports when any job attempt failed: how many failures of each kind,
/// how many jobs recovered via retry. Results above the line are still
/// exact — retried jobs are pure, so a recovered run is byte-identical
/// to a clean one.
pub fn degraded_summary(metrics: &Recorder) -> String {
    let v = |k: &str| metrics.counter_value(k);
    format!(
        "\nDEGRADED RUN: {} job failure(s) ({} panic, {} timeout, {} corrupt); \
         {} job(s) recovered via retry. Results are exact (retried jobs are pure).\n",
        v("engine.job_failures"),
        v("engine.job_panics"),
        v("engine.job_timeouts"),
        v("engine.job_corrupt_results"),
        v("engine.jobs_recovered"),
    )
}

/// Builds the log2 histogram of per-set access counts — the
/// set-pressure distribution behind the paper's balance argument
/// (Table 7): a direct-mapped cache shows a wide spread (hot sets many
/// buckets above cold ones), a balanced cache concentrates every set
/// into a few adjacent buckets.
pub fn usage_histogram(usage: &SetUsage) -> Histogram {
    let mut h = Histogram::new();
    for set in 0..usage.sets() {
        h.record(usage.accesses(set));
    }
    h
}

/// Records one model's post-replay aggregates into `rec` under
/// `prefix`: access/miss/writeback counters plus the per-set usage
/// histogram when the model tracks one.
pub fn record_model(rec: &mut Recorder, prefix: &str, model: &dyn cache_sim::CacheModel) {
    let total = model.stats().total();
    rec.counter(&format!("{prefix}.accesses"), total.accesses());
    rec.counter(&format!("{prefix}.misses"), total.misses());
    rec.counter(&format!("{prefix}.writebacks"), model.stats().writebacks());
    if let Some(usage) = model.set_usage() {
        for set in 0..usage.sets() {
            rec.observe(&format!("{prefix}.set_accesses"), usage.accesses(set));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn extract_strips_only_telemetry_flags() {
        let mut a = args(&[
            "--records",
            "500",
            "--metrics",
            "m.json",
            "--jobs",
            "2",
            "--trace-events",
            "e.jsonl",
        ]);
        let f = TelemetryFlags::extract(&mut a).unwrap();
        assert_eq!(f.metrics.as_deref(), Some("m.json"));
        assert_eq!(f.trace_events.as_deref(), Some("e.jsonl"));
        assert!(f.any());
        assert_eq!(a, args(&["--records", "500", "--jobs", "2"]));
    }

    #[test]
    fn extract_without_flags_is_identity() {
        let mut a = args(&["--records", "500"]);
        let f = TelemetryFlags::extract(&mut a).unwrap();
        assert!(!f.any());
        assert_eq!(a, args(&["--records", "500"]));
    }

    #[test]
    fn extract_rejects_missing_paths() {
        assert!(TelemetryFlags::extract(&mut args(&["--metrics"])).is_err());
        assert!(TelemetryFlags::extract(&mut args(&["--records", "5", "--trace-events"])).is_err());
    }

    #[test]
    fn extract_stops_at_double_dash() {
        // Everything after `--` belongs to the subcommand verbatim.
        let mut a = args(&["--records", "500", "--", "--metrics", "m.json"]);
        let f = TelemetryFlags::extract(&mut a).unwrap();
        assert!(!f.any());
        assert_eq!(a, args(&["--records", "500", "--", "--metrics", "m.json"]));
        // Flags before the terminator are still stripped.
        let mut a = args(&["--metrics", "m.json", "--", "--trace-events", "e.jsonl"]);
        let f = TelemetryFlags::extract(&mut a).unwrap();
        assert_eq!(f.metrics.as_deref(), Some("m.json"));
        assert!(f.trace_events.is_none());
        assert_eq!(a, args(&["--", "--trace-events", "e.jsonl"]));
    }

    #[test]
    fn extract_skips_profile_option_values() {
        // "--metrics" here is the VALUE of profile's --model /
        // --benchmark, not a telemetry flag.
        let mut a = args(&[
            "--model",
            "--metrics",
            "--benchmark",
            "--trace-events",
            "--window",
            "4096",
            "--event-ring-cap",
            "--metrics",
        ]);
        let f = TelemetryFlags::extract(&mut a).unwrap();
        assert!(!f.any());
        assert_eq!(a.len(), 8, "nothing stripped: {a:?}");
    }

    #[test]
    fn extract_skips_values_of_other_options() {
        // "--metrics" here is the VALUE of --out (a file named
        // "--metrics"), not a telemetry flag.
        let mut a = args(&["--out", "--metrics", "--jobs", "2"]);
        let f = TelemetryFlags::extract(&mut a).unwrap();
        assert!(!f.any());
        assert_eq!(a, args(&["--out", "--metrics", "--jobs", "2"]));
        // Same for a benchmark name and a checkpoint path.
        let mut a = args(&[
            "--bench",
            "--trace-events",
            "--checkpoint",
            "--metrics",
            "--metrics",
            "m.json",
        ]);
        let f = TelemetryFlags::extract(&mut a).unwrap();
        assert_eq!(f.metrics.as_deref(), Some("m.json"));
        assert!(f.trace_events.is_none());
        assert_eq!(
            a,
            args(&["--bench", "--trace-events", "--checkpoint", "--metrics"])
        );
    }

    #[test]
    fn extract_leaves_oracle_and_fuzz_flags_for_their_parsers() {
        // The oracle subcommand's value-free flags pass through
        // untouched, with telemetry flags interleaved among them.
        let mut a = args(&["--smoke", "--metrics", "m.json", "--csv", "--seed", "7"]);
        let f = TelemetryFlags::extract(&mut a).unwrap();
        assert_eq!(f.metrics.as_deref(), Some("m.json"));
        assert_eq!(a, args(&["--smoke", "--csv", "--seed", "7"]));
        // "--metrics" as the VALUE of fuzz's --scenario names a scenario
        // literally called "--metrics"; it must be skipped, not stripped.
        let mut a = args(&["--scenario", "--metrics", "--iters", "50"]);
        let f = TelemetryFlags::extract(&mut a).unwrap();
        assert!(!f.any());
        assert_eq!(a, args(&["--scenario", "--metrics", "--iters", "50"]));
    }

    #[test]
    fn degraded_summary_names_every_failure_kind() {
        let mut rec = Recorder::new();
        rec.counter("engine.job_failures", 3);
        rec.counter("engine.job_panics", 1);
        rec.counter("engine.job_timeouts", 2);
        rec.counter("engine.jobs_recovered", 3);
        let s = degraded_summary(&rec);
        assert!(s.contains("3 job failure(s)"), "{s}");
        assert!(s.contains("1 panic, 2 timeout, 0 corrupt"), "{s}");
        assert!(s.contains("3 job(s) recovered"), "{s}");
    }

    #[test]
    fn usage_histogram_counts_every_set() {
        use cache_sim::{AccessKind, Addr, CacheModel, DirectMappedCache};
        let mut dm = DirectMappedCache::new(256, 32).unwrap();
        for _ in 0..10 {
            dm.access(Addr::new(0), AccessKind::Read); // set 0: 10 accesses
        }
        dm.access(Addr::new(32), AccessKind::Read); // set 1: 1 access
        let h = usage_histogram(dm.set_usage().unwrap());
        assert_eq!(h.count(), 8, "one sample per set");
        assert_eq!(h.bucket(Histogram::bucket_index(10)), 1);
        assert_eq!(h.bucket(1), 1); // the single-access set
        assert_eq!(h.bucket(0), 6); // six untouched sets
    }

    #[test]
    fn record_model_writes_counters_and_histogram() {
        use cache_sim::{AccessKind, Addr, CacheModel, DirectMappedCache};
        let mut dm = DirectMappedCache::new(256, 32).unwrap();
        dm.access(Addr::new(0), AccessKind::Write);
        dm.access(Addr::new(0), AccessKind::Read);
        let mut rec = Recorder::new();
        record_model(&mut rec, "dm", &dm);
        assert_eq!(rec.counter_value("dm.accesses"), 2);
        assert_eq!(rec.counter_value("dm.misses"), 1);
        assert_eq!(rec.histogram("dm.set_accesses").unwrap().count(), 8);
    }
}
