//! Table 7: the balance evaluation (Section 6.4) — frequent-hit sets,
//! frequent-miss sets and less-accessed sets, baseline versus B-Cache.

use bcache_core::{BCacheParams, BalancedCache};
use cache_sim::{BalanceReport, CacheGeometry, CacheModel, DirectMappedCache};
use trace_gen::profiles;

use crate::parallel::Engine;
use crate::report::{pct, TextTable};
use crate::run::{RunLength, Side, SideTrace};

/// Balance statistics of one benchmark: baseline row and B-Cache row.
#[derive(Clone, Debug, PartialEq)]
pub struct BalanceRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline direct-mapped balance classification.
    pub baseline: BalanceReport,
    /// B-Cache (MF=8, BAS=8) balance classification.
    pub bcache: BalanceReport,
}

/// Runs the Table 7 analysis over the data caches of all 26 benchmarks.
///
/// # Errors
///
/// Returns a message when the fixed Table 7 cache configuration cannot
/// be constructed (a build/configuration defect, not a data error).
pub fn table7(len: RunLength) -> Result<Vec<BalanceRow>, String> {
    table7_with(&Engine::with_default_parallelism(), len)
}

/// [`table7`] on a caller-owned [`Engine`]: one job per benchmark over
/// the shared cached traces.
///
/// # Errors
///
/// See [`table7`]. Construction errors surface as `Err` instead of a
/// worker panic so the CLI can report them cleanly.
pub fn table7_with(engine: &Engine, len: RunLength) -> Result<Vec<BalanceRow>, String> {
    let benchmarks = profiles::all();
    let jobs: Vec<_> = benchmarks
        .iter()
        .map(|p| move || balance_on(p.name, &engine.side_trace(p, len, Side::Data)))
        .collect();
    engine.run(jobs).into_iter().collect()
}

fn balance_on(benchmark: &str, trace: &SideTrace) -> Result<BalanceRow, String> {
    let geom = CacheGeometry::new(16 * 1024, 32, 1)
        .map_err(|e| format!("table 7 geometry (16 kB, 32 B lines, direct-mapped): {e}"))?;
    let mut dm = DirectMappedCache::from_geometry(geom)
        .map_err(|e| format!("table 7 direct-mapped baseline: {e}"))?;
    let params = BCacheParams::paper_default(geom)
        .map_err(|e| format!("table 7 B-Cache design point (MF=8, BAS=8): {e}"))?;
    let mut bc = BalancedCache::new(params);
    {
        let mut models: [&mut dyn CacheModel; 2] = [&mut dm, &mut bc];
        trace.replay_into(&mut models);
    }
    Ok(BalanceRow {
        benchmark: benchmark.to_string(),
        baseline: dm
            .set_usage()
            .ok_or("table 7 baseline reports no set usage")?
            .balance(),
        bcache: bc
            .set_usage()
            .ok_or("table 7 B-Cache reports no set usage")?
            .balance(),
    })
}

/// Averages the six balance statistics over rows.
pub fn average(rows: &[BalanceRow], pick: impl Fn(&BalanceRow) -> BalanceReport) -> BalanceReport {
    let n = rows.len().max(1) as f64;
    let mut sum = BalanceReport::default();
    for r in rows {
        let b = pick(r);
        sum.frequent_hit_sets += b.frequent_hit_sets;
        sum.hits_in_frequent_hit_sets += b.hits_in_frequent_hit_sets;
        sum.frequent_miss_sets += b.frequent_miss_sets;
        sum.misses_in_frequent_miss_sets += b.misses_in_frequent_miss_sets;
        sum.less_accessed_sets += b.less_accessed_sets;
        sum.accesses_in_less_accessed_sets += b.accesses_in_less_accessed_sets;
    }
    BalanceReport {
        frequent_hit_sets: sum.frequent_hit_sets / n,
        hits_in_frequent_hit_sets: sum.hits_in_frequent_hit_sets / n,
        frequent_miss_sets: sum.frequent_miss_sets / n,
        misses_in_frequent_miss_sets: sum.misses_in_frequent_miss_sets / n,
        less_accessed_sets: sum.less_accessed_sets / n,
        accesses_in_less_accessed_sets: sum.accesses_in_less_accessed_sets / n,
    }
}

/// Renders Table 7.
pub fn render_table7(rows: &[BalanceRow]) -> String {
    let mut t = TextTable::new(vec![
        "benchmark",
        "",
        "fhs",
        "ch",
        "fms",
        "cm",
        "las",
        "tca",
    ]);
    let mut add = |name: &str, which: &str, b: &BalanceReport| {
        t.row(vec![
            name.to_string(),
            which.to_string(),
            pct(b.frequent_hit_sets),
            pct(b.hits_in_frequent_hit_sets),
            pct(b.frequent_miss_sets),
            pct(b.misses_in_frequent_miss_sets),
            pct(b.less_accessed_sets),
            pct(b.accesses_in_less_accessed_sets),
        ]);
    };
    for r in rows {
        add(&r.benchmark, "dm", &r.baseline);
        add("", "bc", &r.bcache);
    }
    add("Ave", "dm", &average(rows, |r| r.baseline));
    add("", "bc", &average(rows, |r| r.bcache));
    format!(
        "Table 7: data-cache memory access behaviour (fhs: frequent-hit sets; ch: hits therein;\n\
         fms: frequent-miss sets; cm: misses therein; las: less-accessed sets; tca: accesses therein)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_gen::{Trace, TraceRecord};

    fn balance_for(profile: &trace_gen::BenchmarkProfile, len: RunLength) -> BalanceRow {
        let records: Vec<TraceRecord> = Trace::new(profile, len.seed)
            .take(len.records as usize)
            .collect();
        balance_on(
            profile.name,
            &SideTrace::extract(records, Side::Data, len.warmup),
        )
        .unwrap()
    }

    #[test]
    fn bcache_balances_the_conflict_heavy_benchmarks() {
        let p = profiles::by_name("equake").unwrap();
        let r = balance_for(&p, RunLength::with_records(120_000));
        // Section 6.4's three trends:
        // misses concentrate less in frequent-miss sets…
        assert!(
            r.bcache.misses_in_frequent_miss_sets < r.baseline.misses_in_frequent_miss_sets,
            "dm {} vs bc {}",
            r.baseline.misses_in_frequent_miss_sets,
            r.bcache.misses_in_frequent_miss_sets
        );
        // …and hits spread across more sets.
        assert!(r.bcache.hits_in_frequent_hit_sets <= r.baseline.hits_in_frequent_hit_sets + 0.05);
    }

    #[test]
    fn capacity_benchmarks_have_no_frequent_miss_sets() {
        // Table 7's observation for art/lucas/swim/mcf: misses fall
        // evenly on all sets.
        for name in ["art", "swim"] {
            let p = profiles::by_name(name).unwrap();
            let r = balance_for(&p, RunLength::with_records(100_000));
            assert!(
                r.baseline.misses_in_frequent_miss_sets < 0.2,
                "{name}: {:?}",
                r.baseline
            );
        }
    }

    #[test]
    fn render_includes_averages() {
        let p = profiles::by_name("gzip").unwrap();
        let rows = vec![balance_for(&p, RunLength::with_records(50_000))];
        let s = render_table7(&rows);
        assert!(s.contains("Ave"));
        assert!(s.contains("gzip"));
    }

    #[test]
    fn average_is_componentwise_mean() {
        let a = BalanceReport {
            frequent_hit_sets: 0.2,
            hits_in_frequent_hit_sets: 0.4,
            frequent_miss_sets: 0.1,
            misses_in_frequent_miss_sets: 0.3,
            less_accessed_sets: 0.5,
            accesses_in_less_accessed_sets: 0.2,
        };
        let b = BalanceReport::default();
        let rows = vec![
            BalanceRow {
                benchmark: "x".into(),
                baseline: a,
                bcache: b,
            },
            BalanceRow {
                benchmark: "y".into(),
                baseline: b,
                bcache: a,
            },
        ];
        let avg = average(&rows, |r| r.baseline);
        assert!((avg.frequent_hit_sets - 0.1).abs() < 1e-12);
        assert!((avg.less_accessed_sets - 0.25).abs() < 1e-12);
    }
}
