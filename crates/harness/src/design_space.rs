//! Tables 5 and 6: the MF × BAS × PD-length design space (Section 6.3).
//!
//! For a fixed PD length `log2(MF) + log2(BAS)`, two designs compete:
//! more clusters (high BAS, design A) or stronger address thinning (high
//! MF, design B). The paper's finding: below a 6-bit PD, design B wins
//! because its lower PD hit rate lets the replacement policy act; at 6
//! bits both rates are low and the extra clusters win — hence the chosen
//! MF = 8, BAS = 8.

use trace_gen::profiles;

use crate::config::CacheConfig;
use crate::parallel::Engine;
use crate::report::{pct, TextTable};
use crate::run::{mean, replay_bcache_pd_on, replay_config_on, RunLength, Side};

/// One grid cell of Tables 5 and 6.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct DesignPoint {
    /// Mapping factor.
    pub mf: usize,
    /// B-Cache associativity.
    pub bas: usize,
    /// PD length in bits (`log2(MF) + log2(BAS)`).
    pub pd_bits: u32,
    /// Average D$ miss-rate reduction over the suite.
    pub avg_reduction: f64,
    /// Average PD hit rate during misses over the suite.
    pub avg_pd_hit_rate: f64,
}

/// Runs the MF × BAS grid: MF in {2, 4, 8, 16}, BAS in {4, 8}, averaged
/// over all 26 benchmarks' data caches.
pub fn design_space_grid(len: RunLength) -> Vec<DesignPoint> {
    design_space_grid_with(&Engine::with_default_parallelism(), len)
}

/// [`design_space_grid`] on a caller-owned [`Engine`].
///
/// The baseline is replayed once per benchmark and reused by every grid
/// cell (the serial version recomputed it per cell — 8× the same
/// direct-mapped run); both stages shard per benchmark.
pub fn design_space_grid_with(engine: &Engine, len: RunLength) -> Vec<DesignPoint> {
    let benchmarks = profiles::all();
    let base_jobs: Vec<_> = benchmarks
        .iter()
        .map(|p| {
            move || {
                let trace = engine.side_trace(p, len, Side::Data);
                replay_config_on(
                    p.name,
                    &trace,
                    &CacheConfig::DirectMapped,
                    16 * 1024,
                    Side::Data,
                    len,
                )
            }
        })
        .collect();
    let baselines = engine.run(base_jobs);

    let cells: Vec<(usize, usize)> = [4usize, 8]
        .iter()
        .flat_map(|&bas| [2usize, 4, 8, 16].map(|mf| (mf, bas)))
        .collect();
    let jobs: Vec<_> = cells
        .iter()
        .flat_map(|&(mf, bas)| {
            benchmarks.iter().map(move |p| {
                move || {
                    let trace = engine.side_trace(p, len, Side::Data);
                    replay_bcache_pd_on(&trace, mf, bas, 16 * 1024)
                }
            })
        })
        .collect();
    let outcomes = engine.run(jobs);

    cells
        .iter()
        .zip(outcomes.chunks(benchmarks.len()))
        .map(|(&(mf, bas), chunk)| {
            let per_bench: Vec<(f64, f64)> = chunk
                .iter()
                .zip(&baselines)
                .map(|(o, &base)| {
                    let reduction = if base == 0.0 {
                        0.0
                    } else {
                        1.0 - o.miss_rate / base
                    };
                    (reduction, o.pd_hit_rate_on_miss)
                })
                .collect();
            DesignPoint {
                mf,
                bas,
                pd_bits: (mf as f64).log2() as u32 + (bas as f64).log2() as u32,
                avg_reduction: mean(&per_bench, |o| o.0),
                avg_pd_hit_rate: mean(&per_bench, |o| o.1),
            }
        })
        .collect()
}

/// Renders Table 5 (miss-rate reductions) and Table 6 (PD hit rates)
/// from a grid.
pub fn render_tables_5_and_6(points: &[DesignPoint]) -> String {
    let mfs = [2usize, 4, 8, 16];
    let mut t5 = TextTable::new(vec!["", "MF=2", "MF=4", "MF=8", "MF=16", "PD bits"]);
    let mut t6 = TextTable::new(vec!["", "MF=2", "MF=4", "MF=8", "MF=16"]);
    for bas in [4usize, 8] {
        let row: Vec<&DesignPoint> = mfs
            .iter()
            .map(|mf| {
                points
                    .iter()
                    .find(|p| p.mf == *mf && p.bas == bas)
                    .expect("grid point")
            })
            .collect();
        let mut cells5 = vec![format!("BAS = {bas}")];
        cells5.extend(row.iter().map(|p| pct(p.avg_reduction)));
        cells5.push(
            row.iter()
                .map(|p| p.pd_bits.to_string())
                .collect::<Vec<_>>()
                .join("/"),
        );
        t5.row(cells5);
        let mut cells6 = vec![format!("BAS = {bas}")];
        cells6.extend(row.iter().map(|p| pct(p.avg_pd_hit_rate)));
        t6.row(cells6);
    }
    format!(
        "Table 5: average D$ miss-rate reduction vs baseline at varied MF, BAS\n{}\n\
         Table 6: average PD hit rate during cache misses at varied MF, BAS\n{}",
        t5.render(),
        t6.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<DesignPoint> {
        // Small but non-trivial run; reuse across assertions.
        design_space_grid(RunLength::with_records(60_000))
    }

    #[test]
    fn pd_hit_rate_falls_as_mf_grows() {
        // Table 6's monotone trend: a larger MF thins the address mapping
        // and the PD hits less often during misses.
        let points = grid();
        for bas in [4usize, 8] {
            let series: Vec<f64> = [2usize, 4, 8, 16]
                .iter()
                .map(|mf| {
                    points
                        .iter()
                        .find(|p| p.mf == *mf && p.bas == bas)
                        .unwrap()
                        .avg_pd_hit_rate
                })
                .collect();
            for w in series.windows(2) {
                assert!(
                    w[1] <= w[0] + 0.03,
                    "PD hit rate should fall with MF: {series:?}"
                );
            }
        }
    }

    #[test]
    fn reduction_grows_with_mf() {
        let points = grid();
        for bas in [4usize, 8] {
            let r = |mf: usize| {
                points
                    .iter()
                    .find(|p| p.mf == mf && p.bas == bas)
                    .unwrap()
                    .avg_reduction
            };
            assert!(r(8) > r(2), "BAS={bas}");
        }
    }

    #[test]
    fn six_bit_pd_favors_more_clusters() {
        // Section 6.3: at PD = 6 bits, design A (MF=8, BAS=8) beats
        // design B (MF=16, BAS=4).
        let points = grid();
        let a = points.iter().find(|p| p.mf == 8 && p.bas == 8).unwrap();
        let b = points.iter().find(|p| p.mf == 16 && p.bas == 4).unwrap();
        assert_eq!(a.pd_bits, 6);
        assert_eq!(b.pd_bits, 6);
        assert!(
            a.avg_reduction > b.avg_reduction,
            "design A {} vs design B {}",
            a.avg_reduction,
            b.avg_reduction
        );
    }

    #[test]
    fn rendering_contains_both_tables() {
        let s = render_tables_5_and_6(&grid());
        assert!(s.contains("Table 5") && s.contains("Table 6"));
        assert!(s.contains("BAS = 4") && s.contains("BAS = 8"));
    }
}
