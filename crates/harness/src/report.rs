//! Plain-text table rendering for the experiment harness.

/// A simple fixed-width table printer.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table as CSV (header + rows, comma-separated; cells
    /// containing commas or quotes are quoted).
    pub fn render_csv(&self) -> String {
        let escape = |c: &String| -> String {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.header.iter().map(escape).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(escape).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a fraction as a percentage with two decimals (for miss rates).
pub fn pct2(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["bench", "value"]);
        t.row(vec!["a", "1.0"]);
        t.row(vec!["longer-name", "2.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("bench"));
        assert!(lines[3].contains("longer-name"));
        // All data lines have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        TextTable::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(pct(0.645), "64.5%");
        assert_eq!(pct2(0.0912), "9.12%");
    }

    #[test]
    fn csv_rendering_escapes_and_joins() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["plain", "has,comma"]);
        t.row(vec!["has\"quote", "x"]);
        let csv = t.render_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "a,b");
        assert_eq!(lines[1], "plain,\"has,comma\"");
        assert_eq!(lines[2], "\"has\"\"quote\",x");
    }
}
