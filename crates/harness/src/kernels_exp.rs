//! Program-derived validation: replay the VM kernel suite (real
//! algorithms executed by `trace-gen`'s register machine) against the
//! paper's cache configurations.
//!
//! The statistical SPEC2K profiles drive the headline figures; this
//! experiment cross-checks the same orderings on traces that come from
//! actual program semantics — in particular `conflict_copy`, the
//! programmatic version of the paper's Figure 1 thrash example.

use cache_sim::{AccessKind, Addr, CacheModel};
use trace_gen::kernels::{run_kernel, suite};
use trace_gen::Op;

use crate::config::CacheConfig;
use crate::parallel::Engine;
use crate::report::{pct, pct2, TextTable};

/// One kernel's miss rates across configurations.
#[derive(Clone, Debug, PartialEq)]
pub struct KernelResult {
    /// Kernel name.
    pub kernel: String,
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Baseline (direct-mapped) D$ miss rate.
    pub baseline_miss_rate: f64,
    /// `(label, miss rate)` per comparison configuration.
    pub outcomes: Vec<(String, f64)>,
}

impl KernelResult {
    /// Miss-rate reduction of configuration `i` versus the baseline.
    pub fn reduction(&self, i: usize) -> f64 {
        if self.baseline_miss_rate == 0.0 {
            0.0
        } else {
            1.0 - self.outcomes[i].1 / self.baseline_miss_rate
        }
    }
}

/// The configurations compared by the kernel experiment.
pub fn kernel_configs() -> Vec<CacheConfig> {
    vec![
        CacheConfig::SetAssoc(2),
        CacheConfig::SetAssoc(4),
        CacheConfig::SetAssoc(8),
        CacheConfig::Victim(16),
        CacheConfig::BCache { mf: 8, bas: 8 },
    ]
}

/// Runs every kernel in the suite against the baseline plus
/// [`kernel_configs`], feeding the data side of the trace.
pub fn run_kernels(fuel: u64) -> Vec<KernelResult> {
    run_kernels_with(&Engine::with_default_parallelism(), fuel)
}

/// [`run_kernels`] on a caller-owned [`Engine`]: one job per kernel
/// (each job executes the kernel's VM program, then replays its trace
/// into every configuration in one pass).
pub fn run_kernels_with(engine: &Engine, fuel: u64) -> Vec<KernelResult> {
    let kernels = suite();
    let jobs: Vec<_> = kernels
        .iter()
        .map(|k| move || run_one_kernel(k, fuel))
        .collect();
    engine.run(jobs)
}

fn run_one_kernel(k: &trace_gen::kernels::Kernel, fuel: u64) -> KernelResult {
    let configs = kernel_configs();
    let (m, trace) = run_kernel(k, fuel);
    debug_assert!(m.halted() || m.executed() == fuel);
    let mut baseline = CacheConfig::DirectMapped.build(16 * 1024, 1).unwrap();
    let mut models: Vec<Box<dyn CacheModel>> = configs
        .iter()
        .map(|c| c.build(16 * 1024, 1).unwrap())
        .collect();
    for r in &trace {
        if let Some(a) = r.op.data_addr() {
            let kind = if matches!(r.op, Op::Store(_)) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            baseline.access(Addr::new(a), kind);
            for model in models.iter_mut() {
                model.access(Addr::new(a), kind);
            }
        }
    }
    KernelResult {
        kernel: k.name.to_string(),
        instructions: m.executed(),
        baseline_miss_rate: baseline.stats().miss_rate(),
        outcomes: configs
            .iter()
            .zip(&models)
            .map(|(c, m)| (c.label(), m.stats().miss_rate()))
            .collect(),
    }
}

/// Renders the kernel-suite table.
pub fn render_kernels(results: &[KernelResult]) -> String {
    let mut header = vec![
        "kernel".to_string(),
        "instrs".to_string(),
        "dm-miss".to_string(),
    ];
    header.extend(results[0].outcomes.iter().map(|(l, _)| l.clone()));
    let mut t = TextTable::new(header);
    for r in results {
        let mut cells = vec![
            r.kernel.clone(),
            r.instructions.to_string(),
            pct2(r.baseline_miss_rate),
        ];
        cells.extend((0..r.outcomes.len()).map(|i| pct(r.reduction(i))));
        t.row(cells);
    }
    format!(
        "Kernel suite (VM-executed programs): D$ miss-rate reductions vs direct-mapped, 16 kB\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_copy_reproduces_figure1_on_a_real_program() {
        let results = run_kernels(3_000_000);
        let cc = results
            .iter()
            .find(|r| r.kernel == "conflict_copy")
            .expect("kernel exists");
        assert!(
            cc.baseline_miss_rate > 0.15,
            "DM must thrash: {}",
            cc.baseline_miss_rate
        );
        let col = |label: &str| {
            cc.outcomes
                .iter()
                .position(|(l, _)| l == label)
                .expect("config present")
        };
        // Six conflicting arrays: 8-way and the B-Cache absorb them;
        // 2-way and 4-way cannot.
        assert!(cc.reduction(col("8way")) > 0.8, "{:?}", cc);
        assert!(cc.reduction(col("MF8-BAS8")) > 0.8, "{:?}", cc);
        assert!(cc.reduction(col("MF8-BAS8")) > cc.reduction(col("4way")));
    }

    #[test]
    fn list_walk_is_capacity_bound() {
        let results = run_kernels(3_000_000);
        let lw = results.iter().find(|r| r.kernel == "list_walk").unwrap();
        // 4096 shuffled 16-byte nodes = 64 kB of pointer chasing: no
        // associativity saves it.
        for (i, (label, _)) in lw.outcomes.iter().enumerate() {
            assert!(lw.reduction(i) < 0.35, "{label}: {}", lw.reduction(i));
        }
    }

    #[test]
    fn render_lists_every_kernel() {
        let results = run_kernels(500_000);
        let s = render_kernels(&results);
        for name in [
            "matmul",
            "list_walk",
            "stride_sum",
            "histogram",
            "conflict_copy",
        ] {
            assert!(s.contains(name), "{s}");
        }
    }
}
