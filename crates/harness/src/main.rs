//! `bcache-repro`: regenerate any table or figure of the B-Cache paper.
//!
//! ```text
//! bcache-repro <experiment> [--records N] [--seed S] [--csv]
//!
//! experiments:
//!   fig3 fig4 fig5 fig8 fig9 fig12
//!   tab1 tab2 tab3 tab4 tab5 tab6 tab7
//!   related   (Section 7.1 comparison)
//!   hac drowsy vp   (Sections 6.7 / 6.4 / 6.8 extension analyses)
//!   kernels   (VM-executed program kernels cross-check)
//!   sweep     (victim-size sweep, cold start, L2 B-Cache extension)
//!   all       (everything, in paper order)
//! ```

use std::env;
use std::process::ExitCode;

use harness::run::RunLength;
use harness::{balance, design_space, extensions, fig3, kernels_exp, missrate, perf, sensitivity, tables};

fn usage() -> ExitCode {
    eprintln!(
        "usage: bcache-repro <experiment> [--records N] [--seed S] [--csv]\n\
         experiments: fig3 fig4 fig5 fig8 fig9 fig12 tab1 tab2 tab3 tab4 tab5 tab6 tab7 related hac drowsy vp kernels sweep all"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(experiment) = args.first().cloned() else {
        return usage();
    };

    let mut len = RunLength::default();
    let mut csv = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--records" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                let seed = len.seed;
                len = RunLength::with_records(v);
                len.seed = seed;
                i += 2;
            }
            "--csv" => {
                csv = true;
                i += 1;
            }
            "--seed" => {
                let Some(v) = args.get(i + 1).and_then(|s| s.parse::<u64>().ok()) else {
                    return usage();
                };
                len.seed = v;
                i += 2;
            }
            other => {
                eprintln!("unknown option: {other}");
                return usage();
            }
        }
    }

    match experiment.as_str() {
        "fig3" => print!("{}", fig3::figure3(len).1),
        "fig4" => {
            let (fp, int) = missrate::figure4(len);
            if csv {
                print!("{}{}", fp.render_csv(), int.render_csv());
            } else {
                print!("{}\n{}", fp.render(), int.render());
            }
        }
        "fig5" => {
            let fig = missrate::figure5(len);
            print!("{}", if csv { fig.render_csv() } else { fig.render() });
        }
        "fig8" => print!("{}", perf::render_figure8(&perf::run_perf(len))),
        "fig9" => print!("{}", perf::render_figure9(&perf::run_perf(len))),
        "fig12" => {
            for fig in missrate::figure12(len) {
                if csv {
                    print!("{}", fig.render_csv());
                } else {
                    println!("{}", fig.render());
                }
            }
        }
        "tab1" => print!("{}", tables::render_table1()),
        "tab2" => print!("{}", tables::render_table2()),
        "tab3" => print!("{}", tables::render_table3()),
        "tab4" => print!("{}", tables::render_table4()),
        "tab5" | "tab6" => {
            let grid = design_space::design_space_grid(len);
            print!("{}", design_space::render_tables_5_and_6(&grid));
        }
        "tab7" => print!("{}", balance::render_table7(&balance::table7(len))),
        "related" => {
            let fig = missrate::related_work(len);
            print!("{}", if csv { fig.render_csv() } else { fig.render() });
        }
        "sweep" => {
            let points = sensitivity::victim_sweep(len, &[2, 4, 8, 16, 32, 64]);
            print!("{}", sensitivity::render_victim_sweep(&points));
            let windows = sensitivity::cold_start("equake", 20_000, 8, len);
            print!("{}", sensitivity::render_cold_start("equake", &windows, 20_000));
            print!("{}", sensitivity::render_l2_bcache(&sensitivity::l2_bcache(len)));
        }
        "kernels" => {
            print!("{}", kernels_exp::render_kernels(&kernels_exp::run_kernels(len.records)))
        }
        "hac" => print!("{}", extensions::render_hac_comparison()),
        "drowsy" => print!("{}", extensions::render_drowsy(&extensions::drowsy_analysis(len))),
        "vp" => print!("{}", extensions::render_vp_analysis()),
        "all" => {
            print!("{}", tables::render_table4());
            let (fp, int) = missrate::figure4(len);
            print!("{}\n{}", fp.render(), int.render());
            print!("{}", missrate::figure5(len).render());
            print!("{}", fig3::figure3(len).1);
            print!("{}", tables::render_table1());
            print!("{}", tables::render_table2());
            print!("{}", tables::render_table3());
            let rows = perf::run_perf(len);
            print!("{}", perf::render_figure8(&rows));
            print!("{}", perf::render_figure9(&rows));
            let grid = design_space::design_space_grid(len);
            print!("{}", design_space::render_tables_5_and_6(&grid));
            print!("{}", balance::render_table7(&balance::table7(len)));
            for fig in missrate::figure12(len) {
                println!("{}", fig.render());
            }
            print!("{}", missrate::related_work(len).render());
            print!("{}", extensions::render_hac_comparison());
            print!("{}", extensions::render_drowsy(&extensions::drowsy_analysis(len)));
            print!("{}", extensions::render_vp_analysis());
            print!("{}", kernels_exp::render_kernels(&kernels_exp::run_kernels(len.records)));
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
