//! `bcache-repro`: regenerate any table or figure of the B-Cache paper.
//!
//! ```text
//! bcache-repro <experiment> [--records N] [--seed S] [--jobs N] [--csv]
//!
//! experiments:
//!   fig3 fig4 fig5 fig8 fig9 fig12
//!   tab1 tab2 tab3 tab4 tab5 tab6 tab7
//!   related   (Section 7.1 comparison)
//!   hac drowsy vp   (Sections 6.7 / 6.4 / 6.8 extension analyses)
//!   kernels   (VM-executed program kernels cross-check)
//!   sweep     (victim-size sweep, cold start, L2 B-Cache extension)
//!   all       (everything, in paper order)
//!
//! bcache-repro fuzz [--iters N] [--seed S] [--jobs N]
//!   differential property-fuzz of every cache model against its oracle;
//!   exits non-zero and prints a shrunk repro on any divergence
//!
//! bcache-repro bench [--records N] [--seed S] [--out PATH]
//!                    [--baseline PATH] [--smoke] [--per-access]
//!   simulator micro-benchmarks at a pinned record count, written as
//!   BENCH_repro.json rows ({model, maccesses_per_sec, records, seed,
//!   git_rev}); --smoke shortens the run and fails if direct-mapped
//!   throughput drops >20% versus the committed BENCH_baseline.json
//! ```
//!
//! `--jobs N` sets the experiment engine's worker-thread count (default:
//! available parallelism). Output is bit-identical for every `N`.

use std::env;
use std::process::ExitCode;

use harness::config::RunOptions;
use harness::{
    balance, bench, design_space, extensions, fig3, fuzz, kernels_exp, missrate, perf, sensitivity,
    tables,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: bcache-repro <experiment> [--records N] [--seed S] [--jobs N] [--csv]\n\
         experiments: fig3 fig4 fig5 fig8 fig9 fig12 tab1 tab2 tab3 tab4 tab5 tab6 tab7 related hac drowsy vp kernels sweep all\n\
         \x20      bcache-repro fuzz [--iters N] [--seed S] [--jobs N]\n\
         \x20      bcache-repro bench [--records N] [--seed S] [--out PATH] [--baseline PATH] [--smoke] [--per-access]"
    );
    ExitCode::from(2)
}

fn run_bench(args: &[String]) -> ExitCode {
    let opts = match bench::BenchOptions::parse(args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return usage();
        }
    };
    let rows = bench::run(&opts);
    print!("{}", bench::render_table(&rows));
    if let Err(e) = std::fs::write(&opts.out, bench::render_json(&rows)) {
        eprintln!("cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    println!("wrote {}", opts.out);
    if opts.smoke {
        let baseline = match std::fs::read_to_string(&opts.baseline) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", opts.baseline);
                return ExitCode::FAILURE;
            }
        };
        match bench::check_against_baseline(&rows, &baseline) {
            Ok(verdict) => println!("{verdict}"),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(experiment) = args.first().cloned() else {
        return usage();
    };
    if experiment == "fuzz" {
        let opts = match fuzz::FuzzOptions::parse(&args[1..]) {
            Ok(opts) => opts,
            Err(msg) => {
                eprintln!("{msg}");
                return usage();
            }
        };
        let report = fuzz::run(&opts);
        print!("{}", report.render());
        return if report.divergences.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if experiment == "bench" {
        return run_bench(&args[1..]);
    }
    let opts = match RunOptions::parse(&args[1..]) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("{msg}");
            return usage();
        }
    };
    let (len, csv) = (opts.len, opts.csv);
    let engine = opts.engine();

    match experiment.as_str() {
        "fig3" => print!("{}", fig3::figure3_with(&engine, len).1),
        "fig4" => {
            let (fp, int) = missrate::figure4_with(&engine, len);
            if csv {
                print!("{}{}", fp.render_csv(), int.render_csv());
            } else {
                print!("{}\n{}", fp.render(), int.render());
            }
        }
        "fig5" => {
            let fig = missrate::figure5_with(&engine, len);
            print!("{}", if csv { fig.render_csv() } else { fig.render() });
        }
        "fig8" => print!(
            "{}",
            perf::render_figure8(&perf::run_perf_with(&engine, len))
        ),
        "fig9" => print!(
            "{}",
            perf::render_figure9(&perf::run_perf_with(&engine, len))
        ),
        "fig12" => {
            for fig in missrate::figure12_with(&engine, len) {
                if csv {
                    print!("{}", fig.render_csv());
                } else {
                    println!("{}", fig.render());
                }
            }
        }
        "tab1" => print!("{}", tables::render_table1()),
        "tab2" => print!("{}", tables::render_table2()),
        "tab3" => print!("{}", tables::render_table3()),
        "tab4" => print!("{}", tables::render_table4()),
        "tab5" | "tab6" => {
            let grid = design_space::design_space_grid_with(&engine, len);
            print!("{}", design_space::render_tables_5_and_6(&grid));
        }
        "tab7" => print!(
            "{}",
            balance::render_table7(&balance::table7_with(&engine, len))
        ),
        "related" => {
            let fig = missrate::related_work_with(&engine, len);
            print!("{}", if csv { fig.render_csv() } else { fig.render() });
        }
        "sweep" => {
            let points = sensitivity::victim_sweep_with(&engine, len, &[2, 4, 8, 16, 32, 64]);
            print!("{}", sensitivity::render_victim_sweep(&points));
            let windows = sensitivity::cold_start("equake", 20_000, 8, len);
            print!(
                "{}",
                sensitivity::render_cold_start("equake", &windows, 20_000)
            );
            print!(
                "{}",
                sensitivity::render_l2_bcache(&sensitivity::l2_bcache_with(&engine, len))
            );
        }
        "kernels" => {
            print!(
                "{}",
                kernels_exp::render_kernels(&kernels_exp::run_kernels_with(&engine, len.records))
            )
        }
        "hac" => print!("{}", extensions::render_hac_comparison()),
        "drowsy" => print!(
            "{}",
            extensions::render_drowsy(&extensions::drowsy_analysis(len))
        ),
        "vp" => print!("{}", extensions::render_vp_analysis()),
        "all" => {
            print!("{}", tables::render_table4());
            let (fp, int) = missrate::figure4_with(&engine, len);
            print!("{}\n{}", fp.render(), int.render());
            print!("{}", missrate::figure5_with(&engine, len).render());
            print!("{}", fig3::figure3_with(&engine, len).1);
            print!("{}", tables::render_table1());
            print!("{}", tables::render_table2());
            print!("{}", tables::render_table3());
            let rows = perf::run_perf_with(&engine, len);
            print!("{}", perf::render_figure8(&rows));
            print!("{}", perf::render_figure9(&rows));
            let grid = design_space::design_space_grid_with(&engine, len);
            print!("{}", design_space::render_tables_5_and_6(&grid));
            print!(
                "{}",
                balance::render_table7(&balance::table7_with(&engine, len))
            );
            for fig in missrate::figure12_with(&engine, len) {
                println!("{}", fig.render());
            }
            print!("{}", missrate::related_work_with(&engine, len).render());
            print!("{}", extensions::render_hac_comparison());
            print!(
                "{}",
                extensions::render_drowsy(&extensions::drowsy_analysis(len))
            );
            print!("{}", extensions::render_vp_analysis());
            print!(
                "{}",
                kernels_exp::render_kernels(&kernels_exp::run_kernels_with(&engine, len.records))
            );
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}
