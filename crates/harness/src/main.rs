//! `bcache-repro`: regenerate any table or figure of the B-Cache paper.
//!
//! ```text
//! bcache-repro <experiment> [--records N] [--seed S] [--jobs N] [--csv]
//!
//! experiments:
//!   fig3 fig4 fig5 fig8 fig9 fig12
//!   tab1 tab2 tab3 tab4 tab5 tab6 tab7
//!   related   (Section 7.1 comparison)
//!   hac drowsy vp   (Sections 6.7 / 6.4 / 6.8 extension analyses)
//!   kernels   (VM-executed program kernels cross-check)
//!   sweep     (victim-size sweep, cold start, L2 B-Cache extension)
//!   all       (everything, in paper order)
//!
//! bcache-repro run [--bench NAME] [--side i|d] [--records N] [--seed S]
//!                  [--jobs N]
//!   telemetry replay report of one benchmark across the reference
//!   model set: per-phase wall times, per-model counters, set-pressure
//!   histograms, B-Cache PD activity
//!
//! bcache-repro stats [--records N] [--seed S] [--jobs N]
//!   set-pressure report over the eight golden benchmarks: per-set
//!   usage histograms (DM vs B-Cache MF8-BAS8) and PD churn rates
//!
//! bcache-repro fuzz [--iters N] [--seed S] [--jobs N] [--scenario NAME]
//!   differential property-fuzz of every cache model against its oracle;
//!   exits non-zero and prints a shrunk repro on any divergence;
//!   --scenario restricts the run to one scenario by name or index
//!
//! bcache-repro oracle [--seed S] [--jobs N] [--smoke] [--csv]
//!   analytical miss-rate oracle: sweeps the synthetic IRM families
//!   (uniform64k, zipf8, the adversarial birthday64) over the
//!   direct-mapped, 4-way and MF8-BAS8 models at 16 kB and checks the
//!   simulated miss rate against the closed-form expectation within a
//!   statistically justified band; exits non-zero if any cell drifts.
//!   --smoke runs one short sweep point with a widened band
//!
//! bcache-repro bench [--records N] [--seed S] [--out PATH]
//!                    [--baseline PATH] [--smoke] [--per-access]
//!   simulator micro-benchmarks at a pinned record count, written as
//!   BENCH_repro.json rows ({model, maccesses_per_sec, records, seed,
//!   git_rev, backend, lanes}); --smoke shortens the run and fails if
//!   direct-mapped throughput drops >20% versus the committed
//!   BENCH_baseline.json
//!
//! bcache-repro profile [--model NAME] [--benchmark NAME] [--side i|d]
//!                      [--records N] [--seed S] [--jobs N] [--window N]
//!                      [--out PREFIX] [--smoke]
//!   time-resolved profiling of one model on one benchmark: a windowed
//!   time series (PREFIX.jsonl + PREFIX.csv; miss rate, PD churn,
//!   writebacks, per-set heat per window), a Chrome Trace Event /
//!   Perfetto span export of the run (PREFIX.trace.json), and a phase
//!   attribution + observer-overhead report; --smoke shortens the run
//!   and fails if the windowed replay costs >5% over the plain batched
//!   replay
//!
//! bcache-repro serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//!                    [--outbuf-cap N] [--checkpoint PATH] [--resume PATH]
//!                    [--retries N] [--smoke] [--fuzz-frames]
//!   persistent multi-tenant simulation server: replay/sweep/profile
//!   jobs as line-delimited JSON over TCP, per-tenant fair scheduling
//!   with bounded queues (explicit busy rejects), incremental row
//!   streaming with bounded outbound buffers, panic isolation per job,
//!   and checkpointed sweeps that survive server restarts; --smoke and
//!   --fuzz-frames run the self-contained CI batteries
//!
//! bcache-repro loadgen [--addr HOST:PORT] [--connections N] [--requests N]
//!                      [--records N] [--seed S] [--out PATH]
//!   saturation client: N connections x a deterministic mix of job
//!   types against a serve instance (or an in-process one without
//!   --addr), reporting jobs/s and latency percentiles; --out writes a
//!   bench-schema JSON row (model serve-loadgen)
//! ```
//!
//! `run`, `stats`, `fig3`, `bench`, `fuzz` and `oracle` additionally accept
//! `--metrics <path>` (merged counters/histograms/timings as JSON) and —
//! where an event source exists (`run`, `fig3`) — `--trace-events
//! <path>` (typed B-Cache events as JSON Lines).
//!
//! `--jobs N` sets the experiment engine's worker-thread count (default:
//! available parallelism). Output is bit-identical for every `N`.
//! Diagnostics honor `BCACHE_LOG` (`off`/`error`/`warn`/`info`/`debug`,
//! default `info`).
//!
//! ## Fault tolerance
//!
//! Every experiment engine isolates job panics, retries failed jobs
//! with deterministic backoff, and timeout-flags hung jobs:
//!
//! * `--retries N` — extra attempts per job (default 2, so 3 total)
//! * `--backoff-ms MS` — base retry delay, doubling per attempt
//! * `--job-timeout-ms MS` — per-job watchdog budget (default 60 000)
//! * `--inject-fault job=K,mode=panic|hang|corrupt[,times=N]` —
//!   deterministic fault injection (repeatable; job ordinals count
//!   submissions)
//! * `--checkpoint PATH` — persist completed sweep results (JSONL),
//!   resuming from PATH if it already matches this run
//! * `--resume PATH` — resume a sweep; the checkpoint must exist and
//!   match the run's experiment/records/warmup/seed
//!
//! Checkpointing covers the sweep experiments (`fig3`, `fig4`, `fig5`,
//! `fig12`, `related`, `all`). Because retried jobs are pure, a
//! recovered or resumed run is byte-identical to an uninterrupted one;
//! failures are tallied as `engine.*` metrics and a degraded-run
//! summary in the `run`/`stats` reports.

use std::env;
use std::process::ExitCode;

use harness::config::RunOptions;
use harness::telemetry_io::{self, TelemetryFlags};
use harness::{
    balance, bench, design_space, extensions, fig3, fuzz, kernels_exp, missrate, perf, profilecmd,
    run, runcmd, sensitivity, statscmd, tables,
};
use telemetry::{tele_error, tele_info, tele_warn, EventRing, Recorder};

fn usage() -> ExitCode {
    tele_error!(
        "usage: bcache-repro <experiment> [--records N] [--seed S] [--jobs N] [--csv]\n\
         experiments: fig3 fig4 fig5 fig8 fig9 fig12 tab1 tab2 tab3 tab4 tab5 tab6 tab7 related hac drowsy vp kernels sweep all\n\
         \x20      bcache-repro run [--bench NAME] [--side i|d] [--records N] [--seed S] [--jobs N]\n\
         \x20      bcache-repro stats [--records N] [--seed S] [--jobs N]\n\
         \x20      bcache-repro fuzz [--iters N] [--seed S] [--jobs N] [--scenario NAME]\n\
         \x20      bcache-repro oracle [--seed S] [--jobs N] [--smoke] [--csv]\n\
         \x20      bcache-repro bench [--records N] [--seed S] [--out PATH] [--baseline PATH] [--smoke] [--per-access]\n\
         \x20      bcache-repro profile [--model NAME] [--benchmark NAME] [--side i|d] [--records N] [--seed S]\n\
         \x20                           [--jobs N] [--window N] [--out PREFIX] [--smoke]\n\
         \x20      bcache-repro serve [--addr HOST:PORT] [--workers N] [--queue-cap N] [--outbuf-cap N]\n\
         \x20                         [--checkpoint PATH] [--resume PATH] [--retries N] [--smoke] [--fuzz-frames]\n\
         \x20      bcache-repro loadgen [--addr HOST:PORT] [--connections N] [--requests N] [--records N]\n\
         \x20                           [--seed S] [--out PATH]\n\
         telemetry: run/stats/fig3/bench/fuzz/oracle/profile take --metrics PATH; run/fig3 take --trace-events PATH\n\
         robustness: experiments/run/stats take [--retries N] [--backoff-ms MS] [--job-timeout-ms MS]\n\
         \x20          [--inject-fault job=K,mode=panic|hang|corrupt[,times=N]];\n\
         \x20          sweeps (fig3 fig4 fig5 fig12 related all) take [--checkpoint PATH] [--resume PATH]"
    );
    ExitCode::from(2)
}

/// Writes the merged recorder (timing included — the file documents one
/// concrete invocation) and reports the outcome.
fn write_metrics_file(path: &str, rec: &Recorder) -> bool {
    match telemetry_io::write_metrics(path, rec, true) {
        Ok(()) => {
            tele_info!("wrote metrics to {path}");
            true
        }
        Err(e) => {
            tele_error!("cannot write {path}: {e}");
            false
        }
    }
}

fn write_events_file(path: &str, ring: &EventRing) -> bool {
    match telemetry_io::write_events(path, ring) {
        Ok(()) => {
            tele_info!(
                "wrote {} events to {path} ({} dropped by the ring)",
                ring.len(),
                ring.dropped()
            );
            true
        }
        Err(e) => {
            tele_error!("cannot write {path}: {e}");
            false
        }
    }
}

/// Runs `body` under `catch_unwind`, turning a permanent job failure
/// (the engine re-raises the first one after exhausting retries) into a
/// clean non-zero exit instead of an unwinding crash. When a checkpoint
/// is attached the completed jobs were already flushed, so the error
/// carries a resume hint.
fn guarded<T>(
    engine: Option<&harness::parallel::Engine>,
    body: impl FnOnce() -> T,
) -> Result<T, ExitCode> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            tele_error!(
                "experiment failed: {}",
                harness::parallel::panic_message(payload.as_ref())
            );
            if engine.is_some_and(|e| e.has_checkpoint()) {
                tele_error!(
                    "completed jobs are checkpointed; re-run with --resume <path> to \
                     replay only the remainder"
                );
            }
            Err(ExitCode::FAILURE)
        }
    }
}

/// Logs a warning if the engine degraded (failures that retries
/// absorbed) — the figures have no report section for it, so the
/// summary goes to the diagnostics stream.
fn warn_if_degraded(engine: &harness::parallel::Engine) {
    if engine.degraded() {
        let summary = telemetry_io::degraded_summary(&engine.failure_snapshot());
        tele_warn!("{}", summary.trim());
    }
}

fn run_bench(args: &[String], tele: &TelemetryFlags) -> ExitCode {
    if tele.trace_events.is_some() {
        tele_warn!("--trace-events is not supported by bench; ignoring");
    }
    let opts = match bench::BenchOptions::parse(args) {
        Ok(opts) => opts,
        Err(msg) => {
            tele_error!("{msg}");
            return usage();
        }
    };
    let mut rec = Recorder::new();
    let rows = match bench::run_recorded(&opts, &mut rec) {
        Ok(rows) => rows,
        Err(msg) => {
            tele_error!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", bench::render_table(&rows));
    if let Err(e) = std::fs::write(&opts.out, bench::render_json(&rows)) {
        tele_error!("cannot write {}: {e}", opts.out);
        return ExitCode::FAILURE;
    }
    tele_info!("wrote {}", opts.out);
    if let Some(path) = &tele.metrics {
        if !write_metrics_file(path, &rec) {
            return ExitCode::FAILURE;
        }
    }
    if opts.smoke {
        let baseline = match std::fs::read_to_string(&opts.baseline) {
            Ok(text) => text,
            Err(e) => {
                tele_error!("cannot read baseline {}: {e}", opts.baseline);
                return ExitCode::FAILURE;
            }
        };
        match bench::check_against_baseline(&rows, &baseline) {
            Ok(verdict) => println!("{verdict}"),
            Err(e) => {
                tele_error!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let Some(experiment) = args.first().cloned() else {
        return usage();
    };
    let mut tail: Vec<String> = args[1..].to_vec();
    let tele = match TelemetryFlags::extract(&mut tail) {
        Ok(tele) => tele,
        Err(msg) => {
            tele_error!("{msg}");
            return usage();
        }
    };

    if experiment == "run" {
        let opts = match runcmd::RunCmdOptions::parse(&tail) {
            Ok(opts) => opts,
            Err(msg) => {
                tele_error!("{msg}");
                return usage();
            }
        };
        if opts.setup.wants_checkpoint() {
            tele_warn!("--checkpoint/--resume apply to the sweep experiments; ignoring for run");
        }
        let out = match guarded(None, || runcmd::run_cmd(&opts, tele.trace_events.is_some())) {
            Ok(out) => out,
            Err(code) => return code,
        };
        print!("{}", out.report);
        if let Some(path) = &tele.metrics {
            if !write_metrics_file(path, &out.metrics) {
                return ExitCode::FAILURE;
            }
        }
        if let (Some(path), Some(ring)) = (&tele.trace_events, &out.events) {
            if !write_events_file(path, ring) {
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    if experiment == "stats" {
        if tele.trace_events.is_some() {
            tele_warn!("--trace-events is not supported by stats; ignoring");
        }
        let opts = match RunOptions::parse(&tail) {
            Ok(opts) => opts,
            Err(msg) => {
                tele_error!("{msg}");
                return usage();
            }
        };
        if opts.setup.wants_checkpoint() {
            tele_warn!("--checkpoint/--resume apply to the sweep experiments; ignoring for stats");
        }
        let out = match guarded(None, || statscmd::stats_cmd(&opts)) {
            Ok(out) => out,
            Err(code) => return code,
        };
        print!("{}", out.report);
        if let Some(path) = &tele.metrics {
            if !write_metrics_file(path, &out.metrics) {
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    if experiment == "fuzz" {
        if tele.trace_events.is_some() {
            tele_warn!("--trace-events is not supported by fuzz; ignoring");
        }
        let opts = match fuzz::FuzzOptions::parse(&tail) {
            Ok(opts) => opts,
            Err(msg) => {
                tele_error!("{msg}");
                return usage();
            }
        };
        let report = fuzz::run(&opts);
        print!("{}", report.render());
        if let Some(path) = &tele.metrics {
            let mut rec = Recorder::new();
            rec.counter("fuzz.cases", report.iters);
            rec.counter("fuzz.divergences", report.divergences.len() as u64);
            if !write_metrics_file(path, &rec) {
                return ExitCode::FAILURE;
            }
        }
        return if report.divergences.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if experiment == "oracle" {
        if tele.trace_events.is_some() {
            tele_warn!("--trace-events is not supported by oracle; ignoring");
        }
        let opts = match harness::oraclecmd::OracleOptions::parse(&tail) {
            Ok(opts) => opts,
            Err(msg) => {
                tele_error!("{msg}");
                return usage();
            }
        };
        let report = match guarded(None, || harness::oraclecmd::oracle_report(&opts)) {
            Ok(report) => report,
            Err(code) => return code,
        };
        print!(
            "{}",
            if opts.csv {
                report.render_csv()
            } else {
                report.render()
            }
        );
        if let Some(path) = &tele.metrics {
            let mut rec = Recorder::new();
            rec.counter("oracle.cells", report.cells.len() as u64);
            rec.counter("oracle.failures", report.failures() as u64);
            if !write_metrics_file(path, &rec) {
                return ExitCode::FAILURE;
            }
        }
        return if report.failures() == 0 {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if experiment == "bench" {
        return run_bench(&tail, &tele);
    }
    if experiment == "profile" {
        if tele.trace_events.is_some() {
            tele_warn!("--trace-events is not supported by profile (it writes PREFIX.trace.json); ignoring");
        }
        let opts = match profilecmd::ProfileOptions::parse(&tail) {
            Ok(opts) => opts,
            Err(msg) => {
                tele_error!("{msg}");
                return usage();
            }
        };
        if opts.setup.wants_checkpoint() {
            tele_warn!(
                "--checkpoint/--resume apply to the sweep experiments; ignoring for profile"
            );
        }
        let out = match guarded(None, || profilecmd::profile_cmd(&opts)) {
            Ok(out) => out,
            Err(code) => return code,
        };
        print!("{}", out.report);
        for (suffix, content) in [
            (".jsonl", &out.series_jsonl),
            (".csv", &out.series_csv),
            (".trace.json", &out.trace_json),
        ] {
            let path = format!("{}{suffix}", opts.out);
            if let Err(e) = std::fs::write(&path, content) {
                tele_error!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            tele_info!("wrote {path}");
        }
        if let Some(path) = &tele.metrics {
            if !write_metrics_file(path, &out.metrics) {
                return ExitCode::FAILURE;
            }
        }
        return if out.smoke_ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if experiment == "serve" {
        if tele.any() {
            tele_warn!("--metrics/--trace-events are not supported by serve; ignoring");
        }
        let opts = match harness::serve::ServeOptions::parse(&tail) {
            Ok(opts) => opts,
            Err(msg) => {
                tele_error!("{msg}");
                return usage();
            }
        };
        return match harness::serve::serve_cmd(opts) {
            Ok(report) => {
                print!("{report}");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                tele_error!("{msg}");
                ExitCode::FAILURE
            }
        };
    }
    if experiment == "loadgen" {
        if tele.any() {
            tele_warn!("--metrics/--trace-events are not supported by loadgen; ignoring");
        }
        let opts = match harness::serve::LoadgenOptions::parse(&tail) {
            Ok(opts) => opts,
            Err(msg) => {
                tele_error!("{msg}");
                return usage();
            }
        };
        return match harness::serve::run_loadgen(&opts) {
            Ok(report) => {
                print!("{}", report.render(&opts));
                if let Some(path) = &opts.out {
                    if let Err(e) = std::fs::write(path, report.to_bench_json(&opts)) {
                        tele_error!("cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    tele_info!("wrote {path}");
                }
                ExitCode::SUCCESS
            }
            Err(msg) => {
                tele_error!("{msg}");
                ExitCode::FAILURE
            }
        };
    }
    let opts = match RunOptions::parse(&tail) {
        Ok(opts) => opts,
        Err(msg) => {
            tele_error!("{msg}");
            return usage();
        }
    };
    let (len, csv) = (opts.len, opts.csv);
    let engine = opts.engine();
    if tele.any() && experiment != "fig3" {
        tele_warn!(
            "--metrics/--trace-events apply to run, stats, fig3, bench and fuzz; \
             ignoring for {experiment}"
        );
    }

    // Checkpointing needs jobs with stable identities, which the sweep
    // experiments provide (`run_checkpointed` scopes).
    const CHECKPOINTABLE: &[&str] = &["fig3", "fig4", "fig5", "fig12", "related", "all"];
    if opts.setup.wants_checkpoint() {
        if CHECKPOINTABLE.contains(&experiment.as_str()) {
            match opts.setup.attach_checkpoint(&engine, &experiment, len) {
                Ok(_) => tele_info!("checkpointing {experiment}"),
                Err(msg) => {
                    tele_error!("{msg}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            tele_warn!(
                "--checkpoint/--resume apply to {}; ignoring for {experiment}",
                CHECKPOINTABLE.join("/")
            );
        }
    }

    let dispatch = || {
        match experiment.as_str() {
            "fig3" => {
                if tele.any() {
                    let mut rec = Recorder::new();
                    let (_, text) = fig3::figure3_recorded(&engine, len, &mut rec);
                    print!("{text}");
                    rec.merge(&engine.timing_snapshot());
                    rec.merge(&engine.failure_snapshot());
                    if let Some(path) = &tele.metrics {
                        if !write_metrics_file(path, &rec) {
                            return ExitCode::FAILURE;
                        }
                    }
                    if let Some(path) = &tele.trace_events {
                        // The event trace documents the sweep's headline
                        // point: wupwise data side at MF = 8, BAS = 8.
                        let profile = trace_gen::profiles::by_name("wupwise")
                            .expect("wupwise profile exists");
                        let trace = engine.side_trace(&profile, len, run::Side::Data);
                        let bc = run::replay_bcache_observed(
                            &trace,
                            8,
                            8,
                            16 * 1024,
                            runcmd::EVENT_RING_CAPACITY,
                        );
                        if !write_events_file(path, bc.observer()) {
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    print!("{}", fig3::figure3_with(&engine, len).1);
                }
            }
            "fig4" => {
                let (fp, int) = missrate::figure4_with(&engine, len);
                if csv {
                    print!("{}{}", fp.render_csv(), int.render_csv());
                } else {
                    print!("{}\n{}", fp.render(), int.render());
                }
            }
            "fig5" => {
                let fig = missrate::figure5_with(&engine, len);
                print!("{}", if csv { fig.render_csv() } else { fig.render() });
            }
            "fig8" => print!(
                "{}",
                perf::render_figure8(&perf::run_perf_with(&engine, len))
            ),
            "fig9" => print!(
                "{}",
                perf::render_figure9(&perf::run_perf_with(&engine, len))
            ),
            "fig12" => {
                for fig in missrate::figure12_with(&engine, len) {
                    if csv {
                        print!("{}", fig.render_csv());
                    } else {
                        println!("{}", fig.render());
                    }
                }
            }
            "tab1" => print!("{}", tables::render_table1()),
            "tab2" => print!("{}", tables::render_table2()),
            "tab3" => print!("{}", tables::render_table3()),
            "tab4" => print!("{}", tables::render_table4()),
            "tab5" | "tab6" => {
                let grid = design_space::design_space_grid_with(&engine, len);
                print!("{}", design_space::render_tables_5_and_6(&grid));
            }
            "tab7" => match balance::table7_with(&engine, len) {
                Ok(rows) => print!("{}", balance::render_table7(&rows)),
                Err(msg) => {
                    tele_error!("{msg}");
                    return ExitCode::FAILURE;
                }
            },
            "related" => {
                let fig = missrate::related_work_with(&engine, len);
                print!("{}", if csv { fig.render_csv() } else { fig.render() });
            }
            "sweep" => {
                let points = sensitivity::victim_sweep_with(&engine, len, &[2, 4, 8, 16, 32, 64]);
                print!("{}", sensitivity::render_victim_sweep(&points));
                let windows = sensitivity::cold_start("equake", 20_000, 8, len);
                print!(
                    "{}",
                    sensitivity::render_cold_start("equake", &windows, 20_000)
                );
                print!(
                    "{}",
                    sensitivity::render_l2_bcache(&sensitivity::l2_bcache_with(&engine, len))
                );
            }
            "kernels" => {
                print!(
                    "{}",
                    kernels_exp::render_kernels(&kernels_exp::run_kernels_with(
                        &engine,
                        len.records
                    ))
                )
            }
            "hac" => print!("{}", extensions::render_hac_comparison()),
            "drowsy" => match extensions::drowsy_analysis(len) {
                Ok(rows) => print!("{}", extensions::render_drowsy(&rows)),
                Err(msg) => {
                    tele_error!("{msg}");
                    return ExitCode::FAILURE;
                }
            },
            "vp" => print!("{}", extensions::render_vp_analysis()),
            "all" => {
                print!("{}", tables::render_table4());
                let (fp, int) = missrate::figure4_with(&engine, len);
                print!("{}\n{}", fp.render(), int.render());
                print!("{}", missrate::figure5_with(&engine, len).render());
                print!("{}", fig3::figure3_with(&engine, len).1);
                print!("{}", tables::render_table1());
                print!("{}", tables::render_table2());
                print!("{}", tables::render_table3());
                let rows = perf::run_perf_with(&engine, len);
                print!("{}", perf::render_figure8(&rows));
                print!("{}", perf::render_figure9(&rows));
                let grid = design_space::design_space_grid_with(&engine, len);
                print!("{}", design_space::render_tables_5_and_6(&grid));
                match balance::table7_with(&engine, len) {
                    Ok(rows) => print!("{}", balance::render_table7(&rows)),
                    Err(msg) => {
                        tele_error!("{msg}");
                        return ExitCode::FAILURE;
                    }
                }
                for fig in missrate::figure12_with(&engine, len) {
                    println!("{}", fig.render());
                }
                print!("{}", missrate::related_work_with(&engine, len).render());
                print!("{}", extensions::render_hac_comparison());
                match extensions::drowsy_analysis(len) {
                    Ok(rows) => print!("{}", extensions::render_drowsy(&rows)),
                    Err(msg) => {
                        tele_error!("{msg}");
                        return ExitCode::FAILURE;
                    }
                }
                print!("{}", extensions::render_vp_analysis());
                print!(
                    "{}",
                    kernels_exp::render_kernels(&kernels_exp::run_kernels_with(
                        &engine,
                        len.records
                    ))
                );
            }
            _ => return usage(),
        }
        ExitCode::SUCCESS
    };
    // A job that exhausts its retries propagates out of the engine;
    // turn that into a clean failure exit (with the checkpoint already
    // flushed and a resume hint) instead of an unwinding crash.
    match guarded(Some(&engine), dispatch) {
        Ok(code) => {
            warn_if_degraded(&engine);
            code
        }
        Err(code) => code,
    }
}
