//! # harness — experiment drivers for every table and figure
//!
//! Each module regenerates one artifact of the paper's evaluation, and
//! the `bcache-repro` binary exposes them as subcommands:
//!
//! | Artifact | Module | Subcommand |
//! |---|---|---|
//! | Fig. 3 (wupwise MF sweep) | [`fig3`] | `fig3` |
//! | Fig. 4 (D$ reductions) | [`missrate`] | `fig4` |
//! | Fig. 5 (I$ reductions) | [`missrate`] | `fig5` |
//! | Fig. 8 (IPC) | [`perf`] | `fig8` |
//! | Fig. 9 (energy) | [`perf`] | `fig9` |
//! | Fig. 12 (8/32 kB) | [`missrate`] | `fig12` |
//! | Tab. 1–4 | [`tables`] | `tab1`…`tab4` |
//! | Tab. 5/6 (design space) | [`design_space`] | `tab5`, `tab6` |
//! | Tab. 7 (balance) | [`balance`] | `tab7` |
//! | §7.1 related work | [`missrate::related_work`] | `related` |
//! | Telemetry replay report | [`runcmd`] | `run` |
//! | Set-pressure report | [`statscmd`] | `stats` |
//! | Analytical oracle sweep | [`oraclecmd`] | `oracle` |
//! | Time-resolved profiling + trace export | [`profilecmd`] | `profile` |
//! | Multi-tenant simulation server | [`serve`] | `serve`, `loadgen` |
//!
//! Experiments default to 2 M trace records with a 10% warm-up prefix
//! (statistics are reset after warm-up, standing in for the paper's
//! 2 B-instruction fast-forward); `--records` rescales.
//!
//! ## Parallel execution
//!
//! Every driver shards its (benchmark × side × config) cross-product
//! into jobs and runs them on the [`parallel::Engine`] — a std-only
//! scoped-thread pool. `--jobs N` picks the worker count (default:
//! available parallelism); the output is **bit-identical for every
//! `N`** because job seeds are derived from the job identity
//! ([`parallel::job_seed`]), jobs are pure, and aggregation is
//! positional. The engine's [`parallel::TraceCache`] memoizes each
//! benchmark's per-side access stream ([`run::SideTrace`]) so the side
//! filtering runs once and every config job is pure model work; raw
//! record buffers are memoized separately for the callers that need
//! them (the CPU model, the golden-stats tests).
//! `crates/harness/tests/determinism.rs` and `tests/golden_stats.rs`
//! enforce both properties.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod balance;
pub mod bench;
pub mod checkpoint;
pub mod config;
pub mod design_space;
pub mod extensions;
pub mod fig3;
pub mod fuzz;
pub mod interleave;
pub mod kernels_exp;
pub mod missrate;
pub mod oraclecmd;
pub mod parallel;
pub mod perf;
pub mod profilecmd;
pub mod report;
pub mod run;
pub mod runcmd;
pub mod sensitivity;
pub mod serve;
pub mod statscmd;
pub mod tables;
pub mod telemetry_io;

pub use checkpoint::{Checkpoint, CheckpointMeta, CheckpointValue};
pub use config::CacheConfig;
pub use parallel::{
    default_parallelism, job_seed, Engine, FaultMode, FaultPlan, FaultSpec, RunPolicy, TraceCache,
};
pub use run::{run_bcache_pd_stats, run_miss_rates, RunLength, Side};
