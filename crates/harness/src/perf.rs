//! Whole-processor experiments: Figure 8 (IPC improvement) and Figure 9
//! (normalized memory energy), which share the same simulation runs.

use bcache_core::BCacheParams;
use cache_sim::{CacheGeometry, MemoryHierarchy};
use cpu_model::{Cpu, CpuConfig};
use power_model::{
    bcache_access_pj, block_refill_pj, conventional_access_pj, evaluate, victim_access_pj,
    EventEnergies, RunCounts,
};
use trace_gen::{profiles, Trace};

use crate::config::CacheConfig;
use crate::parallel::{job_seed, Engine};
use crate::report::{pct, TextTable};
use crate::run::{mean, RunLength, Side};

/// L1 size used by Figures 8 and 9.
const L1_BYTES: usize = 16 * 1024;

/// One configuration's simulation outcome on one benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfOutcome {
    /// Configuration label.
    pub label: String,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Event counts for the energy model.
    pub counts: RunCounts,
    /// Per-access L1 energy of this configuration (pJ).
    pub l1_access_pj: f64,
}

/// All configurations' outcomes on one benchmark (baseline first).
#[derive(Clone, Debug, PartialEq)]
pub struct PerfRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline plus comparison outcomes.
    pub outcomes: Vec<PerfOutcome>,
}

impl PerfRow {
    /// IPC improvement of configuration `i` (0 = baseline) vs baseline.
    pub fn ipc_improvement(&self, i: usize) -> f64 {
        self.outcomes[i].ipc / self.outcomes[0].ipc - 1.0
    }

    /// Normalized total memory energy per configuration (baseline = 1.0).
    pub fn normalized_energy(&self) -> Vec<f64> {
        let geom = CacheGeometry::new(L1_BYTES, 32, 1).expect("valid geometry");
        let l2_geom = CacheGeometry::new(256 * 1024, 128, 4).expect("valid geometry");
        let l2_pj = conventional_access_pj(&l2_geom).total_pj();
        let offchip_pj = 100.0 * conventional_access_pj(&geom).total_pj();
        let refill_pj = block_refill_pj(&geom);
        let runs: Vec<(RunCounts, EventEnergies)> = self
            .outcomes
            .iter()
            .map(|o| {
                (
                    o.counts,
                    EventEnergies {
                        l1_access_pj: o.l1_access_pj,
                        l2_access_pj: l2_pj,
                        l1_refill_pj: refill_pj,
                        offchip_pj,
                    },
                )
            })
            .collect();
        evaluate(&runs).into_iter().map(|r| r.normalized).collect()
    }
}

/// Per-access L1 energy for a configuration (pJ).
fn l1_energy_pj(config: &CacheConfig, l1_miss_rate: f64) -> f64 {
    let geom = |assoc: usize| CacheGeometry::new(L1_BYTES, 32, assoc).expect("valid geometry");
    match *config {
        CacheConfig::DirectMapped => conventional_access_pj(&geom(1)).total_pj(),
        CacheConfig::SetAssoc(n) => conventional_access_pj(&geom(n)).total_pj(),
        CacheConfig::Victim(entries) => {
            // Buffer probes happen on main-array misses; the overall miss
            // rate is a close lower bound for the probe rate.
            victim_access_pj(&geom(1), entries, l1_miss_rate).total_pj()
        }
        CacheConfig::BCache { mf, bas } | CacheConfig::BCacheRandom { mf, bas } => {
            let params = BCacheParams::new(geom(1), mf, bas, cache_sim::PolicyKind::Lru)
                .expect("valid B-Cache point");
            bcache_access_pj(&params).total_pj()
        }
        // Related-work configs: approximate with a same-sized 2-way
        // (column-associative and AGAC keep single-way data accesses but
        // pay extra probes; PAM reads both ways' data).
        CacheConfig::ColumnAssoc
        | CacheConfig::SkewedAssoc
        | CacheConfig::Agac
        | CacheConfig::Pam
        | CacheConfig::DiffBit => conventional_access_pj(&geom(2)).total_pj(),
        // Way halting skips most non-matching ways; its upper bound is
        // its full associativity.
        CacheConfig::WayHalting => conventional_access_pj(&geom(4)).total_pj(),
        CacheConfig::Hac => conventional_access_pj(&geom(32)).total_pj(),
    }
}

/// Runs one benchmark under one L1 configuration through the full CPU +
/// hierarchy and extracts the outcome.
pub fn run_config(
    profile: &trace_gen::BenchmarkProfile,
    config: &CacheConfig,
    len: RunLength,
) -> PerfOutcome {
    let records = Trace::new(profile, len.seed).take_buffer(len.records as usize);
    run_config_on(profile, config, &records, len)
}

/// [`run_config`] over a pre-generated record buffer (the engine path;
/// the records must come from `Trace::new(profile, len.seed)`).
fn run_config_on(
    profile: &trace_gen::BenchmarkProfile,
    config: &CacheConfig,
    records: &trace_gen::TraceBuffer,
    len: RunLength,
) -> PerfOutcome {
    // Both L1s get job-derived seeds (one per side), like every other
    // driver; only random-replacement configs consume them.
    let l1i = config
        .build(
            L1_BYTES,
            job_seed(len.seed, profile.name, Side::Instruction),
        )
        .expect("config must build");
    let l1d = config
        .build(L1_BYTES, job_seed(len.seed, profile.name, Side::Data))
        .expect("config must build");
    let hierarchy = MemoryHierarchy::new(l1i, l1d);
    let mut cpu = Cpu::new(CpuConfig::default(), hierarchy);
    let report = cpu.run(records.iter());

    let h = cpu.hierarchy();
    let l1i_stats = h.l1i().stats().total();
    let l1d_stats = h.l1d().stats().total();
    let counts = RunCounts {
        l1_accesses: l1i_stats.accesses() + l1d_stats.accesses(),
        l1_misses: l1i_stats.misses() + l1d_stats.misses(),
        l2_accesses: h.l2_accesses(),
        l2_misses: h.memory_accesses(),
        cycles: report.cycles,
    };
    let miss_rate = if counts.l1_accesses == 0 {
        0.0
    } else {
        counts.l1_misses as f64 / counts.l1_accesses as f64
    };
    PerfOutcome {
        label: config.label(),
        ipc: report.ipc(),
        counts,
        l1_access_pj: l1_energy_pj(config, miss_rate),
    }
}

/// Runs Figures 8/9's simulations: all 26 benchmarks, baseline plus the
/// five comparison configurations.
pub fn run_perf(len: RunLength) -> Vec<PerfRow> {
    run_perf_with(&Engine::with_default_parallelism(), len)
}

/// [`run_perf`] on a caller-owned [`Engine`]: one job per
/// (benchmark, configuration), all replaying the benchmark's cached
/// trace through the full CPU model.
pub fn run_perf_with(engine: &Engine, len: RunLength) -> Vec<PerfRow> {
    let mut configs = vec![CacheConfig::DirectMapped];
    configs.extend(CacheConfig::figure8_set());
    let benchmarks = profiles::all();
    let jobs: Vec<_> = benchmarks
        .iter()
        .flat_map(|p| {
            configs.iter().map(move |c| {
                move || {
                    let records = engine.trace(p, len);
                    run_config_on(p, c, &records, len)
                }
            })
        })
        .collect();
    let outcomes = engine.run(jobs);
    benchmarks
        .iter()
        .zip(outcomes.chunks(configs.len()))
        .map(|(p, chunk)| PerfRow {
            benchmark: p.name.to_string(),
            outcomes: chunk.to_vec(),
        })
        .collect()
}

/// Renders Figure 8 (IPC improvement over baseline) from perf rows.
pub fn render_figure8(rows: &[PerfRow]) -> String {
    let labels: Vec<String> = rows[0]
        .outcomes
        .iter()
        .skip(1)
        .map(|o| o.label.clone())
        .collect();
    let mut header = vec!["benchmark".to_string(), "base-IPC".to_string()];
    header.extend(labels.iter().cloned());
    let mut t = TextTable::new(header);
    for r in rows {
        let mut cells = vec![r.benchmark.clone(), format!("{:.3}", r.outcomes[0].ipc)];
        cells.extend((1..r.outcomes.len()).map(|i| pct(r.ipc_improvement(i))));
        t.row(cells);
    }
    let mut ave = vec!["Ave".to_string(), String::new()];
    ave.extend((1..rows[0].outcomes.len()).map(|i| pct(mean(rows, |r| r.ipc_improvement(i)))));
    t.row(ave);
    format!(
        "Figure 8: IPC improvement over the 16 kB direct-mapped baseline\n{}",
        t.render()
    )
}

/// Renders Figure 9 (normalized memory energy) from perf rows.
pub fn render_figure9(rows: &[PerfRow]) -> String {
    let labels: Vec<String> = rows[0].outcomes.iter().map(|o| o.label.clone()).collect();
    let mut header = vec!["benchmark".to_string()];
    header.extend(labels.iter().skip(1).cloned());
    let mut t = TextTable::new(header);
    let mut sums = vec![0.0; rows[0].outcomes.len()];
    for r in rows {
        let norm = r.normalized_energy();
        let mut cells = vec![r.benchmark.clone()];
        cells.extend(norm.iter().skip(1).map(|x| format!("{x:.3}")));
        t.row(cells);
        for (s, x) in sums.iter_mut().zip(&norm) {
            *s += x;
        }
    }
    let n = rows.len() as f64;
    let mut ave = vec!["Ave".to_string()];
    ave.extend(sums.iter().skip(1).map(|s| format!("{:.3}", s / n)));
    t.row(ave);
    format!(
        "Figure 9: total memory energy normalized to the baseline (lower is better)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunLength {
        RunLength::with_records(60_000)
    }

    #[test]
    fn bcache_improves_equake_ipc() {
        let p = profiles::by_name("equake").unwrap();
        let base = run_config(&p, &CacheConfig::DirectMapped, quick());
        let bc = run_config(&p, &CacheConfig::BCache { mf: 8, bas: 8 }, quick());
        assert!(
            bc.ipc > base.ipc * 1.03,
            "equake should gain clearly: {} vs {}",
            bc.ipc,
            base.ipc
        );
    }

    #[test]
    fn capacity_bound_mcf_is_insensitive() {
        let p = profiles::by_name("mcf").unwrap();
        let base = run_config(&p, &CacheConfig::DirectMapped, quick());
        let w8 = run_config(&p, &CacheConfig::SetAssoc(8), quick());
        let rel = (w8.ipc / base.ipc - 1.0).abs();
        assert!(rel < 0.05, "mcf IPC should barely move: {rel}");
    }

    #[test]
    fn energy_normalization_baseline_is_one() {
        let p = profiles::by_name("gzip").unwrap();
        let row = PerfRow {
            benchmark: "gzip".into(),
            outcomes: vec![
                run_config(&p, &CacheConfig::DirectMapped, quick()),
                run_config(&p, &CacheConfig::SetAssoc(8), quick()),
            ],
        };
        let norm = row.normalized_energy();
        assert!((norm[0] - 1.0).abs() < 1e-9);
        assert!(norm[1] > norm[0], "8-way burns more energy per access");
    }

    #[test]
    fn perf_outcome_counts_are_consistent() {
        let p = profiles::by_name("vpr").unwrap();
        let o = run_config(&p, &CacheConfig::DirectMapped, quick());
        assert!(o.counts.l1_accesses > 0);
        assert!(o.counts.l1_misses <= o.counts.l1_accesses);
        assert!(o.counts.cycles > 0);
        assert!(o.ipc > 0.0 && o.ipc <= 4.0);
    }

    #[test]
    fn render_contains_average_row() {
        let p = profiles::by_name("art").unwrap();
        let rows = vec![PerfRow {
            benchmark: "art".into(),
            outcomes: vec![
                run_config(&p, &CacheConfig::DirectMapped, quick()),
                run_config(&p, &CacheConfig::BCache { mf: 8, bas: 8 }, quick()),
            ],
        }];
        assert!(render_figure8(&rows).contains("Ave"));
        assert!(render_figure9(&rows).contains("Ave"));
    }
}
