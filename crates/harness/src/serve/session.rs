//! One client connection: a bounded-line reader loop, and an outbound
//! frame buffer ([`Outbox`]) drained by a dedicated writer thread.
//!
//! The outbox is the server's backpressure valve, mirroring
//! [`telemetry::EventRing`]: when a client stops reading, the writer
//! thread blocks in `write` and the buffer fills; once it holds
//! `outbuf_cap` row frames the *oldest row* is dropped (and counted)
//! to admit the new one. Control frames (`ack`/`busy`/`done`/`error`/
//! `pong`) are never dropped — a slow reader loses telemetry rows, not
//! job outcomes.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;

use super::listener::ServerShared;
use super::protocol::{
    busy_frame, error_frame, json_str_field, parse_request, pong_frame, Request, MAX_LINE_BYTES,
};
use super::scheduler::Job;

/// Recovers a poisoned lock: outbox state is a plain queue, always
/// valid between mutations (same convention as the engine's locks).
fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(|e| e.into_inner())
}

struct OutboxState {
    /// `(is_control, frame)` in send order.
    frames: VecDeque<(bool, String)>,
    /// Row frames currently queued (the bounded population).
    rows_queued: usize,
    /// Row frames dropped to the bound, cumulative for the session.
    dropped: u64,
    /// No more frames will be accepted or drained.
    closed: bool,
}

/// The bounded outbound frame buffer of one session.
#[derive(Debug)]
pub struct Outbox {
    cap: usize,
    state: Mutex<OutboxState>,
    ready: Condvar,
}

impl std::fmt::Debug for OutboxState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OutboxState")
            .field("queued", &self.frames.len())
            .field("dropped", &self.dropped)
            .field("closed", &self.closed)
            .finish()
    }
}

impl Outbox {
    /// An empty outbox admitting at most `cap` row frames (min 1).
    pub fn new(cap: usize) -> Outbox {
        Outbox {
            cap: cap.max(1),
            state: Mutex::new(OutboxState {
                frames: VecDeque::new(),
                rows_queued: 0,
                dropped: 0,
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Queues a row frame, evicting (and counting) the oldest queued
    /// row if the buffer is at capacity — the [`telemetry::EventRing`]
    /// overwrite-oldest policy. No-op after [`Outbox::close`].
    pub fn push_row(&self, frame: String) {
        let mut s = recover(self.state.lock());
        if s.closed {
            return;
        }
        if s.rows_queued >= self.cap {
            if let Some(pos) = s.frames.iter().position(|(control, _)| !control) {
                s.frames.remove(pos);
                s.rows_queued -= 1;
                s.dropped += 1;
            }
        }
        s.frames.push_back((false, frame));
        s.rows_queued += 1;
        drop(s);
        self.ready.notify_one();
    }

    /// Queues a control frame (never dropped). No-op after close.
    pub fn push_control(&self, frame: String) {
        let mut s = recover(self.state.lock());
        if s.closed {
            return;
        }
        s.frames.push_back((true, frame));
        drop(s);
        self.ready.notify_one();
    }

    /// Row frames dropped so far (session-cumulative).
    pub fn dropped(&self) -> u64 {
        recover(self.state.lock()).dropped
    }

    /// Stops accepting frames and wakes the writer to drain and exit.
    pub fn close(&self) {
        recover(self.state.lock()).closed = true;
        self.ready.notify_all();
    }

    /// Blocks for the next frame; `None` once closed and drained.
    pub fn pop(&self) -> Option<String> {
        let mut s = recover(self.state.lock());
        loop {
            if let Some((control, frame)) = s.frames.pop_front() {
                if !control {
                    s.rows_queued -= 1;
                }
                return Some(frame);
            }
            if s.closed {
                return None;
            }
            s = recover(self.ready.wait(s));
        }
    }
}

/// One bounded read from the request stream.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameRead {
    /// A complete line within [`MAX_LINE_BYTES`].
    Line(String),
    /// The line exceeded the cap; its bytes were discarded up to the
    /// next newline.
    Oversized,
}

/// Reads one newline-terminated frame without ever buffering more than
/// [`MAX_LINE_BYTES`] of it. `Ok(None)` is end-of-stream.
pub fn read_frame(reader: &mut impl BufRead) -> std::io::Result<Option<FrameRead>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let available = match reader.fill_buf() {
            Ok(b) => b,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if available.is_empty() {
            if buf.is_empty() && !oversized {
                return Ok(None);
            }
            break;
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if !oversized {
                    buf.extend_from_slice(&available[..pos]);
                }
                reader.consume(pos + 1);
                break;
            }
            None => {
                let n = available.len();
                if !oversized {
                    buf.extend_from_slice(available);
                }
                reader.consume(n);
                if buf.len() > MAX_LINE_BYTES {
                    oversized = true;
                    buf.clear();
                }
            }
        }
    }
    if oversized || buf.len() > MAX_LINE_BYTES {
        return Ok(Some(FrameRead::Oversized));
    }
    Ok(Some(FrameRead::Line(
        String::from_utf8_lossy(&buf).into_owned(),
    )))
}

/// Drains `outbox` onto the socket until the outbox closes or a write
/// fails (client gone — the outbox is closed so producers stop
/// queueing).
fn writer_loop(mut stream: TcpStream, outbox: Arc<Outbox>) {
    while let Some(mut frame) = outbox.pop() {
        frame.push('\n');
        if stream.write_all(frame.as_bytes()).is_err() {
            outbox.close();
            break;
        }
    }
}

/// Runs one session to completion: spawns the writer, then loops over
/// request frames. Every malformed input becomes an `error` frame —
/// this loop must never panic or kill the server on hostile bytes.
pub(crate) fn run_session(stream: TcpStream, shared: Arc<ServerShared>, conn_id: u64) {
    let outbox = Arc::new(Outbox::new(shared.opts.outbuf_cap));
    let writer = match stream.try_clone() {
        Ok(w) => {
            let ob = outbox.clone();
            thread::spawn(move || writer_loop(w, ob))
        }
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        match read_frame(&mut reader) {
            Err(_) | Ok(None) => break,
            Ok(Some(FrameRead::Oversized)) => {
                shared.note_protocol_error();
                outbox.push_control(error_frame(
                    None,
                    &format!("request line exceeds {MAX_LINE_BYTES} bytes"),
                ));
            }
            Ok(Some(FrameRead::Line(line))) => match parse_request(&line) {
                Err(msg) => {
                    shared.note_protocol_error();
                    let id = json_str_field(&line, "id");
                    outbox.push_control(error_frame(id.as_deref(), &msg));
                }
                Ok(Request::Ping) => outbox.push_control(pong_frame()),
                Ok(Request::Submit(request)) => {
                    let tenant = request
                        .tenant
                        .clone()
                        .unwrap_or_else(|| format!("conn-{conn_id}"));
                    let id = request.id.clone();
                    let job = Job {
                        request,
                        outbox: outbox.clone(),
                    };
                    // `submit` queues the ack itself (under the
                    // scheduler lock) so no worker can stream a row
                    // before the ack is in the outbox.
                    if let Err((queued, cap)) = shared.scheduler.submit(&tenant, job) {
                        outbox.push_control(busy_frame(&id, queued, cap));
                    }
                }
            },
        }
    }
    outbox.close();
    let _ = writer.join();
}

#[cfg(test)]
mod tests {
    use super::super::protocol::ack_frame;
    use super::*;
    use std::io::Cursor;

    #[test]
    fn outbox_drops_oldest_rows_but_never_control_frames() {
        let ob = Outbox::new(2);
        ob.push_control(ack_frame("j"));
        ob.push_row("r0".into());
        ob.push_row("r1".into());
        ob.push_row("r2".into()); // evicts r0
        ob.push_control("done".into());
        assert_eq!(ob.dropped(), 1);
        ob.close();
        let drained: Vec<String> = std::iter::from_fn(|| ob.pop()).collect();
        assert_eq!(
            drained,
            vec![ack_frame("j"), "r1".into(), "r2".into(), "done".into()]
        );
    }

    #[test]
    fn outbox_close_unblocks_and_rejects_new_frames() {
        let ob = Arc::new(Outbox::new(4));
        let ob2 = ob.clone();
        let t = thread::spawn(move || ob2.pop());
        thread::sleep(std::time::Duration::from_millis(20));
        ob.close();
        assert_eq!(t.join().unwrap(), None);
        ob.push_row("late".into());
        ob.push_control("late".into());
        assert_eq!(ob.pop(), None);
    }

    #[test]
    fn read_frame_bounds_the_line_and_recovers() {
        let long = "x".repeat(MAX_LINE_BYTES * 3);
        let input = format!("short\n{long}\nafter\n");
        let mut r = Cursor::new(input.into_bytes());
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some(FrameRead::Line("short".into()))
        );
        assert_eq!(read_frame(&mut r).unwrap(), Some(FrameRead::Oversized));
        // The oversized line was consumed exactly to its newline.
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some(FrameRead::Line("after".into()))
        );
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn read_frame_handles_eof_without_trailing_newline() {
        let mut r = Cursor::new(b"tail".to_vec());
        assert_eq!(
            read_frame(&mut r).unwrap(),
            Some(FrameRead::Line("tail".into()))
        );
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }
}
