//! `bcache-repro serve`: a crash-safe multi-tenant simulation server.
//!
//! The server accepts line-delimited JSON frames over TCP and runs
//! trace-replay, design-space sweep, and windowed-profile jobs on the
//! supervised worker pool from the `parallel` module — the same panic
//! isolation, retry policy, and checkpoint format the batch CLI uses,
//! so a served sweep survives worker panics *and* whole-server
//! restarts, and its numbers are byte-identical to the offline paths.
//!
//! Layout:
//! - [`protocol`]: wire frames (parse + build) and the hand-rolled
//!   JSON field scanners.
//! - [`session`]: one connection — bounded-line reader, outbound
//!   buffer with EventRing-style drop accounting, writer thread.
//! - [`scheduler`]: per-tenant bounded queues with round-robin
//!   draining and explicit `busy` admission rejects.
//! - [`listener`]: accept loop, worker pool, checkpoint store,
//!   lifecycle ([`Server::start`] / [`Server::shutdown`]).
//! - [`loadgen`]: the saturation client (`bcache-repro loadgen`).

pub mod listener;
pub mod loadgen;
pub mod protocol;
pub mod scheduler;
pub mod session;

use std::thread;
use std::time::Duration;

pub use listener::{ServeSummary, Server};
pub use loadgen::{run_loadgen, LoadgenOptions};

use crate::config::EngineSetup;
use crate::parallel::default_parallelism;
use loadgen::{Client, JobEnd};
use protocol::MAX_LINE_BYTES;

/// Options of the `serve` subcommand.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Per-tenant queue bound; a submit past it gets a `busy` frame.
    pub queue_cap: usize,
    /// Per-session outbound buffer bound (row frames; oldest dropped).
    pub outbuf_cap: usize,
    /// Run the self-contained smoke battery instead of serving.
    pub smoke: bool,
    /// Run the malformed-frame fuzz battery instead of serving.
    pub fuzz_frames: bool,
    /// Engine policy/fault/checkpoint flags, shared with `run`.
    pub setup: EngineSetup,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:4680".into(),
            workers: default_parallelism(),
            queue_cap: 16,
            outbuf_cap: 4096,
            smoke: false,
            fuzz_frames: false,
            setup: EngineSetup::default(),
        }
    }
}

impl ServeOptions {
    /// Parses the option tail after `serve`.
    pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<ServeOptions, String> {
        let mut opts = ServeOptions::default();
        let mut i = 0;
        while i < args.len() {
            if opts.setup.try_flag(args, &mut i)? {
                continue;
            }
            match args[i].as_ref() {
                "--addr" => {
                    opts.addr = args
                        .get(i + 1)
                        .map(|s| s.as_ref().to_string())
                        .ok_or("--addr needs an argument")?;
                    if opts.addr.is_empty() {
                        return Err("--addr must not be empty".into());
                    }
                    i += 2;
                }
                "--workers" => {
                    opts.workers = parse_nonzero(args.get(i + 1), "--workers")?;
                    i += 2;
                }
                "--queue-cap" => {
                    opts.queue_cap = parse_nonzero(args.get(i + 1), "--queue-cap")?;
                    i += 2;
                }
                "--outbuf-cap" => {
                    opts.outbuf_cap = parse_nonzero(args.get(i + 1), "--outbuf-cap")?;
                    i += 2;
                }
                "--smoke" => {
                    opts.smoke = true;
                    i += 1;
                }
                "--fuzz-frames" => {
                    opts.fuzz_frames = true;
                    i += 1;
                }
                other => return Err(format!("unknown option: {other}")),
            }
        }
        Ok(opts)
    }
}

/// Parses a flag value that must be a positive integer — the serve
/// flags where 0 would mean "a server that can do nothing" (no
/// workers, no queue slots, no outbound buffer).
fn parse_nonzero<S: AsRef<str>>(arg: Option<&S>, flag: &str) -> Result<usize, String> {
    let v = arg
        .and_then(|s| s.as_ref().parse::<usize>().ok())
        .ok_or_else(|| format!("{flag} needs an integer argument"))?;
    if v == 0 {
        return Err(format!("{flag} must be at least 1"));
    }
    Ok(v)
}

/// Entry point of the `serve` subcommand. `--smoke` and
/// `--fuzz-frames` run self-contained batteries on an in-process
/// server and return a report; otherwise the server runs in the
/// foreground until killed.
///
/// # Errors
///
/// Returns a message on invalid options, bind failure, or a failed
/// battery assertion.
pub fn serve_cmd(opts: ServeOptions) -> Result<String, String> {
    if opts.smoke {
        return smoke(opts);
    }
    if opts.fuzz_frames {
        return fuzz_frames(opts);
    }
    let server = Server::start(opts)?;
    println!("bcache-repro serve: listening on {}", server.local_addr());
    // Foreground mode: serve until the process is killed. Sweep state
    // lives in the checkpoint (if configured), so a kill is safe.
    loop {
        thread::sleep(Duration::from_secs(3600));
    }
}

/// Starts an in-process server on an ephemeral port, overriding
/// whatever `--addr` said (batteries must not collide with a real
/// deployment or need a free well-known port in CI).
fn start_ephemeral(mut opts: ServeOptions) -> Result<(Server, String), String> {
    opts.addr = "127.0.0.1:0".into();
    opts.smoke = false;
    opts.fuzz_frames = false;
    let server = Server::start(opts)?;
    let addr = server.local_addr().to_string();
    Ok((server, addr))
}

/// The CI smoke battery: a short loadgen burst plus the malformed-frame
/// checks, asserting clean shutdown and non-zero completed jobs.
fn smoke(opts: ServeOptions) -> Result<String, String> {
    let (server, addr) = start_ephemeral(opts)?;

    // A short mixed-job burst through the real client — 6 requests per
    // connection cycles through every job kind (replays, profile,
    // sweep).
    let lg = LoadgenOptions {
        addr: Some(addr.clone()),
        connections: 4,
        requests: 6,
        records: 20_000,
        ..LoadgenOptions::default()
    };
    let report = run_loadgen(&lg)?;

    // Hostile input on a fresh session must produce error frames and
    // leave the session (and server) serving.
    let malformed_errors = run_malformed_battery(&addr)?;

    let summary = server.shutdown();
    if summary.jobs_completed == 0 {
        return Err("smoke: server completed no jobs".into());
    }
    if report.jobs_ok == 0 {
        return Err("smoke: loadgen saw no completed jobs".into());
    }
    if report.jobs_failed > 0 {
        return Err(format!(
            "smoke: {} loadgen jobs failed unexpectedly",
            report.jobs_failed
        ));
    }
    if summary.protocol_errors < malformed_errors {
        return Err(format!(
            "smoke: server counted {} protocol errors, expected at least {malformed_errors}",
            summary.protocol_errors
        ));
    }
    Ok(format!(
        "SERVE SMOKE OK: {} jobs completed, {} failed, {} protocol errors handled\n{}",
        summary.jobs_completed,
        summary.jobs_failed,
        summary.protocol_errors,
        report.render(&lg)
    ))
}

/// The malformed-frame battery: every hostile input must come back as
/// an `error` frame, and the session must still answer a `ping`
/// afterwards. Returns how many error frames were provoked.
fn run_malformed_battery(addr: &str) -> Result<u64, String> {
    let mut client = Client::connect(addr)?;
    let hostile: Vec<String> = vec![
        // Truncated JSON.
        "{\"type\": \"submit\", \"id\": \"t1\", \"job\"".into(),
        // Unknown frame type.
        "{\"type\": \"warp\"}".into(),
        // Unknown job type.
        "{\"type\": \"submit\", \"id\": \"t2\", \"job\": \"divine\"}".into(),
        // Missing id.
        "{\"type\": \"submit\", \"job\": \"replay\"}".into(),
        // Binary garbage.
        String::from_utf8_lossy(&[0xff, 0xfe, 0x00, 0x41]).into_owned(),
        // Oversized line (bounded reader must discard and recover).
        "x".repeat(MAX_LINE_BYTES * 2),
        // Degenerate run length.
        "{\"type\": \"submit\", \"id\": \"t3\", \"job\": \"replay\", \"records\": 0}".into(),
    ];
    let mut errors = 0u64;
    for frame in &hostile {
        client.send(frame)?;
        let reply = client.read_frame()?;
        match protocol::json_str_field(&reply, "type").as_deref() {
            Some("error") => errors += 1,
            other => {
                return Err(format!(
                    "malformed frame {frame:?} got {other:?} reply, expected error: {reply}"
                ))
            }
        }
    }
    // The session must have survived all of it.
    client.send("{\"type\": \"ping\"}")?;
    let reply = client.read_frame()?;
    if protocol::json_str_field(&reply, "type").as_deref() != Some("pong") {
        return Err(format!("session dead after hostile frames: {reply}"));
    }
    Ok(errors)
}

/// The fuzz battery: the malformed set plus a panic-injected job, all
/// against one in-process server, asserting the server survives and a
/// normal job still completes afterwards.
fn fuzz_frames(opts: ServeOptions) -> Result<String, String> {
    let (server, addr) = start_ephemeral(opts)?;
    let errors = run_malformed_battery(&addr)?;

    // A panic-injected job must come back as a structured error frame.
    let mut client = Client::connect(&addr)?;
    let frame = "{\"type\": \"submit\", \"id\": \"boom\", \"job\": \"replay\", \
                 \"records\": 10000, \"fault\": \"panic\"}";
    let (end, _) = client.run_job(frame, "boom")?;
    if !matches!(end, JobEnd::Error(_)) {
        return Err(format!(
            "panic-injected job ended as {end:?}, expected error"
        ));
    }

    // ...and the server keeps serving normal jobs.
    let frame = "{\"type\": \"submit\", \"id\": \"ok\", \"job\": \"replay\", \
                 \"records\": 10000}";
    let (end, _) = client.run_job(frame, "ok")?;
    if !matches!(end, JobEnd::Done { .. }) {
        return Err(format!("post-panic job ended as {end:?}, expected done"));
    }

    let summary = server.shutdown();
    Ok(format!(
        "SERVE FUZZ OK: {errors} hostile frames answered with error frames, \
         panic-injected job isolated, {} jobs completed after",
        summary.jobs_completed
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_options_parse_and_reject_degenerate_values() {
        let o = ServeOptions::parse(&[
            "--addr",
            "0.0.0.0:7777",
            "--workers",
            "3",
            "--queue-cap",
            "5",
            "--outbuf-cap",
            "64",
            "--retries",
            "2",
        ])
        .unwrap();
        assert_eq!(o.addr, "0.0.0.0:7777");
        assert_eq!(o.workers, 3);
        assert_eq!(o.queue_cap, 5);
        assert_eq!(o.outbuf_cap, 64);
        assert_eq!(o.setup.policy.max_attempts, 3);

        assert!(ServeOptions::parse(&["--workers", "0"]).is_err());
        assert!(ServeOptions::parse(&["--queue-cap", "0"]).is_err());
        assert!(ServeOptions::parse(&["--outbuf-cap", "0"]).is_err());
        assert!(ServeOptions::parse(&["--addr", ""]).is_err());
        assert!(ServeOptions::parse(&["--workers"]).is_err());
        assert!(ServeOptions::parse(&["--mystery"]).is_err());
    }

    #[test]
    fn smoke_and_fuzz_flags_parse() {
        let o = ServeOptions::parse(&["--smoke"]).unwrap();
        assert!(o.smoke && !o.fuzz_frames);
        let o = ServeOptions::parse(&["--fuzz-frames"]).unwrap();
        assert!(o.fuzz_frames && !o.smoke);
    }
}
