//! The TCP listener and server lifecycle: accept loop, per-connection
//! session threads, worker pool, and the shared checkpoint store that
//! makes sweeps survive a server kill.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use super::scheduler::{self, Scheduler};
use super::session;
use super::ServeOptions;
use crate::checkpoint::{Checkpoint, CheckpointMeta};
use crate::run::RunLength;

fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(|e| e.into_inner())
}

/// State shared by the accept loop, every session, and every worker.
pub(crate) struct ServerShared {
    /// The options the server was started with.
    pub opts: ServeOptions,
    /// The admission-controlled job queue.
    pub scheduler: Scheduler,
    /// Sweep-point store (`--checkpoint`/`--resume`); `None` when the
    /// server runs without persistence.
    checkpoint: Mutex<Option<Checkpoint>>,
    /// Jobs that finished with a `done` frame.
    pub jobs_completed: AtomicU64,
    /// Jobs that finished with an `error` frame.
    pub jobs_failed: AtomicU64,
    /// Malformed frames answered with an `error` frame.
    pub protocol_errors: AtomicU64,
    /// Currently connected sessions.
    pub active_sessions: AtomicU64,
    /// Accept-loop stop flag.
    pub shutdown: AtomicBool,
    /// Connection ordinal source (default tenant identity).
    pub next_conn: AtomicU64,
}

impl ServerShared {
    /// Reads a checkpointed sweep point.
    pub fn checkpoint_get(&self, key: &str) -> Option<String> {
        recover(self.checkpoint.lock())
            .as_ref()
            .and_then(|ck| ck.get(key))
    }

    /// Persists a sweep point (flushed immediately, like the engine's
    /// checkpoint path). A write failure is reported on stderr but
    /// does not fail the job — the result still streams to the client.
    pub fn checkpoint_put(&self, key: &str, value: &str) {
        if let Some(ck) = recover(self.checkpoint.lock()).as_mut() {
            if let Err(e) = ck.put(key, value) {
                eprintln!("warning: checkpoint write failed for {key}: {e}");
            }
        }
    }

    /// Counts one malformed frame.
    pub fn note_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }
}

/// What a server observed over its lifetime, reported at shutdown.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs that completed with a `done` frame.
    pub jobs_completed: u64,
    /// Jobs that ended in an `error` frame.
    pub jobs_failed: u64,
    /// Malformed frames answered with `error` frames.
    pub protocol_errors: u64,
}

/// A running `bcache-repro serve` instance: accept thread + worker
/// pool, shut down explicitly via [`Server::shutdown`].
#[derive(Debug)]
pub struct Server {
    shared: Arc<ServerShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ServerShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerShared")
            .field(
                "jobs_completed",
                &self.jobs_completed.load(Ordering::Relaxed),
            )
            .field("jobs_failed", &self.jobs_failed.load(Ordering::Relaxed))
            .field(
                "active_sessions",
                &self.active_sessions.load(Ordering::Relaxed),
            )
            .finish()
    }
}

/// The checkpoint identity every serve checkpoint is pinned to. The
/// per-job run lengths live in the point keys, so the file-level meta
/// is a constant — any serve instance can resume any serve checkpoint.
fn serve_meta() -> CheckpointMeta {
    CheckpointMeta::new(
        "serve",
        RunLength {
            records: 0,
            warmup: 0,
            seed: 0,
        },
    )
}

impl Server {
    /// Binds `opts.addr`, opens the checkpoint (if requested), and
    /// spawns the worker pool plus the accept thread.
    ///
    /// # Errors
    ///
    /// Returns a message when the bind fails or `--resume` names a
    /// missing/mismatched checkpoint.
    pub fn start(opts: ServeOptions) -> Result<Server, String> {
        let listener =
            TcpListener::bind(&opts.addr).map_err(|e| format!("cannot bind {}: {e}", opts.addr))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("cannot poll listener: {e}"))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("no local address: {e}"))?;
        let checkpoint = if let Some(path) = &opts.setup.resume {
            Some(Checkpoint::resume(Path::new(path), serve_meta())?)
        } else if let Some(path) = &opts.setup.checkpoint {
            Some(Checkpoint::load_or_create(Path::new(path), serve_meta())?)
        } else {
            None
        };
        let shared = Arc::new(ServerShared {
            scheduler: Scheduler::new(opts.queue_cap),
            checkpoint: Mutex::new(checkpoint),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            active_sessions: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            next_conn: AtomicU64::new(0),
            opts,
        });
        let workers = (0..shared.opts.workers.max(1))
            .map(|_| {
                let shared = shared.clone();
                thread::spawn(move || scheduler::worker_loop(&shared))
            })
            .collect();
        let accept = {
            let shared = shared.clone();
            thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound address (resolves `:0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Jobs completed so far (live counter).
    pub fn jobs_completed(&self) -> u64 {
        self.shared.jobs_completed.load(Ordering::Relaxed)
    }

    /// Stops accepting, drains the queued jobs, joins the workers, and
    /// waits (bounded) for connected sessions to hang up.
    pub fn shutdown(mut self) -> ServeSummary {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.shared.scheduler.shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let deadline = Instant::now() + Duration::from_secs(2);
        while self.shared.active_sessions.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(5));
        }
        ServeSummary {
            jobs_completed: self.shared.jobs_completed.load(Ordering::Relaxed),
            jobs_failed: self.shared.jobs_failed.load(Ordering::Relaxed),
            protocol_errors: self.shared.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// Polls for connections until shutdown; each one gets a detached
/// session thread (itself panic-shielded — a session bug must never
/// take the server down).
fn accept_loop(listener: TcpListener, shared: Arc<ServerShared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_nonblocking(false);
                let _ = stream.set_nodelay(true);
                let conn = shared.next_conn.fetch_add(1, Ordering::SeqCst);
                shared.active_sessions.fetch_add(1, Ordering::SeqCst);
                let shared = shared.clone();
                thread::spawn(move || {
                    let _ = panic::catch_unwind(AssertUnwindSafe(|| {
                        run_session_stream(stream, &shared, conn)
                    }));
                    shared.active_sessions.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn run_session_stream(stream: TcpStream, shared: &Arc<ServerShared>, conn: u64) {
    session::run_session(stream, shared.clone(), conn);
}
