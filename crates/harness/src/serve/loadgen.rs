//! The `bcache-repro loadgen` client: drives a serve instance at
//! saturation with N connections × a deterministic mix of job types,
//! and reports aggregate jobs/s plus latency percentiles from the
//! shared [`Histogram`].
//!
//! ```text
//! bcache-repro loadgen [--addr HOST:PORT] [--connections N]
//!                      [--requests N] [--records N] [--seed S]
//!                      [--out PATH]
//! ```
//!
//! Without `--addr` the loadgen spawns an in-process server on an
//! ephemeral port (the bench-scenario and CI-smoke shape); with it,
//! any running `bcache-repro serve` can be driven over the network.
//! `--out` writes the result in the bench JSON schema (model
//! `serve-loadgen`, `maccesses_per_sec` carrying jobs/s), so the
//! throughput file sits next to the kernel rows and rides the same
//! baseline tooling.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use telemetry::Histogram;

use super::listener::Server;
use super::protocol::{json_str_field, json_u64_field};
use super::ServeOptions;
use crate::bench;
use crate::config::validate_len;
use crate::run::RunLength;

/// Options of the `loadgen` subcommand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadgenOptions {
    /// Target server; `None` spawns an in-process one.
    pub addr: Option<String>,
    /// Concurrent client connections.
    pub connections: usize,
    /// Jobs per connection.
    pub requests: usize,
    /// Records per job.
    pub records: u64,
    /// Trace seed shared by every job (identical traces keep the
    /// server's per-worker caches warm — the measurement is replay
    /// throughput, not trace generation).
    pub seed: u64,
    /// Write the report as a bench-schema JSON row to this path.
    pub out: Option<String>,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        LoadgenOptions {
            addr: None,
            connections: 4,
            requests: 8,
            records: 20_000,
            seed: 1,
            out: None,
        }
    }
}

impl LoadgenOptions {
    /// Parses the option tail after `loadgen`.
    pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<LoadgenOptions, String> {
        let mut opts = LoadgenOptions::default();
        let mut i = 0;
        let value = |args: &[S], i: usize| -> Result<u64, String> {
            args.get(i + 1)
                .and_then(|s| s.as_ref().parse::<u64>().ok())
                .ok_or_else(|| format!("{} needs an integer argument", args[i].as_ref()))
        };
        let text = |args: &[S], i: usize| -> Result<String, String> {
            args.get(i + 1)
                .map(|s| s.as_ref().to_string())
                .ok_or_else(|| format!("{} needs an argument", args[i].as_ref()))
        };
        while i < args.len() {
            match args[i].as_ref() {
                "--addr" => {
                    opts.addr = Some(text(args, i)?);
                    i += 2;
                }
                "--connections" => {
                    let v = value(args, i)?;
                    if v == 0 {
                        return Err("--connections must be at least 1".into());
                    }
                    opts.connections = v as usize;
                    i += 2;
                }
                "--requests" => {
                    let v = value(args, i)?;
                    if v == 0 {
                        return Err("--requests must be at least 1".into());
                    }
                    opts.requests = v as usize;
                    i += 2;
                }
                "--records" => {
                    opts.records = value(args, i)?;
                    i += 2;
                }
                "--seed" => {
                    opts.seed = value(args, i)?;
                    i += 2;
                }
                "--out" => {
                    opts.out = Some(text(args, i)?);
                    i += 2;
                }
                other => return Err(format!("unknown option: {other}")),
            }
        }
        validate_len(RunLength::with_records(opts.records))?;
        Ok(opts)
    }
}

/// What one loadgen run measured.
#[derive(Clone, Debug)]
pub struct LoadgenReport {
    /// Jobs that completed with a `done` frame.
    pub jobs_ok: u64,
    /// Jobs that ended in an `error` frame.
    pub jobs_failed: u64,
    /// Jobs rejected with a `busy` frame.
    pub busy: u64,
    /// Row frames received.
    pub rows: u64,
    /// Wall time of the whole run.
    pub elapsed: Duration,
    /// Per-job latency in microseconds (submit → done/error).
    pub latency_us: Histogram,
}

impl LoadgenReport {
    /// Completed jobs per wall-clock second.
    pub fn jobs_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.jobs_ok as f64 / secs
        }
    }

    /// Renders the human-readable report.
    pub fn render(&self, opts: &LoadgenOptions) -> String {
        format!(
            "loadgen: {} connections x {} requests, {} records/job, seed {}\n\
             jobs: {} ok, {} failed, {} busy-rejected; {} rows streamed\n\
             wall: {:.3} s  throughput: {:.1} jobs/s\n\
             latency us: p50<={} p95<={} p99<={} ({})\n",
            opts.connections,
            opts.requests,
            opts.records,
            opts.seed,
            self.jobs_ok,
            self.jobs_failed,
            self.busy,
            self.rows,
            self.elapsed.as_secs_f64(),
            self.jobs_per_sec(),
            self.latency_us.quantile(0.50),
            self.latency_us.quantile(0.95),
            self.latency_us.quantile(0.99),
            self.latency_us.summary(),
        )
    }

    /// The report as a bench-schema JSON row (model `serve-loadgen`,
    /// `maccesses_per_sec` carrying jobs/s) — the new bench scenario's
    /// file format.
    pub fn to_bench_json(&self, opts: &LoadgenOptions) -> String {
        bench::render_json(&[bench::BenchRow {
            model: "serve-loadgen".into(),
            maccesses_per_sec: self.jobs_per_sec(),
            records: opts.records,
            seed: opts.seed,
            git_rev: bench::git_rev(),
            backend: "serve".into(),
            lanes: opts.connections as u64,
        }])
    }
}

/// A connected protocol client (one TCP stream + buffered reader).
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// The terminal frame a job ended with, as seen by a client.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobEnd {
    /// `done` frame: `(rows received, cached points reported)`.
    Done {
        /// Row frames received for the job.
        rows: u64,
        /// `cached` count from the done frame.
        cached: u64,
    },
    /// `busy` admission reject.
    Busy,
    /// `error` frame with its message.
    Error(String),
}

impl Client {
    /// Connects to `addr` with a read timeout (no client ever hangs a
    /// test or smoke run forever).
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        // One-line request/response frames: Nagle + delayed ACK would
        // add ~40 ms to every exchange.
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .map_err(|e| format!("set timeout: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("clone stream: {e}"))?,
        );
        Ok(Client { stream, reader })
    }

    /// Sends one frame line.
    pub fn send(&mut self, frame: &str) -> Result<(), String> {
        self.stream
            .write_all(frame.as_bytes())
            .and_then(|_| self.stream.write_all(b"\n"))
            .map_err(|e| format!("send: {e}"))
    }

    /// Reads the next frame line.
    pub fn read_frame(&mut self) -> Result<String, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("server closed the connection".into()),
            Ok(_) => Ok(line.trim_end().to_string()),
            Err(e) => Err(format!("read: {e}")),
        }
    }

    /// Submits a job frame and pumps frames until its terminal
    /// `done`/`busy`/`error`. Returns the terminal plus every row
    /// frame received for this id.
    pub fn run_job(&mut self, frame: &str, id: &str) -> Result<(JobEnd, Vec<String>), String> {
        self.send(frame)?;
        let mut rows = Vec::new();
        loop {
            let line = self.read_frame()?;
            if json_str_field(&line, "id").as_deref() != Some(id) {
                continue; // a frame about some other job on this session
            }
            match json_str_field(&line, "type").as_deref() {
                Some("ack") => {}
                Some("row") => rows.push(line),
                Some("busy") => return Ok((JobEnd::Busy, rows)),
                Some("error") => {
                    let msg = json_str_field(&line, "error").unwrap_or_default();
                    return Ok((JobEnd::Error(msg), rows));
                }
                Some("done") => {
                    let cached = json_u64_field(&line, "cached").unwrap_or(0);
                    return Ok((
                        JobEnd::Done {
                            rows: rows.len() as u64,
                            cached,
                        },
                        rows,
                    ));
                }
                _ => {}
            }
        }
    }
}

/// The deterministic job mix: replays across four models, a windowed
/// profile, and an occasional sweep — every job type the server
/// understands, cycling by request ordinal.
fn job_frame(conn: usize, req: usize, opts: &LoadgenOptions) -> (String, String) {
    let id = format!("c{conn}-r{req}");
    let common = format!(
        "\"id\": \"{id}\", \"benchmark\": \"mcf\", \"records\": {}, \"seed\": {}",
        opts.records, opts.seed
    );
    let frame = match req % 6 {
        0 => format!("{{\"type\": \"submit\", {common}, \"job\": \"replay\", \"model\": \"direct-mapped\"}}"),
        1 => format!("{{\"type\": \"submit\", {common}, \"job\": \"replay\", \"model\": \"bcache-mf8-bas8\"}}"),
        2 => format!("{{\"type\": \"submit\", {common}, \"job\": \"replay\", \"model\": \"8-way-lru\"}}"),
        3 => format!("{{\"type\": \"submit\", {common}, \"job\": \"profile\", \"model\": \"bcache-mf8-bas8\", \"window\": 2048}}"),
        4 => format!("{{\"type\": \"submit\", {common}, \"job\": \"replay\", \"model\": \"victim16\"}}"),
        _ => format!("{{\"type\": \"submit\", {common}, \"job\": \"sweep\"}}"),
    };
    (id, frame)
}

/// Runs the load generator. Spawns an in-process server when
/// `opts.addr` is `None`.
///
/// # Errors
///
/// Returns a message when the server cannot start or a connection
/// fails outright; per-job errors are counted, not fatal.
pub fn run_loadgen(opts: &LoadgenOptions) -> Result<LoadgenReport, String> {
    let (server, addr) = match &opts.addr {
        Some(a) => (None, a.clone()),
        None => {
            let sopts = ServeOptions {
                addr: "127.0.0.1:0".into(),
                ..ServeOptions::default()
            };
            let server = Server::start(sopts)?;
            let addr = server.local_addr().to_string();
            (Some(server), addr)
        }
    };

    let totals = Arc::new(Mutex::new((
        Histogram::new(),
        0u64, // ok
        0u64, // failed
        0u64, // busy
        0u64, // rows
    )));
    let start = Instant::now();
    let mut threads = Vec::new();
    for conn in 0..opts.connections {
        let addr = addr.clone();
        let opts = opts.clone();
        let totals = totals.clone();
        threads.push(thread::spawn(move || -> Result<(), String> {
            let mut client = Client::connect(&addr)?;
            let mut hist = Histogram::new();
            let (mut ok, mut failed, mut busy, mut rows) = (0u64, 0u64, 0u64, 0u64);
            for req in 0..opts.requests {
                let (id, frame) = job_frame(conn, req, &opts);
                let t0 = Instant::now();
                match client.run_job(&frame, &id)? {
                    (JobEnd::Done { rows: r, .. }, _) => {
                        hist.record(t0.elapsed().as_micros() as u64);
                        ok += 1;
                        rows += r;
                    }
                    (JobEnd::Busy, _) => {
                        busy += 1;
                        // Give the queue a moment to drain, then move on.
                        thread::sleep(Duration::from_millis(5));
                    }
                    (JobEnd::Error(_), _) => failed += 1,
                }
            }
            let mut t = totals.lock().unwrap_or_else(|e| e.into_inner());
            t.0.merge(&hist);
            t.1 += ok;
            t.2 += failed;
            t.3 += busy;
            t.4 += rows;
            Ok(())
        }));
    }
    let mut first_err = None;
    for t in threads {
        match t.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => first_err = first_err.or(Some(e)),
            Err(_) => first_err = first_err.or(Some("loadgen connection panicked".into())),
        }
    }
    let elapsed = start.elapsed();
    if let Some(server) = server {
        server.shutdown();
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    let t = totals.lock().unwrap_or_else(|e| e.into_inner());
    Ok(LoadgenReport {
        jobs_ok: t.1,
        jobs_failed: t.2,
        busy: t.3,
        rows: t.4,
        elapsed,
        latency_us: t.0.clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_and_validate() {
        let o = LoadgenOptions::parse(&[
            "--addr",
            "127.0.0.1:9",
            "--connections",
            "2",
            "--requests",
            "5",
            "--records",
            "9000",
            "--seed",
            "3",
            "--out",
            "/tmp/lg.json",
        ])
        .unwrap();
        assert_eq!(o.addr.as_deref(), Some("127.0.0.1:9"));
        assert_eq!(o.connections, 2);
        assert_eq!(o.requests, 5);
        assert_eq!(o.records, 9_000);
        assert_eq!(o.seed, 3);
        assert_eq!(o.out.as_deref(), Some("/tmp/lg.json"));
        assert!(LoadgenOptions::parse(&["--connections", "0"]).is_err());
        assert!(LoadgenOptions::parse(&["--requests", "0"]).is_err());
        assert!(LoadgenOptions::parse(&["--records", "0"]).is_err());
        assert!(LoadgenOptions::parse(&["--frobnicate"]).is_err());
    }

    #[test]
    fn job_mix_cycles_every_job_type() {
        let opts = LoadgenOptions::default();
        let kinds: Vec<String> = (0..6)
            .map(|r| {
                let (_, frame) = job_frame(0, r, &opts);
                json_str_field(&frame, "job").unwrap()
            })
            .collect();
        assert!(kinds.contains(&"replay".to_string()));
        assert!(kinds.contains(&"profile".to_string()));
        assert!(kinds.contains(&"sweep".to_string()));
    }

    #[test]
    fn bench_json_row_parses_back() {
        let report = LoadgenReport {
            jobs_ok: 10,
            jobs_failed: 0,
            busy: 0,
            rows: 10,
            elapsed: Duration::from_secs(2),
            latency_us: Histogram::new(),
        };
        let opts = LoadgenOptions::default();
        let rows = bench::parse_rows(&report.to_bench_json(&opts)).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].model, "serve-loadgen");
        assert!((rows[0].maccesses_per_sec - 5.0).abs() < 1e-9);
        assert_eq!(rows[0].lanes, opts.connections as u64);
    }
}
