//! The `bcache-repro serve` wire protocol: line-delimited single-line
//! JSON frames over TCP, in the same minimal hand-rolled JSON dialect
//! as the `telemetry_io` JSONL codec and the checkpoint store (flat
//! objects, `"key": value` fields, no nesting beyond one `data`
//! object, no escapes in field *names*).
//!
//! Requests (client → server):
//!
//! ```text
//! {"type": "ping"}
//! {"type": "submit", "id": "j1", "job": "replay", "benchmark": "mcf",
//!  "model": "bcache-mf8-bas8", "records": 50000, "seed": 1, "side": "d"}
//! ```
//!
//! `job` is one of `replay` | `sweep` | `profile`. Optional fields:
//! `tenant` (admission-control queue key; defaults to the connection),
//! `warmup`, `window` (profile only), and `fault` (`"panic"` — a test
//! hook that makes the job panic inside the supervised worker, so the
//! panic-isolation path can be driven from the wire).
//!
//! Responses (server → client):
//!
//! ```text
//! {"type": "pong"}
//! {"type": "ack", "id": "j1"}
//! {"type": "busy", "id": "j1", "queued": 16, "cap": 16}
//! {"type": "row", "id": "j1", "seq": 0, "data": {…}}
//! {"type": "done", "id": "j1", "rows": 9, "cached": 4, "rows_dropped": 0}
//! {"type": "error", "id": "j1", "error": "…"}
//! ```
//!
//! Every f64 result travels both as a human-readable decimal and as the
//! `{:016x}` image of its IEEE-754 bits (`*_bits`), the same encoding
//! the checkpoint store uses, so clients can assert byte-identity with
//! the offline replay path without parsing floats.

use crate::config::validate_len;
use crate::profilecmd;
use crate::run::{RunLength, Side};

/// Hard cap on one request line, in bytes. A line that exceeds this is
/// discarded up to the next newline and answered with an error frame —
/// it is never buffered whole, so a hostile client cannot balloon the
/// session's memory.
pub const MAX_LINE_BYTES: usize = 8 * 1024;

/// Default records per job when a submit frame omits `records`.
pub const DEFAULT_RECORDS: u64 = 50_000;

/// Default profile window when a submit frame omits `window`.
pub const DEFAULT_WINDOW: u64 = 4096;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with a `pong` frame.
    Ping,
    /// A job submission; answered with `ack` or `busy`.
    Submit(JobRequest),
}

/// A validated `submit` frame.
#[derive(Clone, Debug, PartialEq)]
pub struct JobRequest {
    /// Client-chosen job id, echoed on every frame about this job.
    pub id: String,
    /// Admission-control queue key; `None` means "this connection".
    pub tenant: Option<String>,
    /// What to run.
    pub spec: JobSpec,
    /// Test hook: `Some("panic")` makes the job panic inside the
    /// supervised worker.
    pub fault: Option<String>,
}

/// The job body of a `submit` frame.
#[derive(Clone, Debug, PartialEq)]
pub enum JobSpec {
    /// One (model × benchmark) replay; streams a single result row.
    Replay {
        /// Benchmark name (resolved via the profile registry).
        benchmark: String,
        /// Model name (resolved via the model registry).
        model: String,
        /// Trace length.
        len: RunLength,
        /// Instruction or data side.
        side: Side,
    },
    /// The Figure-3-style MF sweep at BAS = 8; streams one row per MF
    /// point and checkpoints each point when the server has a
    /// checkpoint attached.
    Sweep {
        /// Benchmark name.
        benchmark: String,
        /// Trace length.
        len: RunLength,
    },
    /// A windowed profile replay; streams one row per retained window.
    Profile {
        /// Benchmark name.
        benchmark: String,
        /// Model name.
        model: String,
        /// Trace length.
        len: RunLength,
        /// Instruction or data side.
        side: Side,
        /// Accesses per window.
        window: u64,
    },
}

/// Extracts a string field from a single-line JSON object — the same
/// scan the checkpoint store uses (field names are trusted, values are
/// read to the closing quote, so values must not contain `"`).
pub fn json_str_field(line: &str, name: &str) -> Option<String> {
    let pat = format!("\"{name}\": \"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Extracts an unsigned integer field from a single-line JSON object.
pub fn json_u64_field(line: &str, name: &str) -> Option<u64> {
    let pat = format!("\"{name}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Escapes a string for embedding in a JSON value: backslash, quote,
/// and control characters. Error messages pass through here so a quote
/// in a panic payload cannot break the frame.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses and validates one request line. Every failure is a clean
/// message destined for an `error` frame — this function must never
/// panic on hostile input.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    if line.is_empty() {
        return Err("empty frame".into());
    }
    let kind = json_str_field(line, "type").ok_or("frame has no \"type\" field")?;
    match kind.as_str() {
        "ping" => Ok(Request::Ping),
        "submit" => parse_submit(line).map(Request::Submit),
        other => Err(format!(
            "unknown frame type {other:?} (expected ping or submit)"
        )),
    }
}

fn parse_submit(line: &str) -> Result<JobRequest, String> {
    let id = json_str_field(line, "id").ok_or("submit frame has no \"id\" field")?;
    if id.is_empty() || id.len() > 128 {
        return Err("job id must be 1..=128 characters".into());
    }
    let job = json_str_field(line, "job").ok_or("submit frame has no \"job\" field")?;
    let tenant = json_str_field(line, "tenant");
    let fault = json_str_field(line, "fault");
    if let Some(f) = &fault {
        if f != "panic" {
            return Err(format!("unknown fault {f:?} (only \"panic\" is supported)"));
        }
    }

    let records = json_u64_field(line, "records").unwrap_or(DEFAULT_RECORDS);
    let mut len = RunLength::with_records(records);
    if let Some(w) = json_u64_field(line, "warmup") {
        len.warmup = w;
    }
    if let Some(s) = json_u64_field(line, "seed") {
        len.seed = s;
    }
    validate_len(len)?;

    let benchmark = json_str_field(line, "benchmark").unwrap_or_else(|| "mcf".into());
    profilecmd::resolve_benchmark(&benchmark)?;
    let side = match json_str_field(line, "side").as_deref() {
        None | Some("d") | Some("data") => Side::Data,
        Some("i") | Some("instruction") => Side::Instruction,
        Some(other) => return Err(format!("unknown side {other:?} (expected i or d)")),
    };

    let spec = match job.as_str() {
        "replay" | "profile" => {
            let model = json_str_field(line, "model").unwrap_or_else(|| "bcache-mf8-bas8".into());
            profilecmd::resolve_model(&model)?;
            if job == "replay" {
                JobSpec::Replay {
                    benchmark,
                    model,
                    len,
                    side,
                }
            } else {
                let window = json_u64_field(line, "window").unwrap_or(DEFAULT_WINDOW);
                if window == 0 {
                    return Err("window must be at least 1 access".into());
                }
                JobSpec::Profile {
                    benchmark,
                    model,
                    len,
                    side,
                    window,
                }
            }
        }
        "sweep" => JobSpec::Sweep { benchmark, len },
        other => Err(format!(
            "unknown job type {other:?} (expected replay, sweep, or profile)"
        ))?,
    };
    Ok(JobRequest {
        id,
        tenant,
        spec,
        fault,
    })
}

/// Renders a `pong` frame.
pub fn pong_frame() -> String {
    "{\"type\": \"pong\"}".into()
}

/// Renders an `ack` frame for a submitted job.
pub fn ack_frame(id: &str) -> String {
    format!("{{\"type\": \"ack\", \"id\": \"{}\"}}", json_escape(id))
}

/// Renders a `busy` admission-reject frame: the tenant's queue already
/// holds `queued` of `cap` jobs.
pub fn busy_frame(id: &str, queued: usize, cap: usize) -> String {
    format!(
        "{{\"type\": \"busy\", \"id\": \"{}\", \"queued\": {queued}, \"cap\": {cap}}}",
        json_escape(id)
    )
}

/// Renders a streamed result row. `data` must already be a JSON object.
pub fn row_frame(id: &str, seq: u64, data: &str) -> String {
    format!(
        "{{\"type\": \"row\", \"id\": \"{}\", \"seq\": {seq}, \"data\": {data}}}",
        json_escape(id)
    )
}

/// Renders a job-completion frame. `rows_dropped` is the session's
/// cumulative outbound-buffer drop count (the [`telemetry::EventRing`]
/// accounting convention), not a per-job figure.
pub fn done_frame(id: &str, rows: u64, cached: u64, rows_dropped: u64) -> String {
    format!(
        "{{\"type\": \"done\", \"id\": \"{}\", \"rows\": {rows}, \
         \"cached\": {cached}, \"rows_dropped\": {rows_dropped}}}",
        json_escape(id)
    )
}

/// Renders an error frame. `id` is omitted when the failure happened
/// before a job id could be parsed.
pub fn error_frame(id: Option<&str>, msg: &str) -> String {
    match id {
        Some(id) => format!(
            "{{\"type\": \"error\", \"id\": \"{}\", \"error\": \"{}\"}}",
            json_escape(id),
            json_escape(msg)
        ),
        None => format!(
            "{{\"type\": \"error\", \"error\": \"{}\"}}",
            json_escape(msg)
        ),
    }
}

/// Renders an f64 as the `{:016x}` image of its bits — the checkpoint
/// encoding, used by `*_bits` fields for byte-identity assertions.
pub fn f64_bits(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_and_submit_parse() {
        assert_eq!(
            parse_request("{\"type\": \"ping\"}").unwrap(),
            Request::Ping
        );
        let r = parse_request(
            "{\"type\": \"submit\", \"id\": \"j1\", \"job\": \"replay\", \
             \"benchmark\": \"mcf\", \"model\": \"dm\", \"records\": 20000, \"seed\": 3}",
        )
        .unwrap();
        let Request::Submit(job) = r else {
            panic!("expected submit")
        };
        assert_eq!(job.id, "j1");
        assert_eq!(
            job.spec,
            JobSpec::Replay {
                benchmark: "mcf".into(),
                model: "dm".into(),
                len: RunLength {
                    records: 20_000,
                    warmup: 2_000,
                    seed: 3
                },
                side: Side::Data,
            }
        );
    }

    #[test]
    fn hostile_frames_are_clean_errors() {
        for bad in [
            "",
            "not json at all",
            "{\"type\": \"submit\"}",                // no id
            "{\"type\": \"launch\", \"id\": \"x\"}", // unknown type
            "{\"type\": \"submit\", \"id\": \"x\", \"job\": \"mine-bitcoin\"}", // unknown job
            "{\"type\": \"submit\", \"id\": \"x\", \"job\": \"replay\", \"model\": \"nope\"}",
            "{\"type\": \"submit\", \"id\": \"x\", \"job\": \"replay\", \"benchmark\": \"nope\"}",
            "{\"type\": \"submit\", \"id\": \"x\", \"job\": \"replay\", \"records\": 0}",
            "{\"type\": \"submit\", \"id\": \"x\", \"job\": \"replay\", \"side\": \"q\"}",
            "{\"type\": \"submit\", \"id\": \"x\", \"job\": \"profile\", \"window\": 0}",
            "{\"type\": \"submit\", \"id\": \"x\", \"job\": \"replay\", \"fault\": \"hang\"}",
            "{\"type\": \"submit\", \"id\": \"x\", \"job\": \"replay\", \
             \"records\": 100, \"warmup\": 100}",
        ] {
            assert!(parse_request(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn submit_defaults_fill_in() {
        let r = parse_request("{\"type\": \"submit\", \"id\": \"d\", \"job\": \"sweep\"}").unwrap();
        let Request::Submit(job) = r else {
            panic!("expected submit")
        };
        assert_eq!(
            job.spec,
            JobSpec::Sweep {
                benchmark: "mcf".into(),
                len: RunLength::with_records(DEFAULT_RECORDS),
            }
        );
        assert!(job.tenant.is_none() && job.fault.is_none());
    }

    #[test]
    fn escaping_survives_quotes_and_newlines() {
        let f = error_frame(Some("a\"b"), "panic:\n\t\"boom\"");
        assert!(!f.contains('\n'), "single-line invariant broken: {f}");
        assert_eq!(json_str_field(&f, "type").as_deref(), Some("error"));
        assert!(f.contains("\\\"boom\\\""), "{f}");
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
    }

    #[test]
    fn frames_round_trip_through_field_scans() {
        let f = done_frame("j9", 9, 4, 0);
        assert_eq!(json_str_field(&f, "type").as_deref(), Some("done"));
        assert_eq!(json_str_field(&f, "id").as_deref(), Some("j9"));
        assert_eq!(json_u64_field(&f, "rows"), Some(9));
        assert_eq!(json_u64_field(&f, "cached"), Some(4));
        let b = busy_frame("j1", 16, 16);
        assert_eq!(json_u64_field(&b, "queued"), Some(16));
        assert_eq!(f64_bits(1.0), "3ff0000000000000");
    }
}
