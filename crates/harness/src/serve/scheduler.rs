//! Per-tenant fair scheduling and job execution.
//!
//! Admission control is a bounded queue per tenant (`--queue-cap`): a
//! submit that finds the tenant's queue full is rejected with a `busy`
//! frame instead of queueing unboundedly. Workers drain tenants
//! round-robin, so one chatty tenant cannot starve the rest — with
//! `T` active tenants every tenant gets every `T`-th job slot.
//!
//! Each worker owns a single-job [`Engine`] built from the server's
//! [`EngineSetup`](crate::config::EngineSetup), so every job runs under
//! the PR 5 supervision stack: `catch_unwind` per attempt, the
//! retry/backoff policy, and deterministic fault injection. A job that
//! fails permanently re-raises its panic out of `Engine::run`; the
//! executor catches it and turns it into an `error` frame on the
//! owning session only — the worker thread and every other session
//! keep going.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use super::listener::ServerShared;
use super::protocol::{
    ack_frame, done_frame, error_frame, f64_bits, row_frame, JobRequest, JobSpec,
};
use super::session::Outbox;
use crate::checkpoint::CheckpointValue;
use crate::config::CacheConfig;
use crate::parallel::{job_seed, panic_message, Engine};
use crate::profilecmd::{self, profile_replay};
use crate::run::{replay_bcache_pd_on, replay_config_on, RunLength};

/// L1 size every serve job replays (the paper's headline 16 kB point).
const SIZE_BYTES: usize = 16 * 1024;

/// The MF points of a `sweep` job (the Figure 3 grid, BAS = 8).
pub const SWEEP_MFS: [usize; 9] = [2, 4, 8, 16, 32, 64, 128, 256, 512];

/// Sweep point index at which an injected `fault: "panic"` fires —
/// mid-sweep, so the checkpoint holds the earlier points when the job
/// dies (the restart-resume test drives exactly this).
pub const SWEEP_FAULT_POINT: usize = 4;

fn recover<'a, T>(
    r: Result<MutexGuard<'a, T>, std::sync::PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    r.unwrap_or_else(|e| e.into_inner())
}

/// A queued unit of work: the validated request plus the session's
/// outbox to stream results into.
#[derive(Debug)]
pub struct Job {
    /// The validated submit frame.
    pub request: JobRequest,
    /// Where this job's frames go.
    pub outbox: Arc<Outbox>,
}

struct SchedState {
    queues: Vec<(String, VecDeque<Job>)>,
    cursor: usize,
    shutdown: bool,
}

/// The admission-controlled, tenant-fair job queue.
#[derive(Debug)]
pub struct Scheduler {
    queue_cap: usize,
    state: Mutex<SchedState>,
    ready: Condvar,
}

impl std::fmt::Debug for SchedState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedState")
            .field("tenants", &self.queues.len())
            .field("shutdown", &self.shutdown)
            .finish()
    }
}

impl Scheduler {
    /// A scheduler admitting at most `queue_cap` queued jobs per tenant
    /// (min 1).
    pub fn new(queue_cap: usize) -> Scheduler {
        Scheduler {
            queue_cap: queue_cap.max(1),
            state: Mutex::new(SchedState {
                queues: Vec::new(),
                cursor: 0,
                shutdown: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Admits `job` to `tenant`'s queue, or rejects it when the queue
    /// is full — `Err((queued, cap))` backs the `busy` frame. On
    /// admission the `ack` frame is queued *under the scheduler lock*,
    /// so it always precedes any row a worker streams for the job.
    pub fn submit(&self, tenant: &str, job: Job) -> Result<(), (usize, usize)> {
        let mut s = recover(self.state.lock());
        if s.shutdown {
            return Err((0, self.queue_cap));
        }
        if !s.queues.iter().any(|(t, _)| t == tenant) {
            s.queues.push((tenant.to_string(), VecDeque::new()));
        }
        let q = s
            .queues
            .iter_mut()
            .find(|(t, _)| t == tenant)
            .map(|(_, q)| q)
            .expect("tenant queue just ensured");
        if q.len() >= self.queue_cap {
            return Err((q.len(), self.queue_cap));
        }
        job.outbox.push_control(ack_frame(&job.request.id));
        q.push_back(job);
        drop(s);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job, scanning tenants round-robin from the
    /// cursor. `None` once shut down.
    pub fn next(&self) -> Option<Job> {
        let mut s = recover(self.state.lock());
        loop {
            // Tenants whose queues drained are retired; they re-appear
            // on their next submit.
            s.queues.retain(|(_, q)| !q.is_empty());
            let n = s.queues.len();
            if n > 0 {
                let idx = s.cursor % n;
                let job = s.queues[idx].1.pop_front().expect("non-empty by retain");
                s.cursor = idx + 1;
                return Some(job);
            }
            if s.shutdown {
                return None;
            }
            s = recover(self.ready.wait(s));
        }
    }

    /// Stops admission and wakes every worker; workers drain the jobs
    /// already queued, then exit.
    pub fn shutdown(&self) {
        recover(self.state.lock()).shutdown = true;
        self.ready.notify_all();
    }
}

/// Worker thread body: one supervised single-job engine, draining the
/// scheduler until shutdown.
pub(crate) fn worker_loop(shared: &Arc<ServerShared>) {
    let engine = shared.opts.setup.build_engine(1);
    while let Some(job) = shared.scheduler.next() {
        execute_job(shared, &engine, job);
    }
}

/// How one finished job reports itself in its `done` frame.
struct JobDone {
    rows: u64,
    cached: u64,
}

/// Runs one job under a panic shield. A permanent engine failure (all
/// retry attempts panicked) unwinds out of [`Engine::run`]; it is
/// caught here and confined to this job's session as an `error` frame.
fn execute_job(shared: &Arc<ServerShared>, engine: &Engine, job: Job) {
    let id = job.request.id.clone();
    let outbox = job.outbox.clone();
    match panic::catch_unwind(AssertUnwindSafe(|| run_job(shared, engine, &job))) {
        Ok(Ok(done)) => {
            outbox.push_control(done_frame(&id, done.rows, done.cached, outbox.dropped()));
            shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
        }
        Ok(Err(msg)) => {
            outbox.push_control(error_frame(Some(&id), &msg));
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
        }
        Err(payload) => {
            let msg = format!(
                "job failed permanently after retries: {}",
                panic_message(payload.as_ref())
            );
            outbox.push_control(error_frame(Some(&id), &msg));
            shared.jobs_failed.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn run_job(shared: &Arc<ServerShared>, engine: &Engine, job: &Job) -> Result<JobDone, String> {
    match &job.request.spec {
        JobSpec::Replay {
            benchmark,
            model,
            len,
            side,
        } => run_replay(engine, job, benchmark, model, *len, *side),
        JobSpec::Sweep { benchmark, len } => run_sweep(shared, engine, job, benchmark, *len),
        JobSpec::Profile {
            benchmark,
            model,
            len,
            side,
            window,
        } => run_profile(engine, job, benchmark, model, *len, *side, *window),
    }
}

fn run_replay(
    engine: &Engine,
    job: &Job,
    benchmark: &str,
    model: &str,
    len: RunLength,
    side: crate::run::Side,
) -> Result<JobDone, String> {
    let profile = profilecmd::resolve_benchmark(benchmark)?;
    let (label, config) = profilecmd::resolve_model(model)?;
    let trace = engine.side_trace(&profile, len, side);
    let inject = job.request.fault.is_some();
    let panic_id = job.request.id.clone();
    let data = if let CacheConfig::BCache { mf, bas } = config {
        let outcome = engine
            .run(vec![move || {
                if inject {
                    panic!("injected protocol fault (job {panic_id})");
                }
                replay_bcache_pd_on(&trace, mf, bas, SIZE_BYTES)
            }])
            .pop()
            .ok_or("replay job produced no result")?;
        format!(
            "{{\"model\": \"{label}\", \"miss_rate\": {:.6}, \"miss_rate_bits\": \"{}\", \
             \"pd_hit_rate_on_miss\": {:.6}, \"pd_hit_bits\": \"{}\"}}",
            outcome.miss_rate,
            f64_bits(outcome.miss_rate),
            outcome.pd_hit_rate_on_miss,
            f64_bits(outcome.pd_hit_rate_on_miss),
        )
    } else {
        let bench_name = benchmark.to_string();
        let miss_rate = engine
            .run(vec![move || {
                if inject {
                    panic!("injected protocol fault (job {panic_id})");
                }
                replay_config_on(&bench_name, &trace, &config, SIZE_BYTES, side, len)
            }])
            .pop()
            .ok_or("replay job produced no result")?;
        format!(
            "{{\"model\": \"{label}\", \"miss_rate\": {:.6}, \"miss_rate_bits\": \"{}\"}}",
            miss_rate,
            f64_bits(miss_rate),
        )
    };
    job.outbox.push_row(row_frame(&job.request.id, 0, &data));
    Ok(JobDone { rows: 1, cached: 0 })
}

fn run_sweep(
    shared: &Arc<ServerShared>,
    engine: &Engine,
    job: &Job,
    benchmark: &str,
    len: RunLength,
) -> Result<JobDone, String> {
    let profile = profilecmd::resolve_benchmark(benchmark)?;
    let trace = engine.side_trace(&profile, len, crate::run::Side::Data);
    let fault = job.request.fault.is_some();
    let mut done = JobDone { rows: 0, cached: 0 };
    for (idx, &mf) in SWEEP_MFS.iter().enumerate() {
        let key = format!(
            "sweep/{benchmark}/r{}/w{}/s{}/mf{mf}",
            len.records, len.warmup, len.seed
        );
        let cached = shared
            .checkpoint_get(&key)
            .and_then(|v| crate::run::BCachePdOutcome::decode(&v));
        let from_cache = cached.is_some();
        let outcome = match cached {
            Some(v) => {
                done.cached += 1;
                v
            }
            None => {
                let inject = fault && idx == SWEEP_FAULT_POINT;
                let panic_id = job.request.id.clone();
                let trace = trace.clone();
                let v = engine
                    .run(vec![move || {
                        if inject {
                            panic!("injected protocol fault at MF{mf} (job {panic_id})");
                        }
                        replay_bcache_pd_on(&trace, mf, 8, SIZE_BYTES)
                    }])
                    .pop()
                    .ok_or("sweep point produced no result")?;
                shared.checkpoint_put(&key, &v.encode());
                v
            }
        };
        let data = format!(
            "{{\"mf\": {mf}, \"miss_rate\": {:.6}, \"miss_rate_bits\": \"{}\", \
             \"pd_hit_rate_on_miss\": {:.6}, \"pd_hit_bits\": \"{}\", \"cached\": {from_cache}}}",
            outcome.miss_rate,
            f64_bits(outcome.miss_rate),
            outcome.pd_hit_rate_on_miss,
            f64_bits(outcome.pd_hit_rate_on_miss),
        );
        job.outbox
            .push_row(row_frame(&job.request.id, idx as u64, &data));
        done.rows += 1;
    }
    Ok(done)
}

#[allow(clippy::too_many_arguments)]
fn run_profile(
    engine: &Engine,
    job: &Job,
    benchmark: &str,
    model: &str,
    len: RunLength,
    side: crate::run::Side,
    window: u64,
) -> Result<JobDone, String> {
    let profile = profilecmd::resolve_benchmark(benchmark)?;
    let (label, config) = profilecmd::resolve_model(model)?;
    let trace = engine.side_trace(&profile, len, side);
    let seed = job_seed(len.seed, benchmark, side);
    let inject = job.request.fault.is_some();
    let panic_id = job.request.id.clone();
    let label_owned = label.to_string();
    let (series, _frag, _miss_rate) = engine
        .run(vec![move || {
            if inject {
                panic!("injected protocol fault (job {panic_id})");
            }
            profile_replay(config, &label_owned, seed, &trace, window)
        }])
        .pop()
        .ok_or("profile job produced no result")?;
    let mut rows = 0u64;
    for row in series.rows() {
        job.outbox
            .push_row(row_frame(&job.request.id, row.index, &row.to_json()));
        rows += 1;
    }
    Ok(JobDone { rows, cached: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::Side;

    fn dummy_job(id: &str, outbox: &Arc<Outbox>) -> Job {
        Job {
            request: JobRequest {
                id: id.into(),
                tenant: None,
                spec: JobSpec::Replay {
                    benchmark: "mcf".into(),
                    model: "direct-mapped".into(),
                    len: RunLength::with_records(1_000),
                    side: Side::Data,
                },
                fault: None,
            },
            outbox: outbox.clone(),
        }
    }

    #[test]
    fn admission_control_rejects_at_queue_cap_deterministically() {
        let s = Scheduler::new(2);
        let ob = Arc::new(Outbox::new(8));
        assert!(s.submit("a", dummy_job("1", &ob)).is_ok());
        assert!(s.submit("a", dummy_job("2", &ob)).is_ok());
        assert_eq!(s.submit("a", dummy_job("3", &ob)), Err((2, 2)));
        // A different tenant has its own bound.
        assert!(s.submit("b", dummy_job("4", &ob)).is_ok());
        // Acks were queued for exactly the admitted jobs.
        ob.close();
        let acks: Vec<String> = std::iter::from_fn(|| ob.pop()).collect();
        assert_eq!(acks, vec![ack_frame("1"), ack_frame("2"), ack_frame("4")]);
    }

    #[test]
    fn tenants_are_drained_round_robin() {
        let s = Scheduler::new(8);
        let ob = Arc::new(Outbox::new(8));
        for id in ["a1", "a2", "a3"] {
            s.submit("a", dummy_job(id, &ob)).unwrap();
        }
        for id in ["b1", "b2"] {
            s.submit("b", dummy_job(id, &ob)).unwrap();
        }
        s.shutdown(); // workers drain what is queued, then next() yields None
        let order: Vec<String> = std::iter::from_fn(|| s.next().map(|j| j.request.id)).collect();
        // Fair interleave, not a-then-b.
        assert_eq!(order, vec!["a1", "b1", "a2", "b2", "a3"]);
    }

    #[test]
    fn shutdown_unblocks_waiting_workers() {
        let s = Arc::new(Scheduler::new(1));
        let s2 = s.clone();
        let t = std::thread::spawn(move || s2.next().map(|j| j.request.id));
        std::thread::sleep(std::time::Duration::from_millis(20));
        s.shutdown();
        assert_eq!(t.join().unwrap(), None);
        // And submits after shutdown are rejected as busy.
        let ob = Arc::new(Outbox::new(2));
        assert!(s.submit("a", dummy_job("x", &ob)).is_err());
    }
}
