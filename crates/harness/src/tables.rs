//! Static model tables: Table 1 (decoder timing), Table 2 (storage),
//! Table 3 (energy per access), Table 4 (processor configuration).

use bcache_core::{BCacheOrganization, BCacheParams};
use cache_sim::{CacheGeometry, PolicyKind};
use cpu_model::table4_rows;
use power_model::{bcache_access_pj, conventional_access_pj, table1_rows, table2, EnergyBreakdown};

use crate::report::TextTable;

fn paper_params() -> BCacheParams {
    let geom = CacheGeometry::new(16 * 1024, 32, 1).expect("valid geometry");
    BCacheParams::new(geom, 8, 8, PolicyKind::Lru).expect("paper design point")
}

/// Renders Table 1: original versus B-Cache decoder timing per subarray
/// size.
pub fn render_table1() -> String {
    let mut t = TextTable::new(vec![
        "subarray",
        "decoder",
        "composition",
        "orig(ns)",
        "PD(ns)",
        "NPD",
        "NPD(ns)",
        "slack(ns)",
    ]);
    for row in table1_rows() {
        t.row(vec![
            format!("{}B", row.subarray_bytes),
            format!("{}x{}", row.original_bits, 1usize << row.original_bits),
            row.original_composition.clone(),
            format!("{:.3}", row.original_ns),
            format!("{:.3}", row.pd_ns),
            row.npd_composition.clone(),
            format!("{:.3}", row.npd_ns),
            format!("{:+.3}", row.slack_ns),
        ]);
    }
    format!(
        "Table 1: decoder timing, original vs B-Cache (PD = 6-bit CAM, BAS = 8)\n\
         (positive slack = the B-Cache does not lengthen the access time)\n{}",
        t.render()
    )
}

/// Renders Table 2: storage cost of the baseline versus the B-Cache.
pub fn render_table2() -> String {
    let (base, bc, overhead) = table2(&paper_params());
    let org = BCacheOrganization::paper_default(&paper_params());
    let mut t = TextTable::new(vec![
        "", "tag dec", "tag mem", "data dec", "data mem", "total",
    ]);
    t.row(vec![
        "Baseline".to_string(),
        "no mem cell".to_string(),
        format!("{} bits (20b x 512)", base.tag_bits),
        "no mem cell".to_string(),
        format!("{} bits (256b x 512)", base.data_bits),
        format!("{}", base.total()),
    ]);
    t.row(vec![
        "B-Cache".to_string(),
        format!("{} 6x{} CAM", org.tag.pd_count(), org.tag.pd_entries),
        format!("{} bits (17b x 512)", bc.tag_bits),
        format!("{} 6x{} CAM", org.data.pd_count(), org.data.pd_entries),
        format!("{} bits (256b x 512)", bc.data_bits),
        format!("{} (SRAM-equivalent)", bc.total()),
    ]);
    format!(
        "Table 2: storage cost analysis (CAM cell = 1.25 SRAM cells)\n{}\nB-Cache area overhead: {:.2}% (paper: 4.3%)\n",
        t.render(),
        overhead * 100.0
    )
}

/// Computes the Table 3 rows: per-access energy breakdowns.
pub fn table3_breakdowns() -> Vec<(String, EnergyBreakdown)> {
    let geom = |assoc| CacheGeometry::new(16 * 1024, 32, assoc).expect("valid geometry");
    let mut rows = vec![
        ("Baseline".to_string(), conventional_access_pj(&geom(1))),
        ("B-Cache".to_string(), bcache_access_pj(&paper_params())),
    ];
    for ways in [2usize, 4, 8] {
        rows.push((format!("{ways}-way"), conventional_access_pj(&geom(ways))));
    }
    rows
}

/// Renders Table 3: energy (pJ) per cache access.
pub fn render_table3() -> String {
    let mut t = TextTable::new(vec![
        "config",
        "T-SA",
        "T-Dec",
        "T-BL-WL",
        "D-SA",
        "D-Dec",
        "D-BL-WL",
        "D-others",
        "PD-CAM",
        "Total(pJ)",
    ]);
    let rows = table3_breakdowns();
    let base_total = rows[0].1.total_pj();
    for (name, b) in &rows {
        t.row(vec![
            name.clone(),
            format!("{:.1}", b.t_sa),
            format!("{:.1}", b.t_dec),
            format!("{:.1}", b.t_bl_wl),
            format!("{:.1}", b.d_sa),
            format!("{:.1}", b.d_dec),
            format!("{:.1}", b.d_bl_wl),
            format!("{:.1}", b.d_others),
            format!("{:.1}", b.pd_cam),
            format!("{:.1}", b.total_pj()),
        ]);
    }
    let bc_total = rows[1].1.total_pj();
    format!(
        "Table 3: energy (pJ) per cache access, 16 kB / 32 B lines\n{}\nB-Cache per-access overhead vs baseline: {:+.1}% (paper: +10.5%)\n",
        t.render(),
        (bc_total / base_total - 1.0) * 100.0
    )
}

/// Renders Table 4: the processor configuration.
pub fn render_table4() -> String {
    let mut t = TextTable::new(vec!["parameter", "value"]);
    for (k, v) in table4_rows() {
        t.row(vec![k.to_string(), v]);
    }
    format!(
        "Table 4: baseline and B-Cache processor configuration\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shows_positive_slack_everywhere() {
        let s = render_table1();
        assert!(s.contains("Table 1"));
        assert!(!s.contains("-0."), "no negative slack expected:\n{s}");
        assert!(s.contains("8192B") && s.contains("512B"));
    }

    #[test]
    fn table2_matches_paper_overhead() {
        let s = render_table2();
        assert!(s.contains("4.3"), "{s}");
        assert!(s.contains("64 6x8 CAM"));
        assert!(s.contains("32 6x16 CAM"));
    }

    #[test]
    fn table3_reports_all_configs() {
        let s = render_table3();
        for name in ["Baseline", "B-Cache", "2-way", "4-way", "8-way"] {
            assert!(s.contains(name), "{s}");
        }
    }

    #[test]
    fn table4_mentions_the_window() {
        assert!(render_table4().contains("16 instructions"));
    }
}
