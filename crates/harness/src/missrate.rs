//! Miss-rate reduction experiments: Figures 4, 5 and 12.
//!
//! Each figure shards its (benchmark × config) cross-product into jobs
//! on the [`Engine`]; the `*_with` variants accept a caller-owned engine
//! (so several figures share one trace cache), the plain variants build
//! a default one. Output is identical for any worker count.

use trace_gen::{profiles, BenchmarkProfile, Suite};

use crate::config::CacheConfig;
use crate::parallel::Engine;
use crate::report::{pct, pct2, TextTable};
use crate::run::{mean, replay_config_on, BenchmarkMissRates, ConfigOutcome, RunLength, Side};

/// Results of one miss-rate-reduction figure: one row per benchmark plus
/// configuration labels.
#[derive(Clone, Debug)]
pub struct MissRateFigure {
    /// Figure title.
    pub title: String,
    /// Configuration labels, in column order.
    pub labels: Vec<String>,
    /// Per-benchmark results.
    pub rows: Vec<BenchmarkMissRates>,
}

impl MissRateFigure {
    /// Mean reduction for configuration column `i` (the "Ave" bar).
    pub fn average_reduction(&self, i: usize) -> f64 {
        mean(&self.rows, |r| r.reduction(i))
    }

    /// Index of a configuration by label.
    pub fn column(&self, label: &str) -> Option<usize> {
        self.labels.iter().position(|l| l == label)
    }

    /// Builds the reduction table shared by text and CSV rendering.
    fn table(&self) -> TextTable {
        let mut header = vec!["benchmark".to_string(), "dm-miss".to_string()];
        header.extend(self.labels.clone());
        let mut t = TextTable::new(header);
        for r in &self.rows {
            let mut cells = vec![r.benchmark.clone(), pct2(r.baseline_miss_rate)];
            cells.extend((0..self.labels.len()).map(|i| pct(r.reduction(i))));
            t.row(cells);
        }
        let mut ave = vec!["Ave".to_string(), String::new()];
        ave.extend((0..self.labels.len()).map(|i| pct(self.average_reduction(i))));
        t.row(ave);
        t
    }

    /// Renders the figure as a text table of reductions.
    pub fn render(&self) -> String {
        format!("{}\n{}", self.title, self.table().render())
    }

    /// Renders the figure as CSV (for plotting pipelines).
    pub fn render_csv(&self) -> String {
        self.table().render_csv()
    }
}

fn run_figure(
    engine: &Engine,
    scope: &str,
    title: String,
    benchmarks: &[BenchmarkProfile],
    configs: &[CacheConfig],
    size_bytes: usize,
    side: Side,
    len: RunLength,
) -> MissRateFigure {
    // One job per (benchmark, column); column 0 is the baseline. The
    // engine returns miss rates in submission order, so rows rebuild
    // canonically however the jobs interleaved. Each job carries a
    // checkpoint identity (`scope/benchmark/label`) so interrupted
    // sweeps resume from the finished cells.
    let mut cols = Vec::with_capacity(configs.len() + 1);
    cols.push(CacheConfig::DirectMapped);
    cols.extend_from_slice(configs);
    type Job<'a> = Box<dyn Fn() -> f64 + Send + Sync + 'a>;
    let jobs: Vec<(String, Job<'_>)> = benchmarks
        .iter()
        .flat_map(|p| {
            cols.iter().map(move |&c| {
                let key = format!("{}/{}", p.name, c.label());
                let job: Job<'_> = Box::new(move || {
                    let trace = engine.side_trace(p, len, side);
                    replay_config_on(p.name, &trace, &c, size_bytes, side, len)
                });
                (key, job)
            })
        })
        .collect();
    let rates = engine.run_checkpointed(scope, jobs);
    let rows = benchmarks
        .iter()
        .zip(rates.chunks(cols.len()))
        .map(|(p, chunk)| BenchmarkMissRates {
            benchmark: p.name.to_string(),
            baseline_miss_rate: chunk[0],
            outcomes: configs
                .iter()
                .zip(&chunk[1..])
                .map(|(c, &miss_rate)| ConfigOutcome {
                    label: c.label(),
                    miss_rate,
                    pd_hit_rate_on_miss: None,
                })
                .collect(),
        })
        .collect();
    MissRateFigure {
        title,
        labels: configs.iter().map(CacheConfig::label).collect(),
        rows,
    }
}

/// Figure 4: data-cache miss-rate reductions at 16 kB over the nine
/// comparison configurations, grouped CFP2K then CINT2K like the paper.
pub fn figure4(len: RunLength) -> (MissRateFigure, MissRateFigure) {
    figure4_with(&Engine::with_default_parallelism(), len)
}

/// [`figure4`] on a caller-owned [`Engine`].
pub fn figure4_with(engine: &Engine, len: RunLength) -> (MissRateFigure, MissRateFigure) {
    let configs = CacheConfig::figure4_set();
    let fp = run_figure(
        engine,
        "fig4/cfp",
        "Figure 4 (top): D$ miss-rate reductions, SPEC CFP2K, 16 kB".into(),
        &profiles::cfp(),
        &configs,
        16 * 1024,
        Side::Data,
        len,
    );
    let int = run_figure(
        engine,
        "fig4/cint",
        "Figure 4 (bottom): D$ miss-rate reductions, SPEC CINT2K, 16 kB".into(),
        &profiles::cint(),
        &configs,
        16 * 1024,
        Side::Data,
        len,
    );
    (fp, int)
}

/// Figure 5: instruction-cache miss-rate reductions at 16 kB on the
/// fifteen reported benchmarks.
pub fn figure5(len: RunLength) -> MissRateFigure {
    figure5_with(&Engine::with_default_parallelism(), len)
}

/// [`figure5`] on a caller-owned [`Engine`].
pub fn figure5_with(engine: &Engine, len: RunLength) -> MissRateFigure {
    run_figure(
        engine,
        "fig5",
        "Figure 5: I$ miss-rate reductions, reported benchmarks, 16 kB".into(),
        &profiles::icache_reported(),
        &CacheConfig::figure4_set(),
        16 * 1024,
        Side::Instruction,
        len,
    )
}

/// Figure 12: miss-rate reductions at 8 kB and 32 kB over the twelve
/// configurations (suite averages, as the paper plots aggregate bars).
pub fn figure12(len: RunLength) -> Vec<MissRateFigure> {
    figure12_with(&Engine::with_default_parallelism(), len)
}

/// [`figure12`] on a caller-owned [`Engine`].
pub fn figure12_with(engine: &Engine, len: RunLength) -> Vec<MissRateFigure> {
    let configs = CacheConfig::figure12_set();
    let mut figures = Vec::new();
    for size in [32 * 1024usize, 8 * 1024] {
        let kb = size / 1024;
        figures.push(run_figure(
            engine,
            &format!("fig12/{kb}kb/d"),
            format!("Figure 12: D$ miss-rate reductions, {kb} kB"),
            &profiles::all(),
            &configs,
            size,
            Side::Data,
            len,
        ));
        figures.push(run_figure(
            engine,
            &format!("fig12/{kb}kb/i"),
            format!("Figure 12: I$ miss-rate reductions, {kb} kB"),
            &profiles::icache_reported(),
            &configs,
            size,
            Side::Instruction,
            len,
        ));
    }
    figures
}

/// Related-work comparison (Section 7.1): the B-Cache against the
/// column-associative and skewed-associative caches and the HAC.
pub fn related_work(len: RunLength) -> MissRateFigure {
    related_work_with(&Engine::with_default_parallelism(), len)
}

/// [`related_work`] on a caller-owned [`Engine`].
pub fn related_work_with(engine: &Engine, len: RunLength) -> MissRateFigure {
    let configs = vec![
        CacheConfig::ColumnAssoc,
        CacheConfig::SkewedAssoc,
        CacheConfig::Agac,
        CacheConfig::Pam,
        CacheConfig::DiffBit,
        CacheConfig::SetAssoc(2),
        CacheConfig::SetAssoc(4),
        CacheConfig::Hac,
        CacheConfig::BCache { mf: 8, bas: 8 },
    ];
    run_figure(
        engine,
        "related",
        "Section 7.1: related-work D$ comparison, 16 kB".into(),
        &profiles::all(),
        &configs,
        16 * 1024,
        Side::Data,
        len,
    )
}

/// The suite split used when summarizing Figure 4 ("CINT2K"/"CFP2K").
pub fn suite_of(benchmark: &str) -> Option<Suite> {
    profiles::by_name(benchmark).map(|p| p.suite)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunLength {
        RunLength::with_records(100_000)
    }

    #[test]
    fn figure4_has_all_benchmarks_and_configs() {
        let (fp, int) = figure4(quick());
        assert_eq!(fp.rows.len(), 14);
        assert_eq!(int.rows.len(), 12);
        assert_eq!(fp.labels.len(), 9);
        assert!(fp.render().contains("Ave"));
    }

    #[test]
    fn figure4_average_orderings_match_the_paper() {
        let (fp, int) = figure4(quick());
        for fig in [&fp, &int] {
            let red = |l: &str| fig.average_reduction(fig.column(l).unwrap());
            // Associativity staircase.
            assert!(red("4way") > red("2way"), "{}", fig.title);
            assert!(red("8way") > red("4way"), "{}", fig.title);
            // MF staircase with diminishing returns.
            assert!(red("MF4-BAS8") > red("MF2-BAS8"), "{}", fig.title);
            assert!(red("MF8-BAS8") > red("MF4-BAS8"), "{}", fig.title);
            assert!(
                red("MF16-BAS8") - red("MF8-BAS8") < 0.06,
                "MF16 should add little: {}",
                fig.title
            );
            // The paper's design point beats the victim buffer on average.
            assert!(red("MF8-BAS8") > red("victim16"), "{}", fig.title);
        }
    }

    #[test]
    fn figure5_reports_fifteen_benchmarks() {
        let fig = figure5(quick());
        assert_eq!(fig.rows.len(), 15);
        let red = |l: &str| fig.average_reduction(fig.column(l).unwrap());
        assert!(
            red("MF8-BAS8") > red("victim16") + 0.3,
            "I$ B-Cache crushes the victim buffer"
        );
    }

    #[test]
    fn suite_lookup() {
        assert_eq!(suite_of("gcc"), Some(Suite::Int));
        assert_eq!(suite_of("swim"), Some(Suite::Fp));
        assert_eq!(suite_of("nonesuch"), None);
    }
}
