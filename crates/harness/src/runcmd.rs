//! The `bcache-repro run` subcommand: replay one benchmark through the
//! reference model set with full telemetry — per-phase wall-time spans
//! (trace generation, warm-up, replay, report), per-model counters and
//! set-pressure histograms, and an optional typed-event trace of the
//! B-Cache replay.
//!
//! ```text
//! bcache-repro run [--bench NAME] [--side i|d] [--records N] [--seed S]
//!                  [--jobs N] [--event-ring-cap N]
//!                  [--metrics PATH] [--trace-events PATH]
//! ```
//!
//! The metrics split follows the [`Recorder`] contract: counters and
//! histograms are pure functions of the (deterministic) simulation and
//! merge positionally across the engine's jobs, so they are
//! byte-identical for any `--jobs N`; wall-clock spans go to the
//! separate `timing` section.

use bcache_core::{BCacheParams, BalancedCache};
use cache_sim::{CacheGeometry, CacheModel, PolicyKind};
use telemetry::{EventRing, Recorder, SpanTimer};
use trace_gen::profiles;

use crate::config::{validate_len, CacheConfig, EngineSetup};
use crate::parallel::{default_parallelism, job_seed, Engine};
use crate::run::{replay_bcache_observed, RunLength, Side, SideTrace};
use crate::telemetry_io::{degraded_summary, record_model};

/// Default capacity of the `--trace-events` ring (`--event-ring-cap`
/// overrides it): enough to keep the miss activity of a default-length
/// replay's tail while bounding memory.
pub const EVENT_RING_CAPACITY: usize = 1 << 16;

/// L1 size the `run` report uses (the paper's headline 16 kB point).
const SIZE_BYTES: usize = 16 * 1024;

/// Options of the `run` subcommand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunCmdOptions {
    /// Benchmark profile name (default `mcf`, the paper's conflict-miss
    /// workhorse).
    pub benchmark: String,
    /// Which reference stream feeds the caches (default data).
    pub side: Side,
    /// Trace length and warm-up.
    pub len: RunLength,
    /// Worker threads.
    pub jobs: usize,
    /// Capacity of the `--trace-events` ring
    /// (`--event-ring-cap`, default [`EVENT_RING_CAPACITY`]).
    pub event_ring_cap: usize,
    /// Engine robustness configuration (retries, fault injection, …).
    pub setup: EngineSetup,
}

impl Default for RunCmdOptions {
    fn default() -> Self {
        RunCmdOptions {
            benchmark: "mcf".into(),
            side: Side::Data,
            len: RunLength::default(),
            jobs: default_parallelism(),
            event_ring_cap: EVENT_RING_CAPACITY,
            setup: EngineSetup::default(),
        }
    }
}

impl RunCmdOptions {
    /// Parses the option tail after `run` (telemetry flags are stripped
    /// earlier by
    /// [`TelemetryFlags::extract`](crate::telemetry_io::TelemetryFlags::extract)).
    pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<RunCmdOptions, String> {
        let mut opts = RunCmdOptions::default();
        let mut warmup_override = None;
        let mut i = 0;
        let value = |args: &[S], i: usize| {
            args.get(i + 1)
                .and_then(|s| s.as_ref().parse::<u64>().ok())
                .ok_or_else(|| format!("{} needs an integer argument", args[i].as_ref()))
        };
        while i < args.len() {
            match args[i].as_ref() {
                "--bench" => {
                    let name = args
                        .get(i + 1)
                        .map(|s| s.as_ref().to_string())
                        .ok_or("--bench needs a benchmark name")?;
                    if profiles::by_name(&name).is_none() {
                        return Err(format!("unknown benchmark: {name}"));
                    }
                    opts.benchmark = name;
                    i += 2;
                }
                "--side" => {
                    opts.side = match args.get(i + 1).map(|s| s.as_ref()) {
                        Some("i") | Some("instruction") => Side::Instruction,
                        Some("d") | Some("data") => Side::Data,
                        _ => return Err("--side needs 'i' or 'd'".into()),
                    };
                    i += 2;
                }
                "--records" => {
                    let v = value(args, i)?;
                    let seed = opts.len.seed;
                    opts.len = RunLength::with_records(v);
                    opts.len.seed = seed;
                    i += 2;
                }
                "--warmup" => {
                    warmup_override = Some(value(args, i)?);
                    i += 2;
                }
                "--seed" => {
                    opts.len.seed = value(args, i)?;
                    i += 2;
                }
                "--jobs" => {
                    let v = value(args, i)?;
                    if v == 0 {
                        return Err("--jobs must be at least 1".into());
                    }
                    opts.jobs = v as usize;
                    i += 2;
                }
                "--event-ring-cap" => {
                    let v = value(args, i)?;
                    if v == 0 {
                        return Err("--event-ring-cap must be at least 1 event".into());
                    }
                    opts.event_ring_cap = usize::try_from(v)
                        .map_err(|_| format!("--event-ring-cap {v} does not fit in usize"))?;
                    i += 2;
                }
                other => {
                    if !opts.setup.try_flag(args, &mut i)? {
                        return Err(format!("unknown option: {other}"));
                    }
                }
            }
        }
        if let Some(w) = warmup_override {
            opts.len.warmup = w;
        }
        validate_len(opts.len)?;
        Ok(opts)
    }

    /// Builds the experiment engine these options describe.
    pub fn engine(&self) -> Engine {
        self.setup.build_engine(self.jobs)
    }
}

/// Everything a `run` invocation produces; the binary decides which
/// parts to print or write.
#[derive(Clone, Debug)]
pub struct RunCmdOutcome {
    /// Human-readable report.
    pub report: String,
    /// Merged telemetry (deterministic counters/histograms + timing).
    pub metrics: Recorder,
    /// The B-Cache event trace, when `--trace-events` asked for one.
    pub events: Option<EventRing>,
}

/// The models a `run` replays, in report order.
fn run_model_set() -> Vec<(&'static str, CacheConfig)> {
    vec![
        ("dm", CacheConfig::DirectMapped),
        ("8way", CacheConfig::SetAssoc(8)),
        ("victim16", CacheConfig::Victim(16)),
        ("bcache", CacheConfig::BCache { mf: 8, bas: 8 }),
    ]
}

/// Replays the side trace into `model` with warm-up and replay
/// separately timed into `rec` — observably identical to
/// [`SideTrace::replay`], which the batch-equivalence suite pins.
pub(crate) fn replay_timed(trace: &SideTrace, model: &mut dyn CacheModel, rec: &mut Recorder) {
    match trace.reset_at() {
        Some(r) => {
            let t = SpanTimer::start("phase.warmup");
            model.access_batch(&trace.accesses()[..r]);
            model.reset_stats();
            t.stop(rec);
            let t = SpanTimer::start("phase.replay");
            model.access_batch(&trace.accesses()[r..]);
            t.stop(rec);
        }
        None => {
            let t = SpanTimer::start("phase.replay");
            model.access_batch(trace.accesses());
            t.stop(rec);
        }
    }
}

/// Runs the subcommand: one engine job per model, fragments merged in
/// input order. `want_events` additionally replays the B-Cache point
/// with an [`EventRing`] observer (outside the timed jobs).
///
/// # Panics
///
/// Panics if `opts.benchmark` names no profile (the parser validates
/// it, so only direct library misuse can trip this).
pub fn run_cmd(opts: &RunCmdOptions, want_events: bool) -> RunCmdOutcome {
    let profile = profiles::by_name(&opts.benchmark).expect("validated benchmark name");
    let engine = opts.engine();
    let len = opts.len;
    let side = opts.side;

    let jobs: Vec<_> = run_model_set()
        .into_iter()
        .map(|(name, config)| {
            let profile = profile.clone();
            let engine = &engine;
            let benchmark = opts.benchmark.clone();
            move || {
                // The first job in generates the trace (its span lands
                // in the engine's timing recorder); the rest share it.
                let trace = engine.side_trace(&profile, len, side);
                let seed = job_seed(len.seed, &benchmark, side);
                let mut frag = Recorder::new();
                let miss_rate = if let CacheConfig::BCache { mf, bas } = config {
                    // Built concretely (seeded exactly like
                    // `CacheConfig::build`) so the PD statistics are
                    // reachable — the trait object hides them.
                    let geom = CacheGeometry::new(SIZE_BYTES, 32, 1).expect("valid run geometry");
                    let params = BCacheParams::new(geom, mf, bas, PolicyKind::Lru)
                        .expect("valid B-Cache point")
                        .with_seed(seed);
                    let mut bc = BalancedCache::new(params);
                    replay_timed(&trace, &mut bc, &mut frag);
                    record_model(&mut frag, name, &bc);
                    let pd = bc.pd_stats();
                    frag.counter("bcache.pd_reprograms", pd.misses_with_pd_miss);
                    frag.counter("bcache.pd_forced_misses", pd.misses_with_pd_hit);
                    bc.stats().miss_rate()
                } else {
                    let mut model = config
                        .build(SIZE_BYTES, seed)
                        .expect("run model set builds at 16 kB");
                    replay_timed(&trace, model.as_mut(), &mut frag);
                    record_model(&mut frag, name, model.as_ref());
                    model.stats().miss_rate()
                };
                (name, miss_rate, frag)
            }
        })
        .collect();

    let mut metrics = Recorder::new();
    let mut rows = Vec::new();
    for (name, miss_rate, frag) in engine.run(jobs) {
        metrics.merge(&frag);
        rows.push((name, miss_rate));
    }

    // The event trace comes from a dedicated observed replay of the
    // cached stream — instrumentation the timed jobs never pay.
    let events = want_events.then(|| {
        let trace = engine.side_trace(&profile, len, side);
        let bc = replay_bcache_observed(&trace, 8, 8, SIZE_BYTES, opts.event_ring_cap);
        bc.observer().clone()
    });
    metrics.merge(&engine.timing_snapshot());
    // Failure accounting (`engine.*`): empty — hence invisible — for a
    // clean run, so golden jobs-invariance comparisons stay intact.
    metrics.merge(&engine.failure_snapshot());

    let t = SpanTimer::start("phase.report");
    let pd_reprograms = metrics.counter_value("bcache.pd_reprograms");
    let pd_forced = metrics.counter_value("bcache.pd_forced_misses");
    let mut report = format!(
        "run: {} {} side, {} records (warmup {}), seed {}\n\n",
        opts.benchmark,
        match side {
            Side::Data => "data",
            Side::Instruction => "instruction",
        },
        len.records,
        len.warmup,
        len.seed
    );
    report.push_str("model      miss_rate\n");
    for (name, miss_rate) in &rows {
        report.push_str(&format!("{name:<10} {:>8.4}%\n", miss_rate * 100.0));
    }
    report.push_str(&format!(
        "\nB-Cache PD reprograms: {pd_reprograms} (one per predetermined miss), \
         PD-forced misses: {pd_forced}\n"
    ));
    if engine.degraded() {
        report.push_str(&degraded_summary(&metrics));
    }
    for prefix in ["dm", "bcache"] {
        if let Some(h) = metrics.histogram(&format!("{prefix}.set_accesses")) {
            report.push_str(&format!(
                "\nper-set access histogram ({prefix}), {} sets ({}):\n{}",
                h.count(),
                h.summary(),
                h.render_ascii(40)
            ));
        }
    }
    if let Some(ring) = &events {
        if ring.dropped() > 0 {
            report.push_str(&format!(
                "\nWARNING: the event ring dropped {} of {} events (oldest first); \
                 raise --event-ring-cap (currently {}) to keep more\n",
                ring.dropped(),
                ring.pushed(),
                opts.event_ring_cap
            ));
        }
    }
    t.stop(&mut metrics);
    RunCmdOutcome {
        report,
        metrics,
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(records: u64) -> RunCmdOptions {
        RunCmdOptions {
            len: RunLength::with_records(records),
            ..RunCmdOptions::default()
        }
    }

    #[test]
    fn options_parse_and_reject() {
        let o = RunCmdOptions::parse(&[
            "--bench",
            "gzip",
            "--side",
            "i",
            "--records",
            "5000",
            "--seed",
            "9",
            "--jobs",
            "2",
        ])
        .unwrap();
        assert_eq!(o.benchmark, "gzip");
        assert_eq!(o.side, Side::Instruction);
        assert_eq!(o.len.records, 5_000);
        assert_eq!(o.len.warmup, 500);
        assert_eq!(o.len.seed, 9);
        assert_eq!(o.jobs, 2);
        assert!(RunCmdOptions::parse(&["--bench", "nonesuch"]).is_err());
        assert!(RunCmdOptions::parse(&["--side", "x"]).is_err());
        assert!(RunCmdOptions::parse(&["--records", "0"]).is_err());
        assert!(RunCmdOptions::parse(&["--frobnicate"]).is_err());
        let d = RunCmdOptions::parse::<&str>(&[]).unwrap();
        assert_eq!(d.benchmark, "mcf");
        assert_eq!(d.side, Side::Data);
        assert_eq!(d.event_ring_cap, EVENT_RING_CAPACITY);
        let o = RunCmdOptions::parse(&["--event-ring-cap", "128"]).unwrap();
        assert_eq!(o.event_ring_cap, 128);
        assert!(RunCmdOptions::parse(&["--event-ring-cap", "0"]).is_err());
        assert!(RunCmdOptions::parse(&["--event-ring-cap"]).is_err());
    }

    #[test]
    fn small_event_ring_reports_drops() {
        let mut opts = quick(30_000);
        opts.event_ring_cap = 64;
        let out = run_cmd(&opts, true);
        let ring = out.events.as_ref().expect("events were requested");
        assert!(ring.dropped() > 0, "64 events cannot hold a 30k replay");
        assert_eq!(ring.len(), 64);
        assert!(
            out.report.contains("raise --event-ring-cap (currently 64)"),
            "{}",
            out.report
        );
        // A roomy ring drops nothing and stays silent.
        let out = run_cmd(&quick(30_000), true);
        if out.events.as_ref().unwrap().dropped() == 0 {
            assert!(!out.report.contains("WARNING: the event ring dropped"));
        }
    }

    #[test]
    fn run_cmd_produces_metrics_report_and_optional_events() {
        let mut opts = quick(30_000);
        opts.jobs = 2;
        let out = run_cmd(&opts, true);
        assert!(out.report.contains("bcache"), "{}", out.report);
        assert!(out.report.contains("per-set access histogram"));
        assert!(
            out.report.contains("p95≤"),
            "histogram lines carry quantile summaries: {}",
            out.report
        );
        // Required metric keys (the CI telemetry smoke asserts these on
        // the written JSON).
        let json = out.metrics.to_json(false);
        for key in [
            "dm.accesses",
            "dm.misses",
            "bcache.accesses",
            "bcache.pd_reprograms",
        ] {
            assert!(json.contains(&format!("\"{key}\"")), "missing {key}");
        }
        assert!(out.metrics.histogram("dm.set_accesses").is_some());
        assert!(out.metrics.timing("phase.replay").is_some());
        assert!(out.metrics.timing("phase.warmup").is_some());
        assert!(out.metrics.timing("phase.report").is_some());
        assert!(out.metrics.timing("phase.trace_extract").is_some());
        let ring = out.events.expect("events were requested");
        assert!(ring.pushed() > 0);
        // Without events, none are produced and PD counters still land.
        let out2 = run_cmd(&opts, false);
        assert!(out2.events.is_none());
        assert_eq!(
            out2.metrics.counter_value("bcache.pd_reprograms"),
            out.metrics.counter_value("bcache.pd_reprograms")
        );
        assert!(out.metrics.counter_value("bcache.pd_reprograms") > 0);
    }

    #[test]
    fn deterministic_section_is_jobs_invariant() {
        let base = quick(20_000);
        let mut golden: Option<String> = None;
        for jobs in [1usize, 2, 8] {
            let mut opts = base.clone();
            opts.jobs = jobs;
            let out = run_cmd(&opts, false);
            let json = out.metrics.to_json(false);
            match &golden {
                None => golden = Some(json),
                Some(g) => assert_eq!(g, &json, "--jobs {jobs} changed the metrics"),
            }
        }
    }
}
