//! Sensitivity studies and extension experiments beyond the paper's
//! figures:
//!
//! * [`victim_sweep`] — victim-buffer sizes (Section 6.6 claims more
//!   than 16 entries stops paying);
//! * [`cold_start`] — how fast the B-Cache's programmable decoders warm
//!   up after a flush (context switches reprogram the PDs; the paper's
//!   Figure 1 discusses the cold-start case);
//! * [`l2_bcache`] — applying the B-Cache idea at the L2 (an extension:
//!   a direct-mapped 256 kB L2 versus its balanced variant versus the
//!   paper's 4-way L2).

use bcache_core::{BCacheParams, BalancedCache};
use cache_sim::{
    AccessKind, Addr, CacheGeometry, CacheModel, PolicyKind, SetAssociativeCache, VictimCache,
};
use trace_gen::{profiles, Op, Trace};

use crate::parallel::Engine;
use crate::report::{pct, pct2, TextTable};
use crate::run::{mean, RunLength, Side};

/// Miss-rate reduction of victim buffers of several sizes, averaged over
/// the 26 benchmarks' data caches.
pub fn victim_sweep(len: RunLength, entries: &[usize]) -> Vec<(usize, f64)> {
    victim_sweep_with(&Engine::with_default_parallelism(), len, entries)
}

/// [`victim_sweep`] on a caller-owned [`Engine`]: one job per
/// (buffer size, benchmark) pair over the shared cached traces.
pub fn victim_sweep_with(engine: &Engine, len: RunLength, entries: &[usize]) -> Vec<(usize, f64)> {
    let benchmarks = profiles::all();
    let jobs: Vec<_> = entries
        .iter()
        .flat_map(|&n| {
            benchmarks.iter().map(move |p| {
                move || {
                    let trace = engine.side_trace(p, len, Side::Data);
                    let mut dm = CacheGeometry::new(16 * 1024, 32, 1)
                        .map(|g| cache_sim::DirectMappedCache::from_geometry(g).unwrap())
                        .unwrap();
                    let mut vc = VictimCache::new(16 * 1024, 32, n).unwrap();
                    for &(addr, kind) in trace.accesses() {
                        dm.access(addr, kind);
                        vc.access(addr, kind);
                    }
                    let base = dm.stats().miss_rate();
                    if base == 0.0 {
                        0.0
                    } else {
                        1.0 - vc.stats().miss_rate() / base
                    }
                }
            })
        })
        .collect();
    let reductions = engine.run(jobs);
    entries
        .iter()
        .zip(reductions.chunks(benchmarks.len()))
        .map(|(&n, chunk)| (n, mean(chunk, |r| *r)))
        .collect()
}

/// Renders the victim sweep.
pub fn render_victim_sweep(points: &[(usize, f64)]) -> String {
    let mut t = TextTable::new(vec!["entries", "avg D$ reduction"]);
    for (n, r) in points {
        t.row(vec![n.to_string(), pct(*r)]);
    }
    format!(
        "Victim-buffer size sweep. The paper (Section 6.6) caps the buffer at 16\n\
         entries because access time and energy grow with size; on these synthetic\n\
         workloads the conflict volume is larger than SPEC2K's, so miss-rate gains\n\
         continue past 16 — the timing/energy argument for 16 stands regardless.\n{}",
        t.render()
    )
}

/// Post-flush warm-up: miss rate of each window of `window` accesses
/// after every structure (blocks *and* PDs) is flushed, for the baseline
/// and the B-Cache.
///
/// Stays serial on the caller thread: it streams the trace unbounded
/// until the requested windows fill, so it cannot use the fixed-length
/// trace cache, and a single run is cheap.
pub fn cold_start(benchmark: &str, window: u64, windows: usize, len: RunLength) -> Vec<(f64, f64)> {
    let profile = profiles::by_name(benchmark).expect("known benchmark");
    let geom = CacheGeometry::new(16 * 1024, 32, 1).unwrap();
    let mut dm = cache_sim::DirectMappedCache::from_geometry(geom).unwrap();
    let mut bc = BalancedCache::new(BCacheParams::paper_default(geom).unwrap());
    let mut out = Vec::new();
    let mut seen = 0u64;
    let mut dm_misses = 0u64;
    let mut bc_misses = 0u64;
    for rec in Trace::new(&profile, len.seed) {
        if out.len() >= windows {
            break;
        }
        if let Some(a) = rec.op.data_addr() {
            let kind = if matches!(rec.op, Op::Store(_)) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            dm_misses += u64::from(!dm.access(Addr::new(a), kind).hit);
            bc_misses += u64::from(!bc.access(Addr::new(a), kind).hit);
            seen += 1;
            if seen == window {
                out.push((
                    dm_misses as f64 / window as f64,
                    bc_misses as f64 / window as f64,
                ));
                seen = 0;
                dm_misses = 0;
                bc_misses = 0;
            }
        }
    }
    out
}

/// Renders the cold-start windows.
pub fn render_cold_start(benchmark: &str, windows: &[(f64, f64)], window: u64) -> String {
    let mut t = TextTable::new(vec!["window", "dm miss", "bcache miss"]);
    for (i, (dm, bc)) in windows.iter().enumerate() {
        t.row(vec![
            format!("{}..{}", i as u64 * window, (i as u64 + 1) * window),
            pct2(*dm),
            pct2(*bc),
        ]);
    }
    format!(
        "Cold-start behaviour on {benchmark} (both caches start fully flushed; the\n\
         B-Cache additionally reprograms every PD entry during the first fills)\n{}",
        t.render()
    )
}

/// Applies the B-Cache at the L2: direct-mapped 256 kB L2 vs its
/// MF=8/BAS=8 balanced variant vs the paper's 4-way L2, fed by the L1
/// miss stream of the baseline 16 kB L1.
pub fn l2_bcache(len: RunLength) -> Vec<(String, f64)> {
    l2_bcache_with(&Engine::with_default_parallelism(), len)
}

/// [`l2_bcache`] on a caller-owned [`Engine`]: one job per benchmark
/// (each replays the L1 filter plus all three L2s); the suite aggregate
/// sums per-benchmark counters in canonical order.
pub fn l2_bcache_with(engine: &Engine, len: RunLength) -> Vec<(String, f64)> {
    let l2_geom = CacheGeometry::new(256 * 1024, 128, 1).unwrap();
    let benchmarks = profiles::all();
    let jobs: Vec<_> = benchmarks
        .iter()
        .map(|p| {
            move || {
                let trace = engine.side_trace(p, len, Side::Data);
                let mut l1 = cache_sim::DirectMappedCache::new(16 * 1024, 32).unwrap();
                let mut l2s: Vec<Box<dyn CacheModel>> = vec![
                    Box::new(cache_sim::DirectMappedCache::from_geometry(l2_geom).unwrap()),
                    Box::new(
                        SetAssociativeCache::new(256 * 1024, 128, 4, PolicyKind::Lru, 0).unwrap(),
                    ),
                    Box::new(BalancedCache::new(
                        BCacheParams::new(l2_geom, 8, 8, PolicyKind::Lru).unwrap(),
                    )),
                ];
                for &(addr, kind) in trace.accesses() {
                    if !l1.access(addr, kind).hit {
                        for l2 in l2s.iter_mut() {
                            l2.access(addr, AccessKind::Read);
                        }
                    }
                }
                l2s.iter()
                    .map(|l2| (l2.stats().total().misses(), l2.stats().total().accesses()))
                    .collect::<Vec<(u64, u64)>>()
            }
        })
        .collect();
    let per_benchmark = engine.run(jobs);

    let mut results: Vec<(String, u64, u64)> = vec![
        ("256k-dm".into(), 0, 0),
        ("256k-4way".into(), 0, 0),
        ("256k-bcache".into(), 0, 0),
    ];
    for counters in &per_benchmark {
        for (acc, &(misses, accesses)) in results.iter_mut().zip(counters) {
            acc.1 += misses;
            acc.2 += accesses;
        }
    }
    results
        .into_iter()
        .map(|(label, misses, accesses)| {
            (
                label,
                if accesses == 0 {
                    0.0
                } else {
                    misses as f64 / accesses as f64
                },
            )
        })
        .collect()
}

/// Renders the L2 experiment.
pub fn render_l2_bcache(rows: &[(String, f64)]) -> String {
    let mut t = TextTable::new(vec!["L2 config", "local miss rate"]);
    for (label, mr) in rows {
        t.row(vec![label.clone(), pct2(*mr)]);
    }
    format!(
        "Extension: the B-Cache applied at the L2 (fed by the baseline L1's miss\n\
         stream, suite aggregate)\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RunLength {
        RunLength::with_records(80_000)
    }

    #[test]
    fn victim_gains_grow_monotonically_with_size() {
        let points = victim_sweep(quick(), &[4, 16, 64]);
        let at = |n: usize| points.iter().find(|(e, _)| *e == n).unwrap().1;
        assert!(at(16) > at(4), "more entries must help");
        assert!(at(64) >= at(16), "and never hurt");
        // Even a 64-entry buffer stays below the B-Cache's I$-and-D$
        // average; the buffer only sees victims, the B-Cache re-maps them.
        assert!(at(64) < 0.7, "64 entries: {:.3}", at(64));
        assert!(render_victim_sweep(&points).contains("16"));
    }

    #[test]
    fn bcache_warms_up_within_a_few_windows() {
        let windows = cold_start("equake", 10_000, 6, quick());
        assert_eq!(windows.len(), 6);
        let (dm0, bc0) = windows[0];
        let (_, bc_last) = windows[windows.len() - 1];
        // Cold-start misses are comparable (the PD programs during the
        // fills it needed anyway)…
        assert!(bc0 < dm0 + 0.1, "first window: dm {dm0} bc {bc0}");
        // …and the steady state is far better than the first window.
        assert!(bc_last < bc0 * 0.7, "bc {bc0} -> {bc_last}");
        assert!(render_cold_start("equake", &windows, 10_000).contains("equake"));
    }

    #[test]
    fn l2_bcache_sits_between_dm_and_4way() {
        let rows = l2_bcache(quick());
        let at = |label: &str| rows.iter().find(|(l, _)| l == label).unwrap().1;
        assert!(
            at("256k-bcache") <= at("256k-dm") + 1e-9,
            "balancing helps the L2 too"
        );
        assert!(
            at("256k-bcache") <= at("256k-dm") * 1.01,
            "dm {} vs bcache {}",
            at("256k-dm"),
            at("256k-bcache")
        );
        assert!(render_l2_bcache(&rows).contains("256k-4way"));
    }
}
