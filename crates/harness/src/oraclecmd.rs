//! The `oracle` subcommand: closed-form expected-miss-rate predictions
//! (`crates/analytic`) cross-checked against the simulator
//! (`bcache-repro oracle [--seed S] [--jobs N] [--smoke] [--csv]`).
//!
//! The analytic models are exact under the independent reference model,
//! and the [`synthetic`](trace_gen::synthetic) trace families are built
//! purely from memoryless `Hot` streams, so the simulated miss rate of
//! every (model, distribution) cell must converge to the closed form as
//! the trace grows. The subcommand sweeps record counts over the full
//! grid — direct-mapped, 4-way and the paper-default B-Cache at 16 kB
//! against the `uniform64k`, `zipf8` and `birthday64` families — and
//! reports the deviation of each cell against the statistically
//! justified band of [`analytic::convergence_tolerance`].
//!
//! A second, independent cross-check rides along: the `birthday64`
//! adversary has a closed-form miss rate from the birthday model
//! ([`analytic::birthday`]) that must agree with the King-formula
//! prediction — `1 − min(capacity, k)/k` with capacity 1 for both the
//! direct-mapped baseline *and* the B-Cache, whose programmable decoder
//! the adversary defeats by construction.
//!
//! Simulation jobs are sharded over the [`Engine`] worker pool and
//! aggregated positionally, so the report is bit-identical for every
//! `--jobs` value. `--smoke` shrinks the sweep to one short point and
//! widens the band (CI-friendly); any cell outside its band makes the
//! subcommand exit non-zero.

use std::fmt::Write as _;

use analytic::{
    bcache_model, birthday, conventional_model, convergence_tolerance, AnalyticError, BlockDist,
};
use bcache_core::BCacheParams;
use cache_sim::{CacheGeometry, PolicyKind};
use trace_gen::synthetic;

use crate::config::CacheConfig;
use crate::parallel::{default_parallelism, job_seed, Engine};
use crate::run::{RunLength, Side};

/// Cache size shared by every oracle cell (the paper's L1 baseline).
pub const ORACLE_SIZE: usize = 16 * 1024;

const LINE: usize = 32;

/// The model points of the oracle grid: the baseline, a conventional
/// 4-way, and the paper-default B-Cache.
pub fn oracle_configs() -> Vec<CacheConfig> {
    vec![
        CacheConfig::DirectMapped,
        CacheConfig::SetAssoc(4),
        CacheConfig::BCache { mf: 8, bas: 8 },
    ]
}

/// The trace families of the oracle grid (all IRM-exact).
pub fn oracle_distributions() -> Vec<&'static str> {
    vec!["uniform64k", "zipf8", "birthday64"]
}

/// Options of the `oracle` subcommand.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct OracleOptions {
    /// Base trace seed (job seeds derive from it).
    pub seed: u64,
    /// Worker threads (output is identical for every value).
    pub jobs: usize,
    /// One short sweep point with a widened band (CI smoke).
    pub smoke: bool,
    /// Emit CSV instead of the text table.
    pub csv: bool,
}

impl Default for OracleOptions {
    fn default() -> Self {
        OracleOptions {
            seed: 1,
            jobs: default_parallelism(),
            smoke: false,
            csv: false,
        }
    }
}

impl OracleOptions {
    /// Parses `--seed S --jobs N [--smoke] [--csv]`.
    pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<OracleOptions, String> {
        let mut opts = OracleOptions::default();
        let mut i = 0;
        let value = |args: &[S], i: usize| -> Result<u64, String> {
            args.get(i + 1)
                .and_then(|s| s.as_ref().parse::<u64>().ok())
                .ok_or_else(|| format!("{} needs an integer argument", args[i].as_ref()))
        };
        while i < args.len() {
            match args[i].as_ref() {
                "--seed" => {
                    opts.seed = value(args, i)?;
                    i += 2;
                }
                "--jobs" => {
                    let v = value(args, i)?;
                    if v == 0 {
                        return Err("--jobs must be at least 1".into());
                    }
                    opts.jobs = v as usize;
                    i += 2;
                }
                "--smoke" => {
                    opts.smoke = true;
                    i += 1;
                }
                "--csv" => {
                    opts.csv = true;
                    i += 1;
                }
                other => return Err(format!("unknown option: {other}")),
            }
        }
        Ok(opts)
    }

    /// Record counts swept, smallest first.
    pub fn sweep(&self) -> Vec<u64> {
        if self.smoke {
            vec![30_000]
        } else {
            vec![50_000, 200_000, 800_000]
        }
    }

    /// Band-widening factor: the smoke sweep runs at a record count
    /// where the warm-up transient still matters, so its band is wider.
    pub fn slack(&self) -> f64 {
        if self.smoke {
            3.0
        } else {
            1.0
        }
    }
}

/// One (model, distribution, records) cell of the sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct OracleCell {
    /// Configuration label (`baseline`, `4way`, `MF8-BAS8`).
    pub model: String,
    /// Trace-family name.
    pub dist: &'static str,
    /// Trace records generated.
    pub records: u64,
    /// Post-warm-up data accesses actually measured.
    pub accesses: u64,
    /// Simulated post-warm-up miss rate.
    pub simulated: f64,
    /// Closed-form expected miss rate.
    pub analytic: f64,
    /// Accepted deviation band (slack included).
    pub tolerance: f64,
    /// Whether `|simulated − analytic| ≤ tolerance`.
    pub pass: bool,
}

impl OracleCell {
    /// Absolute simulated-vs-analytic deviation.
    pub fn deviation(&self) -> f64 {
        (self.simulated - self.analytic).abs()
    }
}

/// The outcome of an oracle sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct OracleReport {
    /// Base seed of the sweep.
    pub seed: u64,
    /// Every cell, in (records, distribution, model) order.
    pub cells: Vec<OracleCell>,
}

impl OracleReport {
    /// Number of cells outside their tolerance band.
    pub fn failures(&self) -> usize {
        self.cells.iter().filter(|c| !c.pass).count()
    }

    /// Renders the text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "analytical oracle: {} cell(s) at 16kB/32B, seed {} \
             (band: |simulated - analytic| <= tolerance)",
            self.cells.len(),
            self.seed
        )
        .unwrap();
        writeln!(
            out,
            "{:<10} {:<12} {:>8} {:>9} {:>10} {:>10} {:>10} {:>10}  verdict",
            "model",
            "dist",
            "records",
            "accesses",
            "simulated",
            "analytic",
            "deviation",
            "tolerance"
        )
        .unwrap();
        for c in &self.cells {
            writeln!(
                out,
                "{:<10} {:<12} {:>8} {:>9} {:>10.6} {:>10.6} {:>10.6} {:>10.6}  {}",
                c.model,
                c.dist,
                c.records,
                c.accesses,
                c.simulated,
                c.analytic,
                c.deviation(),
                c.tolerance,
                if c.pass { "ok" } else { "FAIL" }
            )
            .unwrap();
        }
        writeln!(
            out,
            "oracle: {} cell(s), {} failure(s)",
            self.cells.len(),
            self.failures()
        )
        .unwrap();
        out
    }

    /// Renders the sweep as CSV.
    pub fn render_csv(&self) -> String {
        let mut out = String::from(
            "model,dist,records,accesses,simulated,analytic,deviation,tolerance,pass\n",
        );
        for c in &self.cells {
            writeln!(
                out,
                "{},{},{},{},{:.9},{:.9},{:.9},{:.9},{}",
                c.model,
                c.dist,
                c.records,
                c.accesses,
                c.simulated,
                c.analytic,
                c.deviation(),
                c.tolerance,
                c.pass
            )
            .unwrap();
        }
        out
    }
}

/// Closed-form expected miss rate of `config` (at [`ORACLE_SIZE`]) over
/// the named synthetic family, plus the model's resident-state count
/// (the mixing-scale term of the tolerance band).
///
/// # Errors
///
/// [`AnalyticError`] when the family is not IRM, the configuration has
/// no closed form, or the King recursion would exceed its work cap.
///
/// # Panics
///
/// Panics if `dist` is not a [`synthetic`] family name.
pub fn analytic_miss(config: &CacheConfig, dist: &str) -> Result<(f64, u64), AnalyticError> {
    let profile =
        synthetic::by_name(dist).unwrap_or_else(|| panic!("unknown synthetic family {dist}"));
    let blocks =
        profile
            .block_distribution(LINE as u64)
            .ok_or(AnalyticError::UnsupportedConfig {
                what: "non-IRM trace family",
            })?;
    let blocks = BlockDist::new(blocks)?;
    let spec = match *config {
        CacheConfig::DirectMapped => {
            conventional_model(&CacheGeometry::new(ORACLE_SIZE, LINE, 1).unwrap(), &blocks)
        }
        CacheConfig::SetAssoc(n) => {
            conventional_model(&CacheGeometry::new(ORACLE_SIZE, LINE, n).unwrap(), &blocks)
        }
        CacheConfig::BCache { mf, bas } => {
            let geom = CacheGeometry::new(ORACLE_SIZE, LINE, 1).unwrap();
            bcache_model(
                &BCacheParams::new(geom, mf, bas, PolicyKind::Lru).unwrap(),
                &blocks,
            )?
        }
        _ => {
            return Err(AnalyticError::UnsupportedConfig {
                what: "configuration outside the closed form",
            })
        }
    };
    Ok((spec.expected_miss_rate()?, spec.resident_states()))
}

/// The closed-form miss rate the birthday model assigns to the aligned
/// `birthday64` adversary under `config` — an independent cross-check
/// of [`analytic_miss`] (both the direct-mapped baseline and the
/// B-Cache collapse to one resident block for the aligned family).
pub fn birthday_expected_miss(config: &CacheConfig) -> Option<f64> {
    let capacity: u64 = match *config {
        // All 64 blocks share one set / one PI class.
        CacheConfig::DirectMapped | CacheConfig::BCache { .. } => 1,
        CacheConfig::SetAssoc(n) => n as u64,
        _ => return None,
    };
    Some(birthday::aligned_adversary_miss_rate(capacity, 64))
}

/// Runs the sweep on `engine`. Cells are ordered (records, dist,
/// model); jobs are sharded but aggregated positionally, so the result
/// is identical for every worker count.
pub fn oracle_report_with(engine: &Engine, opts: &OracleOptions) -> OracleReport {
    let configs = oracle_configs();
    let mut meta = Vec::new();
    let mut jobs: Vec<Box<dyn Fn() -> (u64, u64) + Send + Sync>> = Vec::new();
    for records in opts.sweep() {
        let mut len = RunLength::with_records(records);
        len.seed = opts.seed;
        for dist in oracle_distributions() {
            let profile = synthetic::by_name(dist).expect("oracle family exists");
            let trace = engine.side_trace(&profile, len, Side::Data);
            for config in &configs {
                let (analytic, states) =
                    analytic_miss(config, dist).expect("oracle grid cells have closed forms");
                meta.push((config.label(), dist, records, analytic, states));
                let trace = trace.clone();
                let config = *config;
                let name = profile.name;
                jobs.push(Box::new(move || {
                    let seed = job_seed(len.seed, name, Side::Data);
                    let mut model = config.build(ORACLE_SIZE, seed).expect("config must build");
                    trace.replay(model.as_mut());
                    let total = model.stats().total();
                    (total.accesses(), total.misses())
                }));
            }
        }
    }
    let results = engine.run(jobs);
    let cells = meta
        .into_iter()
        .zip(results)
        .map(
            |((model, dist, records, analytic, states), (accesses, misses))| {
                let simulated = misses as f64 / accesses.max(1) as f64;
                let tolerance =
                    convergence_tolerance(analytic, accesses.max(1), states) * opts.slack();
                OracleCell {
                    model,
                    dist,
                    records,
                    accesses,
                    simulated,
                    analytic,
                    tolerance,
                    pass: (simulated - analytic).abs() <= tolerance,
                }
            },
        )
        .collect();
    OracleReport {
        seed: opts.seed,
        cells,
    }
}

/// [`oracle_report_with`] on a fresh engine with `opts.jobs` workers.
pub fn oracle_report(opts: &OracleOptions) -> OracleReport {
    oracle_report_with(&Engine::new(opts.jobs), opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn options_parse_and_reject() {
        let o = OracleOptions::parse(&["--seed", "9", "--jobs", "2", "--smoke", "--csv"]).unwrap();
        assert_eq!((o.seed, o.jobs, o.smoke, o.csv), (9, 2, true, true));
        assert!(OracleOptions::parse(&["--seed"]).is_err());
        assert!(OracleOptions::parse(&["--jobs", "0"]).is_err());
        assert!(OracleOptions::parse(&["--records", "5"]).is_err());
        assert!(o.sweep().len() == 1 && o.slack() > 1.0);
        let full = OracleOptions::default();
        assert!(full.sweep().len() > 1 && full.slack() == 1.0);
    }

    #[test]
    fn every_grid_cell_has_a_closed_form() {
        for config in oracle_configs() {
            for dist in oracle_distributions() {
                let (miss, states) = analytic_miss(&config, dist)
                    .unwrap_or_else(|e| panic!("{} x {dist}: {e}", config.label()));
                assert!((0.0..=1.0).contains(&miss), "{} x {dist}", config.label());
                assert!(states > 0, "{} x {dist}", config.label());
            }
        }
    }

    #[test]
    fn king_formula_agrees_with_the_birthday_model() {
        // Two independent closed forms for the aligned adversary.
        for config in oracle_configs() {
            let (king, _) = analytic_miss(&config, "birthday64").unwrap();
            let birthday = birthday_expected_miss(&config).unwrap();
            assert!(
                (king - birthday).abs() < 1e-9,
                "{}: king {king} vs birthday {birthday}",
                config.label()
            );
        }
    }

    #[test]
    fn analytic_exposes_the_papers_contrast_on_zipf8() {
        // The zipf8 footprint fits the B-Cache exactly (zero steady-state
        // misses) while the direct-mapped baseline keeps conflicting —
        // the paper's headline, stated analytically.
        let (dm, _) = analytic_miss(&CacheConfig::DirectMapped, "zipf8").unwrap();
        let (bc, _) = analytic_miss(&CacheConfig::BCache { mf: 8, bas: 8 }, "zipf8").unwrap();
        assert!(bc.abs() < 1e-12, "B-Cache holds the whole footprint: {bc}");
        assert!(dm > 0.3, "the baseline must conflict: {dm}");
    }

    #[test]
    fn smoke_report_is_clean_and_job_count_invariant() {
        let opts = OracleOptions {
            smoke: true,
            jobs: 2,
            ..OracleOptions::default()
        };
        let a = oracle_report(&opts);
        assert_eq!(a.failures(), 0, "{}", a.render());
        assert_eq!(a.cells.len(), 9);
        let b = oracle_report(&OracleOptions { jobs: 5, ..opts });
        assert_eq!(a.render(), b.render(), "job count must not matter");
        assert!(a.render_csv().lines().count() == 10);
    }
}
