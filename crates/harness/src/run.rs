//! Shared experiment machinery: single-pass trace replay over many cache
//! models, warm-up handling, and result records.

use bcache_core::BalancedCache;
use cache_sim::{AccessKind, Addr, CacheModel};
use trace_gen::{BenchmarkProfile, Op, Trace};

use crate::config::CacheConfig;

/// Which reference stream of the trace feeds the caches.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Side {
    /// Instruction fetches (one access per fetched 32-byte block).
    Instruction,
    /// Data loads and stores.
    Data,
}

/// How many trace records to generate and how many to treat as warm-up
/// (statistics reset after the warm-up, mirroring the paper's
/// fast-forward).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RunLength {
    /// Total trace records.
    pub records: u64,
    /// Records before statistics are reset.
    pub warmup: u64,
    /// Trace generator seed.
    pub seed: u64,
}

impl Default for RunLength {
    fn default() -> Self {
        RunLength { records: 2_000_000, warmup: 200_000, seed: 1 }
    }
}

impl RunLength {
    /// A scaled copy (used by `--records`-style overrides and quick
    /// tests); warm-up stays at 10%.
    pub fn with_records(records: u64) -> Self {
        RunLength { records, warmup: records / 10, seed: 1 }
    }
}

/// The outcome of replaying one benchmark against one configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfigOutcome {
    /// Configuration label.
    pub label: String,
    /// Post-warm-up miss rate.
    pub miss_rate: f64,
    /// PD hit rate during misses (B-Cache only).
    pub pd_hit_rate_on_miss: Option<f64>,
}

/// Miss rates of one benchmark across configurations, baseline first.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchmarkMissRates {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline (direct-mapped) miss rate.
    pub baseline_miss_rate: f64,
    /// One outcome per non-baseline configuration, in input order.
    pub outcomes: Vec<ConfigOutcome>,
}

impl BenchmarkMissRates {
    /// Relative miss-rate reduction of configuration `i` versus the
    /// baseline, in `[−∞, 1]`.
    pub fn reduction(&self, i: usize) -> f64 {
        if self.baseline_miss_rate == 0.0 {
            0.0
        } else {
            1.0 - self.outcomes[i].miss_rate / self.baseline_miss_rate
        }
    }
}

/// Replays one benchmark against the baseline plus `configs` in a single
/// pass and reports miss rates.
///
/// # Panics
///
/// Panics if a configuration cannot be built at `size_bytes`.
pub fn run_miss_rates(
    profile: &BenchmarkProfile,
    configs: &[CacheConfig],
    size_bytes: usize,
    side: Side,
    len: RunLength,
) -> BenchmarkMissRates {
    let mut baseline = CacheConfig::DirectMapped
        .build(size_bytes, len.seed)
        .expect("baseline geometry is valid");
    let mut models: Vec<Box<dyn CacheModel>> = configs
        .iter()
        .map(|c| c.build(size_bytes, len.seed).expect("config must build"))
        .collect();

    let mut fed = 0u64;
    let mut warmed = false;
    let mut last_line = u64::MAX;
    for (i, rec) in Trace::new(profile, len.seed).take(len.records as usize).enumerate() {
        if !warmed && (i as u64) >= len.warmup {
            warmed = true;
            baseline.reset_stats();
            for m in models.iter_mut() {
                m.reset_stats();
            }
        }
        let access = match side {
            Side::Instruction => {
                let line = rec.pc / 32;
                if line == last_line {
                    None
                } else {
                    last_line = line;
                    Some((rec.pc, AccessKind::InstrFetch))
                }
            }
            Side::Data => rec.op.data_addr().map(|a| {
                (a, if matches!(rec.op, Op::Store(_)) { AccessKind::Write } else { AccessKind::Read })
            }),
        };
        if let Some((addr, kind)) = access {
            fed += 1;
            baseline.access(Addr::new(addr), kind);
            for m in models.iter_mut() {
                m.access(Addr::new(addr), kind);
            }
        }
    }
    debug_assert!(fed > 0, "trace produced no accesses for {side:?}");

    let outcomes = models
        .iter()
        .zip(configs)
        .map(|(m, c)| ConfigOutcome {
            label: c.label(),
            miss_rate: m.stats().miss_rate(),
            // PD statistics need the concrete BalancedCache type; the
            // experiments that want them (Fig. 3, Table 6) use
            // `run_bcache_pd_stats` instead.
            pd_hit_rate_on_miss: None,
        })
        .collect();
    BenchmarkMissRates {
        benchmark: profile.name.to_string(),
        baseline_miss_rate: baseline.stats().miss_rate(),
        outcomes,
    }
}

/// PD statistics of one B-Cache point on one benchmark (used by Fig. 3
/// and Table 6, where the PD hit rate during misses is the headline).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct BCachePdOutcome {
    /// Post-warm-up miss rate.
    pub miss_rate: f64,
    /// PD hit rate during cache misses.
    pub pd_hit_rate_on_miss: f64,
}

/// Replays one benchmark against a single B-Cache and reports both the
/// miss rate and the PD hit rate during misses.
pub fn run_bcache_pd_stats(
    profile: &BenchmarkProfile,
    mf: usize,
    bas: usize,
    size_bytes: usize,
    side: Side,
    len: RunLength,
) -> BCachePdOutcome {
    use bcache_core::BCacheParams;
    use cache_sim::{CacheGeometry, PolicyKind};

    let geom = CacheGeometry::new(size_bytes, 32, 1).expect("valid geometry");
    let params = BCacheParams::new(geom, mf, bas, PolicyKind::Lru).expect("valid B-Cache point");
    let mut bc = BalancedCache::new(params);

    let mut warmed = false;
    let mut last_line = u64::MAX;
    for (i, rec) in Trace::new(profile, len.seed).take(len.records as usize).enumerate() {
        if !warmed && (i as u64) >= len.warmup {
            warmed = true;
            bc.reset_stats();
        }
        match side {
            Side::Instruction => {
                let line = rec.pc / 32;
                if line != last_line {
                    last_line = line;
                    bc.access(Addr::new(rec.pc), AccessKind::InstrFetch);
                }
            }
            Side::Data => {
                if let Some(a) = rec.op.data_addr() {
                    let kind = if matches!(rec.op, Op::Store(_)) {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    };
                    bc.access(Addr::new(a), kind);
                }
            }
        }
    }
    BCachePdOutcome {
        miss_rate: bc.stats().miss_rate(),
        pd_hit_rate_on_miss: bc.pd_stats().pd_hit_rate_on_miss(),
    }
}

/// Arithmetic mean of `f` over a slice (used for the "Ave" bars).
pub fn mean<T>(items: &[T], f: impl Fn(&T) -> f64) -> f64 {
    if items.is_empty() {
        0.0
    } else {
        items.iter().map(f).sum::<f64>() / items.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_gen::profiles;

    fn quick() -> RunLength {
        RunLength::with_records(120_000)
    }

    #[test]
    fn equake_data_side_reproduces_the_headline_ordering() {
        let p = profiles::by_name("equake").unwrap();
        let configs = [
            CacheConfig::SetAssoc(2),
            CacheConfig::SetAssoc(8),
            CacheConfig::BCache { mf: 8, bas: 8 },
        ];
        let r = run_miss_rates(&p, &configs, 16 * 1024, Side::Data, quick());
        assert!(r.baseline_miss_rate > 0.2, "equake thrashes a DM cache");
        let red2 = r.reduction(0);
        let red8 = r.reduction(1);
        let redb = r.reduction(2);
        assert!(red8 > red2, "8-way {red8} must beat 2-way {red2}");
        assert!(redb > 0.5, "B-Cache reduction {redb} should be large on equake");
    }

    #[test]
    fn warmup_reset_reduces_cold_miss_noise() {
        let p = profiles::by_name("gzip").unwrap();
        let cold = run_miss_rates(
            &p,
            &[],
            16 * 1024,
            Side::Instruction,
            RunLength { records: 50_000, warmup: 0, seed: 1 },
        );
        let warm = run_miss_rates(
            &p,
            &[],
            16 * 1024,
            Side::Instruction,
            RunLength { records: 50_000, warmup: 25_000, seed: 1 },
        );
        assert!(warm.baseline_miss_rate <= cold.baseline_miss_rate);
    }

    #[test]
    fn pd_stats_runner_matches_missrate_runner() {
        let p = profiles::by_name("wupwise").unwrap();
        let len = quick();
        let via_grid = run_miss_rates(
            &p,
            &[CacheConfig::BCache { mf: 8, bas: 8 }],
            16 * 1024,
            Side::Data,
            len,
        );
        let via_pd = run_bcache_pd_stats(&p, 8, 8, 16 * 1024, Side::Data, len);
        assert!((via_grid.outcomes[0].miss_rate - via_pd.miss_rate).abs() < 1e-12);
        // wupwise's far conflicts force PD hits on most conflict misses.
        assert!(via_pd.pd_hit_rate_on_miss > 0.3, "{}", via_pd.pd_hit_rate_on_miss);
    }

    #[test]
    fn mean_helper() {
        let xs = [1.0f64, 2.0, 3.0];
        assert!((mean(&xs, |x| *x) - 2.0).abs() < 1e-12);
        assert_eq!(mean::<f64>(&[], |x| *x), 0.0);
    }
}
