//! Shared experiment machinery: trace replay over cache models, warm-up
//! handling, deterministic per-job seeding, and result records.
//!
//! Two replay paths exist and are guaranteed to agree bit-for-bit:
//!
//! * the **streaming** path ([`run_miss_rates`], [`run_bcache_pd_stats`])
//!   generates the trace on the fly and replays every model in one pass
//!   — used by callers that want a single benchmark/config without an
//!   engine;
//! * the **sharded** path ([`replay_config_on`], [`replay_bcache_pd_on`])
//!   replays one model over a pre-extracted [`SideTrace`] (normally an
//!   [`Engine`](crate::parallel::Engine) trace-cache entry) — used by
//!   the parallel experiment drivers. Extracting the side stream once
//!   and sharing it means a sharded job is pure model work; the engine
//!   path costs no more per core than the streaming path.
//!
//! Both build models with the seed derived by
//! [`job_seed`](crate::parallel::job_seed)`(len.seed, benchmark, side)`
//! and feed the identical access stream, so `--jobs N` can never change
//! a number.

use bcache_core::BalancedCache;
use cache_sim::{AccessKind, Addr, CacheModel};
use trace_gen::{BenchmarkProfile, Op, Trace, TraceBuffer, TraceRecord};

use crate::config::CacheConfig;
use crate::parallel::job_seed;

/// Which reference stream of the trace feeds the caches.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Side {
    /// Instruction fetches (one access per fetched 32-byte block).
    Instruction,
    /// Data loads and stores.
    Data,
}

/// How many trace records to generate and how many to treat as warm-up
/// (statistics reset after the warm-up, mirroring the paper's
/// fast-forward).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RunLength {
    /// Total trace records.
    pub records: u64,
    /// Records before statistics are reset.
    pub warmup: u64,
    /// Trace generator seed.
    pub seed: u64,
}

impl Default for RunLength {
    fn default() -> Self {
        RunLength {
            records: 2_000_000,
            warmup: 200_000,
            seed: 1,
        }
    }
}

impl RunLength {
    /// A scaled copy (used by `--records`-style overrides and quick
    /// tests); warm-up stays at 10%.
    pub fn with_records(records: u64) -> Self {
        RunLength {
            records,
            warmup: records / 10,
            seed: 1,
        }
    }
}

/// Converts a record count to `usize`, failing loudly on targets whose
/// address space cannot hold it instead of silently truncating the
/// trace (which a bare `as usize` cast would do on 32-bit).
pub fn record_count(records: u64) -> usize {
    usize::try_from(records)
        .unwrap_or_else(|_| panic!("record count {records} does not fit in usize on this target"))
}

/// Extracts the access stream of one [`Side`] from raw trace records.
///
/// On the instruction side consecutive fetches from the same 32-byte
/// block collapse into one access (the fetch unit reads whole blocks);
/// the collapse state lives here so streaming and sharded replay agree.
#[derive(Copy, Clone, Debug)]
pub struct SideStream {
    side: Side,
    last_line: u64,
}

impl SideStream {
    /// Creates the extractor for `side`.
    pub fn new(side: Side) -> Self {
        SideStream {
            side,
            last_line: u64::MAX,
        }
    }

    /// The cache access (if any) that `rec` produces on this side.
    pub fn access(&mut self, rec: &TraceRecord) -> Option<(Addr, AccessKind)> {
        match self.side {
            Side::Instruction => {
                let line = rec.pc / 32;
                if line == self.last_line {
                    None
                } else {
                    self.last_line = line;
                    Some((Addr::new(rec.pc), AccessKind::InstrFetch))
                }
            }
            Side::Data => rec.op.data_addr().map(|a| {
                let kind = if matches!(rec.op, Op::Store(_)) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                (Addr::new(a), kind)
            }),
        }
    }
}

/// Replays `records` into every model in `models`, feeding the `side`
/// stream and resetting statistics after `warmup` records (the paper's
/// fast-forward stand-in). Returns the number of accesses fed.
pub fn replay_models(
    records: impl IntoIterator<Item = TraceRecord>,
    models: &mut [&mut dyn CacheModel],
    side: Side,
    warmup: u64,
) -> u64 {
    let mut stream = SideStream::new(side);
    let mut fed = 0u64;
    let mut warmed = false;
    for (i, rec) in records.into_iter().enumerate() {
        if !warmed && (i as u64) >= warmup {
            warmed = true;
            for m in models.iter_mut() {
                m.reset_stats();
            }
        }
        if let Some((addr, kind)) = stream.access(&rec) {
            fed += 1;
            for m in models.iter_mut() {
                m.access(addr, kind);
            }
        }
    }
    fed
}

/// Replays `records` into one model (see [`replay_models`]).
pub fn replay(
    records: impl IntoIterator<Item = TraceRecord>,
    model: &mut dyn CacheModel,
    side: Side,
    warmup: u64,
) -> u64 {
    replay_models(records, &mut [model], side, warmup)
}

/// A pre-extracted access stream of one [`Side`]: the filtering and
/// instruction-block collapse of [`SideStream`] applied once, plus the
/// position of the warm-up statistics reset, so replaying it is pure
/// model work — no re-scan of the raw records per configuration.
///
/// Replaying a `SideTrace` is bit-identical to replaying the records it
/// was extracted from: the reset fires between the same two accesses as
/// [`replay_models`]'s record-index check.
#[derive(Clone, Debug, PartialEq)]
pub struct SideTrace {
    accesses: Vec<(Addr, AccessKind)>,
    reset_at: Option<usize>,
}

impl SideTrace {
    /// Extracts the `side` stream of `records`, remembering where the
    /// `warmup`-records statistics reset lands in access terms. `None`
    /// reset (warm-up past the end of the records) stays `None`.
    pub fn extract(
        records: impl IntoIterator<Item = TraceRecord>,
        side: Side,
        warmup: u64,
    ) -> Self {
        let mut stream = SideStream::new(side);
        let mut accesses = Vec::new();
        let mut reset_at = None;
        for (i, rec) in records.into_iter().enumerate() {
            if reset_at.is_none() && (i as u64) >= warmup {
                reset_at = Some(accesses.len());
            }
            if let Some(a) = stream.access(&rec) {
                accesses.push(a);
            }
        }
        SideTrace { accesses, reset_at }
    }

    /// The extracted accesses, in record order.
    pub fn accesses(&self) -> &[(Addr, AccessKind)] {
        &self.accesses
    }

    /// Position of the warm-up statistics reset within
    /// [`Self::accesses`], if the warm-up landed inside the records the
    /// stream was extracted from.
    pub fn reset_at(&self) -> Option<usize> {
        self.reset_at
    }

    /// Replays the stream into every model, resetting statistics at the
    /// recorded warm-up point (exactly like [`replay_models`]).
    ///
    /// Each model consumes the stream through
    /// [`CacheModel::access_batch`] — the monomorphized fast path where
    /// one exists — split at the warm-up reset. Models are independent,
    /// so running them one after another instead of interleaved is
    /// observably identical.
    pub fn replay_into(&self, models: &mut [&mut dyn CacheModel]) {
        for m in models.iter_mut() {
            match self.reset_at {
                // A reset landing after the last access still fires: the
                // record loop reached the warm-up index even though no
                // access followed (the trailing batch is then empty).
                Some(r) => {
                    m.access_batch(&self.accesses[..r]);
                    m.reset_stats();
                    m.access_batch(&self.accesses[r..]);
                }
                None => m.access_batch(&self.accesses),
            }
        }
    }

    /// [`Self::replay_into`] for a single model.
    pub fn replay(&self, model: &mut dyn CacheModel) {
        self.replay_into(&mut [model]);
    }
}

/// The outcome of replaying one benchmark against one configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ConfigOutcome {
    /// Configuration label.
    pub label: String,
    /// Post-warm-up miss rate.
    pub miss_rate: f64,
    /// PD hit rate during misses (B-Cache only).
    pub pd_hit_rate_on_miss: Option<f64>,
}

/// Miss rates of one benchmark across configurations, baseline first.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchmarkMissRates {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline (direct-mapped) miss rate.
    pub baseline_miss_rate: f64,
    /// One outcome per non-baseline configuration, in input order.
    pub outcomes: Vec<ConfigOutcome>,
}

impl BenchmarkMissRates {
    /// Relative miss-rate reduction of configuration `i` versus the
    /// baseline, in `[−∞, 1]`.
    pub fn reduction(&self, i: usize) -> f64 {
        if self.baseline_miss_rate == 0.0 {
            0.0
        } else {
            1.0 - self.outcomes[i].miss_rate / self.baseline_miss_rate
        }
    }
}

/// Replays one benchmark against the baseline plus `configs` in a single
/// streaming pass and reports miss rates.
///
/// Models are seeded with the job seed derived from
/// `(len.seed, profile.name, side)`, exactly like the sharded path, so
/// this function and an [`Engine`](crate::parallel::Engine) sweep agree
/// bit-for-bit.
///
/// # Panics
///
/// Panics if a configuration cannot be built at `size_bytes`.
pub fn run_miss_rates(
    profile: &BenchmarkProfile,
    configs: &[CacheConfig],
    size_bytes: usize,
    side: Side,
    len: RunLength,
) -> BenchmarkMissRates {
    let seed = job_seed(len.seed, profile.name, side);
    let mut baseline = CacheConfig::DirectMapped
        .build(size_bytes, seed)
        .expect("baseline geometry is valid");
    let mut models: Vec<Box<dyn CacheModel>> = configs
        .iter()
        .map(|c| c.build(size_bytes, seed).expect("config must build"))
        .collect();

    {
        let mut all: Vec<&mut dyn CacheModel> = Vec::with_capacity(models.len() + 1);
        all.push(baseline.as_mut());
        all.extend(models.iter_mut().map(|m| m.as_mut() as &mut dyn CacheModel));
        let fed = replay_models(
            Trace::new(profile, len.seed).take(record_count(len.records)),
            &mut all,
            side,
            len.warmup,
        );
        debug_assert!(fed > 0, "trace produced no accesses for {side:?}");
    }

    let outcomes = models
        .iter()
        .zip(configs)
        .map(|(m, c)| ConfigOutcome {
            label: c.label(),
            miss_rate: m.stats().miss_rate(),
            // PD statistics need the concrete BalancedCache type; the
            // experiments that want them (Fig. 3, Table 6) use
            // `run_bcache_pd_stats` instead.
            pd_hit_rate_on_miss: None,
        })
        .collect();
    BenchmarkMissRates {
        benchmark: profile.name.to_string(),
        baseline_miss_rate: baseline.stats().miss_rate(),
        outcomes,
    }
}

/// One sharded job of a miss-rate sweep: replays a single configuration
/// over a pre-extracted side stream and reports its post-warm-up miss
/// rate.
///
/// `benchmark` is the profile name the trace came from; together with
/// `side` it enters the per-job seed derivation so this path agrees
/// bit-for-bit with [`run_miss_rates`].
///
/// # Panics
///
/// Panics if the configuration cannot be built at `size_bytes`.
pub fn replay_config_on(
    benchmark: &str,
    trace: &SideTrace,
    config: &CacheConfig,
    size_bytes: usize,
    side: Side,
    len: RunLength,
) -> f64 {
    let seed = job_seed(len.seed, benchmark, side);
    let mut model = config.build(size_bytes, seed).expect("config must build");
    trace.replay(model.as_mut());
    model.stats().miss_rate()
}

/// [`replay_config_on`] starting from a raw record buffer (extracts the
/// side stream first).
pub fn replay_config(
    benchmark: &str,
    records: &TraceBuffer,
    config: &CacheConfig,
    size_bytes: usize,
    side: Side,
    len: RunLength,
) -> f64 {
    let trace = SideTrace::extract(records.iter(), side, len.warmup);
    replay_config_on(benchmark, &trace, config, size_bytes, side, len)
}

/// Exact post-warm-up counters of one configuration on one benchmark
/// (used by the golden-stats regression tests, where a float would hide
/// one-miss drifts).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ExactCounts {
    /// Post-warm-up accesses fed to the cache.
    pub accesses: u64,
    /// Post-warm-up misses.
    pub misses: u64,
}

/// Replays one configuration over `records` and reports exact counts.
pub fn replay_config_counts(
    benchmark: &str,
    records: &TraceBuffer,
    config: &CacheConfig,
    size_bytes: usize,
    side: Side,
    len: RunLength,
) -> ExactCounts {
    let seed = job_seed(len.seed, benchmark, side);
    let mut model = config.build(size_bytes, seed).expect("config must build");
    replay(records.iter(), model.as_mut(), side, len.warmup);
    let total = model.stats().total();
    ExactCounts {
        accesses: total.accesses(),
        misses: total.misses(),
    }
}

/// PD statistics of one B-Cache point on one benchmark (used by Fig. 3
/// and Table 6, where the PD hit rate during misses is the headline).
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct BCachePdOutcome {
    /// Post-warm-up miss rate.
    pub miss_rate: f64,
    /// PD hit rate during cache misses.
    pub pd_hit_rate_on_miss: f64,
}

fn build_bcache(mf: usize, bas: usize, size_bytes: usize) -> BalancedCache {
    use bcache_core::BCacheParams;
    use cache_sim::{CacheGeometry, PolicyKind};

    let geom = CacheGeometry::new(size_bytes, 32, 1).expect("valid geometry");
    let params = BCacheParams::new(geom, mf, bas, PolicyKind::Lru).expect("valid B-Cache point");
    BalancedCache::new(params)
}

/// Sharded counterpart of [`run_bcache_pd_stats`]: replays one B-Cache
/// point over a pre-extracted side stream. (No seed parameter: the
/// B-Cache's LRU replacement draws no randomness.)
pub fn replay_bcache_pd_on(
    trace: &SideTrace,
    mf: usize,
    bas: usize,
    size_bytes: usize,
) -> BCachePdOutcome {
    let mut bc = build_bcache(mf, bas, size_bytes);
    trace.replay(&mut bc);
    BCachePdOutcome {
        miss_rate: bc.stats().miss_rate(),
        pd_hit_rate_on_miss: bc.pd_stats().pd_hit_rate_on_miss(),
    }
}

/// [`replay_bcache_pd_on`] with a bounded event ring attached: the
/// B-Cache replays the stream while every typed event (PD reprograms,
/// BAS victim choices, misses, set touches) lands in the ring, which is
/// returned together with the cache for `--trace-events` output and
/// usage inspection. The ring only retains the newest `ring_capacity`
/// events (overflow is accounted, not silent), so the post-warm-up tail
/// of a long replay survives.
pub fn replay_bcache_observed(
    trace: &SideTrace,
    mf: usize,
    bas: usize,
    size_bytes: usize,
    ring_capacity: usize,
) -> BalancedCache<telemetry::EventRing> {
    use bcache_core::BCacheParams;
    use cache_sim::{CacheGeometry, PolicyKind};

    let geom = CacheGeometry::new(size_bytes, 32, 1).expect("valid geometry");
    let params = BCacheParams::new(geom, mf, bas, PolicyKind::Lru).expect("valid B-Cache point");
    let mut bc = BalancedCache::with_observer(params, telemetry::EventRing::new(ring_capacity));
    trace.replay(&mut bc);
    bc
}

/// [`replay_bcache_pd_on`] starting from a raw record buffer.
pub fn replay_bcache_pd(
    records: &TraceBuffer,
    mf: usize,
    bas: usize,
    size_bytes: usize,
    side: Side,
    len: RunLength,
) -> BCachePdOutcome {
    let trace = SideTrace::extract(records.iter(), side, len.warmup);
    replay_bcache_pd_on(&trace, mf, bas, size_bytes)
}

/// Replays one benchmark against a single B-Cache (streaming) and
/// reports both the miss rate and the PD hit rate during misses.
pub fn run_bcache_pd_stats(
    profile: &BenchmarkProfile,
    mf: usize,
    bas: usize,
    size_bytes: usize,
    side: Side,
    len: RunLength,
) -> BCachePdOutcome {
    let mut bc = build_bcache(mf, bas, size_bytes);
    replay(
        Trace::new(profile, len.seed).take(record_count(len.records)),
        &mut bc,
        side,
        len.warmup,
    );
    BCachePdOutcome {
        miss_rate: bc.stats().miss_rate(),
        pd_hit_rate_on_miss: bc.pd_stats().pd_hit_rate_on_miss(),
    }
}

/// Arithmetic mean of `f` over a slice (used for the "Ave" bars).
pub fn mean<T>(items: &[T], f: impl Fn(&T) -> f64) -> f64 {
    if items.is_empty() {
        0.0
    } else {
        items.iter().map(f).sum::<f64>() / items.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_gen::profiles;

    fn quick() -> RunLength {
        RunLength::with_records(120_000)
    }

    #[test]
    fn equake_data_side_reproduces_the_headline_ordering() {
        let p = profiles::by_name("equake").unwrap();
        let configs = [
            CacheConfig::SetAssoc(2),
            CacheConfig::SetAssoc(8),
            CacheConfig::BCache { mf: 8, bas: 8 },
        ];
        let r = run_miss_rates(&p, &configs, 16 * 1024, Side::Data, quick());
        assert!(r.baseline_miss_rate > 0.2, "equake thrashes a DM cache");
        let red2 = r.reduction(0);
        let red8 = r.reduction(1);
        let redb = r.reduction(2);
        assert!(red8 > red2, "8-way {red8} must beat 2-way {red2}");
        assert!(
            redb > 0.5,
            "B-Cache reduction {redb} should be large on equake"
        );
    }

    #[test]
    fn warmup_reset_reduces_cold_miss_noise() {
        let p = profiles::by_name("gzip").unwrap();
        let cold = run_miss_rates(
            &p,
            &[],
            16 * 1024,
            Side::Instruction,
            RunLength {
                records: 50_000,
                warmup: 0,
                seed: 1,
            },
        );
        let warm = run_miss_rates(
            &p,
            &[],
            16 * 1024,
            Side::Instruction,
            RunLength {
                records: 50_000,
                warmup: 25_000,
                seed: 1,
            },
        );
        assert!(warm.baseline_miss_rate <= cold.baseline_miss_rate);
    }

    #[test]
    fn pd_stats_runner_matches_missrate_runner() {
        let p = profiles::by_name("wupwise").unwrap();
        let len = quick();
        let via_grid = run_miss_rates(
            &p,
            &[CacheConfig::BCache { mf: 8, bas: 8 }],
            16 * 1024,
            Side::Data,
            len,
        );
        let via_pd = run_bcache_pd_stats(&p, 8, 8, 16 * 1024, Side::Data, len);
        assert!((via_grid.outcomes[0].miss_rate - via_pd.miss_rate).abs() < 1e-12);
        // wupwise's far conflicts force PD hits on most conflict misses.
        assert!(
            via_pd.pd_hit_rate_on_miss > 0.3,
            "{}",
            via_pd.pd_hit_rate_on_miss
        );
    }

    #[test]
    fn sharded_replay_matches_streaming_replay_exactly() {
        // The parallel drivers replay cached records one config at a
        // time; the streaming path replays every model in one pass.
        // They must agree to the last bit.
        let p = profiles::by_name("vpr").unwrap();
        let len = RunLength::with_records(60_000);
        let configs = [
            CacheConfig::SetAssoc(4),
            CacheConfig::Victim(16),
            CacheConfig::BCache { mf: 8, bas: 8 },
        ];
        for side in [Side::Data, Side::Instruction] {
            let streaming = run_miss_rates(&p, &configs, 16 * 1024, side, len);
            let records = Trace::new(&p, len.seed).take_buffer(len.records as usize);
            let base = replay_config(
                p.name,
                &records,
                &CacheConfig::DirectMapped,
                16 * 1024,
                side,
                len,
            );
            assert_eq!(streaming.baseline_miss_rate, base, "{side:?} baseline");
            for (i, c) in configs.iter().enumerate() {
                let mr = replay_config(p.name, &records, c, 16 * 1024, side, len);
                assert_eq!(
                    streaming.outcomes[i].miss_rate,
                    mr,
                    "{side:?} {}",
                    c.label()
                );
            }
        }
    }

    #[test]
    fn sharded_pd_replay_matches_streaming() {
        let p = profiles::by_name("wupwise").unwrap();
        let len = RunLength::with_records(50_000);
        let records = Trace::new(&p, len.seed).take_buffer(len.records as usize);
        let a = run_bcache_pd_stats(&p, 8, 8, 16 * 1024, Side::Data, len);
        let b = replay_bcache_pd(&records, 8, 8, 16 * 1024, Side::Data, len);
        assert_eq!(a, b);
    }

    #[test]
    fn observed_bcache_replay_matches_plain_replay() {
        use telemetry::Event;
        let p = profiles::by_name("mcf").unwrap();
        let len = RunLength::with_records(40_000);
        let records = Trace::new(&p, len.seed).take_buffer(len.records as usize);
        let trace = SideTrace::extract(records.iter(), Side::Data, len.warmup);
        let plain = replay_bcache_pd_on(&trace, 8, 8, 16 * 1024);
        let observed = replay_bcache_observed(&trace, 8, 8, 16 * 1024, 4096);
        // Instrumentation must not perturb the simulation.
        assert_eq!(observed.stats().miss_rate(), plain.miss_rate);
        assert_eq!(
            observed.pd_stats().pd_hit_rate_on_miss(),
            plain.pd_hit_rate_on_miss
        );
        let ring = observed.observer();
        assert!(ring.pushed() > 0, "replay must emit events");
        assert!(ring.len() <= 4096);
        // The ring retains the newest events; any overflow is accounted.
        assert_eq!(ring.dropped() + ring.len() as u64, ring.pushed());
        assert!(ring
            .iter()
            .any(|(_, e)| matches!(e, Event::SetTouch { .. })));
    }

    #[test]
    fn exact_counts_are_consistent_with_miss_rates() {
        let p = profiles::by_name("gzip").unwrap();
        let len = RunLength::with_records(40_000);
        let records = Trace::new(&p, len.seed).take_buffer(len.records as usize);
        let c = CacheConfig::DirectMapped;
        let counts = replay_config_counts(p.name, &records, &c, 16 * 1024, Side::Data, len);
        let rate = replay_config(p.name, &records, &c, 16 * 1024, Side::Data, len);
        assert!(counts.accesses > 0 && counts.misses <= counts.accesses);
        assert!((counts.misses as f64 / counts.accesses as f64 - rate).abs() < 1e-15);
    }

    #[test]
    fn side_trace_replay_matches_record_replay() {
        // Extracting once and replaying the access stream must land the
        // warm-up reset between the same two accesses as the
        // record-index check of `replay_models`.
        let p = profiles::by_name("ammp").unwrap();
        let len = RunLength {
            records: 30_000,
            warmup: 7_000,
            seed: 3,
        };
        let records = Trace::new(&p, len.seed).take_buffer(len.records as usize);
        for side in [Side::Data, Side::Instruction] {
            let trace = SideTrace::extract(records.iter(), side, len.warmup);
            let seed = job_seed(len.seed, p.name, side);
            let mut via_records = CacheConfig::SetAssoc(4).build(16 * 1024, seed).unwrap();
            let mut via_trace = CacheConfig::SetAssoc(4).build(16 * 1024, seed).unwrap();
            let fed = replay(records.iter(), via_records.as_mut(), side, len.warmup);
            trace.replay(via_trace.as_mut());
            assert_eq!(trace.accesses().len() as u64, fed, "{side:?}");
            assert_eq!(
                via_records.stats().total().misses(),
                via_trace.stats().total().misses(),
                "{side:?}"
            );
            assert_eq!(
                via_records.stats().total().accesses(),
                via_trace.stats().total().accesses(),
                "{side:?}"
            );
        }
    }

    #[test]
    fn instruction_side_collapses_same_block_fetches() {
        let mut s = SideStream::new(Side::Instruction);
        let rec = |pc: u64| TraceRecord { pc, op: Op::Alu };
        assert!(s.access(&rec(0)).is_some());
        assert!(s.access(&rec(4)).is_none(), "same 32-byte block");
        assert!(s.access(&rec(32)).is_some(), "next block fetches");
        assert!(s.access(&rec(0)).is_some(), "returning re-fetches");
    }

    #[test]
    fn mean_helper() {
        let xs = [1.0f64, 2.0, 3.0];
        assert!((mean(&xs, |x| *x) - 2.0).abs() < 1e-12);
        assert_eq!(mean::<f64>(&[], |x| *x), 0.0);
    }
}
