//! The parallel experiment engine: a supervised scoped-thread job pool,
//! a shared trace cache, and deterministic per-job seed derivation.
//!
//! Every figure and table of the reproduction is a cross-product of
//! (benchmark profile × reference side × cache configuration). The
//! [`Engine`] shards that cross-product into independent jobs, runs
//! them on a pool of scoped worker threads (std-only: no external
//! crates), and hands results back **in input order**, so aggregation
//! is canonical and the output is bit-identical regardless of thread
//! count or scheduling.
//!
//! Three properties make the engine deterministic:
//!
//! 1. **Jobs are pure.** A job reads its inputs (profile, config, run
//!    length) and a shared immutable trace; it never touches mutable
//!    shared state. Purity is also what makes jobs safely *re-runnable*
//!    after a failure.
//! 2. **Seeds are derived, not drawn.** Each job's model seed comes
//!    from [`job_seed`]`(RunLength.seed, benchmark, side)` — a pure
//!    hash of the job's identity — never from a shared RNG or from
//!    scheduling order.
//! 3. **Aggregation is positional.** [`Engine::run`] returns results
//!    in the order jobs were submitted, however they interleaved.
//!
//! On top of the pool sits a **robustness layer**:
//!
//! * every job body runs under `catch_unwind`, so one panicking shard
//!   cannot poison the pool — and every shared mutex is accessed
//!   through a poison-recovering guard, so the *first* failure's
//!   message is the one that surfaces;
//! * failed attempts are retried with deterministic exponential
//!   backoff, bounded by [`RunPolicy::max_attempts`];
//! * a watchdog thread flags jobs that exceed
//!   [`RunPolicy::timeout_ms`] and requests cooperative cancellation
//!   (std threads cannot be killed; genuinely runaway jobs are logged);
//! * a deterministic [`FaultPlan`] (`--inject-fault`) can make chosen
//!   jobs panic, hang, or return corrupt results — the test harness for
//!   all of the above;
//! * completed results can be persisted through an attached
//!   [`Checkpoint`](crate::checkpoint::Checkpoint)
//!   ([`Engine::run_checkpointed`]), so an interrupted sweep resumes
//!   byte-identically via `--resume`.
//!
//! Failure accounting lands in a dedicated [`Recorder`] section (every
//! key is prefixed `engine.`) and as typed
//! [`Event::JobFailure`](telemetry::Event) records, so a degraded run
//! is visible in `run`/`stats` reports without perturbing the
//! deterministic simulation counters of a fault-free run.

use std::any::Any;
use std::collections::{HashMap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, LockResult, Mutex, MutexGuard, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

use telemetry::{tele_info, tele_warn, Event, EventRing, FailureKind, Recorder, SpanId, SpanLog};
use trace_gen::{BenchmarkProfile, Trace, TraceBuffer};

use crate::checkpoint::{Checkpoint, CheckpointValue};
use crate::run::{record_count, RunLength, Side, SideTrace};

/// Capacity of the engine's failure-event ring: far above any plausible
/// retry volume, still bounded.
const FAULT_EVENT_CAPACITY: usize = 1024;

/// Locks a mutex, recovering from poisoning.
///
/// Every engine mutex only guards data that stays consistent across a
/// panic (memoization maps, result slots written in one assignment,
/// append-only recorders), so a poisoned lock is safe to enter. Using
/// this instead of `.expect("… lock")` means a panicking job surfaces
/// *its own* message rather than cascading "lock poisoned" panics
/// through every other worker.
fn recover<T>(result: LockResult<MutexGuard<'_, T>>) -> MutexGuard<'_, T> {
    result.unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Extracts a human-readable message from a panic payload (the `&str`
/// or `String` carried by `panic!`), used when reporting job failures.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// Derives the deterministic seed of one experiment job from the sweep
/// seed and the job's identity.
///
/// The derivation is a pure function — FNV-1a over the benchmark name
/// and side tag folded with the base seed, finalized with a SplitMix64
/// mix — so the same job always receives the same seed while distinct
/// jobs in a sweep receive distinct, decorrelated seeds. Nothing about
/// thread count or scheduling order can influence it.
pub fn job_seed(base: u64, benchmark: &str, side: Side) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in benchmark.bytes() {
        eat(b);
    }
    // A separator byte keeps "abc"+I from colliding with "ab"+<c-ish>.
    eat(0xFF);
    eat(match side {
        Side::Instruction => 0x49, // 'I'
        Side::Data => 0x44,        // 'D'
    });
    // Fold in the base seed and finalize (SplitMix64 mixer) so that
    // consecutive base seeds still produce decorrelated outputs.
    let mut z = h ^ base.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Memoized trace generation, keyed by `(profile name, records, seed)`,
/// plus memoized per-side access streams keyed additionally by
/// `(warmup, side)`.
///
/// The first job that needs a trace synthesizes it (other requesters
/// block on the same entry rather than duplicating the work); later
/// jobs replay the shared, immutable buffer. The same applies to the
/// extracted [`SideTrace`] streams: the per-side filtering and
/// instruction-block collapse run once per `(profile, len, side)`, so
/// every config job of a sweep is pure model work. Traces are held as
/// packed [`TraceBuffer`] columns (17 bytes/record instead of 24), so a
/// full-length (2M-record) trace is ~34 MB and a whole 26-benchmark
/// sweep holds under 1 GB — call [`TraceCache::clear`] between
/// experiments if that matters.
///
/// All lock accesses recover from poisoning: if a generation panics,
/// its `OnceLock` cell stays uninitialized (retryable) and concurrent
/// readers keep working instead of cascading the panic.
#[derive(Debug, Default)]
pub struct TraceCache {
    entries: Mutex<HashMap<(String, u64, u64), Arc<OnceLock<Arc<TraceBuffer>>>>>,
    sides: SideMap,
    // Wall-clock spans of trace generation and side extraction. Timing
    // is inherently non-deterministic (and whether an extraction reads
    // cached records or streams from the generator depends on
    // scheduling), so this feeds ONLY the recorder's `timing` section —
    // never the deterministic counters/histograms.
    timing: Mutex<Recorder>,
}

type SideMap = Mutex<HashMap<(String, u64, u64, u64, bool), Arc<OnceLock<Arc<SideTrace>>>>>;

impl TraceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the trace of `profile` at `len`, generating it on first
    /// use.
    pub fn get(&self, profile: &BenchmarkProfile, len: RunLength) -> Arc<TraceBuffer> {
        let key = (profile.name.to_string(), len.records, len.seed);
        let cell = recover(self.entries.lock()).entry(key).or_default().clone();
        // Generation happens outside the map lock; concurrent callers
        // of the same key block on the OnceLock, not on the whole map.
        cell.get_or_init(|| {
            let start = Instant::now();
            let buf =
                Arc::new(Trace::new(profile, len.seed).take_buffer(record_count(len.records)));
            recover(self.timing.lock()).record_span("phase.trace_gen", start.elapsed());
            buf
        })
        .clone()
    }

    /// Returns the extracted `side` access stream of `profile` at
    /// `len`, extracting it on first use. Keyed additionally by
    /// `len.warmup` because the warm-up reset position is baked into
    /// the stream.
    ///
    /// If the raw records are already cached (a [`Self::get`] caller
    /// wanted them) the extraction reads them; otherwise it streams
    /// straight from the generator without materializing the record
    /// buffer — miss-rate sweeps only ever need the (much smaller)
    /// access streams.
    pub fn side(&self, profile: &BenchmarkProfile, len: RunLength, side: Side) -> Arc<SideTrace> {
        let key = (
            profile.name.to_string(),
            len.records,
            len.seed,
            len.warmup,
            side == Side::Data,
        );
        let cell = recover(self.sides.lock()).entry(key).or_default().clone();
        cell.get_or_init(|| {
            let start = Instant::now();
            let cached_records = {
                let entries = recover(self.entries.lock());
                entries
                    .get(&(profile.name.to_string(), len.records, len.seed))
                    .and_then(|c| c.get().cloned())
            };
            let trace = match cached_records {
                Some(records) => SideTrace::extract(records.iter(), side, len.warmup),
                None => SideTrace::extract(
                    Trace::new(profile, len.seed).take(record_count(len.records)),
                    side,
                    len.warmup,
                ),
            };
            recover(self.timing.lock()).record_span("phase.trace_extract", start.elapsed());
            Arc::new(trace)
        })
        .clone()
    }

    /// A snapshot of the accumulated trace-generation/extraction span
    /// timings (see the `timing` field note: wall-clock only).
    pub fn timing_snapshot(&self) -> Recorder {
        recover(self.timing.lock()).clone()
    }

    /// Number of distinct traces currently cached.
    pub fn len(&self) -> usize {
        recover(self.entries.lock()).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached trace and extracted side stream.
    pub fn clear(&self) {
        recover(self.entries.lock()).clear();
        recover(self.sides.lock()).clear();
    }
}

/// Retry/backoff/timeout policy of [`Engine::run`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RunPolicy {
    /// Total attempts per job (first try + retries), minimum 1.
    /// `--retries N` maps to `N + 1`.
    pub max_attempts: u32,
    /// Base backoff before retry `k` (1-based): `backoff_ms << (k-1)`
    /// milliseconds, shift capped at 6. Deterministic by construction —
    /// the delay schedule depends only on the attempt number.
    pub backoff_ms: u64,
    /// Per-job wall-clock budget enforced by the watchdog. Injected
    /// hangs honor it cooperatively; a genuinely runaway job can only
    /// be flagged (std threads are not cancellable).
    pub timeout_ms: u64,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            max_attempts: 3,
            backoff_ms: 25,
            timeout_ms: 60_000,
        }
    }
}

impl RunPolicy {
    /// A policy with no retries — the fuzz driver uses it because a
    /// panic in a fuzz case is a finding, not a transient fault.
    pub fn fail_fast() -> Self {
        RunPolicy {
            max_attempts: 1,
            ..RunPolicy::default()
        }
    }

    /// The backoff delay before retry attempt `attempt` (1-based).
    fn backoff(&self, attempt: u32) -> Duration {
        let shift = attempt.saturating_sub(1).min(6);
        Duration::from_millis(self.backoff_ms.saturating_mul(1 << shift))
    }
}

/// How an injected fault manifests.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// The job attempt fails as if its body panicked.
    Panic,
    /// The job attempt blocks until cancelled by the watchdog or the
    /// per-job timeout elapses, then fails as a timeout.
    Hang,
    /// The job attempt runs to completion but its result is discarded
    /// as corrupt.
    Corrupt,
}

/// One deterministic fault injection: job ordinal `job` fails with
/// `mode` on its first `times` attempts (so the default `times = 1`
/// fails once and recovers on retry).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Global job ordinal to hit (submission order across the engine's
    /// lifetime — independent of `--jobs`).
    pub job: u64,
    /// How the attempt fails.
    pub mode: FaultMode,
    /// Number of leading attempts to fail.
    pub times: u32,
}

impl FaultSpec {
    /// Parses a `--inject-fault` spec:
    /// `job=K,mode=panic|hang|corrupt[,times=N]`.
    pub fn parse(spec: &str) -> Result<FaultSpec, String> {
        let mut job = None;
        let mut mode = None;
        let mut times = 1u32;
        for clause in spec.split(',') {
            let (key, value) = clause.split_once('=').ok_or_else(|| {
                format!("--inject-fault: malformed clause {clause:?} (want key=value)")
            })?;
            match key.trim() {
                "job" => {
                    job = Some(value.trim().parse::<u64>().map_err(|_| {
                        format!("--inject-fault: job wants an integer, got {value:?}")
                    })?)
                }
                "mode" => {
                    mode = Some(match value.trim() {
                        "panic" => FaultMode::Panic,
                        "hang" => FaultMode::Hang,
                        "corrupt" => FaultMode::Corrupt,
                        other => {
                            return Err(format!(
                                "--inject-fault: unknown mode {other:?} (panic|hang|corrupt)"
                            ))
                        }
                    })
                }
                "times" => {
                    times = value.trim().parse().map_err(|_| {
                        format!("--inject-fault: times wants an integer, got {value:?}")
                    })?
                }
                other => return Err(format!("--inject-fault: unknown key {other:?}")),
            }
        }
        Ok(FaultSpec {
            job: job.ok_or("--inject-fault needs job=K")?,
            mode: mode.ok_or("--inject-fault needs mode=panic|hang|corrupt")?,
            times,
        })
    }
}

/// The set of injected faults an engine consults before each attempt.
/// Empty by default; pure — whether `(ordinal, attempt)` is faulted can
/// never depend on scheduling.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan injecting `specs`.
    pub fn new(specs: Vec<FaultSpec>) -> Self {
        FaultPlan { specs }
    }

    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The fault (if any) for attempt `attempt` of job `ordinal`.
    fn fault_for(&self, ordinal: u64, attempt: u32) -> Option<FaultMode> {
        self.specs
            .iter()
            .find(|s| s.job == ordinal && attempt < s.times)
            .map(|s| s.mode)
    }
}

/// One failed job attempt, as the supervisor recorded it.
struct JobError {
    kind: FailureKind,
    message: String,
    /// The original panic payload, when the failure was a real panic —
    /// re-raised verbatim if the job fails permanently so callers see
    /// the first failure's message.
    payload: Option<Box<dyn Any + Send>>,
}

/// Shared state of one [`Engine::run`] invocation.
struct RunState<'a, T, F> {
    jobs: &'a [F],
    /// Global ordinal of job index 0 in this batch.
    base: u64,
    /// Pending `(job index, attempt, enqueue instant)` work items; the
    /// instant feeds the queue-wait span.
    queue: Mutex<VecDeque<(usize, u32, Instant)>>,
    /// Positional result slots.
    slots: Vec<Mutex<Option<T>>>,
    /// Jobs not yet finished (successfully or permanently).
    remaining: AtomicUsize,
    /// First permanent failure; set once, stops the pool.
    fatal: Mutex<Option<JobError>>,
    /// Per-job cooperative cancellation tokens (watchdog → job).
    cancel: Vec<AtomicBool>,
    /// Per-job start instants of the attempt in flight (for the
    /// watchdog), `None` when the job is not running.
    started: Vec<Mutex<Option<Instant>>>,
}

/// The parallel experiment engine: a supervised worker pool plus a
/// [`TraceCache`].
#[derive(Debug)]
pub struct Engine {
    jobs: usize,
    traces: TraceCache,
    policy: RunPolicy,
    faults: FaultPlan,
    /// Jobs ever submitted — the source of global job ordinals, which
    /// is what fault specs and checkpoint keys address.
    submitted: AtomicU64,
    /// Failure accounting (`engine.*` counters). Empty on a fault-free
    /// run, so merging it cannot perturb golden metrics.
    failures: Mutex<Recorder>,
    /// Typed failure events (bounded ring).
    fault_events: Mutex<EventRing>,
    /// Optional checkpoint store for [`Engine::run_checkpointed`].
    checkpoint: Mutex<Option<Checkpoint>>,
    /// Hierarchical wall-clock spans of every `run` (queue wait,
    /// backoff, execution, watchdog) — the Chrome-trace substrate.
    /// Wall-clock, hence excluded from golden comparisons.
    spans: Mutex<SpanLog>,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::with_default_parallelism()
    }
}

impl Engine {
    /// Creates an engine running at most `jobs` worker threads
    /// (clamped to at least 1) under the default [`RunPolicy`].
    pub fn new(jobs: usize) -> Self {
        Engine {
            jobs: jobs.max(1),
            traces: TraceCache::new(),
            policy: RunPolicy::default(),
            faults: FaultPlan::default(),
            submitted: AtomicU64::new(0),
            failures: Mutex::new(Recorder::new()),
            fault_events: Mutex::new(EventRing::new(FAULT_EVENT_CAPACITY)),
            checkpoint: Mutex::new(None),
            spans: Mutex::new(SpanLog::new()),
        }
    }

    /// Creates an engine sized to the machine
    /// ([`std::thread::available_parallelism`]).
    pub fn with_default_parallelism() -> Self {
        Engine::new(default_parallelism())
    }

    /// Replaces the retry/backoff/timeout policy.
    pub fn with_policy(mut self, policy: RunPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The worker-thread budget.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The active retry/backoff/timeout policy.
    pub fn policy(&self) -> RunPolicy {
        self.policy
    }

    /// The shared trace cache.
    pub fn traces(&self) -> &TraceCache {
        &self.traces
    }

    /// A snapshot of the engine's wall-clock phase timings (trace
    /// generation and side extraction). These merge into a recorder's
    /// non-deterministic `timing` section only.
    pub fn timing_snapshot(&self) -> Recorder {
        self.traces.timing_snapshot()
    }

    /// A snapshot of the failure accounting: `engine.job_failures`,
    /// `engine.job_retries`, `engine.job_panics`,
    /// `engine.job_timeouts`, `engine.job_corrupt_results`,
    /// `engine.jobs_recovered`, `engine.jobs_failed_permanently`, and
    /// `engine.checkpoint_hits`. Empty for a clean run.
    pub fn failure_snapshot(&self) -> Recorder {
        recover(self.failures.lock()).clone()
    }

    /// A snapshot of the typed failure events.
    pub fn fault_events_snapshot(&self) -> EventRing {
        recover(self.fault_events.lock()).clone()
    }

    /// A snapshot of the hierarchical engine spans recorded so far:
    /// one `engine.run` root per [`Engine::run`] batch, with per-job
    /// queue-wait, attempt, backoff, and execution children, plus a
    /// watchdog span on threaded runs. Wall-clock data — feed it to
    /// [`telemetry::chrome_trace_json`], never to golden comparisons.
    pub fn span_snapshot(&self) -> SpanLog {
        recover(self.spans.lock()).clone()
    }

    /// Whether any job attempt has failed on this engine.
    pub fn degraded(&self) -> bool {
        self.failure_snapshot().counter_value("engine.job_failures") > 0
    }

    /// Attaches a checkpoint store; subsequent
    /// [`Engine::run_checkpointed`] calls read and persist through it.
    pub fn attach_checkpoint(&self, checkpoint: Checkpoint) {
        *recover(self.checkpoint.lock()) = Some(checkpoint);
    }

    /// Whether a checkpoint store is attached.
    pub fn has_checkpoint(&self) -> bool {
        recover(self.checkpoint.lock()).is_some()
    }

    /// Flushes the attached checkpoint (if any) to disk, logging — not
    /// raising — write errors, so a flush on the failure path cannot
    /// mask the original error.
    pub fn checkpoint_flush(&self) {
        if let Some(ckpt) = recover(self.checkpoint.lock()).as_mut() {
            if let Err(e) = ckpt.flush() {
                tele_warn!(
                    "engine: cannot flush checkpoint {}: {e}",
                    ckpt.path().display()
                );
            }
        }
    }

    /// Convenience: the trace of `profile` at `len` from the shared
    /// cache.
    pub fn trace(&self, profile: &BenchmarkProfile, len: RunLength) -> Arc<TraceBuffer> {
        self.traces.get(profile, len)
    }

    /// Convenience: the extracted `side` stream of `profile` at `len`
    /// from the shared cache.
    pub fn side_trace(
        &self,
        profile: &BenchmarkProfile,
        len: RunLength,
        side: Side,
    ) -> Arc<SideTrace> {
        self.traces.side(profile, len, side)
    }

    /// Runs every job and returns their results **in input order**.
    ///
    /// Jobs are pulled from a shared queue by `min(self.jobs, #jobs)`
    /// supervised workers; with a budget of 1 the same supervised loop
    /// runs inline on the caller thread. Either way the result vector
    /// is positionally identical, which is what makes experiment output
    /// independent of `--jobs`.
    ///
    /// Each attempt runs under `catch_unwind`; a failed attempt
    /// (panic, timeout, injected fault) is retried with deterministic
    /// backoff up to [`RunPolicy::max_attempts`]. Jobs must therefore
    /// be `Fn` (re-callable) and pure — retrying a pure job is
    /// observationally identical to it having succeeded the first time,
    /// so `--jobs N` and fault injection can never change a number.
    ///
    /// # Panics
    ///
    /// If a job exhausts its attempts, the attached checkpoint (if
    /// any) is flushed and the **first** permanent failure is re-raised
    /// — the original panic payload when there is one.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: Fn() -> T + Send + Sync,
    {
        let n = jobs.len();
        let base = self.submitted.fetch_add(n as u64, Ordering::Relaxed);
        if n == 0 {
            return Vec::new();
        }
        let run_start = Instant::now();
        let state = RunState {
            jobs: &jobs,
            base,
            queue: Mutex::new((0..n).map(|i| (i, 0, run_start)).collect()),
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            remaining: AtomicUsize::new(n),
            fatal: Mutex::new(None),
            cancel: (0..n).map(|_| AtomicBool::new(false)).collect(),
            started: (0..n).map(|_| Mutex::new(None)).collect(),
        };

        let root = recover(self.spans.lock()).reserve();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            // Inline supervised path: same loop, no threads. Injected
            // hangs still time out (they watch their own deadline), so
            // no watchdog is needed.
            self.worker_loop(&state, root, 1);
        } else {
            let state = &state;
            thread::scope(|s| {
                for w in 0..workers {
                    let tid = w as u64 + 1;
                    s.spawn(move || self.worker_loop(state, root, tid));
                }
                s.spawn(move || self.watchdog(state, root));
            });
        }
        recover(self.spans.lock()).record(root, None, "engine.run", 0, run_start, Instant::now());

        if let Some(err) = recover(state.fatal.lock()).take() {
            // Persist whatever completed before surfacing the failure,
            // so a --resume run can skip the finished jobs.
            self.checkpoint_flush();
            match err.payload {
                Some(payload) => panic::resume_unwind(payload),
                None => panic!("{}", err.message),
            }
        }
        state
            .slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .expect("every job stores its result")
            })
            .collect()
    }

    /// [`Engine::run`] with per-job checkpoint identities.
    ///
    /// With no checkpoint attached this is exactly `run`. With one,
    /// each job is addressed as `scope/key`: already-persisted results
    /// are decoded and returned without re-running the job (counted as
    /// `engine.checkpoint_hits`), and fresh results are persisted as
    /// they complete — so killing a sweep and re-running it with
    /// `--resume` replays only the remainder, byte-identically.
    pub fn run_checkpointed<T, F>(&self, scope: &str, jobs: Vec<(String, F)>) -> Vec<T>
    where
        T: Send + Sync + Clone + CheckpointValue,
        F: Fn() -> T + Send + Sync,
    {
        if !self.has_checkpoint() {
            return self.run(jobs.into_iter().map(|(_, f)| f).collect());
        }
        type Job<'a, T> = Box<dyn Fn() -> T + Send + Sync + 'a>;
        let wrapped: Vec<Job<'_, T>> = jobs
            .into_iter()
            .map(|(key, f)| {
                let full = format!("{scope}/{key}");
                let cached: Option<T> = recover(self.checkpoint.lock())
                    .as_ref()
                    .and_then(|c| c.get(&full))
                    .and_then(|encoded| T::decode(&encoded));
                match cached {
                    Some(v) => {
                        recover(self.failures.lock()).counter("engine.checkpoint_hits", 1);
                        Box::new(move || v.clone()) as Job<'_, T>
                    }
                    None => Box::new(move || {
                        let v = f();
                        self.checkpoint_store(&full, &v.encode());
                        v
                    }),
                }
            })
            .collect();
        self.run(wrapped)
    }

    /// Persists one completed job result through the attached
    /// checkpoint. Write errors degrade to warnings — a broken disk
    /// must not fail a sweep that is otherwise succeeding.
    fn checkpoint_store(&self, key: &str, encoded: &str) {
        if let Some(ckpt) = recover(self.checkpoint.lock()).as_mut() {
            if let Err(e) = ckpt.put(key, encoded) {
                tele_warn!("engine: cannot persist checkpoint entry {key}: {e}");
            }
        }
    }

    /// The supervised worker loop: pop, back off on retries, execute
    /// under `catch_unwind`, account failures, requeue or go fatal.
    /// Every attempt is recorded as a `job{i}.a{attempt}` span (child
    /// of `root`) with `backoff`/`exec` children, preceded by a
    /// `job{i}.wait` span covering the time spent queued.
    fn worker_loop<T, F>(&self, state: &RunState<'_, T, F>, root: SpanId, tid: u64)
    where
        T: Send,
        F: Fn() -> T + Send + Sync,
    {
        let max_attempts = self.policy.max_attempts.max(1);
        loop {
            if recover(state.fatal.lock()).is_some() {
                break;
            }
            let next = recover(state.queue.lock()).pop_front();
            let Some((i, attempt, queued)) = next else {
                if state.remaining.load(Ordering::Acquire) == 0 {
                    break;
                }
                // Jobs are in flight elsewhere and may requeue; yield.
                thread::sleep(Duration::from_millis(1));
                continue;
            };
            let popped = Instant::now();
            let umbrella = {
                let mut spans = recover(self.spans.lock());
                spans.push(Some(root), format!("job{i}.wait"), tid, queued, popped);
                spans.reserve()
            };
            if attempt > 0 {
                let backoff_start = Instant::now();
                thread::sleep(self.policy.backoff(attempt));
                recover(self.spans.lock()).push(
                    Some(umbrella),
                    "backoff",
                    tid,
                    backoff_start,
                    Instant::now(),
                );
            }
            let ordinal = state.base + i as u64;
            state.cancel[i].store(false, Ordering::Release);
            let exec_start = Instant::now();
            *recover(state.started[i].lock()) = Some(exec_start);
            let result = self.execute_one(&state.jobs[i], ordinal, attempt, &state.cancel[i]);
            *recover(state.started[i].lock()) = None;
            {
                let end = Instant::now();
                let mut spans = recover(self.spans.lock());
                spans.push(Some(umbrella), "exec", tid, exec_start, end);
                spans.record(
                    umbrella,
                    Some(root),
                    format!("job{i}.a{attempt}"),
                    tid,
                    popped,
                    end,
                );
            }
            match result {
                Ok(value) => {
                    *recover(state.slots[i].lock()) = Some(value);
                    if attempt > 0 {
                        recover(self.failures.lock()).counter("engine.jobs_recovered", 1);
                        tele_info!("engine: job {ordinal} recovered on attempt {}", attempt + 1);
                    }
                    state.remaining.fetch_sub(1, Ordering::AcqRel);
                }
                Err(err) => {
                    let will_retry = attempt + 1 < max_attempts;
                    self.note_failure(ordinal, attempt, &err, will_retry);
                    if will_retry {
                        recover(state.queue.lock()).push_back((i, attempt + 1, Instant::now()));
                    } else {
                        let mut fatal = recover(state.fatal.lock());
                        if fatal.is_none() {
                            *fatal = Some(err);
                        }
                        drop(fatal);
                        state.remaining.fetch_sub(1, Ordering::AcqRel);
                    }
                }
            }
        }
    }

    /// Runs one attempt of one job, consulting the fault plan first.
    fn execute_one<T, F>(
        &self,
        job: &F,
        ordinal: u64,
        attempt: u32,
        cancel: &AtomicBool,
    ) -> Result<T, JobError>
    where
        F: Fn() -> T,
    {
        match self.faults.fault_for(ordinal, attempt) {
            Some(FaultMode::Panic) => Err(JobError {
                kind: FailureKind::Panic,
                message: format!("injected panic (job {ordinal}, attempt {attempt})"),
                payload: None,
            }),
            Some(FaultMode::Hang) => {
                // Cooperative hang: honors the watchdog's cancel token
                // and its own deadline, whichever fires first — so the
                // inline (single-worker) path times out too.
                let start = Instant::now();
                let timeout = Duration::from_millis(self.policy.timeout_ms);
                while !cancel.load(Ordering::Acquire) && start.elapsed() < timeout {
                    thread::sleep(Duration::from_millis(1));
                }
                Err(JobError {
                    kind: FailureKind::Timeout,
                    message: format!(
                        "job {ordinal} timed out after {} ms (attempt {attempt})",
                        self.policy.timeout_ms
                    ),
                    payload: None,
                })
            }
            Some(FaultMode::Corrupt) => {
                // Run the real job so the fault costs what a genuine
                // corrupt result would, then reject its output.
                let _ = panic::catch_unwind(AssertUnwindSafe(job));
                Err(JobError {
                    kind: FailureKind::Corrupt,
                    message: format!("injected corrupt result (job {ordinal}, attempt {attempt})"),
                    payload: None,
                })
            }
            None => panic::catch_unwind(AssertUnwindSafe(job)).map_err(|payload| {
                let message = panic_message(payload.as_ref());
                JobError {
                    kind: FailureKind::Panic,
                    message: format!("job {ordinal} panicked (attempt {attempt}): {message}"),
                    payload: Some(payload),
                }
            }),
        }
    }

    /// Accounts one failed attempt: counters, typed event, log line.
    fn note_failure(&self, ordinal: u64, attempt: u32, err: &JobError, will_retry: bool) {
        {
            let mut failures = recover(self.failures.lock());
            failures.counter("engine.job_failures", 1);
            failures.counter(
                match err.kind {
                    FailureKind::Panic => "engine.job_panics",
                    FailureKind::Timeout => "engine.job_timeouts",
                    FailureKind::Corrupt => "engine.job_corrupt_results",
                },
                1,
            );
            if will_retry {
                failures.counter("engine.job_retries", 1);
            } else {
                failures.counter("engine.jobs_failed_permanently", 1);
            }
        }
        recover(self.fault_events.lock()).push(Event::JobFailure {
            job: ordinal,
            attempt,
            kind: err.kind,
        });
        if will_retry {
            tele_warn!(
                "engine: job {ordinal} failed (attempt {}): {}; retrying",
                attempt + 1,
                err.message
            );
        } else {
            tele_warn!(
                "engine: job {ordinal} failed permanently after {} attempt(s): {}",
                attempt + 1,
                err.message
            );
        }
    }

    /// The timeout watchdog: flags overdue jobs and requests their
    /// cooperative cancellation. Runs alongside the workers and exits
    /// with them.
    fn watchdog<T, F>(&self, state: &RunState<'_, T, F>, root: SpanId) {
        let timeout = Duration::from_millis(self.policy.timeout_ms);
        let watchdog_start = Instant::now();
        while state.remaining.load(Ordering::Acquire) > 0 && recover(state.fatal.lock()).is_none() {
            for i in 0..state.started.len() {
                let overdue =
                    recover(state.started[i].lock()).is_some_and(|t| t.elapsed() >= timeout);
                if overdue && !state.cancel[i].swap(true, Ordering::AcqRel) {
                    tele_warn!(
                        "engine: job {} exceeded {} ms; requesting cancellation",
                        state.base + i as u64,
                        self.policy.timeout_ms
                    );
                }
            }
            thread::sleep(Duration::from_millis(5));
        }
        recover(self.spans.lock()).push(Some(root), "watchdog", 0, watchdog_start, Instant::now());
    }
}

/// The machine's available parallelism (the `--jobs` default).
pub fn default_parallelism() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_gen::profiles;

    /// A fast policy for tests: millisecond backoff, short timeout.
    fn quick_policy() -> RunPolicy {
        RunPolicy {
            max_attempts: 3,
            backoff_ms: 1,
            timeout_ms: 100,
        }
    }

    #[test]
    fn results_come_back_in_input_order_at_any_width() {
        let inputs: Vec<u64> = (0..64).collect();
        for width in [1usize, 2, 3, 8, 64, 200] {
            let engine = Engine::new(width);
            let jobs: Vec<_> = inputs
                .iter()
                .map(|&i| {
                    move || {
                        // Uneven work so completion order scrambles.
                        let mut acc = i;
                        for _ in 0..(i % 7) * 1000 {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                        }
                        let _ = acc;
                        i * 10
                    }
                })
                .collect();
            let out = engine.run(jobs);
            assert_eq!(
                out,
                inputs.iter().map(|i| i * 10).collect::<Vec<_>>(),
                "width {width}"
            );
        }
    }

    #[test]
    fn zero_jobs_and_empty_queues_are_fine() {
        let engine = Engine::new(0); // clamps to 1
        assert_eq!(engine.jobs(), 1);
        let out: Vec<u32> = engine.run(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn recover_enters_a_poisoned_mutex() {
        let poisoned: &'static Mutex<u32> = Box::leak(Box::new(Mutex::new(7)));
        let _ = thread::spawn(move || {
            let _guard = poisoned.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(poisoned.lock().is_err(), "mutex must actually be poisoned");
        assert_eq!(*recover(poisoned.lock()), 7);
        *recover(poisoned.lock()) = 8;
        assert_eq!(*recover(poisoned.lock()), 8);
    }

    #[test]
    fn panicking_job_is_retried_and_recovers() {
        use std::sync::atomic::AtomicU32;
        for width in [1usize, 4] {
            let engine = Engine::new(width).with_policy(quick_policy());
            let boom = AtomicU32::new(0);
            let jobs: Vec<Box<dyn Fn() -> u64 + Send + Sync + '_>> = (0..8u64)
                .map(|i| {
                    let boom = &boom;
                    Box::new(move || {
                        if i == 3 && boom.fetch_add(1, Ordering::SeqCst) == 0 {
                            panic!("transient failure in job 3");
                        }
                        i * 2
                    }) as Box<dyn Fn() -> u64 + Send + Sync + '_>
                })
                .collect();
            let out = engine.run(jobs);
            assert_eq!(out, (0..8u64).map(|i| i * 2).collect::<Vec<_>>());
            let f = engine.failure_snapshot();
            assert_eq!(f.counter_value("engine.job_failures"), 1, "width {width}");
            assert_eq!(f.counter_value("engine.job_panics"), 1);
            assert_eq!(f.counter_value("engine.job_retries"), 1);
            assert_eq!(f.counter_value("engine.jobs_recovered"), 1);
            assert_eq!(f.counter_value("engine.jobs_failed_permanently"), 0);
            assert!(engine.degraded());
            let events = engine.fault_events_snapshot();
            assert_eq!(events.pushed(), 1);
            assert!(events.to_jsonl().contains("\"kind\": \"panic\""));
        }
    }

    #[test]
    fn permanent_failure_surfaces_the_first_panic_message() {
        let engine = Engine::new(4).with_policy(quick_policy());
        let jobs: Vec<Box<dyn Fn() -> u64 + Send + Sync>> = (0..6u64)
            .map(|i| {
                Box::new(move || {
                    if i == 2 {
                        panic!("job 2 is irreparably broken");
                    }
                    i
                }) as Box<dyn Fn() -> u64 + Send + Sync>
            })
            .collect();
        let err = panic::catch_unwind(AssertUnwindSafe(|| engine.run(jobs)))
            .expect_err("the permanent failure must propagate");
        assert!(
            panic_message(err.as_ref()).contains("job 2 is irreparably broken"),
            "the ORIGINAL message must survive, got: {}",
            panic_message(err.as_ref())
        );
        let f = engine.failure_snapshot();
        assert_eq!(f.counter_value("engine.jobs_failed_permanently"), 1);
        assert_eq!(f.counter_value("engine.job_failures"), 3, "3 attempts");
    }

    #[test]
    fn injected_hang_is_timeout_killed_and_recovers() {
        for width in [1usize, 4] {
            let engine = Engine::new(width)
                .with_policy(RunPolicy {
                    max_attempts: 2,
                    backoff_ms: 1,
                    timeout_ms: 40,
                })
                .with_faults(FaultPlan::new(vec![FaultSpec {
                    job: 2,
                    mode: FaultMode::Hang,
                    times: 1,
                }]));
            let start = Instant::now();
            let out = engine.run((0..5u64).map(|i| move || i + 100).collect::<Vec<_>>());
            assert_eq!(out, vec![100, 101, 102, 103, 104], "width {width}");
            assert!(
                start.elapsed() < Duration::from_secs(10),
                "hang must be bounded by the timeout"
            );
            let f = engine.failure_snapshot();
            assert_eq!(f.counter_value("engine.job_timeouts"), 1, "width {width}");
            assert_eq!(f.counter_value("engine.jobs_recovered"), 1);
        }
    }

    #[test]
    fn injected_corrupt_result_is_rejected_and_retried() {
        let engine = Engine::new(2)
            .with_policy(quick_policy())
            .with_faults(FaultPlan::new(vec![FaultSpec {
                job: 1,
                mode: FaultMode::Corrupt,
                times: 1,
            }]));
        let out = engine.run((0..4u64).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(out, vec![0, 1, 2, 3]);
        let f = engine.failure_snapshot();
        assert_eq!(f.counter_value("engine.job_corrupt_results"), 1);
        assert_eq!(f.counter_value("engine.jobs_recovered"), 1);
    }

    #[test]
    fn fault_ordinals_are_global_across_batches() {
        // The second batch's first job has ordinal 3, not 0.
        let engine = Engine::new(2)
            .with_policy(quick_policy())
            .with_faults(FaultPlan::new(vec![FaultSpec {
                job: 3,
                mode: FaultMode::Panic,
                times: 1,
            }]));
        assert_eq!(engine.run(vec![|| 1u32, || 2, || 3]), vec![1, 2, 3]);
        assert!(!engine.degraded(), "batch one is ordinals 0..3, unfaulted");
        assert_eq!(engine.run(vec![|| 4u32, || 5]), vec![4, 5]);
        assert_eq!(
            engine.failure_snapshot().counter_value("engine.job_panics"),
            1,
            "ordinal 3 is batch two's first job"
        );
    }

    #[test]
    fn fault_spec_parsing() {
        assert_eq!(
            FaultSpec::parse("job=3,mode=panic").unwrap(),
            FaultSpec {
                job: 3,
                mode: FaultMode::Panic,
                times: 1
            }
        );
        assert_eq!(
            FaultSpec::parse("job=0,mode=hang,times=2").unwrap(),
            FaultSpec {
                job: 0,
                mode: FaultMode::Hang,
                times: 2
            }
        );
        assert_eq!(
            FaultSpec::parse("mode=corrupt,job=9").unwrap().mode,
            FaultMode::Corrupt
        );
        for bad in [
            "job=1",
            "mode=panic",
            "job=x,mode=panic",
            "job=1,mode=explode",
            "job=1,mode=panic,times=lots",
            "job=1,frequency=2,mode=panic",
            "nonsense",
        ] {
            assert!(FaultSpec::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn job_seeds_are_stable_and_distinct_across_a_sweep() {
        use std::collections::HashSet;
        let benchmarks: Vec<String> = profiles::all().iter().map(|p| p.name.to_string()).collect();
        assert_eq!(benchmarks.len(), 26);
        let mut seen = HashSet::new();
        for side in [Side::Instruction, Side::Data] {
            for b in &benchmarks {
                let s = job_seed(1, b, side);
                // Same job, same seed — always.
                assert_eq!(s, job_seed(1, b, side));
                // No two jobs of the sweep share a seed.
                assert!(seen.insert(s), "seed collision for {b}/{side:?}");
            }
        }
        // The base seed takes part in the derivation.
        assert_ne!(
            job_seed(1, "gzip", Side::Data),
            job_seed(2, "gzip", Side::Data)
        );
    }

    #[test]
    fn trace_cache_returns_the_same_buffer_and_counts_entries() {
        let cache = TraceCache::new();
        let p = profiles::by_name("gzip").unwrap();
        let len = RunLength::with_records(1_000);
        let a = cache.get(&p, len);
        let b = cache.get(&p, len);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        assert_eq!(a.len(), 1_000);
        assert_eq!(cache.len(), 1);
        // A different run length is a different entry.
        let c = cache.get(&p, RunLength::with_records(2_000));
        assert_eq!(c.len(), 2_000);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn side_streams_are_cached_and_match_fresh_extraction() {
        use crate::run::SideTrace;
        let cache = TraceCache::new();
        let p = profiles::by_name("gzip").unwrap();
        let len = RunLength::with_records(3_000);
        let a = cache.side(&p, len, Side::Data);
        let b = cache.side(&p, len, Side::Data);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        // Extraction streams from the generator: it does not force the
        // raw records into memory.
        assert_eq!(cache.len(), 0);
        let records = cache.get(&p, len);
        let fresh = SideTrace::extract(records.iter(), Side::Data, len.warmup);
        assert_eq!(*a, fresh);
        // The other side is a distinct entry with a distinct stream.
        let i = cache.side(&p, len, Side::Instruction);
        assert_ne!(*i, *a);
        cache.clear();
        let c = cache.side(&p, len, Side::Data);
        assert!(!Arc::ptr_eq(&a, &c), "clear drops side streams too");
        assert_eq!(*a, *c);
    }

    #[test]
    fn timing_snapshot_records_generation_spans() {
        let cache = TraceCache::new();
        let p = profiles::by_name("gzip").unwrap();
        let len = RunLength::with_records(1_000);
        assert!(cache.timing_snapshot().is_empty());
        cache.get(&p, len);
        cache.get(&p, len); // cache hit: no second generation span
        let t = cache.timing_snapshot();
        assert_eq!(t.timing("phase.trace_gen").unwrap().count, 1);
        cache.side(&p, len, Side::Data);
        cache.side(&p, len, Side::Data);
        let t = cache.timing_snapshot();
        assert_eq!(t.timing("phase.trace_extract").unwrap().count, 1);
    }

    #[test]
    fn cached_trace_equals_fresh_generation() {
        let cache = TraceCache::new();
        let p = profiles::by_name("equake").unwrap();
        let len = RunLength::with_records(5_000);
        let cached = cache.get(&p, len);
        let fresh: Vec<trace_gen::TraceRecord> = Trace::new(&p, len.seed)
            .take(record_count(len.records))
            .collect();
        assert!(cached.iter().eq(fresh.iter().copied()));
    }

    #[test]
    fn pool_runs_jobs_that_share_the_trace_cache() {
        let engine = Engine::new(4);
        let p = profiles::by_name("mcf").unwrap();
        let len = RunLength::with_records(2_000);
        let jobs: Vec<_> = (0..8)
            .map(|_| {
                let engine = &engine;
                let p = p.clone();
                move || engine.trace(&p, len).len()
            })
            .collect();
        let out = engine.run(jobs);
        assert!(out.iter().all(|&n| n == 2_000));
        assert_eq!(engine.traces().len(), 1, "all jobs share one cached trace");
    }
}
