//! The parallel experiment engine: a scoped-thread job pool, a shared
//! trace cache, and deterministic per-job seed derivation.
//!
//! Every figure and table of the reproduction is a cross-product of
//! (benchmark profile × reference side × cache configuration). The
//! [`Engine`] shards that cross-product into independent jobs, runs
//! them on a pool of scoped worker threads (std-only: no external
//! crates), and hands results back **in input order**, so aggregation
//! is canonical and the output is bit-identical regardless of thread
//! count or scheduling.
//!
//! Three properties make the engine deterministic:
//!
//! 1. **Jobs are pure.** A job reads its inputs (profile, config, run
//!    length) and a shared immutable trace; it never touches mutable
//!    shared state.
//! 2. **Seeds are derived, not drawn.** Each job's model seed comes
//!    from [`job_seed`]`(RunLength.seed, benchmark, side)` — a pure
//!    hash of the job's identity — never from a shared RNG or from
//!    scheduling order.
//! 3. **Aggregation is positional.** [`Engine::run`] returns results
//!    in the order jobs were submitted, however they interleaved.
//!
//! The [`TraceCache`] memoizes generated traces per
//! `(profile, records, seed)` so a 2M-record trace is synthesized once
//! and replayed by every job that shares it (both reference sides and
//! all cache sizes/configs of a sweep read the same records).

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread;

use telemetry::Recorder;
use trace_gen::{BenchmarkProfile, Trace, TraceBuffer};

use crate::run::{RunLength, Side, SideTrace};

/// Derives the deterministic seed of one experiment job from the sweep
/// seed and the job's identity.
///
/// The derivation is a pure function — FNV-1a over the benchmark name
/// and side tag folded with the base seed, finalized with a SplitMix64
/// mix — so the same job always receives the same seed while distinct
/// jobs in a sweep receive distinct, decorrelated seeds. Nothing about
/// thread count or scheduling order can influence it.
pub fn job_seed(base: u64, benchmark: &str, side: Side) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |b: u8| {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in benchmark.bytes() {
        eat(b);
    }
    // A separator byte keeps "abc"+I from colliding with "ab"+<c-ish>.
    eat(0xFF);
    eat(match side {
        Side::Instruction => 0x49, // 'I'
        Side::Data => 0x44,        // 'D'
    });
    // Fold in the base seed and finalize (SplitMix64 mixer) so that
    // consecutive base seeds still produce decorrelated outputs.
    let mut z = h ^ base.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Memoized trace generation, keyed by `(profile name, records, seed)`,
/// plus memoized per-side access streams keyed additionally by
/// `(warmup, side)`.
///
/// The first job that needs a trace synthesizes it (other requesters
/// block on the same entry rather than duplicating the work); later
/// jobs replay the shared, immutable buffer. The same applies to the
/// extracted [`SideTrace`] streams: the per-side filtering and
/// instruction-block collapse run once per `(profile, len, side)`, so
/// every config job of a sweep is pure model work. Traces are held as
/// packed [`TraceBuffer`] columns (17 bytes/record instead of 24), so a
/// full-length (2M-record) trace is ~34 MB and a whole 26-benchmark
/// sweep holds under 1 GB — call [`TraceCache::clear`] between
/// experiments if that matters.
#[derive(Debug, Default)]
pub struct TraceCache {
    entries: Mutex<HashMap<(String, u64, u64), Arc<OnceLock<Arc<TraceBuffer>>>>>,
    sides: SideMap,
    // Wall-clock spans of trace generation and side extraction. Timing
    // is inherently non-deterministic (and whether an extraction reads
    // cached records or streams from the generator depends on
    // scheduling), so this feeds ONLY the recorder's `timing` section —
    // never the deterministic counters/histograms.
    timing: Mutex<Recorder>,
}

type SideMap = Mutex<HashMap<(String, u64, u64, u64, bool), Arc<OnceLock<Arc<SideTrace>>>>>;

impl TraceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the trace of `profile` at `len`, generating it on first
    /// use.
    pub fn get(&self, profile: &BenchmarkProfile, len: RunLength) -> Arc<TraceBuffer> {
        let key = (profile.name.to_string(), len.records, len.seed);
        let cell = self
            .entries
            .lock()
            .expect("trace cache lock")
            .entry(key)
            .or_default()
            .clone();
        // Generation happens outside the map lock; concurrent callers
        // of the same key block on the OnceLock, not on the whole map.
        cell.get_or_init(|| {
            let start = std::time::Instant::now();
            let buf = Arc::new(Trace::new(profile, len.seed).take_buffer(len.records as usize));
            self.timing
                .lock()
                .expect("trace timing lock")
                .record_span("phase.trace_gen", start.elapsed());
            buf
        })
        .clone()
    }

    /// Returns the extracted `side` access stream of `profile` at
    /// `len`, extracting it on first use. Keyed additionally by
    /// `len.warmup` because the warm-up reset position is baked into
    /// the stream.
    ///
    /// If the raw records are already cached (a [`Self::get`] caller
    /// wanted them) the extraction reads them; otherwise it streams
    /// straight from the generator without materializing the record
    /// buffer — miss-rate sweeps only ever need the (much smaller)
    /// access streams.
    pub fn side(&self, profile: &BenchmarkProfile, len: RunLength, side: Side) -> Arc<SideTrace> {
        let key = (
            profile.name.to_string(),
            len.records,
            len.seed,
            len.warmup,
            side == Side::Data,
        );
        let cell = self
            .sides
            .lock()
            .expect("side cache lock")
            .entry(key)
            .or_default()
            .clone();
        cell.get_or_init(|| {
            let start = std::time::Instant::now();
            let cached_records = {
                let entries = self.entries.lock().expect("trace cache lock");
                entries
                    .get(&(profile.name.to_string(), len.records, len.seed))
                    .and_then(|c| c.get().cloned())
            };
            let trace = match cached_records {
                Some(records) => SideTrace::extract(records.iter(), side, len.warmup),
                None => SideTrace::extract(
                    Trace::new(profile, len.seed).take(len.records as usize),
                    side,
                    len.warmup,
                ),
            };
            self.timing
                .lock()
                .expect("trace timing lock")
                .record_span("phase.trace_extract", start.elapsed());
            Arc::new(trace)
        })
        .clone()
    }

    /// A snapshot of the accumulated trace-generation/extraction span
    /// timings (see the `timing` field note: wall-clock only).
    pub fn timing_snapshot(&self) -> Recorder {
        self.timing.lock().expect("trace timing lock").clone()
    }

    /// Number of distinct traces currently cached.
    pub fn len(&self) -> usize {
        self.entries.lock().expect("trace cache lock").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached trace and extracted side stream.
    pub fn clear(&self) {
        self.entries.lock().expect("trace cache lock").clear();
        self.sides.lock().expect("side cache lock").clear();
    }
}

/// The parallel experiment engine: a worker pool plus a [`TraceCache`].
#[derive(Debug)]
pub struct Engine {
    jobs: usize,
    traces: TraceCache,
}

impl Default for Engine {
    fn default() -> Self {
        Engine::with_default_parallelism()
    }
}

impl Engine {
    /// Creates an engine running at most `jobs` worker threads
    /// (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Engine {
            jobs: jobs.max(1),
            traces: TraceCache::new(),
        }
    }

    /// Creates an engine sized to the machine
    /// ([`std::thread::available_parallelism`]).
    pub fn with_default_parallelism() -> Self {
        Engine::new(default_parallelism())
    }

    /// The worker-thread budget.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The shared trace cache.
    pub fn traces(&self) -> &TraceCache {
        &self.traces
    }

    /// A snapshot of the engine's wall-clock phase timings (trace
    /// generation and side extraction). These merge into a recorder's
    /// non-deterministic `timing` section only.
    pub fn timing_snapshot(&self) -> Recorder {
        self.traces.timing_snapshot()
    }

    /// Convenience: the trace of `profile` at `len` from the shared
    /// cache.
    pub fn trace(&self, profile: &BenchmarkProfile, len: RunLength) -> Arc<TraceBuffer> {
        self.traces.get(profile, len)
    }

    /// Convenience: the extracted `side` stream of `profile` at `len`
    /// from the shared cache.
    pub fn side_trace(
        &self,
        profile: &BenchmarkProfile,
        len: RunLength,
        side: Side,
    ) -> Arc<SideTrace> {
        self.traces.side(profile, len, side)
    }

    /// Runs every job and returns their results **in input order**.
    ///
    /// Jobs are pulled from a shared queue by `min(self.jobs, #jobs)`
    /// scoped worker threads; with a budget of 1 (or a single job) they
    /// run inline on the caller thread. Either way the result vector is
    /// positionally identical, which is what makes experiment output
    /// independent of `--jobs`.
    ///
    /// # Panics
    ///
    /// Propagates the panic of any job.
    pub fn run<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send,
        F: FnOnce() -> T + Send,
    {
        let n = jobs.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return jobs.into_iter().map(|job| job()).collect();
        }

        let queue: Mutex<VecDeque<(usize, F)>> = Mutex::new(jobs.into_iter().enumerate().collect());
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    // Hold the queue lock only for the pop; the job body
                    // runs unlocked so workers steal work as they drain.
                    let next = queue.lock().expect("job queue lock").pop_front();
                    let Some((i, job)) = next else { break };
                    let result = job();
                    *slots[i].lock().expect("result slot lock") = Some(result);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot lock")
                    .expect("every job stores its result")
            })
            .collect()
    }
}

/// The machine's available parallelism (the `--jobs` default).
pub fn default_parallelism() -> usize {
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_gen::profiles;

    #[test]
    fn results_come_back_in_input_order_at_any_width() {
        let inputs: Vec<u64> = (0..64).collect();
        for width in [1usize, 2, 3, 8, 64, 200] {
            let engine = Engine::new(width);
            let jobs: Vec<_> = inputs
                .iter()
                .map(|&i| {
                    move || {
                        // Uneven work so completion order scrambles.
                        let mut acc = i;
                        for _ in 0..(i % 7) * 1000 {
                            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                        }
                        let _ = acc;
                        i * 10
                    }
                })
                .collect();
            let out = engine.run(jobs);
            assert_eq!(
                out,
                inputs.iter().map(|i| i * 10).collect::<Vec<_>>(),
                "width {width}"
            );
        }
    }

    #[test]
    fn zero_jobs_and_empty_queues_are_fine() {
        let engine = Engine::new(0); // clamps to 1
        assert_eq!(engine.jobs(), 1);
        let out: Vec<u32> = engine.run(Vec::<fn() -> u32>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn job_seeds_are_stable_and_distinct_across_a_sweep() {
        use std::collections::HashSet;
        let benchmarks: Vec<String> = profiles::all().iter().map(|p| p.name.to_string()).collect();
        assert_eq!(benchmarks.len(), 26);
        let mut seen = HashSet::new();
        for side in [Side::Instruction, Side::Data] {
            for b in &benchmarks {
                let s = job_seed(1, b, side);
                // Same job, same seed — always.
                assert_eq!(s, job_seed(1, b, side));
                // No two jobs of the sweep share a seed.
                assert!(seen.insert(s), "seed collision for {b}/{side:?}");
            }
        }
        // The base seed takes part in the derivation.
        assert_ne!(
            job_seed(1, "gzip", Side::Data),
            job_seed(2, "gzip", Side::Data)
        );
    }

    #[test]
    fn trace_cache_returns_the_same_buffer_and_counts_entries() {
        let cache = TraceCache::new();
        let p = profiles::by_name("gzip").unwrap();
        let len = RunLength::with_records(1_000);
        let a = cache.get(&p, len);
        let b = cache.get(&p, len);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        assert_eq!(a.len(), 1_000);
        assert_eq!(cache.len(), 1);
        // A different run length is a different entry.
        let c = cache.get(&p, RunLength::with_records(2_000));
        assert_eq!(c.len(), 2_000);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn side_streams_are_cached_and_match_fresh_extraction() {
        use crate::run::SideTrace;
        let cache = TraceCache::new();
        let p = profiles::by_name("gzip").unwrap();
        let len = RunLength::with_records(3_000);
        let a = cache.side(&p, len, Side::Data);
        let b = cache.side(&p, len, Side::Data);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the cache");
        // Extraction streams from the generator: it does not force the
        // raw records into memory.
        assert_eq!(cache.len(), 0);
        let records = cache.get(&p, len);
        let fresh = SideTrace::extract(records.iter(), Side::Data, len.warmup);
        assert_eq!(*a, fresh);
        // The other side is a distinct entry with a distinct stream.
        let i = cache.side(&p, len, Side::Instruction);
        assert_ne!(*i, *a);
        cache.clear();
        let c = cache.side(&p, len, Side::Data);
        assert!(!Arc::ptr_eq(&a, &c), "clear drops side streams too");
        assert_eq!(*a, *c);
    }

    #[test]
    fn timing_snapshot_records_generation_spans() {
        let cache = TraceCache::new();
        let p = profiles::by_name("gzip").unwrap();
        let len = RunLength::with_records(1_000);
        assert!(cache.timing_snapshot().is_empty());
        cache.get(&p, len);
        cache.get(&p, len); // cache hit: no second generation span
        let t = cache.timing_snapshot();
        assert_eq!(t.timing("phase.trace_gen").unwrap().count, 1);
        cache.side(&p, len, Side::Data);
        cache.side(&p, len, Side::Data);
        let t = cache.timing_snapshot();
        assert_eq!(t.timing("phase.trace_extract").unwrap().count, 1);
    }

    #[test]
    fn cached_trace_equals_fresh_generation() {
        let cache = TraceCache::new();
        let p = profiles::by_name("equake").unwrap();
        let len = RunLength::with_records(5_000);
        let cached = cache.get(&p, len);
        let fresh: Vec<trace_gen::TraceRecord> = Trace::new(&p, len.seed)
            .take(len.records as usize)
            .collect();
        assert!(cached.iter().eq(fresh.iter().copied()));
    }

    #[test]
    fn pool_runs_jobs_that_share_the_trace_cache() {
        let engine = Engine::new(4);
        let p = profiles::by_name("mcf").unwrap();
        let len = RunLength::with_records(2_000);
        let jobs: Vec<_> = (0..8)
            .map(|_| {
                let engine = &engine;
                let p = p.clone();
                move || engine.trace(&p, len).len()
            })
            .collect();
        let out = engine.run(jobs);
        assert!(out.iter().all(|&n| n == 2_000));
        assert_eq!(engine.traces().len(), 1, "all jobs share one cached trace");
    }
}
