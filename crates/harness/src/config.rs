//! The cache configurations compared throughout the paper's evaluation.

use bcache_core::{BCacheParams, BalancedCache};
use cache_sim::{
    AgacCache, CacheGeometry, CacheModel, ColumnAssociativeCache, DifferenceBitCache,
    DirectMappedCache, GeometryError, HighlyAssociativeCache, PartialMatchCache, PolicyKind,
    SetAssociativeCache, SkewedAssociativeCache, VictimCache,
};

/// A named L1 configuration from the paper's figures.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CacheConfig {
    /// The baseline direct-mapped cache.
    DirectMapped,
    /// A conventional set-associative cache (LRU).
    SetAssoc(usize),
    /// Direct-mapped plus an `N`-entry victim buffer.
    Victim(usize),
    /// The B-Cache at a given `(MF, BAS)` point (LRU).
    BCache {
        /// Memory address mapping factor.
        mf: usize,
        /// B-Cache associativity.
        bas: usize,
    },
    /// The B-Cache with random replacement (Section 3.3 ablation).
    BCacheRandom {
        /// Memory address mapping factor.
        mf: usize,
        /// B-Cache associativity.
        bas: usize,
    },
    /// Column-associative cache (related work, Section 7.1).
    ColumnAssoc,
    /// 2-way skewed-associative cache (related work, Section 7.1).
    SkewedAssoc,
    /// Highly-associative CAM-tag cache (Section 6.7).
    Hac,
    /// Adaptive group-associative cache (related work, Section 7.1).
    Agac,
    /// Partial-address-matching 2-way cache (related work, Section 7.2).
    Pam,
    /// Difference-bit 2-way cache (related work, Section 7.2).
    DiffBit,
}

impl CacheConfig {
    /// The nine configurations of Figures 4 and 5, in plotting order.
    pub fn figure4_set() -> Vec<CacheConfig> {
        vec![
            CacheConfig::SetAssoc(2),
            CacheConfig::SetAssoc(4),
            CacheConfig::SetAssoc(8),
            CacheConfig::SetAssoc(32),
            CacheConfig::Victim(16),
            CacheConfig::BCache { mf: 2, bas: 8 },
            CacheConfig::BCache { mf: 4, bas: 8 },
            CacheConfig::BCache { mf: 8, bas: 8 },
            CacheConfig::BCache { mf: 16, bas: 8 },
        ]
    }

    /// The twelve configurations of Figure 12.
    pub fn figure12_set() -> Vec<CacheConfig> {
        let mut v = vec![
            CacheConfig::SetAssoc(2),
            CacheConfig::SetAssoc(4),
            CacheConfig::SetAssoc(8),
            CacheConfig::Victim(16),
        ];
        for bas in [4usize, 8] {
            for mf in [2usize, 4, 8, 16] {
                v.push(CacheConfig::BCache { mf, bas });
            }
        }
        v
    }

    /// The five configurations of Figures 8 and 9 (plus the baseline).
    pub fn figure8_set() -> Vec<CacheConfig> {
        vec![
            CacheConfig::SetAssoc(2),
            CacheConfig::SetAssoc(4),
            CacheConfig::SetAssoc(8),
            CacheConfig::BCache { mf: 8, bas: 8 },
            CacheConfig::Victim(16),
        ]
    }

    /// Instantiates the configuration for an L1 of `size_bytes` with
    /// 32-byte lines.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] if the shape is invalid (e.g. a BAS
    /// larger than the set count).
    pub fn build(
        &self,
        size_bytes: usize,
        seed: u64,
    ) -> Result<Box<dyn CacheModel>, GeometryError> {
        const LINE: usize = 32;
        let geom = CacheGeometry::new(size_bytes, LINE, 1)?;
        Ok(match *self {
            CacheConfig::DirectMapped => Box::new(DirectMappedCache::new(size_bytes, LINE)?),
            CacheConfig::SetAssoc(n) => Box::new(SetAssociativeCache::new(
                size_bytes,
                LINE,
                n,
                PolicyKind::Lru,
                seed,
            )?),
            CacheConfig::Victim(entries) => Box::new(VictimCache::new(size_bytes, LINE, entries)?),
            CacheConfig::BCache { mf, bas } => {
                let params = BCacheParams::new(geom, mf, bas, PolicyKind::Lru)
                    .map_err(|_| GeometryError::AssocLargerThanLines {
                        assoc: bas,
                        lines: geom.lines(),
                    })?
                    .with_seed(seed);
                Box::new(BalancedCache::new(params))
            }
            CacheConfig::BCacheRandom { mf, bas } => {
                let params = BCacheParams::new(geom, mf, bas, PolicyKind::Random)
                    .map_err(|_| GeometryError::AssocLargerThanLines {
                        assoc: bas,
                        lines: geom.lines(),
                    })?
                    .with_seed(seed);
                Box::new(BalancedCache::new(params))
            }
            CacheConfig::ColumnAssoc => Box::new(ColumnAssociativeCache::new(size_bytes, LINE)?),
            CacheConfig::SkewedAssoc => Box::new(SkewedAssociativeCache::new(size_bytes, LINE)?),
            CacheConfig::Hac => Box::new(HighlyAssociativeCache::new(size_bytes, LINE, 1024)?),
            CacheConfig::Agac => Box::new(AgacCache::new(size_bytes, LINE, 64)?),
            CacheConfig::Pam => Box::new(PartialMatchCache::new(size_bytes, LINE, 5)?),
            CacheConfig::DiffBit => Box::new(DifferenceBitCache::new(size_bytes, LINE)?),
        })
    }

    /// Short label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match *self {
            CacheConfig::DirectMapped => "baseline".into(),
            CacheConfig::SetAssoc(n) => format!("{n}way"),
            CacheConfig::Victim(n) => format!("victim{n}"),
            CacheConfig::BCache { mf, bas } => format!("MF{mf}-BAS{bas}"),
            CacheConfig::BCacheRandom { mf, bas } => format!("MF{mf}-BAS{bas}-rnd"),
            CacheConfig::ColumnAssoc => "column".into(),
            CacheConfig::SkewedAssoc => "skew2".into(),
            CacheConfig::Hac => "hac32".into(),
            CacheConfig::Agac => "agac".into(),
            CacheConfig::Pam => "pam5".into(),
            CacheConfig::DiffBit => "diffbit".into(),
        }
    }
}

/// Options shared by every `bcache-repro` subcommand:
/// `[--records N] [--seed S] [--jobs N] [--csv]`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RunOptions {
    /// Trace length / warm-up / seed.
    pub len: crate::run::RunLength,
    /// Emit CSV instead of text tables where supported.
    pub csv: bool,
    /// Worker threads for the experiment engine (default: available
    /// parallelism). Any value produces identical output.
    pub jobs: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            len: crate::run::RunLength::default(),
            csv: false,
            jobs: crate::parallel::default_parallelism(),
        }
    }
}

impl RunOptions {
    /// Parses the option tail of a command line (everything after the
    /// experiment name). Unknown or malformed options return an error
    /// message naming the offender.
    pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<RunOptions, String> {
        let mut opts = RunOptions::default();
        let mut i = 0;
        let value = |args: &[S], i: usize| -> Result<u64, String> {
            args.get(i + 1)
                .and_then(|s| s.as_ref().parse::<u64>().ok())
                .ok_or_else(|| format!("{} needs an integer argument", args[i].as_ref()))
        };
        while i < args.len() {
            match args[i].as_ref() {
                "--records" => {
                    let v = value(args, i)?;
                    let seed = opts.len.seed;
                    opts.len = crate::run::RunLength::with_records(v);
                    opts.len.seed = seed;
                    i += 2;
                }
                "--seed" => {
                    opts.len.seed = value(args, i)?;
                    i += 2;
                }
                "--jobs" => {
                    let v = value(args, i)?;
                    if v == 0 {
                        return Err("--jobs must be at least 1".into());
                    }
                    opts.jobs = v as usize;
                    i += 2;
                }
                "--csv" => {
                    opts.csv = true;
                    i += 1;
                }
                other => return Err(format!("unknown option: {other}")),
            }
        }
        Ok(opts)
    }

    /// Builds the experiment engine these options describe.
    pub fn engine(&self) -> crate::parallel::Engine {
        crate::parallel::Engine::new(self.jobs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessKind, Addr};

    #[test]
    fn figure_sets_have_the_papers_counts() {
        assert_eq!(CacheConfig::figure4_set().len(), 9);
        assert_eq!(CacheConfig::figure12_set().len(), 12);
        assert_eq!(CacheConfig::figure8_set().len(), 5);
    }

    #[test]
    fn every_config_builds_and_serves_accesses() {
        let mut configs = CacheConfig::figure4_set();
        configs.extend([
            CacheConfig::DirectMapped,
            CacheConfig::ColumnAssoc,
            CacheConfig::SkewedAssoc,
            CacheConfig::Hac,
            CacheConfig::BCacheRandom { mf: 8, bas: 8 },
            CacheConfig::Agac,
            CacheConfig::Pam,
            CacheConfig::DiffBit,
        ]);
        for c in configs {
            let mut m = c.build(16 * 1024, 0).unwrap();
            m.access(Addr::new(0x1234), AccessKind::Read);
            assert!(
                m.access(Addr::new(0x1234), AccessKind::Read).hit,
                "{}",
                c.label()
            );
            assert!(!c.label().is_empty());
        }
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(CacheConfig::SetAssoc(8).label(), "8way");
        assert_eq!(CacheConfig::Victim(16).label(), "victim16");
        assert_eq!(CacheConfig::BCache { mf: 8, bas: 8 }.label(), "MF8-BAS8");
    }

    #[test]
    fn builds_at_all_three_paper_sizes() {
        for size in [8 * 1024, 16 * 1024, 32 * 1024] {
            for c in CacheConfig::figure12_set() {
                assert!(c.build(size, 0).is_ok(), "{} at {size}", c.label());
            }
        }
    }

    #[test]
    fn run_options_parse_all_flags() {
        let o = RunOptions::parse(&["--records", "5000", "--seed", "7", "--jobs", "3", "--csv"])
            .unwrap();
        assert_eq!(o.len.records, 5_000);
        assert_eq!(o.len.warmup, 500);
        assert_eq!(o.len.seed, 7);
        assert_eq!(o.jobs, 3);
        assert!(o.csv);
        assert_eq!(o.engine().jobs(), 3);
        // Seed given before --records survives the rescale.
        let o = RunOptions::parse(&["--seed", "9", "--records", "100"]).unwrap();
        assert_eq!(o.len.seed, 9);
    }

    #[test]
    fn run_options_reject_bad_input() {
        assert!(RunOptions::parse(&["--frobnicate"]).is_err());
        assert!(RunOptions::parse(&["--records"]).is_err());
        assert!(RunOptions::parse(&["--records", "many"]).is_err());
        assert!(RunOptions::parse(&["--jobs", "0"]).is_err());
        let d = RunOptions::parse::<&str>(&[]).unwrap();
        assert_eq!(d.len, crate::run::RunLength::default());
        assert!(d.jobs >= 1);
    }
}
