//! The cache configurations compared throughout the paper's evaluation.

use bcache_core::{BCacheParams, BalancedCache};
use cache_sim::{
    AgacCache, CacheGeometry, CacheModel, ColumnAssociativeCache, DifferenceBitCache,
    DirectMappedCache, GeometryError, HighlyAssociativeCache, PartialMatchCache, PolicyKind,
    SetAssociativeCache, SkewedAssociativeCache, VictimCache, WayHaltingCache,
};

/// A named L1 configuration from the paper's figures.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CacheConfig {
    /// The baseline direct-mapped cache.
    DirectMapped,
    /// A conventional set-associative cache (LRU).
    SetAssoc(usize),
    /// Direct-mapped plus an `N`-entry victim buffer.
    Victim(usize),
    /// The B-Cache at a given `(MF, BAS)` point (LRU).
    BCache {
        /// Memory address mapping factor.
        mf: usize,
        /// B-Cache associativity.
        bas: usize,
    },
    /// The B-Cache with random replacement (Section 3.3 ablation).
    BCacheRandom {
        /// Memory address mapping factor.
        mf: usize,
        /// B-Cache associativity.
        bas: usize,
    },
    /// Column-associative cache (related work, Section 7.1).
    ColumnAssoc,
    /// 2-way skewed-associative cache (related work, Section 7.1).
    SkewedAssoc,
    /// Highly-associative CAM-tag cache (Section 6.7).
    Hac,
    /// Way-halting 4-way cache (related work, Section 7.2).
    WayHalting,
    /// Adaptive group-associative cache (related work, Section 7.1).
    Agac,
    /// Partial-address-matching 2-way cache (related work, Section 7.2).
    Pam,
    /// Difference-bit 2-way cache (related work, Section 7.2).
    DiffBit,
}

impl CacheConfig {
    /// The nine configurations of Figures 4 and 5, in plotting order.
    pub fn figure4_set() -> Vec<CacheConfig> {
        vec![
            CacheConfig::SetAssoc(2),
            CacheConfig::SetAssoc(4),
            CacheConfig::SetAssoc(8),
            CacheConfig::SetAssoc(32),
            CacheConfig::Victim(16),
            CacheConfig::BCache { mf: 2, bas: 8 },
            CacheConfig::BCache { mf: 4, bas: 8 },
            CacheConfig::BCache { mf: 8, bas: 8 },
            CacheConfig::BCache { mf: 16, bas: 8 },
        ]
    }

    /// The twelve configurations of Figure 12.
    pub fn figure12_set() -> Vec<CacheConfig> {
        let mut v = vec![
            CacheConfig::SetAssoc(2),
            CacheConfig::SetAssoc(4),
            CacheConfig::SetAssoc(8),
            CacheConfig::Victim(16),
        ];
        for bas in [4usize, 8] {
            for mf in [2usize, 4, 8, 16] {
                v.push(CacheConfig::BCache { mf, bas });
            }
        }
        v
    }

    /// The five configurations of Figures 8 and 9 (plus the baseline).
    pub fn figure8_set() -> Vec<CacheConfig> {
        vec![
            CacheConfig::SetAssoc(2),
            CacheConfig::SetAssoc(4),
            CacheConfig::SetAssoc(8),
            CacheConfig::BCache { mf: 8, bas: 8 },
            CacheConfig::Victim(16),
        ]
    }

    /// Instantiates the configuration for an L1 of `size_bytes` with
    /// 32-byte lines.
    ///
    /// # Errors
    ///
    /// Returns a [`GeometryError`] if the shape is invalid (e.g. a BAS
    /// larger than the set count).
    pub fn build(
        &self,
        size_bytes: usize,
        seed: u64,
    ) -> Result<Box<dyn CacheModel>, GeometryError> {
        const LINE: usize = 32;
        let geom = CacheGeometry::new(size_bytes, LINE, 1)?;
        Ok(match *self {
            CacheConfig::DirectMapped => Box::new(DirectMappedCache::new(size_bytes, LINE)?),
            CacheConfig::SetAssoc(n) => Box::new(SetAssociativeCache::new(
                size_bytes,
                LINE,
                n,
                PolicyKind::Lru,
                seed,
            )?),
            CacheConfig::Victim(entries) => Box::new(VictimCache::new(size_bytes, LINE, entries)?),
            CacheConfig::BCache { mf, bas } => {
                let params = BCacheParams::new(geom, mf, bas, PolicyKind::Lru)
                    .map_err(|_| GeometryError::AssocLargerThanLines {
                        assoc: bas,
                        lines: geom.lines(),
                    })?
                    .with_seed(seed);
                Box::new(BalancedCache::new(params))
            }
            CacheConfig::BCacheRandom { mf, bas } => {
                let params = BCacheParams::new(geom, mf, bas, PolicyKind::Random)
                    .map_err(|_| GeometryError::AssocLargerThanLines {
                        assoc: bas,
                        lines: geom.lines(),
                    })?
                    .with_seed(seed);
                Box::new(BalancedCache::new(params))
            }
            CacheConfig::ColumnAssoc => Box::new(ColumnAssociativeCache::new(size_bytes, LINE)?),
            CacheConfig::SkewedAssoc => Box::new(SkewedAssociativeCache::new(size_bytes, LINE)?),
            CacheConfig::Hac => Box::new(HighlyAssociativeCache::new(size_bytes, LINE, 1024)?),
            CacheConfig::WayHalting => Box::new(WayHaltingCache::new(size_bytes, LINE, 4, 4)?),
            CacheConfig::Agac => Box::new(AgacCache::new(size_bytes, LINE, 64)?),
            CacheConfig::Pam => Box::new(PartialMatchCache::new(size_bytes, LINE, 5)?),
            CacheConfig::DiffBit => Box::new(DifferenceBitCache::new(size_bytes, LINE)?),
        })
    }

    /// Short label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match *self {
            CacheConfig::DirectMapped => "baseline".into(),
            CacheConfig::SetAssoc(n) => format!("{n}way"),
            CacheConfig::Victim(n) => format!("victim{n}"),
            CacheConfig::BCache { mf, bas } => format!("MF{mf}-BAS{bas}"),
            CacheConfig::BCacheRandom { mf, bas } => format!("MF{mf}-BAS{bas}-rnd"),
            CacheConfig::ColumnAssoc => "column".into(),
            CacheConfig::SkewedAssoc => "skew2".into(),
            CacheConfig::Hac => "hac32".into(),
            CacheConfig::WayHalting => "halt4".into(),
            CacheConfig::Agac => "agac".into(),
            CacheConfig::Pam => "pam5".into(),
            CacheConfig::DiffBit => "diffbit".into(),
        }
    }
}

/// Robustness options shared by every subcommand that builds an
/// [`Engine`](crate::parallel::Engine): retry/backoff/timeout policy,
/// deterministic fault injection, and checkpoint/resume paths.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineSetup {
    /// Retry/backoff/timeout policy overrides.
    pub policy: crate::parallel::RunPolicy,
    /// Injected faults (`--inject-fault`, repeatable).
    pub faults: Vec<crate::parallel::FaultSpec>,
    /// `--checkpoint PATH`: persist results there, resuming if the
    /// file already matches this run.
    pub checkpoint: Option<String>,
    /// `--resume PATH`: the checkpoint must exist and match.
    pub resume: Option<String>,
}

impl EngineSetup {
    /// Tries to consume the flag at `args[*i]`. Returns `Ok(true)`
    /// (advancing `*i`) if it was an engine flag, `Ok(false)` if the
    /// caller should handle it, `Err` on a malformed engine flag.
    pub fn try_flag<S: AsRef<str>>(&mut self, args: &[S], i: &mut usize) -> Result<bool, String> {
        let text = |args: &[S], i: usize| -> Result<String, String> {
            args.get(i + 1)
                .map(|s| s.as_ref().to_string())
                .ok_or_else(|| format!("{} needs an argument", args[i].as_ref()))
        };
        let int = |args: &[S], i: usize| -> Result<u64, String> {
            args.get(i + 1)
                .and_then(|s| s.as_ref().parse::<u64>().ok())
                .ok_or_else(|| format!("{} needs an integer argument", args[i].as_ref()))
        };
        match args[*i].as_ref() {
            "--retries" => {
                let v = int(args, *i)?.min(u32::MAX as u64) as u32;
                self.policy.max_attempts = v.saturating_add(1);
                *i += 2;
            }
            "--backoff-ms" => {
                self.policy.backoff_ms = int(args, *i)?;
                *i += 2;
            }
            "--job-timeout-ms" => {
                let v = int(args, *i)?;
                if v == 0 {
                    return Err("--job-timeout-ms must be positive".into());
                }
                self.policy.timeout_ms = v;
                *i += 2;
            }
            "--inject-fault" => {
                self.faults
                    .push(crate::parallel::FaultSpec::parse(&text(args, *i)?)?);
                *i += 2;
            }
            "--checkpoint" => {
                self.checkpoint = Some(text(args, *i)?);
                *i += 2;
            }
            "--resume" => {
                self.resume = Some(text(args, *i)?);
                *i += 2;
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Builds an engine with `jobs` workers under this setup's policy
    /// and fault plan (checkpoints attach separately — they need the
    /// experiment identity; see [`EngineSetup::attach_checkpoint`]).
    pub fn build_engine(&self, jobs: usize) -> crate::parallel::Engine {
        crate::parallel::Engine::new(jobs)
            .with_policy(self.policy)
            .with_faults(crate::parallel::FaultPlan::new(self.faults.clone()))
    }

    /// Whether `--checkpoint` or `--resume` was given.
    pub fn wants_checkpoint(&self) -> bool {
        self.checkpoint.is_some() || self.resume.is_some()
    }

    /// Attaches the requested checkpoint (if any) to `engine`, pinned
    /// to `experiment` at run length `len`. Returns whether one was
    /// attached; errors if `--resume` names a missing or mismatched
    /// checkpoint.
    pub fn attach_checkpoint(
        &self,
        engine: &crate::parallel::Engine,
        experiment: &str,
        len: crate::run::RunLength,
    ) -> Result<bool, String> {
        let meta = crate::checkpoint::CheckpointMeta::new(experiment, len);
        let ckpt = if let Some(path) = &self.resume {
            crate::checkpoint::Checkpoint::resume(std::path::Path::new(path), meta)?
        } else if let Some(path) = &self.checkpoint {
            crate::checkpoint::Checkpoint::load_or_create(std::path::Path::new(path), meta)?
        } else {
            return Ok(false);
        };
        engine.attach_checkpoint(ckpt);
        Ok(true)
    }
}

/// Options shared by every `bcache-repro` subcommand:
/// `[--records N] [--warmup N] [--seed S] [--jobs N] [--csv]` plus the
/// engine robustness flags (`--retries`, `--backoff-ms`,
/// `--job-timeout-ms`, `--inject-fault`, `--checkpoint`, `--resume`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunOptions {
    /// Trace length / warm-up / seed.
    pub len: crate::run::RunLength,
    /// Emit CSV instead of text tables where supported.
    pub csv: bool,
    /// Worker threads for the experiment engine (default: available
    /// parallelism). Any value produces identical output.
    pub jobs: usize,
    /// Engine robustness configuration.
    pub setup: EngineSetup,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            len: crate::run::RunLength::default(),
            csv: false,
            jobs: crate::parallel::default_parallelism(),
            setup: EngineSetup::default(),
        }
    }
}

impl RunOptions {
    /// Parses the option tail of a command line (everything after the
    /// experiment name). Unknown or malformed options return an error
    /// message naming the offender.
    pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<RunOptions, String> {
        let mut opts = RunOptions::default();
        let mut warmup_override = None;
        let mut i = 0;
        let value = |args: &[S], i: usize| -> Result<u64, String> {
            args.get(i + 1)
                .and_then(|s| s.as_ref().parse::<u64>().ok())
                .ok_or_else(|| format!("{} needs an integer argument", args[i].as_ref()))
        };
        while i < args.len() {
            match args[i].as_ref() {
                "--records" => {
                    let v = value(args, i)?;
                    let seed = opts.len.seed;
                    opts.len = crate::run::RunLength::with_records(v);
                    opts.len.seed = seed;
                    i += 2;
                }
                "--warmup" => {
                    warmup_override = Some(value(args, i)?);
                    i += 2;
                }
                "--seed" => {
                    opts.len.seed = value(args, i)?;
                    i += 2;
                }
                "--jobs" => {
                    let v = value(args, i)?;
                    if v == 0 {
                        return Err("--jobs must be at least 1".into());
                    }
                    opts.jobs = v as usize;
                    i += 2;
                }
                "--csv" => {
                    opts.csv = true;
                    i += 1;
                }
                other => {
                    if !opts.setup.try_flag(args, &mut i)? {
                        return Err(format!("unknown option: {other}"));
                    }
                }
            }
        }
        if let Some(w) = warmup_override {
            opts.len.warmup = w;
        }
        validate_len(opts.len)?;
        Ok(opts)
    }

    /// Builds the experiment engine these options describe.
    pub fn engine(&self) -> crate::parallel::Engine {
        self.setup.build_engine(self.jobs)
    }
}

/// Rejects run lengths whose measured region is empty: zero records,
/// or a warm-up that consumes the whole trace (statistics reset at the
/// warm-up mark, so `warmup >= records` would report miss rates over
/// zero accesses — NaN — instead of failing).
pub fn validate_len(len: crate::run::RunLength) -> Result<(), String> {
    if len.records == 0 {
        return Err("--records must be positive".into());
    }
    if len.warmup >= len.records {
        return Err(format!(
            "--warmup {} leaves no measured records (--records {}): the warm-up \
             prefix must be shorter than the trace",
            len.warmup, len.records
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{AccessKind, Addr};

    #[test]
    fn figure_sets_have_the_papers_counts() {
        assert_eq!(CacheConfig::figure4_set().len(), 9);
        assert_eq!(CacheConfig::figure12_set().len(), 12);
        assert_eq!(CacheConfig::figure8_set().len(), 5);
    }

    #[test]
    fn every_config_builds_and_serves_accesses() {
        let mut configs = CacheConfig::figure4_set();
        configs.extend([
            CacheConfig::DirectMapped,
            CacheConfig::ColumnAssoc,
            CacheConfig::SkewedAssoc,
            CacheConfig::Hac,
            CacheConfig::WayHalting,
            CacheConfig::BCacheRandom { mf: 8, bas: 8 },
            CacheConfig::Agac,
            CacheConfig::Pam,
            CacheConfig::DiffBit,
        ]);
        for c in configs {
            let mut m = c.build(16 * 1024, 0).unwrap();
            m.access(Addr::new(0x1234), AccessKind::Read);
            assert!(
                m.access(Addr::new(0x1234), AccessKind::Read).hit,
                "{}",
                c.label()
            );
            assert!(!c.label().is_empty());
        }
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(CacheConfig::SetAssoc(8).label(), "8way");
        assert_eq!(CacheConfig::Victim(16).label(), "victim16");
        assert_eq!(CacheConfig::BCache { mf: 8, bas: 8 }.label(), "MF8-BAS8");
    }

    #[test]
    fn builds_at_all_three_paper_sizes() {
        for size in [8 * 1024, 16 * 1024, 32 * 1024] {
            for c in CacheConfig::figure12_set() {
                assert!(c.build(size, 0).is_ok(), "{} at {size}", c.label());
            }
        }
    }

    #[test]
    fn run_options_parse_all_flags() {
        let o = RunOptions::parse(&["--records", "5000", "--seed", "7", "--jobs", "3", "--csv"])
            .unwrap();
        assert_eq!(o.len.records, 5_000);
        assert_eq!(o.len.warmup, 500);
        assert_eq!(o.len.seed, 7);
        assert_eq!(o.jobs, 3);
        assert!(o.csv);
        assert_eq!(o.engine().jobs(), 3);
        // Seed given before --records survives the rescale.
        let o = RunOptions::parse(&["--seed", "9", "--records", "100"]).unwrap();
        assert_eq!(o.len.seed, 9);
    }

    #[test]
    fn run_options_reject_bad_input() {
        assert!(RunOptions::parse(&["--frobnicate"]).is_err());
        assert!(RunOptions::parse(&["--records"]).is_err());
        assert!(RunOptions::parse(&["--records", "many"]).is_err());
        assert!(RunOptions::parse(&["--jobs", "0"]).is_err());
        let d = RunOptions::parse::<&str>(&[]).unwrap();
        assert_eq!(d.len, crate::run::RunLength::default());
        assert!(d.jobs >= 1);
    }

    #[test]
    fn run_options_parse_engine_flags() {
        use crate::parallel::{FaultMode, FaultSpec};
        let o = RunOptions::parse(&[
            "--retries",
            "5",
            "--backoff-ms",
            "2",
            "--job-timeout-ms",
            "1234",
            "--inject-fault",
            "job=3,mode=panic",
            "--inject-fault",
            "job=4,mode=hang,times=2",
        ])
        .unwrap();
        assert_eq!(
            o.setup.policy.max_attempts, 6,
            "--retries N is N+1 attempts"
        );
        assert_eq!(o.setup.policy.backoff_ms, 2);
        assert_eq!(o.setup.policy.timeout_ms, 1234);
        assert_eq!(
            o.setup.faults,
            vec![
                FaultSpec {
                    job: 3,
                    mode: FaultMode::Panic,
                    times: 1
                },
                FaultSpec {
                    job: 4,
                    mode: FaultMode::Hang,
                    times: 2
                },
            ]
        );
        let e = o.engine();
        assert_eq!(e.policy().max_attempts, 6);
        assert!(RunOptions::parse(&["--inject-fault", "job=1"]).is_err());
        assert!(RunOptions::parse(&["--job-timeout-ms", "0"]).is_err());
    }

    #[test]
    fn run_options_parse_checkpoint_paths() {
        let o = RunOptions::parse(&["--checkpoint", "/tmp/x.jsonl"]).unwrap();
        assert_eq!(o.setup.checkpoint.as_deref(), Some("/tmp/x.jsonl"));
        assert!(o.setup.wants_checkpoint());
        let o = RunOptions::parse(&["--resume", "/tmp/y.jsonl"]).unwrap();
        assert_eq!(o.setup.resume.as_deref(), Some("/tmp/y.jsonl"));
        assert!(o.setup.wants_checkpoint());
        assert!(!RunOptions::parse::<&str>(&[])
            .unwrap()
            .setup
            .wants_checkpoint());
    }

    #[test]
    fn empty_measured_region_is_a_clean_error() {
        // Warm-up consuming the whole trace used to replay an empty
        // measured region (NaN miss rates); now it is a CLI error.
        let err = RunOptions::parse(&["--records", "1000", "--warmup", "1000"]).unwrap_err();
        assert!(err.contains("warm-up"), "err: {err}");
        assert!(RunOptions::parse(&["--records", "1000", "--warmup", "2000"]).is_err());
        assert!(RunOptions::parse(&["--records", "0"]).is_err());
        let o = RunOptions::parse(&["--records", "1000", "--warmup", "999"]).unwrap();
        assert_eq!(o.len.warmup, 999);
    }
}
