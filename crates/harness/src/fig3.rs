//! Figure 3: `wupwise` data-cache miss rate and PD hit rate versus the
//! mapping factor MF (2 … 512) at BAS = 8, 16 kB.
//!
//! The mechanism on display: `wupwise`'s conflicting arrays are spaced
//! `2^19` bytes apart, so every `MF < 64` leaves their programmable
//! indices identical — the PD hits during the miss, the victim is forced,
//! and the replacement policy never gets to act. Once `log2(MF)` tag bits
//! reach bit 19 the PD hit rate collapses and the miss rate falls with
//! it.

use crate::parallel::Engine;
use crate::report::{pct2, TextTable};
use crate::run::{replay_bcache_pd_on, BCachePdOutcome, RunLength, Side};
use telemetry::{Recorder, SpanTimer};
use trace_gen::profiles;

/// One point of the Figure 3 sweep.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Fig3Point {
    /// The mapping factor.
    pub mf: usize,
    /// D$ miss rate at this MF.
    pub miss_rate: f64,
    /// PD hit rate during cache misses.
    pub pd_hit_rate: f64,
}

/// Runs the Figure 3 sweep for a benchmark (the paper uses `wupwise`).
pub fn figure3_for(benchmark: &str, len: RunLength) -> Vec<Fig3Point> {
    figure3_for_with(&Engine::with_default_parallelism(), benchmark, len)
}

/// [`figure3_for`] on a caller-owned [`Engine`]: one job per MF point,
/// all replaying the benchmark's cached trace. Jobs carry checkpoint
/// identities (`fig3/<benchmark>/mf<N>`), so an engine with an attached
/// checkpoint resumes an interrupted sweep from the finished points.
pub fn figure3_for_with(engine: &Engine, benchmark: &str, len: RunLength) -> Vec<Fig3Point> {
    let profile = profiles::by_name(benchmark).expect("known benchmark");
    let mfs = [2usize, 4, 8, 16, 32, 64, 128, 256, 512];
    let jobs: Vec<_> = mfs
        .iter()
        .map(|&mf| {
            let profile = profile.clone();
            (format!("mf{mf}"), move || {
                let trace = engine.side_trace(&profile, len, Side::Data);
                replay_bcache_pd_on(&trace, mf, 8, 16 * 1024)
            })
        })
        .collect();
    mfs.iter()
        .zip(engine.run_checkpointed(&format!("fig3/{benchmark}"), jobs))
        .map(
            |(
                &mf,
                BCachePdOutcome {
                    miss_rate,
                    pd_hit_rate_on_miss,
                },
            )| Fig3Point {
                mf,
                miss_rate,
                pd_hit_rate: pd_hit_rate_on_miss,
            },
        )
        .collect()
}

/// Runs and renders Figure 3 (wupwise).
pub fn figure3(len: RunLength) -> (Vec<Fig3Point>, String) {
    figure3_with(&Engine::with_default_parallelism(), len)
}

/// [`figure3`] on a caller-owned [`Engine`].
pub fn figure3_with(engine: &Engine, len: RunLength) -> (Vec<Fig3Point>, String) {
    let points = figure3_for_with(engine, "wupwise", len);
    let mut t = TextTable::new(vec!["MF", "miss_rate", "PD_hit_rate"]);
    for p in &points {
        t.row(vec![
            format!("MF{}", p.mf),
            pct2(p.miss_rate),
            pct2(p.pd_hit_rate),
        ]);
    }
    let rendered = format!(
        "Figure 3: wupwise 16 kB D$ miss rate and PD hit rate during misses vs MF (BAS = 8)\n{}",
        t.render()
    );
    (points, rendered)
}

/// [`figure3_with`] plus telemetry: each MF point's miss rate and PD
/// hit rate land in `rec` as parts-per-million counters — exact integer
/// images of the deterministic f64s the table renders, so the metrics
/// file is byte-identical for any `--jobs N` — and the whole sweep is
/// wrapped in a `phase.replay` wall-time span.
pub fn figure3_recorded(
    engine: &Engine,
    len: RunLength,
    rec: &mut Recorder,
) -> (Vec<Fig3Point>, String) {
    let t = SpanTimer::start("phase.replay");
    let (points, text) = figure3_with(engine, len);
    t.stop(rec);
    for p in &points {
        rec.counter(
            &format!("fig3.mf{}.miss_rate_ppm", p.mf),
            (p.miss_rate * 1e6).round() as u64,
        );
        rec.counter(
            &format!("fig3.mf{}.pd_hit_rate_ppm", p.mf),
            (p.pd_hit_rate * 1e6).round() as u64,
        );
    }
    rec.counter("fig3.points", points.len() as u64);
    (points, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wupwise_pd_hit_rate_collapses_at_mf64() {
        let points = figure3_for("wupwise", RunLength::with_records(150_000));
        let at = |mf: usize| points.iter().find(|p| p.mf == mf).unwrap();
        // High PD hit rate while the far-spaced arrays share PIs…
        assert!(
            at(8).pd_hit_rate > 0.4,
            "MF8 PD hit rate {}",
            at(8).pd_hit_rate
        );
        // …then a sharp drop between MF = 32 and MF = 64 (paper Fig. 3).
        assert!(
            at(64).pd_hit_rate < at(32).pd_hit_rate - 0.25,
            "expected collapse: MF32 {} vs MF64 {}",
            at(32).pd_hit_rate,
            at(64).pd_hit_rate
        );
        // The miss rate falls alongside the PD hit rate.
        assert!(at(64).miss_rate < at(32).miss_rate * 0.8);
        // And stays low at the extreme points.
        assert!(at(512).miss_rate <= at(64).miss_rate * 1.1);
    }

    #[test]
    fn rendering_contains_all_mf_points() {
        let (points, text) = figure3(RunLength::with_records(60_000));
        assert_eq!(points.len(), 9);
        for mf in [2, 64, 512] {
            assert!(text.contains(&format!("MF{mf}")), "{text}");
        }
    }

    #[test]
    fn recorded_figure3_metrics_are_exact_point_images() {
        let engine = Engine::new(2);
        let len = RunLength::with_records(40_000);
        let mut rec = Recorder::new();
        let (points, _) = figure3_recorded(&engine, len, &mut rec);
        assert_eq!(rec.counter_value("fig3.points"), points.len() as u64);
        for p in &points {
            assert_eq!(
                rec.counter_value(&format!("fig3.mf{}.miss_rate_ppm", p.mf)),
                (p.miss_rate * 1e6).round() as u64
            );
        }
        assert_eq!(rec.timing("phase.replay").unwrap().count, 1);
    }
}
