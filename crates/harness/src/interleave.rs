//! Multi-trace interleaved replay: N independent streams advanced
//! round-robin through N independent caches on one core.
//!
//! A single replay stream is serially dependent — access *k+1* cannot
//! resolve before access *k* updated the line array — so its batched
//! kernel is bounded by one dependency chain no matter how wide the
//! SIMD lanes are. Replaying several *independent* streams through
//! several independent caches breaks that bound: the out-of-order core
//! overlaps the chains, hiding the line-array load latency of one
//! stream behind the compares of the others. This is the software
//! analogue of the multi-banked lookup the paper's hardware gets for
//! free, and it is how the aggregate-throughput ROADMAP target is
//! meant to be read (accesses/second across all streams, one core).
//!
//! The kernel is deliberately boring: it calls each model's own
//! [`CacheModel::access_batch`] on `granule`-sized slices, lane by
//! lane, so every per-stream outcome is **bit-identical to replaying
//! that stream solo** (the simd-equivalence suite asserts it). The
//! interleaving changes scheduling, never semantics.

use cache_sim::{AccessKind, Addr, CacheModel};

/// Default accesses taken from one stream before rotating to the next:
/// coarse enough to amortize the rotation, fine enough that the lanes'
/// working sets stay co-resident in the host cache.
pub const DEFAULT_GRANULE: usize = 64;

/// Replays `streams[i]` through `models[i]` for every lane, rotating
/// between lanes every `granule` accesses until all streams are
/// exhausted (streams may differ in length; exhausted lanes drop out).
///
/// Each model ends in exactly the state solo replay of its own stream
/// would produce — statistics, contents and telemetry event order —
/// because lanes never share state.
///
/// # Panics
///
/// Panics if the lane counts differ or `granule` is zero.
pub fn replay_interleaved<M: CacheModel>(
    models: &mut [M],
    streams: &[&[(Addr, AccessKind)]],
    granule: usize,
) {
    assert_eq!(
        models.len(),
        streams.len(),
        "one model per stream, lane for lane"
    );
    assert!(granule > 0, "granule must be at least 1");
    let mut cursor = vec![0usize; streams.len()];
    let mut live = streams.iter().filter(|s| !s.is_empty()).count();
    while live > 0 {
        for (lane, stream) in streams.iter().enumerate() {
            let at = cursor[lane];
            if at >= stream.len() {
                continue;
            }
            let end = (at + granule).min(stream.len());
            models[lane].access_batch(&stream[at..end]);
            cursor[lane] = end;
            if end == stream.len() {
                live -= 1;
            }
        }
    }
}

/// Splits one stream into `lanes` round-robin substreams (access `i`
/// goes to lane `i % lanes`): the standard way to feed
/// [`replay_interleaved`] from a single trace when the lanes model
/// independent cores rather than one program.
pub fn split_round_robin(
    accesses: &[(Addr, AccessKind)],
    lanes: usize,
) -> Vec<Vec<(Addr, AccessKind)>> {
    assert!(lanes > 0, "need at least one lane");
    let mut out = vec![Vec::with_capacity(accesses.len() / lanes + 1); lanes];
    for (i, &a) in accesses.iter().enumerate() {
        out[i % lanes].push(a);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::DirectMappedCache;

    fn stream(seed: u64, len: usize) -> Vec<(Addr, AccessKind)> {
        let mut x = seed ^ 0x5851_F42D_4C95_7F2D;
        (0..len)
            .map(|i| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let kind = if i % 4 == 3 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                (Addr::new(((x >> 16) % 2048) * 32), kind)
            })
            .collect()
    }

    #[test]
    fn interleaved_lanes_match_solo_replay() {
        for granule in [1usize, 7, 64, 1000] {
            let streams: Vec<Vec<_>> = (0..4).map(|l| stream(l, 701 + 13 * l as usize)).collect();
            let mut lanes: Vec<DirectMappedCache> = (0..4)
                .map(|_| DirectMappedCache::new(1024, 32).unwrap())
                .collect();
            let views: Vec<&[(Addr, AccessKind)]> = streams.iter().map(|s| s.as_slice()).collect();
            replay_interleaved(&mut lanes, &views, granule);
            for (lane, s) in streams.iter().enumerate() {
                let mut solo = DirectMappedCache::new(1024, 32).unwrap();
                solo.access_batch(s);
                assert_eq!(
                    lanes[lane].stats(),
                    solo.stats(),
                    "granule {granule} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn uneven_and_empty_streams_drain() {
        let a = stream(1, 100);
        let b: Vec<(Addr, AccessKind)> = Vec::new();
        let c = stream(2, 3);
        let mut lanes: Vec<DirectMappedCache> = (0..3)
            .map(|_| DirectMappedCache::new(256, 32).unwrap())
            .collect();
        replay_interleaved(&mut lanes, &[&a, &b, &c], 8);
        assert_eq!(lanes[0].stats().total().accesses(), 100);
        assert_eq!(lanes[1].stats().total().accesses(), 0);
        assert_eq!(lanes[2].stats().total().accesses(), 3);
    }

    #[test]
    fn round_robin_split_preserves_every_access() {
        let s = stream(9, 103);
        let parts = split_round_robin(&s, 8);
        assert_eq!(parts.len(), 8);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), s.len());
        // Access i lands at parts[i % 8][i / 8].
        for (i, &a) in s.iter().enumerate() {
            assert_eq!(parts[i % 8][i / 8], a);
        }
    }

    #[test]
    #[should_panic(expected = "granule")]
    fn zero_granule_is_rejected() {
        let mut lanes = [DirectMappedCache::new(256, 32).unwrap()];
        let s = stream(0, 4);
        replay_interleaved(&mut lanes, &[&s], 0);
    }
}
