//! The `bcache-repro profile` subcommand: time-resolved profiling of
//! one model on one benchmark, with trace export.
//!
//! ```text
//! bcache-repro profile [--model NAME] [--benchmark NAME] [--side i|d]
//!                      [--records N] [--warmup N] [--seed S] [--jobs N]
//!                      [--window N] [--out PREFIX] [--smoke]
//! ```
//!
//! The subcommand replays the benchmark's side stream through the
//! selected model in window-sized batches on the batched-kernel
//! (`NullObserver`) fast path, deriving one [`WindowRow`] per window
//! from stats deltas — miss rate, PD churn, writebacks, and a per-set
//! occupancy heat row. Three artifacts come out of one run:
//!
//! * `PREFIX.jsonl` / `PREFIX.csv` — the windowed time series. Pure
//!   functions of the access stream: byte-identical for any `--jobs N`
//!   and either SIMD backend.
//! * `PREFIX.trace.json` — the run's hierarchical spans (engine queue
//!   wait / backoff / execution per job, plus the profiling phases) in
//!   Chrome Trace Event format; loads directly in `ui.perfetto.dev`
//!   or `chrome://tracing`. Wall-clock data, **not** deterministic.
//! * a phase-attribution report on stdout: the wall-time fraction
//!   spent generating the trace, replaying the kernel, measuring
//!   overhead, and reporting, plus the measured overhead of the
//!   windowed replay versus an unwindowed `NullObserver` replay of
//!   the direct-mapped batched kernel (`--smoke` asserts it stays
//!   under [`OVERHEAD_LIMIT`]).
//!
//! Unlike `run`/`stats`, the profile deliberately skips the warm-up
//! statistics reset: the time series is the instrument for looking
//! *at* the cold-start transient, so the replay starts cold and every
//! window from the first access is on the grid.

use std::time::Instant;

use bcache_core::{BCacheParams, BalancedCache};
use cache_sim::{simd, AccessKind, Addr, CacheGeometry, CacheModel, PolicyKind};
use telemetry::{chrome_trace_json, Recorder, SpanLog, SpanTimer, WindowRow, WindowSeries};
use trace_gen::{profiles, synthetic, BenchmarkProfile};

use crate::bench;
use crate::config::{validate_len, CacheConfig, EngineSetup};
use crate::parallel::{default_parallelism, job_seed, Engine};
use crate::run::{RunLength, Side, SideTrace};
use crate::telemetry_io::record_model;

/// L1 size the profile replays (the paper's headline 16 kB point).
const SIZE_BYTES: usize = 16 * 1024;

/// Default window size in accesses.
pub const DEFAULT_WINDOW: u64 = 4096;

/// Record count `--smoke` shortens to when `--records` is absent.
pub const SMOKE_RECORDS: u64 = 200_000;

/// The overhead bound `--smoke` enforces: the windowed replay may cost
/// at most this fraction more than the plain batched replay.
pub const OVERHEAD_LIMIT: f64 = 0.05;

/// Timed passes per overhead measurement; the minimum is kept (noise
/// only ever adds time).
const OVERHEAD_PASSES: usize = 5;

/// Options of the `profile` subcommand.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileOptions {
    /// Model name (canonicalized; see [`resolve_model`]).
    pub model: String,
    /// Benchmark name — a SPEC profile or a synthetic family.
    pub benchmark: String,
    /// Which reference stream feeds the cache (default data).
    pub side: Side,
    /// Trace length / warm-up / seed.
    pub len: RunLength,
    /// Worker threads.
    pub jobs: usize,
    /// Window size in accesses.
    pub window: u64,
    /// Output path prefix (`PREFIX.jsonl`, `PREFIX.csv`,
    /// `PREFIX.trace.json`).
    pub out: String,
    /// Reduced-length run that additionally enforces the overhead
    /// bound (CI).
    pub smoke: bool,
    /// Engine robustness configuration.
    pub setup: EngineSetup,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            model: "bcache-mf8-bas8".into(),
            benchmark: "mcf".into(),
            side: Side::Data,
            len: RunLength::default(),
            jobs: default_parallelism(),
            window: DEFAULT_WINDOW,
            out: "profile".into(),
            smoke: false,
            setup: EngineSetup::default(),
        }
    }
}

/// Resolves a model name (with the common aliases) against the bench
/// model set.
///
/// # Errors
///
/// Returns a message listing the known names when `name` matches none.
pub fn resolve_model(name: &str) -> Result<(&'static str, CacheConfig), String> {
    let canonical = match name {
        "dm" => "direct-mapped",
        "8way" | "8-way" => "8-way-lru",
        "bcache" | "b-cache" => "bcache-mf8-bas8",
        other => other,
    };
    bench::model_set()
        .into_iter()
        .find(|(n, _)| *n == canonical)
        .ok_or_else(|| {
            let known: Vec<&str> = bench::model_set().iter().map(|(n, _)| *n).collect();
            format!("unknown model: {name} (known: {})", known.join(", "))
        })
}

/// Resolves a benchmark name: the SPEC profiles first, then the
/// synthetic families (`uniform64k`, `zipf8`, `birthday8/16/32/64`).
///
/// # Errors
///
/// Returns a message when neither family knows the name.
pub fn resolve_benchmark(name: &str) -> Result<BenchmarkProfile, String> {
    profiles::by_name(name)
        .or_else(|| synthetic::by_name(name))
        .ok_or_else(|| format!("unknown benchmark: {name} (SPEC profile or synthetic family)"))
}

impl ProfileOptions {
    /// Parses the option tail after `profile` (telemetry flags are
    /// stripped earlier by
    /// [`TelemetryFlags::extract`](crate::telemetry_io::TelemetryFlags::extract)).
    pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<ProfileOptions, String> {
        let mut opts = ProfileOptions::default();
        let mut warmup_override = None;
        let mut records_given = false;
        let mut i = 0;
        let value = |args: &[S], i: usize| {
            args.get(i + 1)
                .and_then(|s| s.as_ref().parse::<u64>().ok())
                .ok_or_else(|| format!("{} needs an integer argument", args[i].as_ref()))
        };
        let text = |args: &[S], i: usize| {
            args.get(i + 1)
                .map(|s| s.as_ref().to_string())
                .ok_or_else(|| format!("{} needs an argument", args[i].as_ref()))
        };
        while i < args.len() {
            match args[i].as_ref() {
                "--model" => {
                    let name = text(args, i)?;
                    let (canonical, _) = resolve_model(&name)?;
                    opts.model = canonical.to_string();
                    i += 2;
                }
                "--benchmark" => {
                    let name = text(args, i)?;
                    resolve_benchmark(&name)?;
                    opts.benchmark = name;
                    i += 2;
                }
                "--side" => {
                    opts.side = match args.get(i + 1).map(|s| s.as_ref()) {
                        Some("i") | Some("instruction") => Side::Instruction,
                        Some("d") | Some("data") => Side::Data,
                        _ => return Err("--side needs 'i' or 'd'".into()),
                    };
                    i += 2;
                }
                "--records" => {
                    let v = value(args, i)?;
                    let seed = opts.len.seed;
                    opts.len = RunLength::with_records(v);
                    opts.len.seed = seed;
                    records_given = true;
                    i += 2;
                }
                "--warmup" => {
                    warmup_override = Some(value(args, i)?);
                    i += 2;
                }
                "--seed" => {
                    opts.len.seed = value(args, i)?;
                    i += 2;
                }
                "--jobs" => {
                    let v = value(args, i)?;
                    if v == 0 {
                        return Err("--jobs must be at least 1".into());
                    }
                    opts.jobs = v as usize;
                    i += 2;
                }
                "--window" => {
                    let v = value(args, i)?;
                    if v == 0 {
                        return Err("--window must be at least 1 access".into());
                    }
                    opts.window = v;
                    i += 2;
                }
                "--out" => {
                    opts.out = text(args, i)?;
                    i += 2;
                }
                "--smoke" => {
                    opts.smoke = true;
                    i += 1;
                }
                other => {
                    if !opts.setup.try_flag(args, &mut i)? {
                        return Err(format!("unknown option: {other}"));
                    }
                }
            }
        }
        if opts.smoke && !records_given {
            let seed = opts.len.seed;
            opts.len = RunLength::with_records(SMOKE_RECORDS);
            opts.len.seed = seed;
        }
        if let Some(w) = warmup_override {
            opts.len.warmup = w;
        }
        validate_len(opts.len)?;
        Ok(opts)
    }

    /// Builds the experiment engine these options describe.
    pub fn engine(&self) -> Engine {
        self.setup.build_engine(self.jobs)
    }
}

/// Everything a `profile` invocation produces; the binary decides what
/// to print and where to write the artifacts.
#[derive(Clone, Debug)]
pub struct ProfileOutcome {
    /// Human-readable report (summary, phase attribution, overhead).
    pub report: String,
    /// Merged telemetry (deterministic counters/histograms + timing).
    pub metrics: Recorder,
    /// The windowed time series as JSON Lines (deterministic).
    pub series_jsonl: String,
    /// The windowed time series as CSV (deterministic).
    pub series_csv: String,
    /// The hierarchical spans as Chrome Trace Event JSON (wall-clock).
    pub trace_json: String,
    /// Measured windowed-replay overhead versus the plain batched
    /// replay, as a fraction (0.03 = 3% slower).
    pub overhead: f64,
    /// Whether the `--smoke` overhead bound held (always `true` when
    /// `--smoke` was not requested).
    pub smoke_ok: bool,
}

/// Replays `accesses` into `model` in `window`-sized batches, deriving
/// one [`WindowRow`] per chunk from stats deltas — the batched kernel
/// itself runs unobserved. `pd_snapshot` reports the model's running
/// `(PD-forced, predetermined)` miss totals (`(0, 0)` for conventional
/// models).
pub fn replay_windowed<M: CacheModel + ?Sized>(
    model: &mut M,
    accesses: &[(Addr, AccessKind)],
    window: u64,
    mut pd_snapshot: impl FnMut(&M) -> (u64, u64),
) -> WindowSeries {
    let sets = model
        .set_usage()
        .map(|u| u.sets())
        .unwrap_or_else(|| model.geometry().sets());
    let mut series = WindowSeries::new(window, sets as u64);
    // Heat columns cover contiguous set ranges, so the per-window scan
    // sums each range as a slice (auto-vectorized) instead of mapping
    // sets one by one: the delta of a bucket's access sum equals the
    // sum of its per-set deltas (counters are monotonic).
    let bucket_ranges: Vec<(usize, usize, usize)> = {
        let table = series.bucket_table();
        let mut ranges = Vec::new();
        let mut start = 0usize;
        while start < sets {
            let bucket = table[start];
            let mut end = start;
            while end < sets && table[end] == bucket {
                end += 1;
            }
            ranges.push((bucket as usize, start, end));
            start = end;
        }
        ranges
    };
    let mut prev_heat = [0u64; telemetry::HEAT_COLUMNS];
    let (mut prev_accesses, mut prev_hits, mut prev_writebacks) = (0u64, 0u64, 0u64);
    let (mut prev_forced, mut prev_predet) = pd_snapshot(model);
    let chunk_len = usize::try_from(window).unwrap_or(usize::MAX).max(1);
    for (chunk_index, chunk) in accesses.chunks(chunk_len).enumerate() {
        model.access_batch(chunk);
        let total = model.stats().total();
        let writebacks = model.stats().writebacks();
        let (forced, predet) = pd_snapshot(model);
        let mut row = WindowRow::zero(chunk_index as u64);
        row.accesses = total.accesses() - prev_accesses;
        row.hits = total.hits() - prev_hits;
        row.misses = row.accesses - row.hits;
        row.writebacks = writebacks - prev_writebacks;
        row.pd_forced_misses = forced - prev_forced;
        row.predetermined_misses = predet - prev_predet;
        // A B-Cache reprograms the PD (and consults the BAS) on exactly
        // the predetermined misses; every other miss is a plain tag
        // miss.
        row.pd_reprograms = row.predetermined_misses;
        row.bas_victims = row.predetermined_misses;
        row.tag_misses = row
            .misses
            .saturating_sub(row.pd_forced_misses + row.predetermined_misses);
        if let Some(usage) = model.set_usage() {
            let (hits, misses) = (usage.hit_counts(), usage.miss_counts());
            for &(bucket, start, end) in &bucket_ranges {
                let now =
                    hits[start..end].iter().sum::<u64>() + misses[start..end].iter().sum::<u64>();
                row.heat[bucket] = now - prev_heat[bucket];
                prev_heat[bucket] = now;
            }
        }
        (prev_accesses, prev_hits, prev_writebacks) = (total.accesses(), total.hits(), writebacks);
        (prev_forced, prev_predet) = (forced, predet);
        series.push_row(row);
    }
    series
}

/// Builds the profiled model and runs the windowed replay, returning
/// the series plus a recorder fragment with the model's aggregate
/// counters/histograms. Shared with the serve subsystem's profile
/// jobs, which stream the same rows over the wire.
pub(crate) fn profile_replay(
    config: CacheConfig,
    model_name: &str,
    seed: u64,
    trace: &SideTrace,
    window: u64,
) -> (WindowSeries, Recorder, f64) {
    let mut frag = Recorder::new();
    let t = SpanTimer::start("phase.replay");
    let (series, miss_rate) = if let CacheConfig::BCache { mf, bas } = config {
        // Built concretely (seeded exactly like `CacheConfig::build`)
        // so the PD statistics are reachable — the trait object hides
        // them.
        let geom = CacheGeometry::new(SIZE_BYTES, 32, 1).expect("valid profile geometry");
        let params = BCacheParams::new(geom, mf, bas, PolicyKind::Lru)
            .expect("valid B-Cache point")
            .with_seed(seed);
        let mut bc = BalancedCache::new(params);
        let series = replay_windowed(&mut bc, trace.accesses(), window, |m| {
            let pd = m.pd_stats();
            (pd.misses_with_pd_hit, pd.misses_with_pd_miss)
        });
        record_model(&mut frag, model_name, &bc);
        let pd = bc.pd_stats();
        frag.counter("profile.pd_reprograms", pd.misses_with_pd_miss);
        frag.counter("profile.pd_forced_misses", pd.misses_with_pd_hit);
        (series, bc.stats().miss_rate())
    } else {
        let mut model = config
            .build(SIZE_BYTES, seed)
            .expect("profile model builds at 16 kB");
        let series = replay_windowed(&mut *model, trace.accesses(), window, |_| (0, 0));
        record_model(&mut frag, model_name, model.as_ref());
        (series, model.stats().miss_rate())
    };
    t.stop(&mut frag);
    frag.counter("profile.windows", series.completed());
    frag.counter("profile.windows_dropped", series.dropped());
    frag.counter("profile.accesses", series.total_accesses());
    (series, frag, miss_rate)
}

/// Accesses of the dedicated overhead-measurement stream. Benchmark
/// side traces are often short enough (tens of microseconds per pass)
/// that timer noise swamps a few-percent delta; a fixed 1 M-access
/// stream keeps each pass in the milliseconds where the bound is
/// actually measurable.
const OVERHEAD_RECORDS: u64 = 1_000_000;

/// Measures the windowed-replay overhead on the direct-mapped batched
/// kernel: the minimum of [`OVERHEAD_PASSES`] plain unwindowed passes
/// versus the same minimum of windowed passes over the bench module's
/// deterministic LCG stream, as a fraction.
fn measure_overhead(window: u64) -> f64 {
    let accesses = bench::access_stream(OVERHEAD_RECORDS, bench::DEFAULT_SEED);
    let mut best_plain = f64::INFINITY;
    let mut best_windowed = f64::INFINITY;
    for _ in 0..OVERHEAD_PASSES {
        let mut dm = CacheConfig::DirectMapped
            .build(SIZE_BYTES, 0)
            .expect("direct-mapped builds at 16 kB");
        let start = Instant::now();
        dm.access_batch(&accesses);
        best_plain = best_plain.min(start.elapsed().as_secs_f64());
        std::hint::black_box(dm.stats().total().misses());

        let mut dm = CacheConfig::DirectMapped
            .build(SIZE_BYTES, 0)
            .expect("direct-mapped builds at 16 kB");
        let start = Instant::now();
        let series = replay_windowed(&mut *dm, &accesses, window, |_| (0, 0));
        best_windowed = best_windowed.min(start.elapsed().as_secs_f64());
        std::hint::black_box(series.completed());
    }
    if best_plain <= 0.0 {
        0.0
    } else {
        best_windowed / best_plain - 1.0
    }
}

/// Total seconds of one named timing span in `rec` (0 when absent).
fn span_secs(rec: &Recorder, name: &str) -> f64 {
    rec.timing(name)
        .map(|s| s.total_nanos as f64 / 1e9)
        .unwrap_or(0.0)
}

/// Runs the subcommand: cached trace generation, one engine job for
/// the windowed replay (so the engine's queue/exec spans land in the
/// trace export), the overhead measurement, and the report.
///
/// # Panics
///
/// Panics if `opts.model` or `opts.benchmark` resolves to nothing (the
/// parser validates both, so only direct library misuse can trip
/// this).
pub fn profile_cmd(opts: &ProfileOptions) -> ProfileOutcome {
    let (model_name, config) = resolve_model(&opts.model).expect("validated model name");
    let profile = resolve_benchmark(&opts.benchmark).expect("validated benchmark name");
    let engine = opts.engine();
    let len = opts.len;
    let side = opts.side;
    let window = opts.window;
    let mut phases = SpanLog::new();

    // Trace generation + side extraction (cached; spans land in the
    // engine's timing recorder).
    let trace_start = Instant::now();
    let trace = engine.side_trace(&profile, len, side);
    phases.push(None, "profile.trace", 0, trace_start, Instant::now());

    // The windowed replay runs as one engine job: the series is a pure
    // function of the access stream, so any `--jobs N` produces the
    // same bytes, and the engine's per-job spans are exercised.
    let replay_start = Instant::now();
    let seed = job_seed(len.seed, &opts.benchmark, side);
    let job_trace = trace.clone();
    let job_model = model_name;
    let mut results = engine.run(vec![move || {
        profile_replay(config, job_model, seed, &job_trace, window)
    }]);
    let (series, frag, miss_rate) = results.pop().expect("one profiling job");
    phases.push(None, "profile.replay", 0, replay_start, Instant::now());

    let overhead_start = Instant::now();
    let mut metrics = Recorder::new();
    let t = SpanTimer::start("phase.overhead");
    let overhead = measure_overhead(window);
    t.stop(&mut metrics);
    phases.push(None, "profile.overhead", 0, overhead_start, Instant::now());

    metrics.merge(&frag);
    metrics.merge(&engine.timing_snapshot());
    metrics.merge(&engine.failure_snapshot());

    let report_start = Instant::now();
    let t = SpanTimer::start("phase.report");
    let smoke_ok = !opts.smoke || overhead < OVERHEAD_LIMIT;

    let mut report = format!(
        "profile: {} on {} ({} side), {} records (cold start), seed {}, window {}\n\n",
        model_name,
        opts.benchmark,
        match side {
            Side::Data => "data",
            Side::Instruction => "instruction",
        },
        len.records,
        len.seed,
        window,
    );
    report.push_str(&format!(
        "accesses: {}  miss rate: {:.4}%  windows: {} ({} dropped)\n",
        series.total_accesses(),
        miss_rate * 100.0,
        series.completed(),
        series.dropped(),
    ));
    let pd_reprograms = metrics.counter_value("profile.pd_reprograms");
    let pd_forced = metrics.counter_value("profile.pd_forced_misses");
    if pd_reprograms + pd_forced > 0 {
        report.push_str(&format!(
            "PD reprograms: {pd_reprograms}  PD-forced misses: {pd_forced}\n"
        ));
    }
    report.push_str(&format!(
        "backend: {} ({} lanes)\n",
        simd::backend().name(),
        simd::LANES
    ));

    // Phase attribution: wall-time fractions of the instrumented
    // phases (trace generation + extraction, kernel replay, overhead
    // measurement).
    let attributed = [
        ("trace-gen", span_secs(&metrics, "phase.trace_gen")),
        ("trace-extract", span_secs(&metrics, "phase.trace_extract")),
        ("kernel-replay", span_secs(&metrics, "phase.replay")),
        ("overhead-measure", span_secs(&metrics, "phase.overhead")),
    ];
    let total: f64 = attributed.iter().map(|(_, s)| s).sum();
    report.push_str("\nphase attribution (wall time):\n");
    for (name, secs) in attributed {
        let pct = if total > 0.0 {
            secs / total * 100.0
        } else {
            0.0
        };
        report.push_str(&format!(
            "  {name:<18} {:>9.3} ms  {pct:>5.1}%\n",
            secs * 1e3
        ));
    }

    report.push_str(&format!(
        "\nwindowed-replay overhead vs plain batched replay (dm, min of {OVERHEAD_PASSES}): \
         {:+.2}%\n",
        overhead * 100.0
    ));
    if opts.smoke {
        if smoke_ok {
            report.push_str(&format!(
                "SMOKE OK: overhead within the {:.0}% bound\n",
                OVERHEAD_LIMIT * 100.0
            ));
        } else {
            report.push_str(&format!(
                "SMOKE FAIL: overhead {:.2}% exceeds the {:.0}% bound\n",
                overhead * 100.0,
                OVERHEAD_LIMIT * 100.0
            ));
        }
    }
    t.stop(&mut metrics);
    phases.push(None, "profile.report", 0, report_start, Instant::now());

    // Export: the profiling phases plus the engine's hierarchical spans
    // on one timeline.
    phases.merge(&engine.span_snapshot());
    let mut thread_names: Vec<(u64, String)> = vec![(0, "supervisor".into())];
    for tid in 1..=(opts.jobs as u64) {
        thread_names.push((tid, format!("worker-{tid}")));
    }
    let trace_json = chrome_trace_json(
        &phases,
        &format!("bcache-repro profile {} {}", model_name, opts.benchmark),
        &thread_names,
    );

    ProfileOutcome {
        report,
        metrics,
        series_jsonl: series.to_jsonl(),
        series_csv: series.to_csv(),
        trace_json,
        overhead,
        smoke_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(records: u64) -> ProfileOptions {
        ProfileOptions {
            len: RunLength::with_records(records),
            window: 1024,
            ..ProfileOptions::default()
        }
    }

    #[test]
    fn options_parse_aliases_and_reject_garbage() {
        let o = ProfileOptions::parse(&[
            "--model",
            "b-cache",
            "--benchmark",
            "gzip",
            "--side",
            "i",
            "--records",
            "9000",
            "--seed",
            "4",
            "--jobs",
            "2",
            "--window",
            "512",
            "--out",
            "/tmp/p",
        ])
        .unwrap();
        assert_eq!(o.model, "bcache-mf8-bas8");
        assert_eq!(o.benchmark, "gzip");
        assert_eq!(o.side, Side::Instruction);
        assert_eq!(o.len.records, 9_000);
        assert_eq!(o.len.seed, 4);
        assert_eq!(o.jobs, 2);
        assert_eq!(o.window, 512);
        assert_eq!(o.out, "/tmp/p");
        assert_eq!(
            ProfileOptions::parse(&["--model", "dm"]).unwrap().model,
            "direct-mapped"
        );
        // Synthetic benchmarks resolve through the fallback.
        let o = ProfileOptions::parse(&["--benchmark", "birthday16"]).unwrap();
        assert_eq!(o.benchmark, "birthday16");
        assert!(ProfileOptions::parse(&["--model", "nonesuch"]).is_err());
        assert!(ProfileOptions::parse(&["--benchmark", "nonesuch"]).is_err());
        assert!(ProfileOptions::parse(&["--window", "0"]).is_err());
        assert!(ProfileOptions::parse(&["--frobnicate"]).is_err());
        // --smoke shortens the run unless --records was explicit.
        let s = ProfileOptions::parse(&["--smoke"]).unwrap();
        assert_eq!(s.len.records, SMOKE_RECORDS);
        let s = ProfileOptions::parse(&["--smoke", "--records", "50000"]).unwrap();
        assert_eq!(s.len.records, 50_000);
    }

    #[test]
    fn profile_emits_series_trace_and_report() {
        let mut opts = quick(40_000);
        opts.jobs = 2;
        let out = profile_cmd(&opts);
        assert!(out.report.contains("bcache-mf8-bas8"), "{}", out.report);
        assert!(out.report.contains("phase attribution"), "{}", out.report);
        assert!(out.report.contains("overhead"), "{}", out.report);
        // The series header declares the requested grid.
        let header = out.series_jsonl.lines().next().unwrap();
        assert!(header.contains("\"window\": 1024"), "{header}");
        assert!(out.series_jsonl.lines().count() > 2);
        assert!(out.series_csv.starts_with("window,accesses"));
        // PD activity lands both in the metrics and in the rows.
        assert!(out.metrics.counter_value("profile.pd_reprograms") > 0);
        assert!(out.series_jsonl.contains("\"pd_reprograms\": "));
        // Trace JSON has the Chrome envelope, the engine's job spans,
        // and the profiling phases.
        assert!(out.trace_json.starts_with("{\"displayTimeUnit\""));
        assert!(out.trace_json.contains("\"engine.run\""));
        assert!(out.trace_json.contains("\"job0.wait\""));
        assert!(out.trace_json.contains("\"exec\""));
        assert!(out.trace_json.contains("\"profile.replay\""));
        assert!(out.smoke_ok, "no bound enforced without --smoke");
    }

    #[test]
    fn windowed_rows_sum_to_the_aggregate_counters() {
        let opts = quick(30_000);
        let profile = resolve_benchmark(&opts.benchmark).unwrap();
        let engine = opts.engine();
        let trace = engine.side_trace(&profile, opts.len, opts.side);
        let seed = job_seed(opts.len.seed, &opts.benchmark, opts.side);
        let (series, frag, _) = profile_replay(
            CacheConfig::BCache { mf: 8, bas: 8 },
            "m",
            seed,
            &trace,
            512,
        );
        let misses: u64 = series.rows().map(|r| r.misses).sum();
        let accesses: u64 = series.rows().map(|r| r.accesses).sum();
        let reprograms: u64 = series.rows().map(|r| r.pd_reprograms).sum();
        assert_eq!(accesses, frag.counter_value("m.accesses"));
        assert_eq!(misses, frag.counter_value("m.misses"));
        assert_eq!(reprograms, frag.counter_value("profile.pd_reprograms"));
        // Every B-Cache miss is PD-forced or predetermined.
        assert!(series.rows().all(|r| r.tag_misses == 0));
        // The heat rows account for every access.
        let heat: u64 = series.rows().map(|r| r.heat.iter().sum::<u64>()).sum();
        assert_eq!(heat, accesses);
    }

    #[test]
    fn series_bytes_are_jobs_invariant() {
        let base = quick(20_000);
        let mut golden: Option<(String, String, String)> = None;
        for jobs in [1usize, 2, 8] {
            let mut opts = base.clone();
            opts.jobs = jobs;
            let out = profile_cmd(&opts);
            let bundle = (out.series_jsonl, out.series_csv, out.metrics.to_json(false));
            match &golden {
                None => golden = Some(bundle),
                Some(g) => assert_eq!(g, &bundle, "--jobs {jobs} changed the series"),
            }
        }
    }
}
