//! Simulator micro-benchmarks behind the `bcache-repro bench`
//! subcommand: raw model throughput at a pinned record count, written to
//! `BENCH_repro.json` so every PR leaves a comparable perf point.
//!
//! The measured stream is a deterministic LCG address pattern (hits and
//! conflicts, one store per four references) replayed through each
//! model's [`CacheModel::access_batch`] hot path — the same path
//! [`SideTrace`](crate::run::SideTrace) replay uses — or, with
//! `--per-access`, through the one-at-a-time dispatched loop the batch
//! API replaced. Each row records mega-accesses per second, stamped
//! with the SIMD backend and lane count that produced it so a number
//! measured on an AVX2 box is never compared against a portable one
//! without noticing:
//!
//! ```json
//! {"model": "direct-mapped", "maccesses_per_sec": 123.456,
//!  "records": 1000000, "seed": 42, "git_rev": "abc1234",
//!  "backend": "avx2", "lanes": 8}
//! ```
//!
//! `backend`/`lanes` are optional on read (older files parse as
//! `"unknown"`/0), so the committed `BENCH_baseline.json` predating the
//! stamp stays valid.
//!
//! `BENCH_baseline.json` (committed) holds the pre-optimization numbers;
//! `bench --smoke` re-measures at a reduced record count and fails if
//! any model's throughput drops below the regression threshold relative
//! to that file, which is what CI runs.

use std::fmt::Write as _;
use std::time::Instant;

use cache_sim::{AccessKind, Addr, CacheModel};

use crate::config::CacheConfig;

/// Record count of a full `bench` run.
pub const DEFAULT_RECORDS: u64 = 1_000_000;

/// Record count of a `bench --smoke` run (CI).
pub const SMOKE_RECORDS: u64 = 200_000;

/// Default stream seed.
pub const DEFAULT_SEED: u64 = 42;

/// The `--smoke` regression floor for one model: half its committed
/// baseline throughput.
///
/// The CI box is a single noisy vCPU where back-to-back runs of an
/// unchanged binary swing by up to ±2× (see ROADMAP), so any tighter
/// floor flakes and any per-row hand-tuned constant silently encodes
/// one lucky measurement. Every row uses this one rule; a genuine
/// regression has to eat the entire documented noise band to slip
/// through, and the full `bench` history in BENCH_repro.json catches
/// slower drift.
pub fn smoke_floor(baseline_maccesses: f64) -> f64 {
    baseline_maccesses / 2.0
}

/// The benchmarked models: the whole fleet, one row per model, so
/// `BENCH_repro.json` tracks every batched kernel.
pub fn model_set() -> Vec<(&'static str, CacheConfig)> {
    vec![
        ("direct-mapped", CacheConfig::DirectMapped),
        ("8-way-lru", CacheConfig::SetAssoc(8)),
        ("victim16", CacheConfig::Victim(16)),
        ("bcache-mf8-bas8", CacheConfig::BCache { mf: 8, bas: 8 }),
        ("column-assoc", CacheConfig::ColumnAssoc),
        ("skewed-2way", CacheConfig::SkewedAssoc),
        ("way-halting4", CacheConfig::WayHalting),
        ("hac32", CacheConfig::Hac),
        ("agac", CacheConfig::Agac),
        ("pam5", CacheConfig::Pam),
        ("diff-bit", CacheConfig::DiffBit),
    ]
}

/// Options of the `bench` subcommand:
/// `bench [--records N] [--seed S] [--out PATH] [--baseline PATH]
/// [--smoke] [--per-access]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BenchOptions {
    /// Accesses per timed pass (pinned so runs are comparable).
    pub records: u64,
    /// Address-stream seed.
    pub seed: u64,
    /// Output file.
    pub out: String,
    /// Committed baseline file for the `--smoke` regression gate.
    pub baseline: String,
    /// Reduced-length run that enforces the baseline gate (CI).
    pub smoke: bool,
    /// Measure the dispatched per-access loop instead of
    /// [`CacheModel::access_batch`] (the pre-batch-API hot path).
    pub per_access: bool,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            records: DEFAULT_RECORDS,
            seed: DEFAULT_SEED,
            out: "BENCH_repro.json".into(),
            baseline: "BENCH_baseline.json".into(),
            smoke: false,
            per_access: false,
        }
    }
}

impl BenchOptions {
    /// Parses the option tail after `bench`. Unknown or malformed
    /// options return an error naming the offender.
    pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<BenchOptions, String> {
        let mut opts = BenchOptions::default();
        let mut records_given = false;
        let mut i = 0;
        while i < args.len() {
            match args[i].as_ref() {
                "--records" => {
                    opts.records = args
                        .get(i + 1)
                        .and_then(|s| s.as_ref().parse::<u64>().ok())
                        .filter(|&v| v > 0)
                        .ok_or("--records needs a positive integer argument")?;
                    records_given = true;
                    i += 2;
                }
                "--seed" => {
                    opts.seed = args
                        .get(i + 1)
                        .and_then(|s| s.as_ref().parse::<u64>().ok())
                        .ok_or("--seed needs an integer argument")?;
                    i += 2;
                }
                "--out" => {
                    opts.out = args
                        .get(i + 1)
                        .map(|s| s.as_ref().to_string())
                        .ok_or("--out needs a path argument")?;
                    i += 2;
                }
                "--baseline" => {
                    opts.baseline = args
                        .get(i + 1)
                        .map(|s| s.as_ref().to_string())
                        .ok_or("--baseline needs a path argument")?;
                    i += 2;
                }
                "--smoke" => {
                    opts.smoke = true;
                    i += 1;
                }
                "--per-access" => {
                    opts.per_access = true;
                    i += 1;
                }
                other => return Err(format!("unknown option: {other}")),
            }
        }
        if opts.smoke && !records_given {
            opts.records = SMOKE_RECORDS;
        }
        Ok(opts)
    }
}

/// One model's measured throughput.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchRow {
    /// Model name (`model_set` key).
    pub model: String,
    /// Mega-accesses per second, best of three timed passes.
    pub maccesses_per_sec: f64,
    /// Accesses per timed pass.
    pub records: u64,
    /// Address-stream seed.
    pub seed: u64,
    /// `git rev-parse --short HEAD` at measurement time.
    pub git_rev: String,
    /// SIMD backend the kernels dispatched to (`"avx2"`, `"portable"`;
    /// `"unknown"` when read from a pre-stamp file).
    pub backend: String,
    /// Kernel lane width ([`cache_sim::simd::LANES`]; 0 when read from
    /// a pre-stamp file).
    pub lanes: u64,
}

/// The deterministic benchmark stream: LCG addresses over a 1 MB
/// footprint (the Criterion `simulator` bench's pattern) with one store
/// per four references.
pub fn access_stream(records: u64, seed: u64) -> Vec<(Addr, AccessKind)> {
    let mut x = seed ^ 0x1234_5678;
    (0..records)
        .map(|i| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = Addr::new((x >> 16) % (1 << 20));
            let kind = if i % 4 == 3 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            (addr, kind)
        })
        .collect()
}

/// Best-of-three wall-clock throughput of one model over `accesses`, in
/// mega-accesses per second. One untimed warm pass populates the cache
/// so every timed pass sees the same steady state.
fn measure(
    model: &mut Box<dyn CacheModel>,
    accesses: &[(Addr, AccessKind)],
    per_access: bool,
) -> f64 {
    let pass = |model: &mut Box<dyn CacheModel>| {
        if per_access {
            for &(addr, kind) in accesses {
                std::hint::black_box(model.access(addr, kind));
            }
        } else {
            model.access_batch(accesses);
        }
    };
    pass(model);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        pass(model);
        best = best.min(start.elapsed().as_secs_f64());
    }
    std::hint::black_box(model.stats().total().accesses());
    accesses.len() as f64 / best / 1e6
}

/// Runs the micro-benchmarks and returns one row per model.
///
/// # Errors
///
/// Returns a message when a benchmark cache configuration cannot be
/// constructed (a build defect in the fixed 16 kB model set).
pub fn run(opts: &BenchOptions) -> Result<Vec<BenchRow>, String> {
    run_recorded(opts, &mut telemetry::Recorder::new())
}

/// Extra row measuring the supervised engine's dispatch overhead: the
/// same stream sharded into four direct-mapped jobs on an
/// [`Engine`](crate::parallel::Engine), so the fault-free cost of
/// `catch_unwind` + supervision is a tracked number rather than a hope.
pub const ENGINE_ROW: &str = "dm-engine-4shard";

/// Extra row re-measuring the direct-mapped kernel with the SIMD
/// dispatch forced to the portable backend — the scalar-vs-AVX2 delta
/// as a tracked number (what `BCACHE_NO_SIMD=1` costs).
pub const NOSIMD_ROW: &str = "direct-mapped-nosimd";

/// Extra row measuring the multi-trace interleaved kernel
/// ([`crate::interleave`]): the stream split round-robin over eight
/// independent direct-mapped lanes, aggregate accesses per second.
pub const INTERLEAVE_ROW: &str = "dm-interleave8";

/// Lanes of the [`INTERLEAVE_ROW`] measurement.
pub const INTERLEAVE_LANES: usize = 8;

/// Best-of-three aggregate throughput of [`INTERLEAVE_ROW`]: eight
/// independent 16 kB direct-mapped caches, each replaying its
/// round-robin share of the stream, rotated every
/// [`crate::interleave::DEFAULT_GRANULE`] accesses.
fn measure_interleaved(accesses: &[(Addr, AccessKind)]) -> Result<f64, String> {
    let lanes = crate::interleave::split_round_robin(accesses, INTERLEAVE_LANES);
    let views: Vec<&[(Addr, AccessKind)]> = lanes.iter().map(|l| l.as_slice()).collect();
    let pass = || -> Result<(), String> {
        let mut models = (0..INTERLEAVE_LANES)
            .map(|_| cache_sim::DirectMappedCache::new(16 * 1024, 32))
            .collect::<Result<Vec<_>, _>>()
            .map_err(|e| format!("bench interleave geometry (16 kB, 32 B lines): {e}"))?;
        crate::interleave::replay_interleaved(
            &mut models,
            &views,
            crate::interleave::DEFAULT_GRANULE,
        );
        std::hint::black_box(
            models
                .iter()
                .map(|m| m.stats().total().misses())
                .sum::<u64>(),
        );
        Ok(())
    };
    pass()?;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        pass()?;
        best = best.min(start.elapsed().as_secs_f64());
    }
    Ok(accesses.len() as f64 / best / 1e6)
}

/// Best-of-three throughput of [`ENGINE_ROW`]: four chunks of the
/// stream, each replayed through its own direct-mapped model inside an
/// engine job (the shards are independent caches — this measures
/// dispatch, not cache behavior).
fn measure_engine_dispatch(accesses: &[(Addr, AccessKind)], seed: u64) -> Result<f64, String> {
    let engine = crate::parallel::Engine::new(4);
    let chunk = accesses.len().div_ceil(4).max(1);
    let pass = |engine: &crate::parallel::Engine| -> Result<(), String> {
        let jobs: Vec<_> = accesses
            .chunks(chunk)
            .map(|shard| {
                move || -> Result<u64, String> {
                    let mut dm = CacheConfig::DirectMapped
                        .build(16 * 1024, seed)
                        .map_err(|e| format!("bench direct-mapped config at 16 kB: {e}"))?;
                    dm.access_batch(shard);
                    Ok(std::hint::black_box(dm.stats().total().misses()))
                }
            })
            .collect();
        for shard in engine.run(jobs) {
            std::hint::black_box(shard?);
        }
        Ok(())
    };
    pass(&engine)?;
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let start = Instant::now();
        pass(&engine)?;
        best = best.min(start.elapsed().as_secs_f64());
    }
    Ok(accesses.len() as f64 / best / 1e6)
}

/// [`run`] with per-phase telemetry: stream-generation and per-model
/// measurement wall-time spans land in `rec`'s `timing` section, and
/// the run shape (records, model count) in its counters. The timed
/// passes themselves are untouched — the spans wrap them from outside.
pub fn run_recorded(
    opts: &BenchOptions,
    rec: &mut telemetry::Recorder,
) -> Result<Vec<BenchRow>, String> {
    let accesses = rec.time("phase.stream_gen", || {
        access_stream(opts.records, opts.seed)
    });
    let git_rev = git_rev();
    let backend = cache_sim::simd::backend().name().to_string();
    let lanes = cache_sim::simd::LANES as u64;
    rec.counter("bench.records", opts.records);
    let mut rows: Vec<BenchRow> = Vec::new();
    for (name, config) in model_set() {
        let mut model = config
            .build(16 * 1024, opts.seed)
            .map_err(|e| format!("bench model {name} at 16 kB: {e}"))?;
        let maccesses_per_sec = rec.time(&format!("phase.measure.{name}"), || {
            measure(&mut model, &accesses, opts.per_access)
        });
        rows.push(BenchRow {
            model: name.to_string(),
            maccesses_per_sec,
            records: opts.records,
            seed: opts.seed,
            git_rev: git_rev.clone(),
            backend: backend.clone(),
            lanes,
        });
    }
    let engine_dispatch = rec.time(&format!("phase.measure.{ENGINE_ROW}"), || {
        measure_engine_dispatch(&accesses, opts.seed)
    })?;
    rows.push(BenchRow {
        model: ENGINE_ROW.to_string(),
        maccesses_per_sec: engine_dispatch,
        records: opts.records,
        seed: opts.seed,
        git_rev: git_rev.clone(),
        backend: backend.clone(),
        lanes,
    });
    let nosimd = rec.time(&format!("phase.measure.{NOSIMD_ROW}"), || {
        let saved = cache_sim::simd::backend();
        cache_sim::simd::force_backend(cache_sim::simd::Backend::Portable);
        // Restore the dispatched backend before propagating any build
        // error — a failed row must not leave SIMD forced off.
        let result = CacheConfig::DirectMapped
            .build(16 * 1024, opts.seed)
            .map_err(|e| format!("bench direct-mapped config at 16 kB: {e}"))
            .map(|mut model| measure(&mut model, &accesses, opts.per_access));
        cache_sim::simd::force_backend(saved);
        result
    })?;
    rows.push(BenchRow {
        model: NOSIMD_ROW.to_string(),
        maccesses_per_sec: nosimd,
        records: opts.records,
        seed: opts.seed,
        git_rev: git_rev.clone(),
        // This row forces the portable backend for its measurement, so
        // it is stamped with what it actually ran, not the dispatch
        // default.
        backend: cache_sim::simd::Backend::Portable.name().to_string(),
        lanes,
    });
    let interleaved = rec.time(&format!("phase.measure.{INTERLEAVE_ROW}"), || {
        measure_interleaved(&accesses)
    })?;
    rows.push(BenchRow {
        model: INTERLEAVE_ROW.to_string(),
        maccesses_per_sec: interleaved,
        records: opts.records,
        seed: opts.seed,
        git_rev,
        backend,
        lanes,
    });
    rec.counter("bench.models", rows.len() as u64);
    Ok(rows)
}

/// The short git revision, or `"unknown"` outside a work tree.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Renders rows as the `BENCH_*.json` array (the format
/// [`parse_rows`] reads back).
pub fn render_json(rows: &[BenchRow]) -> String {
    let mut out = String::from("[\n");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        writeln!(
            out,
            "  {{\"model\": \"{}\", \"maccesses_per_sec\": {:.3}, \"records\": {}, \"seed\": {}, \"git_rev\": \"{}\", \"backend\": \"{}\", \"lanes\": {}}}{comma}",
            r.model, r.maccesses_per_sec, r.records, r.seed, r.git_rev, r.backend, r.lanes
        )
        .expect("writing to a String cannot fail");
    }
    out.push_str("]\n");
    out
}

/// Parses a `BENCH_*.json` file written by [`render_json`].
///
/// This is a minimal reader for exactly that subset of JSON (an array
/// of flat objects whose strings contain no escapes), not a general
/// parser — the workspace is offline and carries no serde.
pub fn parse_rows(text: &str) -> Result<Vec<BenchRow>, String> {
    let body = text.trim();
    if !body.starts_with('[') || !body.ends_with(']') {
        return Err("expected a top-level JSON array".into());
    }
    let mut rows = Vec::new();
    let mut rest = &body[1..body.len() - 1];
    while let Some(start) = rest.find('{') {
        let end = rest[start..].find('}').ok_or("unterminated row object")? + start;
        rows.push(parse_row(&rest[start + 1..end])?);
        rest = &rest[end + 1..];
    }
    Ok(rows)
}

/// Parses one row's `"key": value` pairs (fields may appear in any
/// order; the five original fields are required, `backend`/`lanes`
/// default to `"unknown"`/0 so pre-stamp baseline files still parse).
fn parse_row(fields: &str) -> Result<BenchRow, String> {
    let mut model = None;
    let mut maccesses = None;
    let mut records = None;
    let mut seed = None;
    let mut git_rev = None;
    let mut backend = None;
    let mut lanes = None;
    for field in fields.split(',') {
        let (key, value) = field
            .split_once(':')
            .ok_or_else(|| format!("malformed field: {field:?}"))?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        match key {
            "model" => model = Some(value.trim_matches('"').to_string()),
            "git_rev" => git_rev = Some(value.trim_matches('"').to_string()),
            "backend" => backend = Some(value.trim_matches('"').to_string()),
            "lanes" => {
                lanes = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("bad number for lanes: {value:?}"))?,
                )
            }
            "maccesses_per_sec" => {
                maccesses = Some(
                    value
                        .parse::<f64>()
                        .map_err(|_| format!("bad number for maccesses_per_sec: {value:?}"))?,
                )
            }
            "records" => {
                records = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("bad number for records: {value:?}"))?,
                )
            }
            "seed" => {
                seed = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("bad number for seed: {value:?}"))?,
                )
            }
            other => return Err(format!("unknown field: {other:?}")),
        }
    }
    Ok(BenchRow {
        model: model.ok_or("row is missing \"model\"")?,
        maccesses_per_sec: maccesses.ok_or("row is missing \"maccesses_per_sec\"")?,
        records: records.ok_or("row is missing \"records\"")?,
        seed: seed.ok_or("row is missing \"seed\"")?,
        git_rev: git_rev.ok_or("row is missing \"git_rev\"")?,
        backend: backend.unwrap_or_else(|| "unknown".to_string()),
        lanes: lanes.unwrap_or(0),
    })
}

/// The `--smoke` regression gate: every model present in both this run
/// and the committed baseline must stay above its [`smoke_floor`]
/// (half the baseline — the 1-vCPU ±2× noise band). Models the
/// baseline has never measured pass (they gain a baseline row on the
/// next refresh). Returns a human-readable per-model verdict on
/// success.
pub fn check_against_baseline(rows: &[BenchRow], baseline_text: &str) -> Result<String, String> {
    let baseline = parse_rows(baseline_text)?;
    if !rows.iter().any(|r| r.model == "direct-mapped") {
        return Err("this run has no direct-mapped row".into());
    }
    if !baseline.iter().any(|r| r.model == "direct-mapped") {
        return Err("the baseline file has no direct-mapped row".into());
    }
    let mut verdict = String::new();
    let mut failures = String::new();
    let mut gated = 0usize;
    for r in rows {
        let Some(then) = baseline
            .iter()
            .find(|b| b.model == r.model)
            .map(|b| b.maccesses_per_sec)
        else {
            continue; // new model: no baseline to regress against yet
        };
        gated += 1;
        let now = r.maccesses_per_sec;
        if now < smoke_floor(then) {
            let _ = writeln!(
                failures,
                "{} throughput regressed: {now:.1} MAcc/s vs baseline {then:.1} (floor {:.1})",
                r.model,
                smoke_floor(then)
            );
        } else {
            let _ = writeln!(
                verdict,
                "{} throughput {now:.1} MAcc/s vs committed baseline {then:.1} ({:+.1}%)",
                r.model,
                (now / then - 1.0) * 100.0
            );
        }
    }
    if !failures.is_empty() {
        return Err(failures.trim_end().to_string());
    }
    if gated == 0 {
        return Err("no model appears in both this run and the baseline file".into());
    }
    Ok(verdict.trim_end().to_string())
}

/// Renders the human-readable result table printed alongside the JSON.
pub fn render_table(rows: &[BenchRow]) -> String {
    let mut out = String::from("model              MAccesses/s\n");
    for r in rows {
        writeln!(out, "{:<18} {:>11.1}", r.model, r.maccesses_per_sec)
            .expect("writing to a String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<BenchRow> {
        vec![
            BenchRow {
                model: "direct-mapped".into(),
                maccesses_per_sec: 120.5,
                records: 1_000_000,
                seed: 42,
                git_rev: "abc1234".into(),
                backend: "avx2".into(),
                lanes: 8,
            },
            BenchRow {
                model: "bcache-mf8-bas8".into(),
                maccesses_per_sec: 80.25,
                records: 1_000_000,
                seed: 42,
                git_rev: "abc1234".into(),
                backend: "portable".into(),
                lanes: 8,
            },
        ]
    }

    #[test]
    fn json_round_trips_through_the_mini_parser() {
        let rows = sample_rows();
        let parsed = parse_rows(&render_json(&rows)).unwrap();
        assert_eq!(parsed.len(), rows.len());
        for (p, r) in parsed.iter().zip(&rows) {
            assert_eq!(p.model, r.model);
            assert_eq!(p.records, r.records);
            assert_eq!(p.seed, r.seed);
            assert_eq!(p.git_rev, r.git_rev);
            assert_eq!(p.backend, r.backend);
            assert_eq!(p.lanes, r.lanes);
            assert!((p.maccesses_per_sec - r.maccesses_per_sec).abs() < 1e-3);
        }
    }

    #[test]
    fn schema_requires_all_five_fields() {
        assert!(parse_rows("[\n  {\"model\": \"dm\", \"records\": 5}\n]").is_err());
        assert!(parse_rows("not json").is_err());
        assert!(parse_rows("[]").unwrap().is_empty());
        let err = parse_rows("[{\"model\": \"dm\", \"maccesses_per_sec\": \"fast\"}]");
        assert!(err.is_err());
    }

    #[test]
    fn pre_stamp_rows_parse_with_default_backend() {
        // A row written before the backend/lanes stamp (the committed
        // baseline's format) must still parse.
        let old = "[\n  {\"model\": \"direct-mapped\", \"maccesses_per_sec\": 120.500, \
                   \"records\": 1000000, \"seed\": 42, \"git_rev\": \"abc1234\"}\n]\n";
        let rows = parse_rows(old).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].backend, "unknown");
        assert_eq!(rows[0].lanes, 0);
        assert!(parse_rows("[{\"model\": \"dm\", \"lanes\": \"wide\"}]").is_err());
    }

    #[test]
    fn committed_bench_files_satisfy_the_schema() {
        // Both artifacts live at the repo root; every row must carry the
        // full five-field schema and a sane throughput.
        for name in ["BENCH_baseline.json", "BENCH_repro.json"] {
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../..").to_string() + "/" + name;
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue; // not yet generated in this checkout
            };
            let rows = parse_rows(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!rows.is_empty(), "{name} has no rows");
            assert!(
                rows.iter().any(|r| r.model == "direct-mapped"),
                "{name} lacks the direct-mapped gate row"
            );
            for r in &rows {
                assert!(r.maccesses_per_sec > 0.0, "{name}: {} throughput", r.model);
                assert!(
                    r.records > 0 && !r.git_rev.is_empty(),
                    "{name}: {}",
                    r.model
                );
            }
        }
    }

    #[test]
    fn options_parse_and_reject() {
        let o =
            BenchOptions::parse(&["--records", "5000", "--seed", "9", "--out", "x.json"]).unwrap();
        assert_eq!(o.records, 5_000);
        assert_eq!(o.seed, 9);
        assert_eq!(o.out, "x.json");
        assert!(!o.smoke && !o.per_access);
        let o = BenchOptions::parse(&["--smoke", "--per-access"]).unwrap();
        assert_eq!(o.records, SMOKE_RECORDS);
        assert!(o.smoke && o.per_access);
        let o = BenchOptions::parse(&["--smoke", "--records", "77"]).unwrap();
        assert_eq!(o.records, 77, "--records overrides the smoke default");
        assert!(BenchOptions::parse(&["--records", "0"]).is_err());
        assert!(BenchOptions::parse(&["--frobnicate"]).is_err());
        assert!(BenchOptions::parse(&["--out"]).is_err());
    }

    #[test]
    fn stream_is_deterministic_and_mixed() {
        let a = access_stream(10_000, 42);
        assert_eq!(a, access_stream(10_000, 42));
        assert_ne!(a, access_stream(10_000, 43));
        let writes = a.iter().filter(|(_, k)| k.is_write()).count();
        assert_eq!(writes, 2_500, "one store per four references");
        assert!(a.iter().all(|(addr, _)| addr.raw() < (1 << 20)));
    }

    #[test]
    fn run_produces_a_row_per_model_with_positive_throughput() {
        let opts = BenchOptions {
            records: 2_000,
            ..BenchOptions::default()
        };
        let rows = run(&opts).unwrap();
        assert_eq!(
            rows.len(),
            model_set().len() + 3,
            "models + engine + nosimd + interleave rows"
        );
        for r in &rows {
            assert!(r.maccesses_per_sec > 0.0, "{}", r.model);
            assert_eq!(r.records, 2_000);
            assert_eq!(r.lanes, cache_sim::simd::LANES as u64, "{}", r.model);
            assert_ne!(r.backend, "unknown", "{} is stamped", r.model);
        }
        assert!(rows.iter().any(|r| r.model == ENGINE_ROW));
        let nosimd = rows.iter().find(|r| r.model == NOSIMD_ROW).unwrap();
        assert_eq!(nosimd.backend, "portable", "nosimd row stamps what ran");
        assert!(rows.iter().any(|r| r.model == INTERLEAVE_ROW));
        assert!(render_table(&rows).contains("direct-mapped"));
    }

    #[test]
    fn recorded_run_captures_phase_spans() {
        let opts = BenchOptions {
            records: 1_000,
            ..BenchOptions::default()
        };
        let mut rec = telemetry::Recorder::new();
        let rows = run_recorded(&opts, &mut rec).unwrap();
        assert_eq!(rows.len(), model_set().len() + 3);
        assert_eq!(rec.counter_value("bench.models"), rows.len() as u64);
        assert_eq!(rec.counter_value("bench.records"), 1_000);
        assert_eq!(rec.timing("phase.stream_gen").unwrap().count, 1);
        assert_eq!(rec.timing("phase.measure.direct-mapped").unwrap().count, 1);
        assert_eq!(
            rec.timing(&format!("phase.measure.{ENGINE_ROW}"))
                .unwrap()
                .count,
            1
        );
        assert_eq!(
            rec.timing(&format!("phase.measure.{NOSIMD_ROW}"))
                .unwrap()
                .count,
            1
        );
        assert_eq!(
            rec.timing(&format!("phase.measure.{INTERLEAVE_ROW}"))
                .unwrap()
                .count,
            1
        );
    }

    #[test]
    fn smoke_floor_is_half_the_baseline() {
        // One rule for every row: the documented 1-vCPU ±2× noise band.
        assert_eq!(smoke_floor(120.5), 60.25);
        assert_eq!(smoke_floor(1.0), 0.5);
        assert_eq!(smoke_floor(0.0), 0.0);
    }

    #[test]
    fn baseline_gate_passes_and_fails_correctly() {
        let rows = sample_rows();
        let baseline = render_json(&sample_rows());
        assert!(check_against_baseline(&rows, &baseline).is_ok());
        let mut slow = sample_rows();
        slow[0].maccesses_per_sec = 120.5 * 0.4;
        let err = check_against_baseline(&slow, &baseline).unwrap_err();
        assert!(err.contains("regressed"), "{err}");
        assert!(err.contains("floor"), "{err}");
        // Sitting exactly on the floor passes: the gate is strict-less.
        let mut edge = sample_rows();
        edge[0].maccesses_per_sec = smoke_floor(120.5);
        assert!(check_against_baseline(&edge, &baseline).is_ok());
        // A dip inside the noise band stays green.
        let mut dip = sample_rows();
        dip[0].maccesses_per_sec = 120.5 * 0.6;
        assert!(check_against_baseline(&dip, &baseline).is_ok());
    }

    #[test]
    fn baseline_gate_covers_every_model() {
        // A regression in any model fails the gate, not just direct-mapped.
        let baseline = render_json(&sample_rows());
        let mut slow = sample_rows();
        slow[1].maccesses_per_sec = 80.25 * 0.4;
        let err = check_against_baseline(&slow, &baseline).unwrap_err();
        assert!(err.contains("bcache-mf8-bas8"), "{err}");
        assert!(err.contains("regressed"), "{err}");
        // Models absent from the baseline pass (no number to regress from).
        let mut extra = sample_rows();
        extra.push(BenchRow {
            model: "brand-new".into(),
            maccesses_per_sec: 0.001,
            records: 1_000_000,
            seed: 42,
            git_rev: "abc1234".into(),
            backend: "avx2".into(),
            lanes: 8,
        });
        let ok = check_against_baseline(&extra, &baseline).unwrap();
        assert!(!ok.contains("brand-new"), "{ok}");
        assert!(ok.contains("direct-mapped"), "{ok}");
        // But both sides still need the direct-mapped anchor row.
        let headless: Vec<BenchRow> = sample_rows().into_iter().skip(1).collect();
        assert!(check_against_baseline(&headless, &baseline).is_err());
    }
}
