//! Extension analyses from the paper's discussion sections:
//!
//! * Section 6.7 — improving the highly-associative cache with a partial
//!   programmable decoder ([`render_hac_comparison`]);
//! * Section 6.4 (last paragraph) — compatibility with drowsy/decay
//!   leakage techniques: the B-Cache still leaves enough less-accessed
//!   sets to put to sleep ([`drowsy_analysis`]);
//! * Section 6.8 — virtually/physically tagged caches: for which page
//!   sizes are the PI's tag bits available before TLB translation?
//!   ([`vp_tag_analysis`]).

use bcache_core::BCacheParams;
use cache_sim::CacheGeometry;
use power_model::compare_hac;
use trace_gen::profiles;

use crate::balance::{table7, BalanceRow};
use crate::report::{pct, TextTable};
use crate::run::RunLength;

/// Renders the Section 6.7 HAC-improvement analysis.
pub fn render_hac_comparison() -> String {
    let geom = CacheGeometry::new(16 * 1024, 32, 1).expect("valid geometry");
    let c = compare_hac(&geom, 6);
    let mut t = TextTable::new(vec!["", "full HAC", "B-Cache-style PD"]);
    t.row(vec![
        "CAM width/line".to_string(),
        format!("{} bits", c.full_cam_width),
        format!("{} bits", c.improved_cam_width),
    ]);
    t.row(vec![
        "total CAM bits".to_string(),
        c.full_cam_bits.to_string(),
        c.improved_cam_bits.to_string(),
    ]);
    format!(
        "Section 6.7: improving the HAC with a partial programmable decoder\n{}\n\
         CAM area reduction: {:.1}% ({:.0} SRAM-bit equivalents saved)\n\
         CAM search-energy saving: {:.1} pJ per access\n",
        t.render(),
        c.area_reduction() * 100.0,
        c.area_saving_sram_bits,
        c.energy_saving_pj
    )
}

/// One benchmark's drowsy-compatibility estimate.
#[derive(Clone, Debug, PartialEq)]
pub struct DrowsyRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Fraction of sets sleepable (less-accessed) under the baseline.
    pub baseline_sleepable: f64,
    /// Fraction of sets sleepable under the B-Cache.
    pub bcache_sleepable: f64,
}

/// Leakage fraction retained by a drowsy set (Flautner et al. report
/// ~6-10x leakage reduction; we use 10%).
pub const DROWSY_LEAKAGE_FACTOR: f64 = 0.10;

/// Section 6.4: both caches' less-accessed sets could be put in a drowsy
/// state; the B-Cache balances accesses yet keeps a substantial drowsy
/// candidate pool.
///
/// # Errors
///
/// Propagates the Table 7 configuration error ([`table7`]).
pub fn drowsy_analysis(len: RunLength) -> Result<Vec<DrowsyRow>, String> {
    Ok(table7(len)?
        .into_iter()
        .map(|r: BalanceRow| DrowsyRow {
            benchmark: r.benchmark,
            baseline_sleepable: r.baseline.less_accessed_sets,
            bcache_sleepable: r.bcache.less_accessed_sets,
        })
        .collect())
}

/// Renders the drowsy-compatibility table.
pub fn render_drowsy(rows: &[DrowsyRow]) -> String {
    let mut t = TextTable::new(vec![
        "benchmark",
        "dm sleepable",
        "bc sleepable",
        "bc leakage",
    ]);
    let mut sum = (0.0, 0.0);
    for r in rows {
        let leak = 1.0 - r.bcache_sleepable * (1.0 - DROWSY_LEAKAGE_FACTOR);
        t.row(vec![
            r.benchmark.clone(),
            pct(r.baseline_sleepable),
            pct(r.bcache_sleepable),
            format!("{:.2}x", leak),
        ]);
        sum.0 += r.baseline_sleepable;
        sum.1 += r.bcache_sleepable;
    }
    let n = rows.len().max(1) as f64;
    t.row(vec![
        "Ave".to_string(),
        pct(sum.0 / n),
        pct(sum.1 / n),
        format!("{:.2}x", 1.0 - (sum.1 / n) * (1.0 - DROWSY_LEAKAGE_FACTOR)),
    ]);
    format!(
        "Section 6.4 extension: drowsy-technique compatibility (D$, 16 kB).\n\
         'sleepable' = less-accessed sets that could sit in a drowsy state;\n\
         'bc leakage' = B-Cache leakage relative to always-awake, at a {:.0}% drowsy factor.\n{}",
        DROWSY_LEAKAGE_FACTOR * 100.0,
        t.render()
    )
}

/// One row of the Section 6.8 analysis.
#[derive(Clone, Debug, PartialEq)]
pub struct VpTagRow {
    /// Page size in bytes.
    pub page_bytes: usize,
    /// Highest PI bit position (exclusive) in the address.
    pub pi_top_bit: u32,
    /// Whether the whole PI lies inside the page offset (untranslated).
    pub pi_untranslated: bool,
}

/// Section 6.8: the PD must see its `log2(MF)` tag bits *before* address
/// translation finishes. With a virtually-indexed, physically-tagged L1
/// that works only if those bits fall within the page offset; otherwise
/// they must be treated as virtual-index bits (the paper's suggestion).
pub fn vp_tag_analysis(geom: &CacheGeometry, mf: usize, bas: usize) -> Vec<VpTagRow> {
    let params =
        BCacheParams::new(*geom, mf, bas, cache_sim::PolicyKind::Lru).expect("valid B-Cache point");
    let layout = params.layout();
    let pi_top_bit = geom.offset_bits() + layout.npi_bits() + layout.pi_bits();
    [4096usize, 8192, 16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024]
        .into_iter()
        .map(|page_bytes| VpTagRow {
            page_bytes,
            pi_top_bit,
            pi_untranslated: pi_top_bit <= page_bytes.trailing_zeros(),
        })
        .collect()
}

/// Renders the V/P-tag analysis for the paper's 16 kB design point.
pub fn render_vp_analysis() -> String {
    let geom = CacheGeometry::new(16 * 1024, 32, 1).expect("valid geometry");
    let rows = vp_tag_analysis(&geom, 8, 8);
    let mut t = TextTable::new(vec!["page size", "PI top bit", "PI untranslated?"]);
    for r in &rows {
        t.row(vec![
            format!("{} kB", r.page_bytes / 1024),
            format!("bit {}", r.pi_top_bit - 1),
            if r.pi_untranslated {
                "yes (physically indexed ok)"
            } else {
                "no (treat as virtual index)"
            }
            .to_string(),
        ]);
    }
    format!(
        "Section 6.8: V/P-tagged caches — can the PD see its tag bits before the TLB?\n\
         (16 kB B-Cache, MF = 8, BAS = 8: the PI spans up to bit {}.)\n{}",
        rows[0].pi_top_bit - 1,
        t.render()
    )
}

/// Extension: the Figure 4 experiment rerun with the B-Cache's random
/// replacement (Section 3.3's cheap alternative), reported as average
/// reductions for LRU vs random.
pub fn replacement_policy_comparison(len: RunLength) -> (f64, f64) {
    use crate::config::CacheConfig;
    use crate::run::{mean, run_miss_rates, Side};
    let configs = [
        CacheConfig::BCache { mf: 8, bas: 8 },
        CacheConfig::BCacheRandom { mf: 8, bas: 8 },
    ];
    let rows: Vec<_> = profiles::all()
        .iter()
        .map(|p| run_miss_rates(p, &configs, 16 * 1024, Side::Data, len))
        .collect();
    (
        mean(&rows, |r| r.reduction(0)),
        mean(&rows, |r| r.reduction(1)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hac_comparison_renders_the_26_bit_cam() {
        let s = render_hac_comparison();
        assert!(s.contains("26 bits"), "{s}");
        assert!(s.contains("6 bits"));
    }

    #[test]
    fn drowsy_pool_shrinks_but_survives_balancing() {
        let rows = drowsy_analysis(RunLength::with_records(60_000)).unwrap();
        assert_eq!(rows.len(), 26);
        let ave_dm: f64 =
            rows.iter().map(|r| r.baseline_sleepable).sum::<f64>() / rows.len() as f64;
        let ave_bc: f64 = rows.iter().map(|r| r.bcache_sleepable).sum::<f64>() / rows.len() as f64;
        // Section 6.4: balancing reduces less-accessed sets (50.2% ->
        // 32.4% in the paper) but a useful pool remains.
        assert!(ave_bc < ave_dm, "balancing must shrink the idle pool");
        assert!(
            ave_bc > 0.05,
            "a drowsy candidate pool must remain: {ave_bc}"
        );
        assert!(render_drowsy(&rows).contains("Ave"));
    }

    #[test]
    fn vp_analysis_flips_at_the_pi_top_bit() {
        let geom = CacheGeometry::new(16 * 1024, 32, 1).unwrap();
        let rows = vp_tag_analysis(&geom, 8, 8);
        // PI spans bits [5+6, 5+6+6) = up to bit 16: pages >= 128 kB (17
        // offset bits) keep it untranslated; common 4-8 kB pages do not.
        assert_eq!(rows[0].pi_top_bit, 17);
        assert!(
            !rows
                .iter()
                .find(|r| r.page_bytes == 4096)
                .unwrap()
                .pi_untranslated
        );
        assert!(
            !rows
                .iter()
                .find(|r| r.page_bytes == 8192)
                .unwrap()
                .pi_untranslated
        );
        assert!(
            rows.iter()
                .find(|r| r.page_bytes == 128 * 1024)
                .unwrap()
                .pi_untranslated
        );
        assert!(render_vp_analysis().contains("bit 16"));
    }

    #[test]
    fn lru_beats_random_but_not_by_much() {
        // Section 3.3: random is the cheap alternative; LRU is better but
        // the gap is modest.
        let (lru, random) = replacement_policy_comparison(RunLength::with_records(60_000));
        assert!(lru >= random - 0.02, "LRU {lru} vs random {random}");
        assert!(
            random > lru - 0.25,
            "random must stay competitive: {lru} vs {random}"
        );
    }
}
