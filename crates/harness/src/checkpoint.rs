//! Checkpoint/resume for long experiment sweeps.
//!
//! A [`Checkpoint`] is an append-friendly JSONL file holding the
//! results of completed jobs, each keyed by a deterministic identity
//! (`scope/key`, e.g. `fig3/gzip/mf8`) rather than by anything
//! scheduling-dependent. The header pins the run parameters
//! ([`CheckpointMeta`]: experiment name, records, warmup, seed), so a
//! stale checkpoint from a different sweep is rejected instead of
//! silently corrupting results.
//!
//! Values are encoded through [`CheckpointValue`]. Floating-point
//! results round-trip through their **bit pattern** (`f64::to_bits` as
//! hex), never through decimal formatting — that is what makes a
//! resumed sweep byte-identical to an uninterrupted one.
//!
//! Writes go through a temp-file-then-rename dance, so a crash mid-write
//! leaves the previous consistent snapshot in place.
//!
//! No serde: the format is a fixed two-field object per line, parsed
//! with the same hand-rolled helpers the bench baseline reader uses.

use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::run::{BCachePdOutcome, RunLength};

/// A job result that can be persisted in a checkpoint and restored
/// **bit-exactly**.
pub trait CheckpointValue: Sized {
    /// Encodes the value as a single-line string (no `"`/`\n`).
    fn encode(&self) -> String;
    /// Decodes a value previously produced by [`Self::encode`];
    /// `None` on malformed input (the job then simply re-runs).
    fn decode(encoded: &str) -> Option<Self>;
}

impl CheckpointValue for f64 {
    fn encode(&self) -> String {
        // Bit pattern, not decimal: decimal round-trips are not
        // byte-stable across formatting changes; bits are.
        format!("{:016x}", self.to_bits())
    }

    fn decode(encoded: &str) -> Option<Self> {
        u64::from_str_radix(encoded, 16).ok().map(f64::from_bits)
    }
}

impl CheckpointValue for u64 {
    fn encode(&self) -> String {
        self.to_string()
    }

    fn decode(encoded: &str) -> Option<Self> {
        encoded.parse().ok()
    }
}

impl CheckpointValue for BCachePdOutcome {
    fn encode(&self) -> String {
        format!(
            "{:016x};{:016x}",
            self.miss_rate.to_bits(),
            self.pd_hit_rate_on_miss.to_bits()
        )
    }

    fn decode(encoded: &str) -> Option<Self> {
        let (miss, pd) = encoded.split_once(';')?;
        Some(BCachePdOutcome {
            miss_rate: f64::decode(miss)?,
            pd_hit_rate_on_miss: f64::decode(pd)?,
        })
    }
}

/// The run parameters a checkpoint is valid for. Resuming with
/// mismatched parameters is an error — a checkpoint taken at
/// `--records 2000000` must not feed a `--records 30000` sweep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Experiment name (`fig3`, `all`, …).
    pub experiment: String,
    /// Trace records per job.
    pub records: u64,
    /// Warm-up records per job.
    pub warmup: u64,
    /// Sweep base seed.
    pub seed: u64,
}

impl CheckpointMeta {
    /// Meta for `experiment` at run length `len`.
    pub fn new(experiment: &str, len: RunLength) -> Self {
        CheckpointMeta {
            experiment: experiment.to_string(),
            records: len.records,
            warmup: len.warmup,
            seed: len.seed,
        }
    }
}

impl fmt::Display for CheckpointMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (records {}, warmup {}, seed {})",
            self.experiment, self.records, self.warmup, self.seed
        )
    }
}

/// A persistent key→value store of completed job results.
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    meta: CheckpointMeta,
    entries: BTreeMap<String, String>,
}

impl Checkpoint {
    /// Starts a fresh checkpoint at `path`, overwriting any existing
    /// file, and writes the header immediately.
    pub fn create(path: &Path, meta: CheckpointMeta) -> io::Result<Checkpoint> {
        let mut ckpt = Checkpoint {
            path: path.to_path_buf(),
            meta,
            entries: BTreeMap::new(),
        };
        ckpt.flush()?;
        Ok(ckpt)
    }

    /// Loads an existing checkpoint at `path` for resumption. Errors
    /// if the file is missing/unreadable/malformed or its header does
    /// not match `meta`.
    pub fn resume(path: &Path, meta: CheckpointMeta) -> Result<Checkpoint, String> {
        let text = fs::read_to_string(path)
            .map_err(|e| format!("cannot read checkpoint {}: {e}", path.display()))?;
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines
            .next()
            .ok_or_else(|| format!("checkpoint {} is empty", path.display()))?;
        let found = CheckpointMeta {
            experiment: json_str_field(header, "experiment")
                .ok_or_else(|| format!("checkpoint {}: malformed header", path.display()))?,
            records: json_u64_field(header, "records")
                .ok_or_else(|| format!("checkpoint {}: malformed header", path.display()))?,
            warmup: json_u64_field(header, "warmup")
                .ok_or_else(|| format!("checkpoint {}: malformed header", path.display()))?,
            seed: json_u64_field(header, "seed")
                .ok_or_else(|| format!("checkpoint {}: malformed header", path.display()))?,
        };
        if found != meta {
            return Err(format!(
                "checkpoint {} was taken for {found}, but this run is {meta}",
                path.display()
            ));
        }
        let mut entries = BTreeMap::new();
        for line in lines {
            let key = json_str_field(line, "key").ok_or_else(|| {
                format!("checkpoint {}: malformed entry {line:?}", path.display())
            })?;
            let value = json_str_field(line, "value").ok_or_else(|| {
                format!("checkpoint {}: malformed entry {line:?}", path.display())
            })?;
            entries.insert(key, value);
        }
        Ok(Checkpoint {
            path: path.to_path_buf(),
            meta,
            entries,
        })
    }

    /// Resumes from `path` if a checkpoint with matching `meta` exists
    /// there, otherwise starts fresh. Used by `--checkpoint` (whereas
    /// `--resume` demands the file exist).
    pub fn load_or_create(path: &Path, meta: CheckpointMeta) -> Result<Checkpoint, String> {
        if path.exists() {
            Checkpoint::resume(path, meta)
        } else {
            Checkpoint::create(path, meta)
                .map_err(|e| format!("cannot create checkpoint {}: {e}", path.display()))
        }
    }

    /// The checkpoint file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The run parameters the checkpoint is pinned to.
    pub fn meta(&self) -> &CheckpointMeta {
        &self.meta
    }

    /// The stored encoding of `key`, if the job already completed.
    pub fn get(&self, key: &str) -> Option<String> {
        self.entries.get(key).cloned()
    }

    /// Records the result of one completed job and flushes to disk, so
    /// the checkpoint is never more than one job behind reality.
    pub fn put(&mut self, key: &str, value: &str) -> io::Result<()> {
        self.entries.insert(key.to_string(), value.to_string());
        self.flush()
    }

    /// Atomically rewrites the checkpoint file (temp file + rename).
    pub fn flush(&mut self) -> io::Result<()> {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"checkpoint\": {{\"experiment\": \"{}\", \"records\": {}, \"warmup\": {}, \"seed\": {}}}}}\n",
            self.meta.experiment, self.meta.records, self.meta.warmup, self.meta.seed
        ));
        for (key, value) in &self.entries {
            out.push_str(&format!("{{\"key\": \"{key}\", \"value\": \"{value}\"}}\n"));
        }
        let tmp = self.path.with_extension("tmp");
        fs::write(&tmp, &out)?;
        fs::rename(&tmp, &self.path)
    }

    /// Number of stored results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no results are stored yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Extracts `"name": "value"` from a single-line JSON object. Values
/// never contain escapes (keys are path-like identifiers, values are
/// hex/decimal encodings), so scanning to the closing quote suffices.
fn json_str_field(line: &str, name: &str) -> Option<String> {
    let pat = format!("\"{name}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts `"name": 123` from a single-line JSON object.
fn json_u64_field(line: &str, name: &str) -> Option<u64> {
    let pat = format!("\"{name}\": ");
    let start = line.find(&pat)? + pat.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bcache-ckpt-{tag}-{}.jsonl", std::process::id()))
    }

    fn meta() -> CheckpointMeta {
        CheckpointMeta::new("fig3", RunLength::with_records(30_000))
    }

    #[test]
    fn values_round_trip_bit_exactly() {
        for bits in [0u64, 1, f64::to_bits(0.123456789), f64::to_bits(f64::NAN)] {
            let v = f64::from_bits(bits);
            let back = f64::decode(&v.encode()).unwrap();
            assert_eq!(back.to_bits(), bits);
        }
        assert_eq!(u64::decode(&u64::MAX.encode()), Some(u64::MAX));
        let outcome = BCachePdOutcome {
            miss_rate: 0.0123,
            pd_hit_rate_on_miss: 0.987,
        };
        let back = BCachePdOutcome::decode(&outcome.encode()).unwrap();
        assert_eq!(back.miss_rate.to_bits(), outcome.miss_rate.to_bits());
        assert_eq!(
            back.pd_hit_rate_on_miss.to_bits(),
            outcome.pd_hit_rate_on_miss.to_bits()
        );
        assert_eq!(f64::decode("not hex"), None);
        assert_eq!(BCachePdOutcome::decode("deadbeef"), None);
    }

    #[test]
    fn non_finite_and_signed_zero_payloads_round_trip_bit_exactly() {
        // The hex encoding must preserve every IEEE-754 special value a
        // miss-rate computation can emit (0/0 on an empty cell, ±inf on
        // a degenerate ratio, a negative zero from a subtraction) —
        // including NaN payload bits and the sign of zero, both of
        // which decimal formatting would destroy.
        let edge_cases = [
            f64::NAN,
            -f64::NAN,
            f64::from_bits(0x7FF0_0000_0000_0001), // signalling-NaN pattern
            f64::from_bits(0xFFF8_DEAD_BEEF_CAFE), // NaN with payload bits
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 2.0, // subnormal
            f64::MAX,
        ];
        for v in edge_cases {
            let encoded = v.encode();
            assert_eq!(encoded.len(), 16, "fixed-width hex for {v:?}");
            let back = f64::decode(&encoded).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "bits drifted for {v:?}");
        }
        assert!(
            (-0.0f64).encode() != 0.0f64.encode(),
            "the sign of zero must be visible in the encoding"
        );
    }

    #[test]
    fn checkpoint_persists_non_finite_values_across_resume() {
        let path = tmp_path("nonfinite");
        let mut ckpt = Checkpoint::create(&path, meta()).unwrap();
        ckpt.put("edge/nan", &f64::NAN.encode()).unwrap();
        ckpt.put("edge/inf", &f64::INFINITY.encode()).unwrap();
        ckpt.put("edge/ninf", &f64::NEG_INFINITY.encode()).unwrap();
        ckpt.put("edge/nzero", &(-0.0f64).encode()).unwrap();
        let loaded = Checkpoint::resume(&path, meta()).unwrap();
        let get = |k: &str| f64::decode(&loaded.get(k).unwrap()).unwrap();
        assert!(get("edge/nan").is_nan());
        assert_eq!(get("edge/inf"), f64::INFINITY);
        assert_eq!(get("edge/ninf"), f64::NEG_INFINITY);
        assert_eq!(get("edge/nzero").to_bits(), (-0.0f64).to_bits());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_survives_a_write_load_cycle() {
        let path = tmp_path("cycle");
        let mut ckpt = Checkpoint::create(&path, meta()).unwrap();
        assert!(ckpt.is_empty());
        ckpt.put("fig3/gzip/mf8", &0.0421f64.encode()).unwrap();
        ckpt.put("fig3/gzip/mf16", &0.0399f64.encode()).unwrap();
        assert_eq!(ckpt.len(), 2);

        let loaded = Checkpoint::resume(&path, meta()).unwrap();
        assert_eq!(loaded.len(), 2);
        let v = f64::decode(&loaded.get("fig3/gzip/mf8").unwrap()).unwrap();
        assert_eq!(v.to_bits(), 0.0421f64.to_bits());
        assert_eq!(loaded.get("fig3/gzip/mf32"), None);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn mismatched_meta_is_rejected() {
        let path = tmp_path("mismatch");
        let mut ckpt = Checkpoint::create(&path, meta()).unwrap();
        ckpt.put("k", "0").unwrap();
        let other = CheckpointMeta::new("fig3", RunLength::with_records(40_000));
        let err = Checkpoint::resume(&path, other).unwrap_err();
        assert!(err.contains("records 30000"), "err: {err}");
        let other = CheckpointMeta::new("fig4", RunLength::with_records(30_000));
        assert!(Checkpoint::resume(&path, other).is_err());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn resume_demands_an_existing_file_but_load_or_create_does_not() {
        let path = tmp_path("fresh");
        let _ = fs::remove_file(&path);
        assert!(Checkpoint::resume(&path, meta()).is_err());
        let ckpt = Checkpoint::load_or_create(&path, meta()).unwrap();
        assert!(ckpt.is_empty());
        // Second load_or_create resumes the file the first one wrote.
        let again = Checkpoint::load_or_create(&path, meta()).unwrap();
        assert!(again.is_empty());
        let _ = fs::remove_file(&path);
    }
}
