//! The `bcache-repro stats` subcommand: the set-pressure report.
//!
//! For each golden benchmark (the eight pinned by the golden-stats
//! regression suite) the report compares the 16 kB direct-mapped
//! baseline against the B-Cache MF8-BAS8 point on the data side:
//! per-set access histograms (the paper's Table 7 balance argument made
//! visible — a DM cache spreads sets across many log2 buckets, the
//! B-Cache concentrates them), PD reprogram counts, and the PD churn
//! rate per thousand post-warm-up accesses.
//!
//! ```text
//! bcache-repro stats [--records N] [--seed S] [--jobs N] [--metrics PATH]
//! ```
//!
//! One engine job per benchmark; fragments merge in input order, so the
//! deterministic metrics section is byte-identical for any `--jobs N`.

use cache_sim::CacheModel;
use telemetry::{Recorder, SpanTimer};
use trace_gen::profiles;

use crate::config::{CacheConfig, RunOptions};
use crate::parallel::job_seed;
use crate::run::Side;
use crate::runcmd::replay_timed;
use crate::telemetry_io::{degraded_summary, record_model};

/// The benchmarks the report covers — the golden-stats regression set.
pub const GOLDEN_BENCHMARKS: [&str; 8] = [
    "mcf", "gzip", "equake", "ammp", "art", "gcc", "parser", "vpr",
];

/// L1 size of the comparison (the paper's headline 16 kB point).
const SIZE_BYTES: usize = 16 * 1024;

/// One benchmark's row of the report.
#[derive(Copy, Clone, Debug)]
struct StatsRow {
    dm_miss_rate: f64,
    bc_miss_rate: f64,
    pd_reprograms: u64,
    accesses: u64,
}

/// What a `stats` invocation produces.
#[derive(Clone, Debug)]
pub struct StatsOutcome {
    /// Human-readable report.
    pub report: String,
    /// Merged telemetry (deterministic counters/histograms + timing).
    pub metrics: Recorder,
}

/// Runs the report: one engine job per golden benchmark (D$ side,
/// 16 kB), DM versus B-Cache MF8-BAS8.
pub fn stats_cmd(opts: &RunOptions) -> StatsOutcome {
    let engine = opts.engine();
    let len = opts.len;
    let side = Side::Data;

    let jobs: Vec<_> = GOLDEN_BENCHMARKS
        .iter()
        .map(|&bench| {
            let engine = &engine;
            move || {
                let profile = profiles::by_name(bench).expect("golden benchmark exists");
                let trace = engine.side_trace(&profile, len, side);
                let seed = job_seed(len.seed, bench, side);
                let mut frag = Recorder::new();

                let mut dm = CacheConfig::DirectMapped
                    .build(SIZE_BYTES, seed)
                    .expect("baseline builds at 16 kB");
                replay_timed(&trace, dm.as_mut(), &mut frag);
                record_model(&mut frag, &format!("stats.{bench}.dm"), dm.as_ref());

                // Built concretely (seeded like `CacheConfig::build`) so
                // the PD statistics are reachable.
                let geom =
                    cache_sim::CacheGeometry::new(SIZE_BYTES, 32, 1).expect("valid stats geometry");
                let params = bcache_core::BCacheParams::new(geom, 8, 8, cache_sim::PolicyKind::Lru)
                    .expect("valid B-Cache point")
                    .with_seed(seed);
                let mut bc = bcache_core::BalancedCache::new(params);
                replay_timed(&trace, &mut bc, &mut frag);
                record_model(&mut frag, &format!("stats.{bench}.bcache"), &bc);
                let pd = bc.pd_stats();
                frag.counter(
                    &format!("stats.{bench}.bcache.pd_reprograms"),
                    pd.misses_with_pd_miss,
                );
                frag.counter(
                    &format!("stats.{bench}.bcache.pd_forced_misses"),
                    pd.misses_with_pd_hit,
                );

                let row = StatsRow {
                    dm_miss_rate: dm.stats().miss_rate(),
                    bc_miss_rate: bc.stats().miss_rate(),
                    pd_reprograms: pd.misses_with_pd_miss,
                    accesses: bc.stats().total().accesses(),
                };
                (row, frag)
            }
        })
        .collect();

    let mut metrics = Recorder::new();
    let mut rows = Vec::new();
    for (bench, (row, frag)) in GOLDEN_BENCHMARKS.iter().zip(engine.run(jobs)) {
        metrics.merge(&frag);
        rows.push((*bench, row));
    }
    metrics.merge(&engine.timing_snapshot());
    // Failure accounting (`engine.*`): empty — hence invisible — for a
    // clean run, so jobs-invariance golden comparisons stay intact.
    metrics.merge(&engine.failure_snapshot());

    let t = SpanTimer::start("phase.report");
    let mut report = format!(
        "stats: 16 kB D$ set pressure, DM vs B-Cache MF8-BAS8 \
         ({} records, warmup {}, seed {})\n\n",
        len.records, len.warmup, len.seed
    );
    report.push_str("benchmark  dm_miss   bc_miss   pd_reprograms  churn/1k_acc\n");
    for (bench, row) in &rows {
        let churn = if row.accesses == 0 {
            0.0
        } else {
            row.pd_reprograms as f64 * 1000.0 / row.accesses as f64
        };
        report.push_str(&format!(
            "{bench:<10} {:>7.3}%  {:>7.3}%  {:>13}  {churn:>12.2}\n",
            row.dm_miss_rate * 100.0,
            row.bc_miss_rate * 100.0,
            row.pd_reprograms,
        ));
    }
    for (bench, _) in &rows {
        report.push_str(&format!("\n{bench}: per-set access histograms\n"));
        for model in ["dm", "bcache"] {
            if let Some(h) = metrics.histogram(&format!("stats.{bench}.{model}.set_accesses")) {
                report.push_str(&format!(
                    "  {model} ({} sets, {}):\n{}",
                    h.count(),
                    h.summary(),
                    indent(&h.render_ascii(36), "    ")
                ));
            }
        }
    }
    if engine.degraded() {
        report.push_str(&degraded_summary(&metrics));
    }
    t.stop(&mut metrics);
    StatsOutcome { report, metrics }
}

fn indent(text: &str, pad: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for line in text.lines() {
        out.push_str(pad);
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::RunLength;

    #[test]
    fn stats_cover_every_golden_benchmark() {
        let opts = RunOptions {
            len: RunLength::with_records(20_000),
            jobs: 4,
            ..RunOptions::default()
        };
        let out = stats_cmd(&opts);
        for bench in GOLDEN_BENCHMARKS {
            assert!(out.report.contains(bench), "report misses {bench}");
            assert!(
                out.metrics
                    .histogram(&format!("stats.{bench}.dm.set_accesses"))
                    .is_some(),
                "no DM histogram for {bench}"
            );
            assert!(
                out.metrics
                    .histogram(&format!("stats.{bench}.bcache.set_accesses"))
                    .is_some(),
                "no B-Cache histogram for {bench}"
            );
            assert!(
                out.metrics
                    .counter_value(&format!("stats.{bench}.bcache.pd_reprograms"))
                    > 0,
                "{bench} replays long enough to reprogram the PD"
            );
        }
        assert!(out.report.contains("per-set access histograms"));
        assert!(
            out.report.contains("p50≤") && out.report.contains("p95≤"),
            "histogram sections carry quantile summaries: {}",
            out.report
        );
        assert!(out.metrics.timing("phase.replay").is_some());
    }

    #[test]
    fn stats_metrics_are_jobs_invariant() {
        let mut golden: Option<String> = None;
        for jobs in [1usize, 3] {
            let opts = RunOptions {
                len: RunLength::with_records(12_000),
                jobs,
                ..RunOptions::default()
            };
            let json = stats_cmd(&opts).metrics.to_json(false);
            match &golden {
                None => golden = Some(json),
                Some(g) => assert_eq!(g, &json, "--jobs {jobs} changed the metrics"),
            }
        }
    }
}
